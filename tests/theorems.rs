//! The paper's results, one test per theorem/lemma, on both fixed and
//! randomized instances. This file is the executable summary of §2 and §5.

use dls::prelude::*;
use dls::{dlt, mechanism, protocol, workloads};
use mechanism::verify::{participation_report, strategyproofness_report};

fn instances() -> Vec<workloads::MechanismParts> {
    (0..30u64)
        .map(|seed| {
            let n = 3 + (seed as usize % 6);
            let cfg = ChainConfig {
                processors: n,
                ..Default::default()
            };
            workloads::mechanism_parts(&workloads::chain(&cfg, seed))
        })
        .collect()
}

#[test]
fn theorem_2_1_participation() {
    // "The optimal solution is obtained when all processors participate
    // and they all finish executing their assigned load at the same
    // instant."
    for parts in instances() {
        let mut w = vec![parts.root_rate];
        w.extend_from_slice(&parts.true_rates);
        let net = LinearNetwork::from_rates(&w, &parts.link_rates);
        let sol = dlt::linear::solve(&net);
        assert!(
            sol.alloc.fractions().iter().all(|&a| a > 0.0),
            "all participate"
        );
        assert!(
            dlt::timing::participation_spread(&net, &sol.alloc) < 1e-9,
            "equal finish"
        );
    }
}

#[test]
fn lemma_5_1_deviants_are_fined() {
    // "A selfish-but-agreeable processor will be fined for deviating."
    let parts = &instances()[0];
    let base = Scenario::honest(
        parts.root_rate,
        parts.true_rates.clone(),
        parts.link_rates.clone(),
    )
    .with_fine(FineSchedule::new(100.0, 1.0));
    for deviation in protocol::Deviation::catalog()
        .into_iter()
        .filter(|d| d.is_finable())
    {
        let m = parts.true_rates.len();
        let target = if m >= 2 { m - 1 } else { 1 }; // interior node
        let report = protocol::run(&base.clone().with_deviation(target, deviation));
        let fined = report.ledger.net_of(target, protocol::EntryKind::Fine) < 0.0;
        assert!(fined, "{} escaped the fine", deviation.label());
    }
}

#[test]
fn lemma_5_2_only_deviants_are_fined() {
    // "A processor receives a fine only if it has deviated."
    let parts = &instances()[1];
    let m = parts.true_rates.len();
    let base = Scenario::honest(
        parts.root_rate,
        parts.true_rates.clone(),
        parts.link_rates.clone(),
    )
    .with_fine(FineSchedule::new(100.0, 1.0));
    for deviation in protocol::Deviation::catalog() {
        for target in 1..=m {
            let report = protocol::run(&base.clone().with_deviation(target, deviation));
            for j in (1..=m).filter(|&j| j != target) {
                assert!(
                    report.ledger.net_of(j, protocol::EntryKind::Fine) >= 0.0,
                    "honest P{j} fined while P{target} ran {}",
                    deviation.label()
                );
            }
        }
    }
}

#[test]
fn theorem_5_1_selfish_but_agreeable_compliance() {
    // No deviation strictly improves welfare, so a selfish-but-agreeable
    // agent complies.
    for parts in instances().into_iter().take(10) {
        let base = Scenario::honest(
            parts.root_rate,
            parts.true_rates.clone(),
            parts.link_rates.clone(),
        )
        .with_fine(FineSchedule::new(100.0, 1.0));
        let honest = protocol::run(&base);
        let m = parts.true_rates.len();
        for deviation in protocol::Deviation::catalog() {
            for target in 1..=m {
                let report = protocol::run(&base.clone().with_deviation(target, deviation));
                assert!(
                    report.utility(target) <= honest.utility(target) + 1e-9,
                    "{} at P{target} improved utility",
                    deviation.label()
                );
            }
        }
    }
}

#[test]
fn theorem_5_2_selfish_and_annoying_compliance() {
    // With the solution bonus, utility-neutral sabotage becomes strictly
    // losing: U(behave) > U(sabotage) whenever S > 0 and sabotage lowers
    // the solution probability.
    let parts = &instances()[2];
    let base = Scenario::honest(
        parts.root_rate,
        parts.true_rates.clone(),
        parts.link_rates.clone(),
    );
    let s = 0.2;
    let found = protocol::run(&base.clone().with_solution_bonus(s, true));
    let missed = protocol::run(&base.clone().with_solution_bonus(s, false));
    let p_clean = 0.9;
    let p_sab = 0.5;
    for j in 1..=parts.true_rates.len() {
        let behave = p_clean * found.utility(j) + (1.0 - p_clean) * missed.utility(j);
        let sabotage = p_sab * found.utility(j) + (1.0 - p_sab) * missed.utility(j);
        assert!(
            behave > sabotage,
            "P{j}: the bonus must make sabotage losing"
        );
        // And without the bonus, sabotage is exactly neutral.
        let base_found = protocol::run(&base.clone());
        let neutral_delta = base_found.utility(j) - base_found.utility(j);
        assert_eq!(neutral_delta, 0.0);
    }
}

#[test]
fn lemma_5_3_strategyproof_without_protocol_deviation() {
    // Utility is maximized at the truthful bid, for every agent, on every
    // instance, over a dense bid grid.
    let grid = mechanism::verify::default_factor_grid();
    for parts in instances() {
        let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
        let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
        for sweep in strategyproofness_report(&mech, &agents, &grid) {
            assert!(
                sweep.truthful_is_best(1e-9),
                "P{} gains {:.3e}",
                sweep.agent,
                sweep.max_gain()
            );
        }
    }
}

#[test]
fn theorem_5_3_strategyproofness_via_protocol() {
    // End-to-end: through the full protocol, misreporting and slacking
    // never beat truthfulness.
    let parts = &instances()[3];
    let base = Scenario::honest(
        parts.root_rate,
        parts.true_rates.clone(),
        parts.link_rates.clone(),
    );
    let honest = protocol::run(&base);
    for factor in [0.3, 0.6, 0.9, 1.2, 2.0, 5.0] {
        for target in 1..=parts.true_rates.len() {
            let deviation = if factor < 1.0 {
                Deviation::Underbid { factor }
            } else {
                Deviation::Overbid { factor }
            };
            let report = protocol::run(&base.clone().with_deviation(target, deviation));
            assert!(report.utility(target) <= honest.utility(target) + 1e-9);
        }
    }
}

#[test]
fn lemma_5_4_and_theorem_5_4_voluntary_participation() {
    // Truthful utility is w_{j-1} − w̄_{j-1} ≥ 0.
    for parts in instances() {
        let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
        let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
        let report = participation_report(&mech, &agents);
        assert!(report.holds(1e-12), "min utility {}", report.min_utility());
        // the identity itself
        let outcome = mech.settle_truthful(&agents);
        for j in 1..=agents.len() {
            let expected = outcome.bid_network.w(j - 1) - outcome.solution.equivalent[j - 1];
            assert!((outcome.utility(j) - expected).abs() < 1e-9);
        }
    }
}
