//! Cross-crate integration for the tree generalization: shape → canonical
//! order → solver → mechanism → protocol must agree end to end.

use dls::dlt::model::TreeNode;
use dls::dlt::tree;
use dls::mechanism::dls_tree::TreeMechanism;
use dls::prelude::*;
use dls::protocol::tree_runner::{run_tree, TreeScenario};
use dls::workloads;

fn random_shape(seed: u64) -> TreeNode {
    let cfg = ChainConfig {
        processors: 7,
        ..Default::default()
    };
    workloads::tree(&cfg, 3, seed)
}

fn rates_for(shape: &TreeNode, seed: u64) -> Vec<f64> {
    (0..shape.size() - 1)
        .map(|i| 0.5 + ((seed as usize + i * 7) % 30) as f64 / 10.0)
        .collect()
}

#[test]
fn honest_tree_protocol_matches_mechanism_across_shapes() {
    for seed in 0..15u64 {
        let shape = tree::canonicalize(&random_shape(seed));
        if shape.size() < 2 {
            continue;
        }
        let rates = rates_for(&shape, seed);
        let scenario = TreeScenario::honest(shape.clone(), rates.clone());
        let report = run_tree(&scenario);
        assert!(report.clean(), "seed {seed}: {:?}", report.arbitrations);

        let mech = TreeMechanism::new(shape);
        let agents: Vec<Agent> = rates.into_iter().map(Agent::new).collect();
        let outcome = mech.settle_truthful(&agents);
        for j in 1..=agents.len() {
            assert!(
                (report.utility(j) - outcome.utility(j)).abs() < 1e-9,
                "seed {seed} P{j}: protocol {} vs mechanism {}",
                report.utility(j),
                outcome.utility(j)
            );
            assert!(
                report.utility(j) >= -1e-9,
                "VP violated at seed {seed} P{j}"
            );
        }
        assert!(
            (report.makespan - outcome.makespan).abs() < 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn tree_solver_equivalent_consistency_across_shapes() {
    // The equivalent time of the canonicalized tree never exceeds the
    // uncanonicalized one (the canonical order is optimal), and both are
    // bounded by the root's own rate.
    for seed in 0..25u64 {
        let shape = random_shape(seed);
        let canonical = tree::canonicalize(&shape);
        let raw = tree::equivalent_time(&shape);
        let opt = tree::equivalent_time(&canonical);
        assert!(
            opt <= raw + 1e-9,
            "seed {seed}: canonical {opt} vs raw {raw}"
        );
        assert!(opt <= shape.processor.w + 1e-12);
    }
}

#[test]
fn deviant_tree_runs_never_reward_the_deviant() {
    let shape = tree::canonicalize(&random_shape(3));
    let rates = rates_for(&shape, 3);
    let m = rates.len();
    let base = TreeScenario::honest(shape, rates).with_fine(FineSchedule::new(60.0, 1.0));
    let honest = run_tree(&base);
    for d in Deviation::catalog() {
        for target in 1..=m {
            let report = run_tree(&base.clone().with_deviation(target, d));
            assert!(
                report.utility(target) <= honest.utility(target) + 1e-9,
                "{} at P{target} profited",
                d.label()
            );
            // Honest agents are never net-fined.
            for j in (1..=m).filter(|&j| j != target) {
                assert!(
                    report.ledger.net_of(j, dls::protocol::EntryKind::Fine) >= 0.0,
                    "honest P{j} fined under {} at P{target}",
                    d.label()
                );
            }
        }
    }
}
