//! Property-based tests (proptest) on the core invariants, across randomly
//! generated networks, allocations and conducts.

#![allow(clippy::needless_range_loop)] // parallel-array assertions

use dls::prelude::*;
use dls::{dlt, mechanism, sim};
use proptest::prelude::*;

/// Strategy: a chain of 2..=12 processors with positive rates.
fn chain_strategy() -> impl Strategy<Value = LinearNetwork> {
    (2usize..=12).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.1f64..10.0, n),
            proptest::collection::vec(0.0f64..3.0, n - 1),
        )
            .prop_map(|(w, z)| LinearNetwork::from_rates(&w, &z))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_output_is_feasible_and_balanced(net in chain_strategy()) {
        let sol = dlt::linear::solve(&net);
        prop_assert!(sol.alloc.validate().is_ok());
        prop_assert!(sol.alloc.fractions().iter().all(|&a| a > 0.0));
        prop_assert!(dlt::timing::participation_spread(&net, &sol.alloc) < 1e-9);
    }

    #[test]
    fn solver_matches_bisection_oracle(net in chain_strategy()) {
        let sol = dlt::linear::solve(&net);
        let bis = dlt::baseline::solve_bisection(&net, dlt::baseline::BisectionParams::default());
        prop_assert!((sol.makespan() - bis.makespan).abs() < 1e-7 * sol.makespan().max(1.0));
    }

    #[test]
    fn local_global_round_trip(net in chain_strategy()) {
        let sol = dlt::linear::solve(&net);
        let back = sol.alloc.to_local().to_global();
        for i in 0..net.len() {
            prop_assert!((back.alpha(i) - sol.alloc.alpha(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn equivalent_processor_never_slower_than_front(net in chain_strategy()) {
        let sol = dlt::linear::solve(&net);
        for i in 0..net.len() {
            prop_assert!(sol.equivalent[i] <= net.w(i) + 1e-12);
        }
    }

    #[test]
    fn reduction_preserves_makespan_at_any_cut(net in chain_strategy(), cut_frac in 0.0f64..1.0) {
        let cut = ((net.len() as f64 * cut_frac) as usize).min(net.len() - 1);
        prop_assert!(dlt::reduction::reduction_preserves_makespan(&net, cut, 1e-9));
    }

    #[test]
    fn simulation_reproduces_closed_form(net in chain_strategy()) {
        let sol = dlt::linear::solve(&net);
        let run = sim::simulate_honest(&net, &sol.local);
        let expected = dlt::timing::finish_times(&net, &sol.alloc);
        for i in 0..net.len() {
            prop_assert!((run.finish_times[i] - expected[i]).abs() < 1e-9);
        }
        prop_assert!(run.gantt.validate_one_port().is_ok());
    }

    #[test]
    fn monotone_bid_response(net in chain_strategy(), i_frac in 0.0f64..1.0, factor in 1.01f64..5.0) {
        let i = ((net.len() as f64 * i_frac) as usize).min(net.len() - 1);
        let lo = net.w(i);
        prop_assert!(dlt::optimal::monotonicity(&net, i, lo, lo * factor, 1e-9));
    }

    #[test]
    fn truthful_dominates_misreporting(
        net in chain_strategy(),
        j_frac in 0.0f64..1.0,
        factor in 0.2f64..4.0,
    ) {
        let parts = dls::workloads::mechanism_parts(&net);
        let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
        let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
        let j = 1 + ((agents.len() as f64 * j_frac) as usize).min(agents.len() - 1);
        let truthful = mech.settle_truthful(&agents);
        let mut conducts: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        conducts[j - 1] = Conduct::misreport(agents[j - 1], factor);
        let deviant = mech.settle(&conducts, false);
        prop_assert!(deviant.utility(j) <= truthful.utility(j) + 1e-9);
    }

    #[test]
    fn truthful_utility_nonnegative(net in chain_strategy()) {
        let parts = dls::workloads::mechanism_parts(&net);
        let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
        let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
        let report = mechanism::verify::participation_report(&mech, &agents);
        prop_assert!(report.holds(1e-12));
    }

    #[test]
    fn overload_recompense_neutralizes_extra_work(
        net in chain_strategy(),
        extra in 0.0f64..0.5,
    ) {
        // E_j makes a victim indifferent to receiving extra load.
        let parts = dls::workloads::mechanism_parts(&net);
        let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
        let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
        let truthful: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        let base = mech.settle(&truthful, false);
        let j = agents.len(); // the terminal node absorbs overloads
        let mut overloaded = truthful.clone();
        overloaded[j - 1].actual_load = Some(base.agents[j - 1].assigned_load + extra);
        let outcome = mech.settle(&overloaded, false);
        prop_assert!((outcome.utility(j) - base.utility(j)).abs() < 1e-9);
    }

    #[test]
    fn gantt_horizon_equals_makespan(net in chain_strategy()) {
        let sol = dlt::linear::solve(&net);
        let run = sim::simulate_honest(&net, &sol.local);
        prop_assert!((run.gantt.horizon() - run.makespan).abs() < 1e-9);
    }

    #[test]
    fn star_solver_feasible_and_balanced(
        w in proptest::collection::vec(0.1f64..10.0, 2..10),
        seed in 0u64..1000,
    ) {
        let z: Vec<f64> = (0..w.len() - 1).map(|i| 0.01 + ((seed + i as u64) % 10) as f64 * 0.1).collect();
        let star = StarNetwork::from_rates(&w, &z);
        let sol = dlt::star::solve(&star);
        sol.alloc.validate().unwrap();
        prop_assert!(dlt::star::participation_spread(&star, &sol.alloc) < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn protocol_honest_runs_always_clean(
        w in proptest::collection::vec(0.2f64..5.0, 3..8),
        seed in 0u64..10_000,
    ) {
        let z: Vec<f64> = (0..w.len() - 1).map(|i| 0.05 + (i as f64 * 0.07) % 0.5).collect();
        let net = LinearNetwork::from_rates(&w, &z);
        let parts = dls::workloads::mechanism_parts(&net);
        let scenario = Scenario::honest(parts.root_rate, parts.true_rates, parts.link_rates)
            .with_seed(seed);
        let report = dls::protocol::run(&scenario);
        prop_assert!(report.clean());
        prop_assert_eq!(report.ledger.total_fines(), 0.0);
        for j in 1..w.len() {
            prop_assert!(report.utility(j) >= -1e-9);
        }
    }

    #[test]
    fn lambda_tags_are_nested_suffixes_along_the_chain(
        w in proptest::collection::vec(0.2f64..5.0, 3..8),
        codes in proptest::collection::vec(0usize..=9, 8),
        seed in 0u64..10_000,
    ) {
        // The Λ block ids delivered down the chain must form nested
        // suffixes of the mint's id space: node i+1 receives exactly the
        // tail of what node i received. Holds for honest runs and under
        // every deviation combo — shedding shrinks the flow but never
        // reorders or forks the block stream.
        use dls::protocol::transcript::Entry;
        let z: Vec<f64> = (0..w.len() - 1).map(|i| 0.05 + (i as f64 * 0.07) % 0.5).collect();
        let net = LinearNetwork::from_rates(&w, &z);
        let parts = dls::workloads::mechanism_parts(&net);
        let mut scenario = Scenario::honest(parts.root_rate, parts.true_rates, parts.link_rates)
            .with_seed(seed);
        let catalog = Deviation::catalog();
        for j in 1..w.len() {
            if codes[j - 1] > 0 {
                scenario = scenario.with_deviation(j, catalog[codes[j - 1] - 1]);
            }
        }
        let report = dls::protocol::run(&scenario);
        let mint = dls::protocol::BlockMint::new(scenario.blocks, scenario.seed ^ 0x5EED_B10C);
        let full = mint.range(0, scenario.blocks);
        let deliveries: Vec<_> = report
            .transcript
            .entries()
            .iter()
            .filter_map(|e| match e {
                Entry::PhaseIIIDelivery { to, tag, .. } => Some((*to, tag.clone())),
                _ => None,
            })
            .collect();
        prop_assert_eq!(deliveries.len(), w.len() - 1);
        for pair in deliveries.windows(2) {
            let (a, tag_a) = (&pair[0].0, &pair[0].1);
            let (b, tag_b) = (&pair[1].0, &pair[1].1);
            prop_assert_eq!(*b, *a + 1);
            prop_assert!(
                tag_a.ids.ends_with(&tag_b.ids),
                "delivery to P{} is not a suffix of delivery to P{}", b, a
            );
        }
        for (to, tag) in &deliveries {
            prop_assert!(
                full.ids.ends_with(&tag.ids),
                "delivery to P{} is not a suffix of the block space", to
            );
            prop_assert!(mint.verify(tag).is_some(), "genuine tag failed verification");
        }
    }

    #[test]
    fn replay_never_accuses_honest_nodes(
        w in proptest::collection::vec(0.2f64..5.0, 3..8),
        codes in proptest::collection::vec(0usize..=9, 8),
        seed in 0u64..10_000,
    ) {
        // Forensic soundness of the transcript audit, fuzzed over random
        // chains and random deviation combos (including all-honest): every
        // replay finding names a node that actually deviated.
        let z: Vec<f64> = (0..w.len() - 1).map(|i| 0.05 + (i as f64 * 0.07) % 0.5).collect();
        let net = LinearNetwork::from_rates(&w, &z);
        let parts = dls::workloads::mechanism_parts(&net);
        let mut scenario = Scenario::honest(parts.root_rate, parts.true_rates, parts.link_rates)
            .with_seed(seed);
        let catalog = Deviation::catalog();
        for j in 1..w.len() {
            if codes[j - 1] > 0 {
                scenario = scenario.with_deviation(j, catalog[codes[j - 1] - 1]);
            }
        }
        let report = dls::protocol::run(&scenario);
        let registry = dls::protocol::Registry::new(w.len(), scenario.seed);
        let mint = dls::protocol::BlockMint::new(scenario.blocks, scenario.seed ^ 0x5EED_B10C);
        let findings = dls::protocol::replay(&report.transcript, &registry, &mint);
        for f in &findings {
            prop_assert!(f.accused >= 1, "replay accused the obedient root: {:?}", f);
            prop_assert!(
                codes[f.accused - 1] > 0,
                "replay accused honest P{} (codes {:?}, finding {:?})", f.accused, codes, f
            );
        }
    }

    #[test]
    fn exact_solver_agrees_with_f64(
        w in proptest::collection::vec(1i64..50, 2..8),
        z_seed in 0u64..100,
    ) {
        let z: Vec<i64> = (0..w.len() - 1).map(|i| 1 + ((z_seed + i as u64) % 9) as i64).collect();
        let chain = dlt::exact::ExactChain::from_scaled_ints(&w, &z, 10);
        let exact_sol = dlt::exact::chain::solve(&chain);
        prop_assert!(dlt::exact::chain::verify_equal_finish(&chain, &exact_sol));
        prop_assert!(dlt::exact::chain::verify_total(&exact_sol));
        let f64sol = dlt::linear::solve(&chain.to_f64_network());
        for i in 0..w.len() {
            prop_assert!((exact_sol.alloc[i].to_f64() - f64sol.alloc.alpha(i)).abs() < 1e-9);
        }
    }
}
