//! Cross-crate integration: the full pipeline from network generation
//! through solving, simulation, mechanism settlement, and protocol
//! execution must be mutually consistent.

use dls::prelude::*;
use dls::{dlt, mechanism, protocol, sim, workloads};

fn random_parts(seed: u64, n: usize) -> workloads::MechanismParts {
    let cfg = ChainConfig {
        processors: n,
        ..Default::default()
    };
    let net = workloads::chain(&cfg, seed);
    workloads::mechanism_parts(&net)
}

#[test]
fn solver_simulator_mechanism_protocol_agree() {
    for seed in 0..25u64 {
        let parts = random_parts(seed, 6);
        let mut w = vec![parts.root_rate];
        w.extend_from_slice(&parts.true_rates);
        let net = LinearNetwork::from_rates(&w, &parts.link_rates);

        // Solve.
        let sol = dlt::linear::solve(&net);
        sol.alloc.validate().unwrap();

        // Simulate.
        let run = sim::simulate_honest(&net, &sol.local);
        assert!((run.makespan - sol.makespan()).abs() < 1e-10, "seed {seed}");

        // Mechanism settlement.
        let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
        let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
        let outcome = mech.settle_truthful(&agents);

        // Protocol run.
        let scenario = Scenario::honest(
            parts.root_rate,
            parts.true_rates.clone(),
            parts.link_rates.clone(),
        )
        .with_seed(seed);
        let report = protocol::run(&scenario);
        assert!(report.clean(), "seed {seed}");
        assert!((report.makespan - sol.makespan()).abs() < 1e-10);

        // The three layers agree on assignments and utilities.
        for j in 1..=agents.len() {
            assert!((report.assigned[j] - sol.alloc.alpha(j)).abs() < 1e-10);
            assert!(
                (report.utility(j) - outcome.utility(j)).abs() < 1e-9,
                "seed {seed} P{j}"
            );
        }
    }
}

#[test]
fn ledger_conservation_in_deviant_runs() {
    // Fines transfer to reporters (plus extra-work penalties); payments
    // flow out of the mechanism. Check the ledger's internal consistency
    // for each deviation type.
    let base = Scenario::honest(1.0, vec![1.5, 0.8, 2.2, 1.1], vec![0.2, 0.15, 0.3, 0.1]);
    for deviation in protocol::Deviation::catalog() {
        let report = protocol::run(&base.clone().with_deviation(2, deviation));
        // Phase I–III fines are rewarded to reporters 1:1.
        assert!(
            report.ledger.fines_match_rewards(true, 1e-9),
            "{}: fines and rewards unbalanced",
            deviation.label()
        );
    }
}

#[test]
fn makespan_with_deviant_never_beats_optimum() {
    // Any deviation leaves the system makespan at or above the optimum the
    // honest protocol achieves (the optimum is unique).
    let base = Scenario::honest(1.0, vec![1.5, 0.8, 2.2], vec![0.2, 0.15, 0.3]);
    let honest = protocol::run(&base);
    for deviation in protocol::Deviation::catalog() {
        let report = protocol::run(&base.clone().with_deviation(1, deviation));
        assert!(
            report.makespan >= honest.makespan - 1e-9,
            "{} produced a better makespan than the optimum?!",
            deviation.label()
        );
    }
}

#[test]
fn gantt_chart_valid_for_every_deviation() {
    let base = Scenario::honest(1.0, vec![1.5, 0.8, 2.2], vec![0.2, 0.15, 0.3]);
    for deviation in protocol::Deviation::catalog() {
        let report = protocol::run(&base.clone().with_deviation(2, deviation));
        report
            .gantt
            .validate_one_port()
            .unwrap_or_else(|e| panic!("{}: {e}", deviation.label()));
    }
}

#[test]
fn exact_arithmetic_validates_f64_pipeline() {
    // Random integer-rate chains: the exact solver's allocation drives the
    // simulator to the exact makespan.
    for seed in 0..10u64 {
        let m = 3 + (seed as usize % 4);
        let w: Vec<i64> = (0..=m as i64)
            .map(|i| 5 + ((seed as i64 + i * 7) % 20))
            .collect();
        let z: Vec<i64> = (0..m as i64)
            .map(|i| 1 + ((seed as i64 + i * 3) % 6))
            .collect();
        let chain = dlt::exact::ExactChain::from_scaled_ints(&w, &z, 10);
        let exact_sol = dlt::exact::chain::solve(&chain);
        let f64net = chain.to_f64_network();
        let f64sol = dlt::linear::solve(&f64net);
        assert!((exact_sol.makespan().to_f64() - f64sol.makespan()).abs() < 1e-12);
        let run = sim::simulate_honest(&f64net, &f64sol.local);
        assert!((run.makespan - exact_sol.makespan().to_f64()).abs() < 1e-10);
    }
}

#[test]
fn mechanism_and_naive_baseline_disagree_on_manipulability() {
    let parts = random_parts(3, 5);
    let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
    let naive =
        mechanism::naive_baseline::NaiveMechanism::new(parts.root_rate, parts.link_rates, 1.2);
    let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
    let grid = mechanism::verify::default_factor_grid();
    // DLS-LBL: no agent can gain.
    for sweep in mechanism::verify::strategyproofness_report(&mech, &agents, &grid) {
        assert!(sweep.truthful_is_best(1e-9));
    }
    // Naive: someone can gain.
    let manipulable = (1..=agents.len()).any(|j| {
        let truthful = naive.sweep(&agents, j, &[1.0])[0].1;
        naive.best_factor(&agents, j, &grid).1 > truthful + 1e-9
    });
    assert!(manipulable);
}

#[test]
fn multiple_simultaneous_deviants_all_caught() {
    let base = Scenario::honest(
        1.0,
        vec![1.5, 0.8, 2.2, 1.1, 0.9],
        vec![0.2, 0.15, 0.3, 0.1, 0.25],
    )
    .with_fine(FineSchedule::new(100.0, 1.0));
    let s = base
        .clone()
        .with_deviation(1, Deviation::WrongEquivalent { factor: 0.7 })
        .with_deviation(3, Deviation::ShedLoad { keep_fraction: 0.5 })
        .with_deviation(5, Deviation::Overcharge { amount: 0.3 });
    let report = protocol::run(&s);
    let convicted: std::collections::HashSet<_> = report.convictions().map(|a| a.accused).collect();
    assert!(convicted.contains(&1), "convicted: {convicted:?}");
    assert!(convicted.contains(&3), "convicted: {convicted:?}");
    assert!(convicted.contains(&5), "convicted: {convicted:?}");
    // Honest nodes 2 and 4 pay nothing.
    for j in [2usize, 4] {
        assert!(report.ledger.net_of(j, protocol::EntryKind::Fine) >= 0.0);
    }
}

#[test]
fn prelude_exports_cover_the_quickstart_surface() {
    // Compile-time check that the facade exposes the advertised API.
    let net = LinearNetwork::from_rates(&[1.0, 2.0], &[0.5]);
    let sol = solve_linear(&net);
    let _ = makespan(&net, &sol.alloc);
    let _ = finish_times(&net, &sol.alloc);
    let _ = ChainSchedule::analytic(&net, &sol.alloc);
    let _ = GanttChart::with_processors(2);
    let _ = NodeBehavior::compliant(1.0);
    let _ = ChainShape::all();
}
