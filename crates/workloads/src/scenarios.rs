//! Declarative scenario descriptions — the JSON-facing configuration layer
//! used by `dls-cli run-file` and batch experiment drivers.
//!
//! A [`ScenarioSpec`] describes either an explicit chain or a generated
//! one, the deviation placements, and the mechanism knobs, all as plain
//! JSON-mappable data (parsed and written via `minijson`). The `protocol`
//! crate depends on this crate's types only indirectly (specs are resolved
//! into raw rate vectors here; the caller builds the actual
//! `protocol::Scenario`), which keeps the dependency graph acyclic.

use crate::generators::{chain, ChainConfig, ChainShape};
use minijson::Value;

/// How the network is obtained. In JSON, the variant is selected by a
/// `"kind"` member: `"explicit"` or `"generated"`.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkSpec {
    /// Explicit rates.
    Explicit {
        /// Processor rates, root first.
        w: Vec<f64>,
        /// Link rates.
        z: Vec<f64>,
    },
    /// Generated from a shape.
    Generated {
        /// Number of processors.
        processors: usize,
        /// Shape name (see [`ChainShape`]).
        shape: String,
        /// Seed.
        seed: u64,
    },
}

/// A deviation placement in a spec.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviationSpec {
    /// 1-based strategic processor index.
    pub processor: usize,
    /// Deviation kind (kebab-case label, see `protocol::Deviation`).
    pub kind: String,
    /// Optional numeric parameter (factor / fraction / amount).
    pub parameter: Option<f64>,
}

/// A full declarative scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The network.
    pub network: NetworkSpec,
    /// Deviations to inject (may be empty).
    pub deviations: Vec<DeviationSpec>,
    /// Fine `F` (defaults to an automatically sufficient value).
    pub fine: Option<f64>,
    /// Audit probability `q` (default 0.5).
    pub audit_probability: Option<f64>,
    /// RNG seed for the protocol run.
    pub seed: Option<u64>,
}

/// The resolved rates of a spec's network.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedNetwork {
    /// Processor rates, root first.
    pub w: Vec<f64>,
    /// Link rates.
    pub z: Vec<f64>,
}

/// Errors produced while resolving a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Unknown shape name.
    UnknownShape(String),
    /// Rate vectors inconsistent.
    BadRates(String),
    /// Malformed JSON or a field of the wrong shape/type.
    BadJson(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownShape(s) => write!(f, "unknown shape {s:?}"),
            SpecError::BadRates(s) => write!(f, "bad rates: {s}"),
            SpecError::BadJson(s) => write!(f, "bad spec JSON: {s}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Parse a shape label.
pub fn parse_shape(label: &str) -> Result<ChainShape, SpecError> {
    ChainShape::all()
        .into_iter()
        .find(|s| s.label() == label)
        .ok_or_else(|| SpecError::UnknownShape(label.to_string()))
}

impl NetworkSpec {
    /// Resolve to concrete rates.
    pub fn resolve(&self) -> Result<ResolvedNetwork, SpecError> {
        match self {
            NetworkSpec::Explicit { w, z } => {
                if w.len() != z.len() + 1 {
                    return Err(SpecError::BadRates(format!(
                        "{} processors need {} links, got {}",
                        w.len(),
                        w.len().saturating_sub(1),
                        z.len()
                    )));
                }
                if w.len() < 2 {
                    return Err(SpecError::BadRates("need at least 2 processors".into()));
                }
                Ok(ResolvedNetwork {
                    w: w.clone(),
                    z: z.clone(),
                })
            }
            NetworkSpec::Generated {
                processors,
                shape,
                seed,
            } => {
                let shape = parse_shape(shape)?;
                if *processors < 2 {
                    return Err(SpecError::BadRates("need at least 2 processors".into()));
                }
                let cfg = ChainConfig {
                    processors: *processors,
                    shape,
                    ..Default::default()
                };
                let net = chain(&cfg, *seed);
                Ok(ResolvedNetwork {
                    w: net.rates_w(),
                    z: net.rates_z(),
                })
            }
        }
    }
}

fn bad(msg: impl Into<String>) -> SpecError {
    SpecError::BadJson(msg.into())
}

fn f64_vec_field(obj: &Value, key: &str) -> Result<Vec<f64>, SpecError> {
    obj.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| bad(format!("missing or non-array {key:?}")))?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| bad(format!("non-numeric element in {key:?}")))
        })
        .collect()
}

impl NetworkSpec {
    fn from_value(v: &Value) -> Result<Self, SpecError> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("network needs a string \"kind\""))?;
        match kind {
            "explicit" => Ok(NetworkSpec::Explicit {
                w: f64_vec_field(v, "w")?,
                z: f64_vec_field(v, "z")?,
            }),
            "generated" => Ok(NetworkSpec::Generated {
                processors: v
                    .get("processors")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad("missing or non-integer \"processors\""))?
                    as usize,
                shape: v
                    .get("shape")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("missing or non-string \"shape\""))?
                    .to_string(),
                seed: v.get("seed").and_then(Value::as_u64).unwrap_or(0),
            }),
            other => Err(bad(format!("unknown network kind {other:?}"))),
        }
    }

    fn to_value(&self) -> Value {
        match self {
            NetworkSpec::Explicit { w, z } => Value::Object(vec![
                ("kind".into(), Value::String("explicit".into())),
                (
                    "w".into(),
                    Value::Array(w.iter().map(|&x| Value::Number(x)).collect()),
                ),
                (
                    "z".into(),
                    Value::Array(z.iter().map(|&x| Value::Number(x)).collect()),
                ),
            ]),
            NetworkSpec::Generated {
                processors,
                shape,
                seed,
            } => Value::Object(vec![
                ("kind".into(), Value::String("generated".into())),
                ("processors".into(), Value::Number(*processors as f64)),
                ("shape".into(), Value::String(shape.clone())),
                ("seed".into(), Value::Number(*seed as f64)),
            ]),
        }
    }
}

impl DeviationSpec {
    fn from_value(v: &Value) -> Result<Self, SpecError> {
        Ok(DeviationSpec {
            processor: v
                .get("processor")
                .and_then(Value::as_u64)
                .ok_or_else(|| bad("deviation needs an integer \"processor\""))?
                as usize,
            kind: v
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("deviation needs a string \"kind\""))?
                .to_string(),
            parameter: match v.get("parameter") {
                None | Some(Value::Null) => None,
                Some(p) => Some(
                    p.as_f64()
                        .ok_or_else(|| bad("non-numeric deviation \"parameter\""))?,
                ),
            },
        })
    }

    fn to_value(&self) -> Value {
        let mut members = vec![
            ("processor".into(), Value::Number(self.processor as f64)),
            ("kind".into(), Value::String(self.kind.clone())),
        ];
        if let Some(p) = self.parameter {
            members.push(("parameter".into(), Value::Number(p)));
        }
        Value::Object(members)
    }
}

impl ScenarioSpec {
    /// Parse a spec from JSON text. Absent `deviations` / `fine` /
    /// `audit_probability` / `seed` members take their defaults.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let v = Value::parse(text).map_err(|e| bad(e.to_string()))?;
        let network =
            NetworkSpec::from_value(v.get("network").ok_or_else(|| bad("missing \"network\""))?)?;
        let deviations = match v.get("deviations") {
            None | Some(Value::Null) => Vec::new(),
            Some(d) => d
                .as_array()
                .ok_or_else(|| bad("\"deviations\" must be an array"))?
                .iter()
                .map(DeviationSpec::from_value)
                .collect::<Result<_, _>>()?,
        };
        let opt_f64 = |key: &str| match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(x) => x
                .as_f64()
                .map(Some)
                .ok_or_else(|| bad(format!("non-numeric {key:?}"))),
        };
        Ok(ScenarioSpec {
            network,
            deviations,
            fine: opt_f64("fine")?,
            audit_probability: opt_f64("audit_probability")?,
            seed: match v.get("seed") {
                None | Some(Value::Null) => None,
                Some(x) => Some(x.as_u64().ok_or_else(|| bad("non-integer \"seed\""))?),
            },
        })
    }

    /// Serialize to compact JSON (round-trips through [`Self::from_json`]).
    pub fn to_json(&self) -> String {
        let mut members = vec![
            ("network".into(), self.network.to_value()),
            (
                "deviations".into(),
                Value::Array(
                    self.deviations
                        .iter()
                        .map(DeviationSpec::to_value)
                        .collect(),
                ),
            ),
        ];
        if let Some(f) = self.fine {
            members.push(("fine".into(), Value::Number(f)));
        }
        if let Some(q) = self.audit_probability {
            members.push(("audit_probability".into(), Value::Number(q)));
        }
        if let Some(s) = self.seed {
            members.push(("seed".into(), Value::Number(s as f64)));
        }
        Value::Object(members).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_spec_resolves() {
        let spec = NetworkSpec::Explicit {
            w: vec![1.0, 2.0],
            z: vec![0.5],
        };
        let net = spec.resolve().unwrap();
        assert_eq!(net.w, vec![1.0, 2.0]);
    }

    #[test]
    fn explicit_spec_validates_arity() {
        let spec = NetworkSpec::Explicit {
            w: vec![1.0, 2.0],
            z: vec![],
        };
        assert!(matches!(spec.resolve(), Err(SpecError::BadRates(_))));
    }

    #[test]
    fn generated_spec_is_deterministic() {
        let spec = NetworkSpec::Generated {
            processors: 5,
            shape: "uniform".into(),
            seed: 7,
        };
        assert_eq!(spec.resolve().unwrap(), spec.resolve().unwrap());
    }

    #[test]
    fn unknown_shape_rejected() {
        let spec = NetworkSpec::Generated {
            processors: 5,
            shape: "spiral".into(),
            seed: 7,
        };
        assert!(matches!(spec.resolve(), Err(SpecError::UnknownShape(_))));
    }

    #[test]
    fn every_shape_label_parses() {
        for shape in ChainShape::all() {
            assert_eq!(parse_shape(shape.label()).unwrap(), shape);
        }
    }

    #[test]
    fn full_spec_json_round_trip() {
        let json = r#"{
            "network": {"kind": "generated", "processors": 6, "shape": "bottleneck-link", "seed": 3},
            "deviations": [{"processor": 2, "kind": "shed-load", "parameter": 0.5}],
            "fine": 25.0,
            "audit_probability": 1.0,
            "seed": 99
        }"#;
        let spec = ScenarioSpec::from_json(json).unwrap();
        assert_eq!(spec.deviations.len(), 1);
        assert_eq!(spec.fine, Some(25.0));
        let back = spec.to_json();
        let spec2 = ScenarioSpec::from_json(&back).unwrap();
        assert_eq!(spec, spec2);
        assert!(spec.network.resolve().is_ok());
    }

    #[test]
    fn defaults_are_optional_in_json() {
        let json = r#"{"network": {"kind": "explicit", "w": [1.0, 2.0], "z": [0.5]}}"#;
        let spec = ScenarioSpec::from_json(json).unwrap();
        assert!(spec.deviations.is_empty());
        assert_eq!(spec.fine, None);
    }

    #[test]
    fn malformed_specs_are_rejected_with_bad_json() {
        for json in [
            "not json",
            r#"{"deviations": []}"#,
            r#"{"network": {"kind": "mesh"}}"#,
            r#"{"network": {"kind": "explicit", "w": [1.0, "x"], "z": [0.5]}}"#,
            r#"{"network": {"kind": "explicit", "w": [1.0, 2.0], "z": [0.5]}, "seed": 1.5}"#,
        ] {
            assert!(
                matches!(ScenarioSpec::from_json(json), Err(SpecError::BadJson(_))),
                "accepted malformed spec: {json}"
            );
        }
    }
}
