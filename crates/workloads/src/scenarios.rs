//! Declarative scenario descriptions — the JSON-facing configuration layer
//! used by `dls-cli run-file` and batch experiment drivers.
//!
//! A [`ScenarioSpec`] describes either an explicit chain or a generated
//! one, the deviation placements, and the mechanism knobs, all as plain
//! serde-able data. The `protocol` crate depends on this crate's types
//! only indirectly (specs are resolved into raw rate vectors here; the
//! caller builds the actual `protocol::Scenario`), which keeps the
//! dependency graph acyclic.

use crate::generators::{chain, ChainConfig, ChainShape};
use serde::{Deserialize, Serialize};

/// How the network is obtained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "kebab-case")]
pub enum NetworkSpec {
    /// Explicit rates.
    Explicit {
        /// Processor rates, root first.
        w: Vec<f64>,
        /// Link rates.
        z: Vec<f64>,
    },
    /// Generated from a shape.
    Generated {
        /// Number of processors.
        processors: usize,
        /// Shape name (see [`ChainShape`]).
        shape: String,
        /// Seed.
        seed: u64,
    },
}

/// A deviation placement in a spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviationSpec {
    /// 1-based strategic processor index.
    pub processor: usize,
    /// Deviation kind (kebab-case label, see `protocol::Deviation`).
    pub kind: String,
    /// Optional numeric parameter (factor / fraction / amount).
    pub parameter: Option<f64>,
}

/// A full declarative scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The network.
    pub network: NetworkSpec,
    /// Deviations to inject (may be empty).
    #[serde(default)]
    pub deviations: Vec<DeviationSpec>,
    /// Fine `F` (defaults to an automatically sufficient value).
    #[serde(default)]
    pub fine: Option<f64>,
    /// Audit probability `q` (default 0.5).
    #[serde(default)]
    pub audit_probability: Option<f64>,
    /// RNG seed for the protocol run.
    #[serde(default)]
    pub seed: Option<u64>,
}

/// The resolved rates of a spec's network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedNetwork {
    /// Processor rates, root first.
    pub w: Vec<f64>,
    /// Link rates.
    pub z: Vec<f64>,
}

/// Errors produced while resolving a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Unknown shape name.
    UnknownShape(String),
    /// Rate vectors inconsistent.
    BadRates(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownShape(s) => write!(f, "unknown shape {s:?}"),
            SpecError::BadRates(s) => write!(f, "bad rates: {s}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Parse a shape label.
pub fn parse_shape(label: &str) -> Result<ChainShape, SpecError> {
    ChainShape::all()
        .into_iter()
        .find(|s| s.label() == label)
        .ok_or_else(|| SpecError::UnknownShape(label.to_string()))
}

impl NetworkSpec {
    /// Resolve to concrete rates.
    pub fn resolve(&self) -> Result<ResolvedNetwork, SpecError> {
        match self {
            NetworkSpec::Explicit { w, z } => {
                if w.len() != z.len() + 1 {
                    return Err(SpecError::BadRates(format!(
                        "{} processors need {} links, got {}",
                        w.len(),
                        w.len().saturating_sub(1),
                        z.len()
                    )));
                }
                if w.len() < 2 {
                    return Err(SpecError::BadRates("need at least 2 processors".into()));
                }
                Ok(ResolvedNetwork { w: w.clone(), z: z.clone() })
            }
            NetworkSpec::Generated { processors, shape, seed } => {
                let shape = parse_shape(shape)?;
                if *processors < 2 {
                    return Err(SpecError::BadRates("need at least 2 processors".into()));
                }
                let cfg = ChainConfig { processors: *processors, shape, ..Default::default() };
                let net = chain(&cfg, *seed);
                Ok(ResolvedNetwork { w: net.rates_w(), z: net.rates_z() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_spec_resolves() {
        let spec = NetworkSpec::Explicit { w: vec![1.0, 2.0], z: vec![0.5] };
        let net = spec.resolve().unwrap();
        assert_eq!(net.w, vec![1.0, 2.0]);
    }

    #[test]
    fn explicit_spec_validates_arity() {
        let spec = NetworkSpec::Explicit { w: vec![1.0, 2.0], z: vec![] };
        assert!(matches!(spec.resolve(), Err(SpecError::BadRates(_))));
    }

    #[test]
    fn generated_spec_is_deterministic() {
        let spec = NetworkSpec::Generated { processors: 5, shape: "uniform".into(), seed: 7 };
        assert_eq!(spec.resolve().unwrap(), spec.resolve().unwrap());
    }

    #[test]
    fn unknown_shape_rejected() {
        let spec = NetworkSpec::Generated { processors: 5, shape: "spiral".into(), seed: 7 };
        assert!(matches!(spec.resolve(), Err(SpecError::UnknownShape(_))));
    }

    #[test]
    fn every_shape_label_parses() {
        for shape in ChainShape::all() {
            assert_eq!(parse_shape(shape.label()).unwrap(), shape);
        }
    }

    #[test]
    fn full_spec_json_round_trip() {
        let json = r#"{
            "network": {"kind": "generated", "processors": 6, "shape": "bottleneck-link", "seed": 3},
            "deviations": [{"processor": 2, "kind": "shed-load", "parameter": 0.5}],
            "fine": 25.0,
            "audit_probability": 1.0,
            "seed": 99
        }"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.deviations.len(), 1);
        assert_eq!(spec.fine, Some(25.0));
        let back = serde_json::to_string(&spec).unwrap();
        let spec2: ScenarioSpec = serde_json::from_str(&back).unwrap();
        assert_eq!(spec, spec2);
        assert!(spec.network.resolve().is_ok());
    }

    #[test]
    fn defaults_are_optional_in_json() {
        let json = r#"{"network": {"kind": "explicit", "w": [1.0, 2.0], "z": [0.5]}}"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert!(spec.deviations.is_empty());
        assert_eq!(spec.fine, None);
    }
}
