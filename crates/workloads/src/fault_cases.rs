//! Declarative fault-scenario grids for the fault-injection experiments.
//!
//! This crate sits below `protocol` in the dependency graph, so the cases
//! here are plain data — node index, phase, progress fraction — that the
//! experiment drivers map onto `protocol::FaultPlan`s. Keeping the grids
//! here makes the fault sweeps reproducible from a single seed and lets
//! property tests enumerate the same cases the benchmarks plot.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of injected fault, mirrored as plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCaseKind {
    /// Crash-stop in `phase` (at `progress` for Phase III).
    Crash,
    /// Phase III livelock at `progress`; the node stays probe-alive.
    Stall,
    /// Outbound message of `phase` lost once.
    DropMessage,
    /// Outbound message of `phase` late by `delay`.
    DelayMessage,
    /// Outbound message of `phase` garbled once.
    CorruptMessage,
}

/// One fault scenario over an `m`-processor chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultCase {
    /// The afflicted strategic processor (`1..=m`).
    pub node: usize,
    /// The phase (1–4) the fault strikes in.
    pub phase: u8,
    /// Compute progress at the halt (Phase III crash/stall), else 0.
    pub progress: f64,
    /// Added latency (delay faults), else 0.
    pub delay: f64,
    /// What happens.
    pub kind: FaultCaseKind,
}

impl FaultCase {
    /// A crash of `node` in `phase` at `progress`.
    pub fn crash(node: usize, phase: u8, progress: f64) -> Self {
        Self {
            node,
            phase,
            progress,
            delay: 0.0,
            kind: FaultCaseKind::Crash,
        }
    }

    /// A Phase III stall of `node` at `progress`.
    pub fn stall(node: usize, progress: f64) -> Self {
        Self {
            node,
            phase: 3,
            progress,
            delay: 0.0,
            kind: FaultCaseKind::Stall,
        }
    }

    /// Short label for experiment tables, e.g. `crash@P2/ph3/0.40`.
    pub fn label(&self) -> String {
        let kind = match self.kind {
            FaultCaseKind::Crash => "crash",
            FaultCaseKind::Stall => "stall",
            FaultCaseKind::DropMessage => "drop",
            FaultCaseKind::DelayMessage => "delay",
            FaultCaseKind::CorruptMessage => "corrupt",
        };
        format!(
            "{kind}@P{}/ph{}/{:.2}",
            self.node, self.phase, self.progress
        )
    }
}

/// Every crash position: all nodes × all four phases, with Phase III
/// struck at each of `progress_points`. This is the grid behind the
/// "makespan degradation vs crash position" plot.
pub fn crash_position_grid(m: usize, progress_points: &[f64]) -> Vec<FaultCase> {
    let mut cases = Vec::new();
    for node in 1..=m {
        for phase in 1..=4u8 {
            if phase == 3 {
                for &p in progress_points {
                    cases.push(FaultCase::crash(node, 3, p));
                }
            } else {
                cases.push(FaultCase::crash(node, phase, 0.0));
            }
        }
    }
    cases
}

/// Phase III crashes of one node at `steps` evenly spaced progress points
/// (the "recovery overhead vs crash time" axis).
pub fn crash_time_grid(node: usize, steps: usize) -> Vec<FaultCase> {
    assert!(steps >= 2, "a time axis needs at least its endpoints");
    (0..steps)
        .map(|i| FaultCase::crash(node, 3, i as f64 / (steps - 1) as f64))
        .collect()
}

/// A seed-reproducible batch of mixed fault cases (crashes, stalls and
/// message faults) over an `m`-processor chain.
pub fn seeded_cases(seed: u64, m: usize, count: usize) -> Vec<FaultCase> {
    assert!(m >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_CA5E);
    (0..count)
        .map(|_| {
            let node = rng.gen_range(1..=m);
            let phase = rng.gen_range(1..=4) as u8;
            let progress = rng.gen::<f64>();
            match rng.gen_range(0..5usize) {
                0 => FaultCase::crash(node, phase, progress),
                1 => FaultCase::stall(node, progress),
                2 => FaultCase {
                    node,
                    phase,
                    progress: 0.0,
                    delay: 0.0,
                    kind: FaultCaseKind::DropMessage,
                },
                3 => FaultCase {
                    node,
                    phase,
                    progress: 0.0,
                    delay: 0.01 + 0.04 * rng.gen::<f64>(),
                    kind: FaultCaseKind::DelayMessage,
                },
                _ => FaultCase {
                    node,
                    phase,
                    progress: 0.0,
                    delay: 0.0,
                    kind: FaultCaseKind::CorruptMessage,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_grid_covers_every_node_and_phase() {
        let grid = crash_position_grid(4, &[0.0, 0.5, 1.0]);
        // 4 nodes × (3 non-compute phases + 3 progress points) = 24.
        assert_eq!(grid.len(), 4 * (3 + 3));
        for node in 1..=4 {
            for phase in 1..=4u8 {
                assert!(grid.iter().any(|c| c.node == node && c.phase == phase));
            }
        }
    }

    #[test]
    fn time_grid_spans_unit_interval() {
        let grid = crash_time_grid(2, 5);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0].progress, 0.0);
        assert_eq!(grid[4].progress, 1.0);
        assert!(grid.iter().all(|c| c.phase == 3 && c.node == 2));
    }

    #[test]
    fn seeded_cases_are_deterministic_and_in_range() {
        let a = seeded_cases(9, 5, 40);
        assert_eq!(a, seeded_cases(9, 5, 40));
        for c in &a {
            assert!((1..=5).contains(&c.node));
            assert!((1..=4).contains(&c.phase));
            assert!((0.0..=1.0).contains(&c.progress));
            assert!(c.delay >= 0.0);
        }
        let kinds: std::collections::HashSet<_> = a.iter().map(|c| c.kind).collect();
        assert!(kinds.len() >= 3, "batch should mix fault kinds: {kinds:?}");
    }

    #[test]
    fn labels_are_distinct_across_the_grid() {
        let grid = crash_position_grid(3, &[0.25, 0.75]);
        let labels: std::collections::HashSet<_> = grid.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), grid.len());
    }
}
