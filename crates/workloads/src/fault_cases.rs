//! Declarative fault-scenario grids for the fault-injection experiments.
//!
//! This crate sits below `protocol` in the dependency graph, so the cases
//! here are plain data — node index, phase, progress fraction — that the
//! experiment drivers map onto `protocol::FaultPlan`s. Keeping the grids
//! here makes the fault sweeps reproducible from a single seed and lets
//! property tests enumerate the same cases the benchmarks plot.

use dlt::model::TreeNode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of injected fault, mirrored as plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCaseKind {
    /// Crash-stop in `phase` (at `progress` for Phase III).
    Crash,
    /// Phase III livelock at `progress`; the node stays probe-alive.
    Stall,
    /// Outbound message of `phase` lost once.
    DropMessage,
    /// Outbound message of `phase` late by `delay`.
    DelayMessage,
    /// Outbound message of `phase` garbled once.
    CorruptMessage,
}

/// One fault scenario over an `m`-processor chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultCase {
    /// The afflicted strategic processor (`1..=m`).
    pub node: usize,
    /// The phase (1–4) the fault strikes in.
    pub phase: u8,
    /// Compute progress at the halt (Phase III crash/stall), else 0.
    pub progress: f64,
    /// Added latency (delay faults), else 0.
    pub delay: f64,
    /// What happens.
    pub kind: FaultCaseKind,
}

impl FaultCase {
    /// A crash of `node` in `phase` at `progress`.
    pub fn crash(node: usize, phase: u8, progress: f64) -> Self {
        Self {
            node,
            phase,
            progress,
            delay: 0.0,
            kind: FaultCaseKind::Crash,
        }
    }

    /// A Phase III stall of `node` at `progress`.
    pub fn stall(node: usize, progress: f64) -> Self {
        Self {
            node,
            phase: 3,
            progress,
            delay: 0.0,
            kind: FaultCaseKind::Stall,
        }
    }

    /// Short label for experiment tables, e.g. `crash@P2/ph3/0.40`.
    pub fn label(&self) -> String {
        let kind = match self.kind {
            FaultCaseKind::Crash => "crash",
            FaultCaseKind::Stall => "stall",
            FaultCaseKind::DropMessage => "drop",
            FaultCaseKind::DelayMessage => "delay",
            FaultCaseKind::CorruptMessage => "corrupt",
        };
        format!(
            "{kind}@P{}/ph{}/{:.2}",
            self.node, self.phase, self.progress
        )
    }
}

/// Every crash position: all nodes × all four phases, with Phase III
/// struck at each of `progress_points`. This is the grid behind the
/// "makespan degradation vs crash position" plot.
pub fn crash_position_grid(m: usize, progress_points: &[f64]) -> Vec<FaultCase> {
    let mut cases = Vec::new();
    for node in 1..=m {
        for phase in 1..=4u8 {
            if phase == 3 {
                for &p in progress_points {
                    cases.push(FaultCase::crash(node, 3, p));
                }
            } else {
                cases.push(FaultCase::crash(node, phase, 0.0));
            }
        }
    }
    cases
}

/// Phase III crashes of one node at `steps` evenly spaced progress points
/// (the "recovery overhead vs crash time" axis).
pub fn crash_time_grid(node: usize, steps: usize) -> Vec<FaultCase> {
    assert!(steps >= 2, "a time axis needs at least its endpoints");
    (0..steps)
        .map(|i| FaultCase::crash(node, 3, i as f64 / (steps - 1) as f64))
        .collect()
}

/// A seed-reproducible batch of mixed fault cases (crashes, stalls and
/// message faults) over an `m`-processor chain.
pub fn seeded_cases(seed: u64, m: usize, count: usize) -> Vec<FaultCase> {
    assert!(m >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_CA5E);
    (0..count)
        .map(|_| {
            let node = rng.gen_range(1..=m);
            let phase = rng.gen_range(1..=4) as u8;
            let progress = rng.gen::<f64>();
            match rng.gen_range(0..5usize) {
                0 => FaultCase::crash(node, phase, progress),
                1 => FaultCase::stall(node, progress),
                2 => FaultCase {
                    node,
                    phase,
                    progress: 0.0,
                    delay: 0.0,
                    kind: FaultCaseKind::DropMessage,
                },
                3 => FaultCase {
                    node,
                    phase,
                    progress: 0.0,
                    delay: 0.01 + 0.04 * rng.gen::<f64>(),
                    kind: FaultCaseKind::DelayMessage,
                },
                _ => FaultCase {
                    node,
                    phase,
                    progress: 0.0,
                    delay: 0.0,
                    kind: FaultCaseKind::CorruptMessage,
                },
            }
        })
        .collect()
}

/// Every ordered pair of **distinct-node** crashes: the first case of
/// each inner vec is detected first (same-phase pairs are simultaneous;
/// mixed-phase pairs cascade). `phase_pairs` selects which phase
/// combinations to enumerate — e.g. `(3, 3)` is a crash-during-recovery
/// case, `(4, 4)` a simultaneous billing blackout. Phase III slots are
/// struck at `progress`; other phases at 0.
pub fn crash_pair_grid(m: usize, phase_pairs: &[(u8, u8)], progress: f64) -> Vec<Vec<FaultCase>> {
    let mut plans = Vec::new();
    for a in 1..=m {
        for b in 1..=m {
            if a == b {
                continue;
            }
            for &(pa, pb) in phase_pairs {
                let prog = |ph: u8| if ph == 3 { progress } else { 0.0 };
                plans.push(vec![
                    FaultCase::crash(a, pa, prog(pa)),
                    FaultCase::crash(b, pb, prog(pb)),
                ]);
            }
        }
    }
    plans
}

/// Cascades of `depth` Phase III crashes on nodes `1..=depth` (must fit
/// the chain), every crash at the same `progress`: node 1 dies during the
/// base round, node 2 during the first recovery round, and so on — the
/// recovery-during-recovery axis.
pub fn cascade_grid(m: usize, max_depth: usize, progress_points: &[f64]) -> Vec<Vec<FaultCase>> {
    let mut plans = Vec::new();
    for depth in 2..=max_depth.min(m) {
        for &p in progress_points {
            plans.push(
                (1..=depth)
                    .map(|node| FaultCase::crash(node, 3, p))
                    .collect(),
            );
        }
    }
    plans
}

/// A seed-reproducible batch of **multi-failure** plans: each inner vec
/// holds between 0 and `max_halts.min(m)` crash/stall cases on distinct
/// nodes, plus an independent chance of one message fault — the plain-data
/// mirror of `protocol::FaultPlan::seeded_multi`'s shape, at experiment
/// scale.
pub fn seeded_multi_cases(
    seed: u64,
    m: usize,
    count: usize,
    max_halts: usize,
) -> Vec<Vec<FaultCase>> {
    assert!(m >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_CA5E_CA5C);
    (0..count)
        .map(|_| {
            let halts = rng.gen_range(0..=max_halts.min(m));
            let mut nodes: Vec<usize> = (1..=m).collect();
            let mut plan = Vec::new();
            for _ in 0..halts {
                let node = nodes.remove(rng.gen_range(0..nodes.len()));
                let progress = rng.gen::<f64>();
                if rng.gen_bool(0.8) {
                    plan.push(FaultCase::crash(node, rng.gen_range(1..=4) as u8, progress));
                } else {
                    plan.push(FaultCase::stall(node, progress));
                }
            }
            if rng.gen_bool(0.3) {
                let node = rng.gen_range(1..=m);
                let phase = rng.gen_range(1..=4) as u8;
                plan.push(match rng.gen_range(0..3usize) {
                    0 => FaultCase {
                        node,
                        phase,
                        progress: 0.0,
                        delay: 0.0,
                        kind: FaultCaseKind::DropMessage,
                    },
                    1 => FaultCase {
                        node,
                        phase,
                        progress: 0.0,
                        delay: 0.01 + 0.04 * rng.gen::<f64>(),
                        kind: FaultCaseKind::DelayMessage,
                    },
                    _ => FaultCase {
                        node,
                        phase,
                        progress: 0.0,
                        delay: 0.0,
                        kind: FaultCaseKind::CorruptMessage,
                    },
                });
            }
            plan
        })
        .collect()
}

/// One tree network for the tree-fault experiments: a canonicalized shape
/// plus the true rates of its strategic processors in canonical preorder.
/// The shape's embedded non-root rates equal `true_rates`, so the case can
/// feed `protocol::TreeScenario` directly.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeFaultCase {
    /// Short shape label for experiment tables, e.g. `binary/m6`.
    pub label: String,
    /// The canonicalized tree (root rate, link rates, agent rates).
    pub shape: TreeNode,
    /// Non-root processor rates in canonical preorder (`true_rates[j-1]`
    /// is `P_j`'s).
    pub true_rates: Vec<f64>,
}

impl TreeFaultCase {
    /// Number of strategic processors.
    pub fn num_agents(&self) -> usize {
        self.shape.size() - 1
    }
}

/// Non-root processor rates of a tree in preorder.
pub(crate) fn agent_rates(node: &TreeNode) -> Vec<f64> {
    fn walk(node: &TreeNode, out: &mut Vec<f64>, is_root: bool) {
        if !is_root {
            out.push(node.processor.w);
        }
        for (_, c) in &node.children {
            walk(c, out, false);
        }
    }
    let mut out = Vec::new();
    walk(node, &mut out, true);
    out
}

pub(crate) fn finish(label: String, shape: TreeNode) -> TreeFaultCase {
    let shape = dlt::tree::canonicalize(&shape);
    let true_rates = agent_rates(&shape);
    TreeFaultCase {
        label,
        shape,
        true_rates,
    }
}

/// The tree-shape population the E24 sweep and the tree-fault proptests
/// share: degenerate paths (which must reduce byte-for-byte to the chain
/// fault path), stars, a balanced binary tree, and seeded random trees.
/// All rates are drawn from `seed`, so the grid is reproducible.
pub fn tree_shape_grid(seed: u64) -> Vec<TreeFaultCase> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7EE_FA17);
    let mut w = || rng.gen_range(0.5..=4.0);
    let mut cases = Vec::new();

    // Degenerate paths: the differential spine of the harness.
    for m in 2..=4usize {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7EE_FA17 ^ (m as u64) << 8);
        let rates: Vec<f64> = (0..=m).map(|_| rng.gen_range(0.5..=4.0)).collect();
        let links: Vec<f64> = (0..m).map(|_| rng.gen_range(0.05..=0.8)).collect();
        let net = dlt::model::LinearNetwork::from_rates(&rates, &links);
        cases.push(finish(format!("path/m{m}"), TreeNode::from_chain(&net)));
    }

    // Stars: every agent one hop from the root, ascending links.
    for m in [3usize, 5] {
        let children = (0..m)
            .map(|i| (0.1 + 0.1 * i as f64, TreeNode::leaf(w())))
            .collect();
        cases.push(finish(
            format!("star/m{m}"),
            TreeNode::internal(w(), children),
        ));
    }

    // A balanced binary tree: two internal routers, four leaves.
    let binary = TreeNode::internal(
        w(),
        vec![
            (
                0.15,
                TreeNode::internal(
                    w(),
                    vec![(0.05, TreeNode::leaf(w())), (0.25, TreeNode::leaf(w()))],
                ),
            ),
            (
                0.30,
                TreeNode::internal(
                    w(),
                    vec![(0.10, TreeNode::leaf(w())), (0.20, TreeNode::leaf(w()))],
                ),
            ),
        ],
    );
    cases.push(finish("binary/m6".to_string(), binary));

    // Seeded random trees of mixed fanout.
    let config = crate::generators::ChainConfig {
        processors: 6,
        ..Default::default()
    };
    for k in 0..3u64 {
        let t = crate::generators::tree(&config, 3, seed.wrapping_add(0xA11CE + k));
        cases.push(finish(format!("random/s{k}"), t));
    }
    cases
}

/// Label a multi-fault plan for experiment tables, e.g.
/// `crash@P1/ph3/0.50 + crash@P2/ph3/0.50` (`healthy` for the empty
/// plan).
pub fn multi_label(plan: &[FaultCase]) -> String {
    if plan.is_empty() {
        "healthy".to_string()
    } else {
        plan.iter()
            .map(FaultCase::label)
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_grid_covers_every_node_and_phase() {
        let grid = crash_position_grid(4, &[0.0, 0.5, 1.0]);
        // 4 nodes × (3 non-compute phases + 3 progress points) = 24.
        assert_eq!(grid.len(), 4 * (3 + 3));
        for node in 1..=4 {
            for phase in 1..=4u8 {
                assert!(grid.iter().any(|c| c.node == node && c.phase == phase));
            }
        }
    }

    #[test]
    fn time_grid_spans_unit_interval() {
        let grid = crash_time_grid(2, 5);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0].progress, 0.0);
        assert_eq!(grid[4].progress, 1.0);
        assert!(grid.iter().all(|c| c.phase == 3 && c.node == 2));
    }

    #[test]
    fn seeded_cases_are_deterministic_and_in_range() {
        let a = seeded_cases(9, 5, 40);
        assert_eq!(a, seeded_cases(9, 5, 40));
        for c in &a {
            assert!((1..=5).contains(&c.node));
            assert!((1..=4).contains(&c.phase));
            assert!((0.0..=1.0).contains(&c.progress));
            assert!(c.delay >= 0.0);
        }
        let kinds: std::collections::HashSet<_> = a.iter().map(|c| c.kind).collect();
        assert!(kinds.len() >= 3, "batch should mix fault kinds: {kinds:?}");
    }

    #[test]
    fn labels_are_distinct_across_the_grid() {
        let grid = crash_position_grid(3, &[0.25, 0.75]);
        let labels: std::collections::HashSet<_> = grid.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), grid.len());
    }

    #[test]
    fn pair_grid_enumerates_ordered_distinct_pairs() {
        let pairs = crash_pair_grid(4, &[(3, 3), (4, 4), (3, 4)], 0.5);
        // 4·3 ordered node pairs × 3 phase pairs.
        assert_eq!(pairs.len(), 4 * 3 * 3);
        for plan in &pairs {
            assert_eq!(plan.len(), 2);
            assert_ne!(plan[0].node, plan[1].node);
            for c in plan {
                assert_eq!(c.kind, FaultCaseKind::Crash);
                assert_eq!(c.progress, if c.phase == 3 { 0.5 } else { 0.0 });
            }
        }
    }

    #[test]
    fn cascade_grid_stacks_compute_crashes_from_the_front() {
        let cascades = cascade_grid(5, 3, &[0.25, 0.75]);
        // Depths 2 and 3, two progress points each.
        assert_eq!(cascades.len(), 2 * 2);
        for plan in &cascades {
            for (i, c) in plan.iter().enumerate() {
                assert_eq!(c.node, i + 1);
                assert_eq!(c.phase, 3);
            }
        }
        // Depth is clamped to the chain length.
        assert_eq!(cascade_grid(2, 9, &[0.5]).len(), 1);
    }

    #[test]
    fn seeded_multi_cases_are_deterministic_with_distinct_halt_nodes() {
        let plans = seeded_multi_cases(7, 5, 60, 3);
        assert_eq!(plans, seeded_multi_cases(7, 5, 60, 3));
        let mut multi_seen = false;
        for plan in &plans {
            let halts: Vec<_> = plan
                .iter()
                .filter(|c| matches!(c.kind, FaultCaseKind::Crash | FaultCaseKind::Stall))
                .map(|c| c.node)
                .collect();
            let distinct: std::collections::HashSet<_> = halts.iter().collect();
            assert_eq!(
                distinct.len(),
                halts.len(),
                "halting nodes must be distinct"
            );
            assert!(halts.len() <= 3);
            multi_seen |= halts.len() >= 2;
        }
        assert!(
            multi_seen,
            "batch should exercise genuine multi-failure plans"
        );
    }

    #[test]
    fn tree_grid_is_deterministic_and_canonical() {
        let grid = tree_shape_grid(0xE24);
        assert_eq!(grid, tree_shape_grid(0xE24));
        let labels: std::collections::HashSet<_> = grid.iter().map(|c| c.label.clone()).collect();
        assert_eq!(labels.len(), grid.len(), "labels must be distinct");
        for case in &grid {
            assert_eq!(case.true_rates.len(), case.num_agents());
            assert!(case.true_rates.iter().all(|&r| r > 0.0));
            // Canonicalization is idempotent on the stored shape.
            assert_eq!(dlt::tree::canonicalize(&case.shape), case.shape);
        }
    }

    #[test]
    fn tree_grid_mixes_paths_and_branching_shapes() {
        fn is_path(node: &TreeNode) -> bool {
            node.children.len() <= 1 && node.children.iter().all(|(_, c)| is_path(c))
        }
        let grid = tree_shape_grid(1);
        assert!(grid.iter().any(|c| is_path(&c.shape)));
        assert!(grid.iter().any(|c| !is_path(&c.shape)));
        assert!(grid.iter().any(|c| c.label.starts_with("star/")));
        assert!(grid.iter().any(|c| c.label.starts_with("binary/")));
        assert!(grid.iter().any(|c| c.label.starts_with("random/")));
    }

    #[test]
    fn multi_label_joins_case_labels() {
        assert_eq!(multi_label(&[]), "healthy");
        let plan = vec![FaultCase::crash(1, 3, 0.5), FaultCase::stall(2, 0.25)];
        assert_eq!(multi_label(&plan), "crash@P1/ph3/0.50 + stall@P2/ph3/0.25");
    }
}
