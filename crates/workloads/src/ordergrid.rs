//! Workload grids for the sequencing-search experiments (E29).
//!
//! The population extends [`crate::fault_cases::tree_shape_grid`] — the
//! shared tree-shape spine — with cases chosen to stress the *order*
//! dimension specifically: tie-heavy bus stars (every order achieves the
//! same makespan, so stable tie-breaking is what keeps searches and
//! settlements deterministic), E18-style anti-correlated stars (fast
//! processors behind slow links, the shapes where a wrong order costs the
//! most), and wider random trees that sit past any reasonable exhaustive
//! budget and exercise the local-search regime.

use crate::fault_cases::{finish, tree_shape_grid, TreeFaultCase};
use dlt::model::TreeNode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The E29 population: every [`tree_shape_grid`] case plus order-stress
/// shapes. Deterministic in `seed`; labels are distinct.
pub fn order_search_grid(seed: u64) -> Vec<TreeFaultCase> {
    let mut cases = tree_shape_grid(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0D_0E28);
    let mut w = move || rng.gen_range(0.5..=4.0);

    // Tie-heavy bus: all links equal, so the entire order space is one
    // makespan plateau and only stable tie-breaking keeps results fixed.
    let bus_children = (0..4).map(|_| (0.25, TreeNode::leaf(w()))).collect();
    cases.push(finish(
        "bus/m4".to_string(),
        TreeNode::internal(w(), bus_children),
    ));

    // E18-style anti-correlated star: the fastest processors sit behind
    // the slowest links, so processor-rank heuristics pick the worst
    // order while the link-rank (canonical) order stays optimal.
    let anti = TreeNode::internal(
        2.1,
        vec![
            (0.6568, TreeNode::leaf(0.6)),
            (0.35, TreeNode::leaf(1.1)),
            (0.0969, TreeNode::leaf(3.2)),
        ],
    );
    cases.push(finish("anti/m3".to_string(), anti));

    // Wider trees: order spaces past any reasonable exhaustive budget
    // (8! = 40320 and 7!·3! = 30240), for the local-search-only regime.
    for (k, fanouts) in [[8usize, 0], [7, 3]].iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0E29 ^ (k as u64) << 16);
        let mut w = move || rng.gen_range(0.5..=4.0);
        let mut children: Vec<(f64, TreeNode)> = (0..fanouts[0])
            .map(|i| (0.05 + 0.07 * i as f64, TreeNode::leaf(w())))
            .collect();
        if fanouts[1] > 0 {
            let inner = (0..fanouts[1])
                .map(|i| (0.1 + 0.1 * i as f64, TreeNode::leaf(w())))
                .collect();
            children.push((0.12, TreeNode::internal(w(), inner)));
        }
        cases.push(finish(
            format!("wide/s{k}"),
            TreeNode::internal(w(), children),
        ));
    }
    cases
}

/// The E13-style misreport factor grid the truthfulness sweeps share:
/// multiplicative deviations around truth on both sides.
pub fn misreport_factors() -> Vec<f64> {
    vec![0.25, 0.5, 0.75, 0.9, 1.1, 1.5, 2.0, 3.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_deterministic_with_distinct_labels() {
        let grid = order_search_grid(0xE29);
        assert_eq!(grid, order_search_grid(0xE29));
        let labels: std::collections::HashSet<_> = grid.iter().map(|c| c.label.clone()).collect();
        assert_eq!(labels.len(), grid.len());
    }

    #[test]
    fn grid_extends_the_tree_shape_spine() {
        let grid = order_search_grid(7);
        let spine = tree_shape_grid(7);
        assert_eq!(&grid[..spine.len()], &spine[..]);
        assert!(grid.iter().any(|c| c.label.starts_with("bus/")));
        assert!(grid.iter().any(|c| c.label.starts_with("anti/")));
        assert!(grid.iter().any(|c| c.label.starts_with("wide/")));
    }

    #[test]
    fn grid_spans_both_search_regimes() {
        let grid = order_search_grid(0xE29);
        let small = grid
            .iter()
            .filter(|c| dlt::seqsearch::orderable_nodes(&c.shape) <= 7)
            .count();
        let large = grid
            .iter()
            .filter(|c| dlt::seqsearch::order_space_size(&c.shape).unwrap_or(u128::MAX) > 5040)
            .count();
        assert!(small > 0, "need oracle-checkable instances");
        assert!(large > 0, "need local-search-only instances");
    }

    #[test]
    fn shapes_are_canonical_and_rates_match() {
        for case in order_search_grid(3) {
            assert_eq!(dlt::tree::canonicalize(&case.shape), case.shape);
            assert_eq!(case.true_rates.len(), case.num_agents());
            assert!(case.true_rates.iter().all(|&r| r > 0.0));
        }
    }

    #[test]
    fn misreport_grid_brackets_truth() {
        let f = misreport_factors();
        assert!(f.iter().any(|&x| x < 1.0) && f.iter().any(|&x| x > 1.0));
        assert!(!f.contains(&1.0));
    }
}
