//! Parameter-sweep helpers: grids and network decomposition used by the
//! experiment harness.

use dlt::model::LinearNetwork;

/// `count` evenly spaced points covering `[lo, hi]` inclusive.
pub fn linspace(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count >= 2 && hi >= lo);
    (0..count)
        .map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64)
        .collect()
}

/// `count` logarithmically spaced points covering `[lo, hi]` inclusive
/// (`lo > 0`).
pub fn geomspace(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count >= 2 && lo > 0.0 && hi >= lo);
    let ratio = (hi / lo).powf(1.0 / (count - 1) as f64);
    let mut v = lo;
    (0..count)
        .map(|_| {
            let cur = v;
            v *= ratio;
            cur
        })
        .collect()
}

/// Materialize the chain population of one sweep cohort: the networks for
/// `seeds` under one [`ChainConfig`](crate::ChainConfig). This is the
/// unit the sweep binaries hand to `dlt::batch::solve_many` — thousands of
/// chains per solver call instead of one — and the population builder the
/// batch-identity harness replays (E2 shapes, E27).
pub fn chain_population(
    cfg: &crate::ChainConfig,
    seeds: std::ops::Range<u64>,
) -> Vec<LinearNetwork> {
    seeds.map(|s| crate::chain(cfg, s)).collect()
}

/// Decompose a chain into the mechanism's view: the obedient root's rate,
/// the strategic processors' true rates, and the public link rates.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismParts {
    /// Root rate `w_0`.
    pub root_rate: f64,
    /// True rates `t_1 … t_m`.
    pub true_rates: Vec<f64>,
    /// Link rates `z_1 … z_m`.
    pub link_rates: Vec<f64>,
}

/// Split a chain network for mechanism/protocol construction.
///
/// # Panics
/// Panics if the chain has fewer than two processors (no strategic agents).
pub fn mechanism_parts(net: &LinearNetwork) -> MechanismParts {
    assert!(net.len() >= 2, "need at least one strategic processor");
    MechanismParts {
        root_rate: net.w(0),
        true_rates: net.rates_w()[1..].to_vec(),
        link_rates: net.rates_z(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn geomspace_endpoints_and_ratio() {
        let v = geomspace(1.0, 16.0, 5);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[4] - 16.0).abs() < 1e-9);
        for pair in v.windows(2) {
            assert!((pair[1] / pair[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn chain_population_matches_per_seed_generation() {
        let cfg = crate::ChainConfig::default();
        let pop = chain_population(&cfg, 3..8);
        assert_eq!(pop.len(), 5);
        for (k, net) in pop.iter().enumerate() {
            assert_eq!(*net, crate::chain(&cfg, 3 + k as u64));
        }
    }

    #[test]
    fn mechanism_parts_roundtrip() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 3.0], &[0.5, 0.25]);
        let parts = mechanism_parts(&net);
        assert_eq!(parts.root_rate, 1.0);
        assert_eq!(parts.true_rates, vec![2.0, 3.0]);
        assert_eq!(parts.link_rates, vec![0.5, 0.25]);
    }

    #[test]
    #[should_panic(expected = "strategic")]
    fn mechanism_parts_rejects_singleton() {
        mechanism_parts(&LinearNetwork::homogeneous(1, 1.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn linspace_rejects_degenerate_count() {
        linspace(0.0, 1.0, 1);
    }
}
