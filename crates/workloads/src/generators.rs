//! Random network generators for experiments and property tests.
//!
//! The paper evaluates nothing empirically, so the experiment suite needs a
//! workload model. We provide the standard DLT shapes: uniform-random
//! heterogeneous chains, homogeneous chains, monotone gradients (fast→slow
//! and slow→fast), and bottleneck topologies that stress specific parts of
//! the theory (a very slow link partitions the chain; a very slow processor
//! tests participation).

use dlt::model::{LinearNetwork, StarNetwork, TreeNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shape of a generated chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChainShape {
    /// Processor and link rates drawn i.i.d. uniform from the ranges.
    UniformRandom,
    /// All processors and links identical (midpoint of the ranges).
    Homogeneous,
    /// Processors get slower towards the tail.
    DecreasingSpeed,
    /// Processors get faster towards the tail.
    IncreasingSpeed,
    /// One uniformly random link is `10×` the slowest link rate.
    BottleneckLink,
    /// One uniformly random processor is `10×` the slowest processor rate.
    StragglerProcessor,
}

impl ChainShape {
    /// Every shape, for exhaustive sweeps.
    pub fn all() -> [ChainShape; 6] {
        [
            ChainShape::UniformRandom,
            ChainShape::Homogeneous,
            ChainShape::DecreasingSpeed,
            ChainShape::IncreasingSpeed,
            ChainShape::BottleneckLink,
            ChainShape::StragglerProcessor,
        ]
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            ChainShape::UniformRandom => "uniform",
            ChainShape::Homogeneous => "homogeneous",
            ChainShape::DecreasingSpeed => "decreasing",
            ChainShape::IncreasingSpeed => "increasing",
            ChainShape::BottleneckLink => "bottleneck-link",
            ChainShape::StragglerProcessor => "straggler",
        }
    }
}

/// Configuration for chain generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainConfig {
    /// Number of processors (`m + 1 ≥ 1`).
    pub processors: usize,
    /// Processor rate range `[w_min, w_max]`.
    pub w_range: (f64, f64),
    /// Link rate range `[z_min, z_max]`.
    pub z_range: (f64, f64),
    /// The shape.
    pub shape: ChainShape,
}

impl Default for ChainConfig {
    fn default() -> Self {
        Self {
            processors: 8,
            w_range: (0.5, 4.0),
            z_range: (0.05, 0.8),
            shape: ChainShape::UniformRandom,
        }
    }
}

/// Generate one chain.
pub fn chain(config: &ChainConfig, seed: u64) -> LinearNetwork {
    assert!(config.processors >= 1);
    let (wl, wh) = config.w_range;
    let (zl, zh) = config.z_range;
    assert!(wl > 0.0 && wh >= wl && zl >= 0.0 && zh >= zl);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.processors;
    let mut w: Vec<f64>;
    let mut z: Vec<f64>;
    match config.shape {
        ChainShape::UniformRandom => {
            w = (0..n).map(|_| rng.gen_range(wl..=wh)).collect();
            z = (0..n - 1).map(|_| rng.gen_range(zl..=zh)).collect();
        }
        ChainShape::Homogeneous => {
            w = vec![0.5 * (wl + wh); n];
            z = vec![0.5 * (zl + zh); n.saturating_sub(1)];
        }
        ChainShape::DecreasingSpeed => {
            w = (0..n)
                .map(|i| wl + (wh - wl) * i as f64 / (n.max(2) - 1) as f64)
                .collect();
            z = (0..n - 1).map(|_| rng.gen_range(zl..=zh)).collect();
        }
        ChainShape::IncreasingSpeed => {
            w = (0..n)
                .map(|i| wh - (wh - wl) * i as f64 / (n.max(2) - 1) as f64)
                .collect();
            z = (0..n - 1).map(|_| rng.gen_range(zl..=zh)).collect();
        }
        ChainShape::BottleneckLink => {
            w = (0..n).map(|_| rng.gen_range(wl..=wh)).collect();
            z = (0..n - 1).map(|_| rng.gen_range(zl..=zh)).collect();
            if !z.is_empty() {
                let k = rng.gen_range(0..z.len());
                z[k] = zh * 10.0;
            }
        }
        ChainShape::StragglerProcessor => {
            w = (0..n).map(|_| rng.gen_range(wl..=wh)).collect();
            z = (0..n - 1).map(|_| rng.gen_range(zl..=zh)).collect();
            let k = rng.gen_range(0..n);
            w[k] = wh * 10.0;
        }
    }
    // Guard degenerate single-processor requests.
    if n == 1 {
        z.clear();
        w.truncate(1);
    }
    LinearNetwork::from_rates(&w, &z)
}

/// Generate a batch of chains with consecutive seeds.
pub fn chains(config: &ChainConfig, base_seed: u64, count: usize) -> Vec<LinearNetwork> {
    (0..count)
        .map(|k| chain(config, base_seed.wrapping_add(k as u64)))
        .collect()
}

/// Generate a random star with `children` children using the same ranges.
pub fn star(config: &ChainConfig, seed: u64) -> StarNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let (wl, wh) = config.w_range;
    let (zl, zh) = config.z_range;
    let children = config.processors.saturating_sub(1);
    let w: Vec<f64> = (0..=children).map(|_| rng.gen_range(wl..=wh)).collect();
    let z: Vec<f64> = (0..children).map(|_| rng.gen_range(zl..=zh)).collect();
    StarNetwork::from_rates(&w, &z)
}

/// Generate a random tree with the given node budget and maximum fanout.
pub fn tree(config: &ChainConfig, max_fanout: usize, seed: u64) -> TreeNode {
    assert!(max_fanout >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let (wl, wh) = config.w_range;
    let (zl, zh) = config.z_range;
    let mut budget = config.processors.max(1) - 1;
    build_tree(&mut rng, &mut budget, max_fanout, wl, wh, zl, zh)
}

fn build_tree(
    rng: &mut StdRng,
    budget: &mut usize,
    max_fanout: usize,
    wl: f64,
    wh: f64,
    zl: f64,
    zh: f64,
) -> TreeNode {
    let w = rng.gen_range(wl..=wh);
    if *budget == 0 {
        return TreeNode::leaf(w);
    }
    let fanout = rng.gen_range(1..=max_fanout.min(*budget));
    *budget -= fanout;
    let children = (0..fanout)
        .map(|_| {
            let z = rng.gen_range(zl..=zh);
            (
                dlt::model::Link::new(z),
                build_tree(rng, budget, max_fanout, wl, wh, zl, zh),
            )
        })
        .collect();
    TreeNode {
        processor: dlt::model::Processor::new(w),
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = ChainConfig::default();
        assert_eq!(chain(&cfg, 7), chain(&cfg, 7));
        assert_ne!(chain(&cfg, 7), chain(&cfg, 8));
    }

    #[test]
    fn respects_processor_count() {
        for n in [1usize, 2, 5, 50] {
            let cfg = ChainConfig {
                processors: n,
                ..Default::default()
            };
            assert_eq!(chain(&cfg, 1).len(), n);
        }
    }

    #[test]
    fn rates_within_ranges() {
        let cfg = ChainConfig::default();
        let net = chain(&cfg, 3);
        for p in net.processors() {
            assert!(p.w >= cfg.w_range.0 && p.w <= cfg.w_range.1);
        }
        for l in net.links() {
            assert!(l.z >= cfg.z_range.0 && l.z <= cfg.z_range.1);
        }
    }

    #[test]
    fn homogeneous_is_flat() {
        let cfg = ChainConfig {
            shape: ChainShape::Homogeneous,
            ..Default::default()
        };
        let net = chain(&cfg, 1);
        let w0 = net.w(0);
        assert!(net.rates_w().iter().all(|&w| w == w0));
    }

    #[test]
    fn gradients_are_monotone() {
        let dec = ChainConfig {
            shape: ChainShape::DecreasingSpeed,
            ..Default::default()
        };
        let net = chain(&dec, 1);
        let w = net.rates_w();
        assert!(
            w.windows(2).all(|p| p[0] <= p[1]),
            "decreasing speed = increasing w"
        );
        let inc = ChainConfig {
            shape: ChainShape::IncreasingSpeed,
            ..Default::default()
        };
        let w = chain(&inc, 1).rates_w();
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn bottleneck_has_one_slow_link() {
        let cfg = ChainConfig {
            shape: ChainShape::BottleneckLink,
            ..Default::default()
        };
        let net = chain(&cfg, 5);
        let slow = net
            .rates_z()
            .iter()
            .filter(|&&z| z > cfg.z_range.1 * 5.0)
            .count();
        assert_eq!(slow, 1);
    }

    #[test]
    fn straggler_has_one_slow_processor() {
        let cfg = ChainConfig {
            shape: ChainShape::StragglerProcessor,
            ..Default::default()
        };
        let net = chain(&cfg, 5);
        let slow = net
            .rates_w()
            .iter()
            .filter(|&&w| w > cfg.w_range.1 * 5.0)
            .count();
        assert_eq!(slow, 1);
    }

    #[test]
    fn batch_generation_distinct() {
        let cfg = ChainConfig::default();
        let batch = chains(&cfg, 100, 10);
        assert_eq!(batch.len(), 10);
        assert_ne!(batch[0], batch[1]);
    }

    #[test]
    fn generated_chains_are_solvable() {
        let cfg = ChainConfig::default();
        for net in chains(&cfg, 0, 20) {
            let sol = dlt::linear::solve(&net);
            sol.alloc.validate().unwrap();
        }
    }

    #[test]
    fn star_generation() {
        let cfg = ChainConfig {
            processors: 6,
            ..Default::default()
        };
        let s = star(&cfg, 1);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn tree_generation_respects_budget() {
        let cfg = ChainConfig {
            processors: 12,
            ..Default::default()
        };
        let t = tree(&cfg, 3, 1);
        assert!(t.size() <= 12);
        assert!(t.size() >= 2);
        // solvable
        let sol = dlt::tree::solve(&t);
        assert!(dlt::tree::validate(&sol));
    }

    #[test]
    fn all_shapes_have_distinct_labels() {
        let labels: std::collections::HashSet<_> =
            ChainShape::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
