//! Request-mix generators for the serving layer (`dls-serve`).
//!
//! Produces deterministic streams of NDJSON request lines in the `svc`
//! wire format: a configurable blend of `solve` and `ft_run` ops over a
//! pool of distinct chains. The pool size controls the solver-cache hit
//! rate a closed-loop run converges to (`1 − distinct/total` for the
//! solve stream), which is exactly the knob experiment E23 sweeps.

use crate::generators::{chain, ChainConfig};
use dlt::model::LinearNetwork;
use minijson::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestMixConfig {
    /// Total request lines to generate.
    pub total: usize,
    /// Distinct chains to rotate through (small → cache-hot stream).
    pub distinct_chains: usize,
    /// Processors per chain (root + `m − 1` strategic when `m ≥ 2`).
    pub processors: usize,
    /// Fraction of requests that are `ft_run` (the rest are `solve`).
    pub ft_fraction: f64,
    /// RNG seed (chain pool and op interleaving).
    pub seed: u64,
}

impl Default for RequestMixConfig {
    fn default() -> Self {
        Self {
            total: 10_000,
            distinct_chains: 64,
            processors: 6,
            ft_fraction: 0.0,
            seed: 0xE23,
        }
    }
}

fn numbers(xs: impl IntoIterator<Item = f64>) -> Value {
    Value::Array(xs.into_iter().map(Value::Number).collect())
}

/// A `solve` request line for the bid chain `(w_0, z, b)`.
pub fn solve_line(id: i64, root_rate: f64, links: &[f64], bids: &[f64]) -> String {
    Value::Object(vec![
        ("op".into(), Value::String("solve".into())),
        ("id".into(), Value::Number(id as f64)),
        ("root_rate".into(), Value::Number(root_rate)),
        ("links".into(), numbers(links.iter().copied())),
        ("bids".into(), numbers(bids.iter().copied())),
    ])
    .to_json()
}

/// An `ft_run` request line with an optional single crash.
pub fn ft_line(
    id: i64,
    root_rate: f64,
    rates: &[f64],
    links: &[f64],
    seed: u64,
    crash: Option<(usize, u8, f64)>,
) -> String {
    let mut fields = vec![
        ("op".into(), Value::String("ft_run".into())),
        ("id".into(), Value::Number(id as f64)),
        ("root_rate".into(), Value::Number(root_rate)),
        ("rates".into(), numbers(rates.iter().copied())),
        ("links".into(), numbers(links.iter().copied())),
        ("seed".into(), Value::Number(seed as f64)),
    ];
    if let Some((node, phase, progress)) = crash {
        fields.push((
            "crash".into(),
            Value::Object(vec![
                ("node".into(), Value::Number(node as f64)),
                ("phase".into(), Value::Number(phase as f64)),
                ("progress".into(), Value::Number(progress)),
            ]),
        ));
    }
    Value::Object(fields).to_json()
}

/// The chain pool a [`RequestMixConfig`] draws from (deterministic in the
/// seed). Exposed so a harness can replay cold solves out-of-band.
pub fn chain_pool(cfg: &RequestMixConfig) -> Vec<LinearNetwork> {
    let gen = ChainConfig {
        processors: cfg.processors.max(2),
        ..ChainConfig::default()
    };
    (0..cfg.distinct_chains.max(1))
        .map(|i| chain(&gen, cfg.seed.wrapping_add(i as u64)))
        .collect()
}

/// A solve-only stream that also reports which pool chain each line was
/// drawn from, as `(line, pool_index)` with ids `0 .. total`. The chaos
/// harness (E25) needs the index to check every response against an
/// out-of-band fresh solve of the same chain — the bit-identity oracle.
pub fn solve_lines_indexed(cfg: &RequestMixConfig) -> Vec<(String, usize)> {
    let pool = chain_pool(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A_C0FF_EE25);
    (0..cfg.total)
        .map(|i| {
            let idx = rng.gen_range(0..pool.len());
            let net = &pool[idx];
            let bids: Vec<f64> = (1..net.len()).map(|j| net.w(j)).collect();
            (solve_line(i as i64, net.w(0), &net.rates_z(), &bids), idx)
        })
        .collect()
}

/// Configuration of one multi-job stream (`submit_job` ops for E28 and
/// the jobs CI lane). Independent of [`RequestMixConfig`] because job
/// streams sweep loads and round hints, not op blends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobMixConfig {
    /// Total `submit_job` lines to generate.
    pub total: usize,
    /// Distinct chains to rotate through (each chain gets its own queue).
    pub distinct_chains: usize,
    /// Processors per chain (root + `m − 1` strategic when `m ≥ 2`).
    pub processors: usize,
    /// Inclusive load range each job draws from uniformly.
    pub load_range: (f64, f64),
    /// Fraction of jobs carrying an explicit `rounds` hint (1..=8);
    /// the rest let the server pick `best_rounds`.
    pub pinned_rounds_fraction: f64,
    /// Per-installment communication startup cost forwarded on each line.
    pub comm_startup: f64,
    /// RNG seed (chain pool, loads, round hints).
    pub seed: u64,
}

impl Default for JobMixConfig {
    fn default() -> Self {
        Self {
            total: 256,
            distinct_chains: 8,
            processors: 6,
            load_range: (0.5, 4.0),
            pinned_rounds_fraction: 0.25,
            comm_startup: 0.0,
            seed: 0xE28,
        }
    }
}

/// A `submit_job` request line. `rounds = None` lets the server pick the
/// installment count via `best_rounds`.
pub fn job_line(
    id: i64,
    root_rate: f64,
    links: &[f64],
    bids: &[f64],
    load: f64,
    rounds: Option<usize>,
    comm_startup: f64,
) -> String {
    let mut fields = vec![
        ("op".into(), Value::String("submit_job".into())),
        ("id".into(), Value::Number(id as f64)),
        ("root_rate".into(), Value::Number(root_rate)),
        ("links".into(), numbers(links.iter().copied())),
        ("bids".into(), numbers(bids.iter().copied())),
        ("load".into(), Value::Number(load)),
    ];
    if let Some(k) = rounds {
        fields.push(("rounds".into(), Value::Number(k as f64)));
    }
    if comm_startup > 0.0 {
        fields.push(("comm_startup".into(), Value::Number(comm_startup)));
    }
    Value::Object(fields).to_json()
}

/// A `job_status` request line for `job_id` on the given chain (the chain
/// routes the request to the shard owning the job's queue).
pub fn job_status_line(
    id: i64,
    root_rate: f64,
    links: &[f64],
    bids: &[f64],
    job_id: u64,
) -> String {
    Value::Object(vec![
        ("op".into(), Value::String("job_status".into())),
        ("id".into(), Value::Number(id as f64)),
        ("root_rate".into(), Value::Number(root_rate)),
        ("links".into(), numbers(links.iter().copied())),
        ("bids".into(), numbers(bids.iter().copied())),
        ("job_id".into(), Value::Number(job_id as f64)),
    ])
    .to_json()
}

/// The chain pool a [`JobMixConfig`] draws from (deterministic in the
/// seed). Same construction as [`chain_pool`] so job streams and solve
/// streams over matching configs hit the same chains.
pub fn job_chain_pool(cfg: &JobMixConfig) -> Vec<LinearNetwork> {
    chain_pool(&RequestMixConfig {
        total: cfg.total,
        distinct_chains: cfg.distinct_chains,
        processors: cfg.processors,
        ft_fraction: 0.0,
        seed: cfg.seed,
    })
}

/// A `submit_job` stream that reports which pool chain each line was
/// drawn from, as `(line, pool_index)` with ids `0 .. total` — the same
/// oracle-index shape as [`solve_lines_indexed`], so a harness can check
/// each job report against an out-of-band composition of the same chain.
pub fn job_lines_indexed(cfg: &JobMixConfig) -> Vec<(String, usize)> {
    let pool = job_chain_pool(cfg);
    let (lo, hi) = cfg.load_range;
    let (lo, hi) = (lo.min(hi).max(1e-6), hi.max(lo).max(1e-6));
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A_C0FF_EE28);
    (0..cfg.total)
        .map(|i| {
            let idx = rng.gen_range(0..pool.len());
            let net = &pool[idx];
            let bids: Vec<f64> = (1..net.len()).map(|j| net.w(j)).collect();
            let load = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
            let rounds = (rng.gen_range(0.0..1.0) < cfg.pinned_rounds_fraction)
                .then(|| rng.gen_range(1..=8usize));
            (
                job_line(
                    i as i64,
                    net.w(0),
                    &net.rates_z(),
                    &bids,
                    load,
                    rounds,
                    cfg.comm_startup,
                ),
                idx,
            )
        })
        .collect()
}

/// Generate the request stream: `total` lines with ids `0 .. total`,
/// drawing chains round-robin-with-jitter from the pool. Returns the
/// lines plus the `(solve, ft_run)` op counts.
pub fn request_lines(cfg: &RequestMixConfig) -> (Vec<String>, usize, usize) {
    let pool = chain_pool(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E3779B97F4A7C15);
    let mut solves = 0usize;
    let mut fts = 0usize;
    let lines = (0..cfg.total)
        .map(|i| {
            let net = &pool[rng.gen_range(0..pool.len())];
            let root = net.w(0);
            let rates: Vec<f64> = (1..net.len()).map(|j| net.w(j)).collect();
            let links = net.rates_z();
            if rng.gen_range(0.0..1.0) < cfg.ft_fraction {
                fts += 1;
                let m = rates.len();
                let crash = (m >= 2).then(|| {
                    (
                        rng.gen_range(1..=m),
                        rng.gen_range(1..=4) as u8,
                        rng.gen_range(0.1..0.9),
                    )
                });
                ft_line(i as i64, root, &rates, &links, cfg.seed ^ i as u64, crash)
            } else {
                solves += 1;
                solve_line(i as i64, root, &links, &rates)
            }
        })
        .collect();
    (lines, solves, fts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let cfg = RequestMixConfig {
            total: 200,
            distinct_chains: 8,
            ft_fraction: 0.25,
            ..RequestMixConfig::default()
        };
        let (a, solves_a, fts_a) = request_lines(&cfg);
        let (b, solves_b, fts_b) = request_lines(&cfg);
        assert_eq!(a, b);
        assert_eq!((solves_a, fts_a), (solves_b, fts_b));
        assert_eq!(solves_a + fts_a, 200);
        assert!(fts_a > 20, "ft share too small: {fts_a}");
    }

    #[test]
    fn lines_are_valid_wire_requests() {
        let cfg = RequestMixConfig {
            total: 50,
            distinct_chains: 4,
            ft_fraction: 0.3,
            ..RequestMixConfig::default()
        };
        let (lines, _, _) = request_lines(&cfg);
        for line in &lines {
            let v = Value::parse(line).unwrap();
            let op = v.get("op").unwrap().as_str().unwrap();
            assert!(op == "solve" || op == "ft_run");
            assert!(v.get("id").unwrap().as_i64().is_some());
            let key = if op == "solve" { "bids" } else { "rates" };
            let rates = v.get(key).unwrap().as_array().unwrap();
            assert_eq!(
                rates.len(),
                v.get("links").unwrap().as_array().unwrap().len()
            );
            for r in rates {
                assert!(r.as_f64().unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn indexed_solve_lines_point_back_into_the_pool() {
        let cfg = RequestMixConfig {
            total: 100,
            distinct_chains: 5,
            ..RequestMixConfig::default()
        };
        let pool = chain_pool(&cfg);
        let a = solve_lines_indexed(&cfg);
        assert_eq!(a, solve_lines_indexed(&cfg), "must be deterministic");
        assert_eq!(a.len(), 100);
        for (i, (line, idx)) in a.iter().enumerate() {
            assert!(*idx < pool.len());
            let v = Value::parse(line).unwrap();
            assert_eq!(v.get("op").unwrap().as_str(), Some("solve"));
            assert_eq!(v.get("id").unwrap().as_i64(), Some(i as i64));
            // The line really encodes the chain its index claims.
            let net = &pool[*idx];
            let bids = v.get("bids").unwrap().as_array().unwrap();
            assert_eq!(bids.len(), net.len() - 1);
            assert_eq!(bids[0].as_f64(), Some(net.w(1)));
        }
    }

    #[test]
    fn job_streams_are_deterministic_and_well_formed() {
        let cfg = JobMixConfig {
            total: 120,
            distinct_chains: 5,
            pinned_rounds_fraction: 0.5,
            comm_startup: 0.01,
            ..JobMixConfig::default()
        };
        let pool = job_chain_pool(&cfg);
        let a = job_lines_indexed(&cfg);
        assert_eq!(a, job_lines_indexed(&cfg), "must be deterministic");
        assert_eq!(a.len(), 120);
        let mut pinned = 0usize;
        for (i, (line, idx)) in a.iter().enumerate() {
            assert!(*idx < pool.len());
            let v = Value::parse(line).unwrap();
            assert_eq!(v.get("op").unwrap().as_str(), Some("submit_job"));
            assert_eq!(v.get("id").unwrap().as_i64(), Some(i as i64));
            let load = v.get("load").unwrap().as_f64().unwrap();
            assert!((0.5..=4.0).contains(&load), "load out of range: {load}");
            if let Some(k) = v.get("rounds") {
                pinned += 1;
                let k = k.as_u64().unwrap();
                assert!((1..=8).contains(&k), "rounds hint out of range: {k}");
            }
            assert_eq!(v.get("comm_startup").unwrap().as_f64(), Some(0.01));
            // The line really encodes the chain its index claims.
            let net = &pool[*idx];
            let bids = v.get("bids").unwrap().as_array().unwrap();
            assert_eq!(bids.len(), net.len() - 1);
            assert_eq!(bids[0].as_f64(), Some(net.w(1)));
        }
        assert!(
            pinned > 20 && pinned < 100,
            "pinned-rounds share off: {pinned}/120"
        );
    }

    #[test]
    fn job_status_line_carries_chain_and_job_id() {
        let line = job_status_line(3, 1.0, &[0.2, 0.1], &[2.0, 0.5], 17);
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("job_status"));
        assert_eq!(v.get("job_id").unwrap().as_u64(), Some(17));
        assert_eq!(v.get("bids").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn distinct_chain_pool_bounds_the_working_set() {
        let cfg = RequestMixConfig {
            total: 500,
            distinct_chains: 3,
            ft_fraction: 0.0,
            ..RequestMixConfig::default()
        };
        let (lines, ..) = request_lines(&cfg);
        let unique: std::collections::HashSet<String> = lines
            .iter()
            .map(|l| {
                let v = Value::parse(l).unwrap();
                format!(
                    "{}{}",
                    v.get("bids").unwrap().to_json(),
                    v.get("links").unwrap().to_json()
                )
            })
            .collect();
        assert!(unique.len() <= 3, "working set leaked: {}", unique.len());
        assert!(!unique.is_empty());
    }
}
