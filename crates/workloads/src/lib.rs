//! # `workloads` — network generators and sweep utilities
//!
//! The paper has no empirical section, so the experiment suite defines its
//! own workload model: random heterogeneous chains, homogeneous chains,
//! speed gradients, bottleneck links and straggler processors
//! ([`generators`]), plus grid helpers and network decomposition for the
//! mechanism/protocol layers ([`sweep`]), declarative fault-scenario
//! grids for the fault-injection experiments ([`fault_cases`]),
//! order-stress tree populations for the sequencing-search experiments
//! ([`ordergrid`]), and NDJSON request-mix streams for the serving layer
//! ([`requests`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Parallel-array indexing is idiomatic throughout this numeric code.
#![allow(clippy::needless_range_loop)]

pub mod fault_cases;
pub mod generators;
pub mod ordergrid;
pub mod requests;
pub mod scenarios;
pub mod sweep;

pub use fault_cases::{
    cascade_grid, crash_pair_grid, crash_position_grid, crash_time_grid, multi_label, seeded_cases,
    seeded_multi_cases, tree_shape_grid, FaultCase, FaultCaseKind, TreeFaultCase,
};
pub use generators::{chain, chains, star, tree, ChainConfig, ChainShape};
pub use ordergrid::{misreport_factors, order_search_grid};
pub use requests::{ft_line, request_lines, solve_line, RequestMixConfig};
pub use scenarios::{DeviationSpec, NetworkSpec, ResolvedNetwork, ScenarioSpec};
pub use sweep::{chain_population, geomspace, linspace, mechanism_parts, MechanismParts};
