//! Cohort-level bit-identity over the E2 population (ISSUE 8): solving a
//! whole sweep cohort (`chain_population` → `dlt::batch::solve_many`, the
//! path the E2 binary takes) must reproduce the frozen scalar solver
//! bit-for-bit on every shape × size the experiment sweeps, so the
//! experiment's report cannot move by a byte.

use dlt::linear::reference;
use workloads::{chain_population, ChainConfig, ChainShape};

#[test]
fn e2_shape_cohorts_are_bit_identical_to_the_reference() {
    for shape in ChainShape::all() {
        for n in [2usize, 8, 32] {
            let cfg = ChainConfig {
                processors: n,
                shape,
                ..Default::default()
            };
            // 64 seeds per cell: enough to exercise the cohort kernel at
            // widths past any SIMD register count, cheap enough for CI.
            let nets = chain_population(&cfg, 0..64);
            let batch = dlt::batch::solve_many(&nets);
            for (i, net) in nets.iter().enumerate() {
                let want = reference::solve(net);
                assert_eq!(
                    format!("{:?}", batch.solution(i)),
                    format!("{want:?}"),
                    "{shape:?} n={n} seed={i}"
                );
            }
        }
    }
}
