//! Best-response dynamics: the game-theoretic consequence of
//! strategyproofness, made observable.
//!
//! In a strategyproof mechanism, truth-telling is a *dominant* strategy,
//! so best-response dynamics from any starting bid profile converge to the
//! truthful profile in a single round of updates. Under a manipulable
//! mechanism (the naive baseline) the dynamics drift away from truth and
//! may keep moving. This module runs the dynamics over a bid grid and
//! reports the trajectory — experiment E13's engine.

use crate::agent::{Agent, Conduct};
use crate::dls_lbl::DlsLbl;
use crate::dls_tree::TreeMechanism;
use crate::naive_baseline::NaiveMechanism;

/// One step of the dynamics: every agent, in index order, switches to its
/// utility-maximizing bid (from `grid × t_j`) against the current profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Bid profiles after each full round of best responses (index 0 is
    /// the initial profile).
    pub profiles: Vec<Vec<f64>>,
    /// Whether the dynamics reached a fixed point within the round budget.
    pub converged: bool,
}

impl Trajectory {
    /// The final profile.
    pub fn last(&self) -> &[f64] {
        self.profiles.last().expect("non-empty")
    }

    /// Maximum relative distance of the final profile from the truthful
    /// profile.
    pub fn distance_from_truth(&self, agents: &[Agent]) -> f64 {
        self.last()
            .iter()
            .zip(agents)
            .map(|(&b, a)| (b / a.true_rate - 1.0).abs())
            .fold(0.0, f64::max)
    }
}

/// A mechanism the dynamics can run against: utility of agent `j` with the
/// given bid profile (each agent executing feasibly for its bid).
pub trait BidGame {
    /// Utility of agent `j` (1-based) under `bids`, given the agents'
    /// private types.
    fn utility(&self, agents: &[Agent], bids: &[f64], j: usize) -> f64;
}

impl BidGame for DlsLbl {
    fn utility(&self, agents: &[Agent], bids: &[f64], j: usize) -> f64 {
        let conducts: Vec<Conduct> = agents
            .iter()
            .zip(bids)
            .map(|(&a, &b)| Conduct {
                bid: b,
                actual_rate: a.feasible_actual(b.min(a.true_rate)),
                actual_load: None,
            })
            .collect();
        self.settle(&conducts, false).utility(j)
    }
}

impl BidGame for TreeMechanism {
    fn utility(&self, agents: &[Agent], bids: &[f64], j: usize) -> f64 {
        let conducts: Vec<Conduct> = agents
            .iter()
            .zip(bids)
            .map(|(&a, &b)| Conduct {
                bid: b,
                actual_rate: a.feasible_actual(b.min(a.true_rate)),
                actual_load: None,
            })
            .collect();
        self.settle(&conducts).utility(j)
    }
}

impl BidGame for NaiveMechanism {
    fn utility(&self, agents: &[Agent], bids: &[f64], j: usize) -> f64 {
        let conducts: Vec<Conduct> = agents
            .iter()
            .zip(bids)
            .map(|(&a, &b)| Conduct {
                bid: b,
                actual_rate: a.true_rate,
                actual_load: None,
            })
            .collect();
        NaiveMechanism::utility(self, agents, &conducts, j)
    }
}

/// Run best-response dynamics from `initial` bids for at most `max_rounds`
/// full rounds, with bids restricted to `grid × t_j`.
pub fn best_response_dynamics<G: BidGame>(
    game: &G,
    agents: &[Agent],
    initial: &[f64],
    grid: &[f64],
    max_rounds: usize,
) -> Trajectory {
    assert_eq!(initial.len(), agents.len());
    let mut profiles = vec![initial.to_vec()];
    let mut current = initial.to_vec();
    let mut converged = false;
    for _ in 0..max_rounds {
        let mut next = current.clone();
        for j in 1..=agents.len() {
            let mut best_bid = next[j - 1];
            let mut best_u = {
                let mut bids = next.clone();
                bids[j - 1] = best_bid;
                game.utility(agents, &bids, j)
            };
            for &f in grid {
                let candidate = agents[j - 1].true_rate * f;
                let mut bids = next.clone();
                bids[j - 1] = candidate;
                let u = game.utility(agents, &bids, j);
                if u > best_u + 1e-12 {
                    best_u = u;
                    best_bid = candidate;
                }
            }
            next[j - 1] = best_bid;
        }
        let moved = next
            .iter()
            .zip(&current)
            .any(|(a, b)| (a - b).abs() > 1e-12);
        current = next.clone();
        profiles.push(next);
        if !moved {
            converged = true;
            break;
        }
    }
    Trajectory {
        profiles,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DlsLbl, NaiveMechanism, Vec<Agent>) {
        (
            DlsLbl::new(1.0, vec![0.2, 0.1, 0.7]),
            NaiveMechanism::new(1.0, vec![0.2, 0.1, 0.7], 1.2),
            vec![Agent::new(2.0), Agent::new(0.5), Agent::new(4.0)],
        )
    }

    fn grid() -> Vec<f64> {
        let mut g: Vec<f64> = (1..=30).map(|i| 0.1 + i as f64 * 0.1).collect();
        g.push(1.0);
        g
    }

    #[test]
    fn dls_lbl_converges_to_truth_from_anywhere() {
        let (mech, _, agents) = setup();
        for initial in [
            vec![1.0, 1.0, 1.0],
            vec![4.0, 0.2, 8.0],
            vec![2.0, 0.5, 4.0],
        ] {
            let traj = best_response_dynamics(&mech, &agents, &initial, &grid(), 10);
            assert!(traj.converged, "from {initial:?}");
            assert!(
                traj.distance_from_truth(&agents) < 1e-9,
                "from {initial:?}: ended at {:?}",
                traj.last()
            );
        }
    }

    #[test]
    fn dls_lbl_converges_in_one_round() {
        // Dominance means one pass suffices (plus the fixed-point check).
        let (mech, _, agents) = setup();
        let traj = best_response_dynamics(&mech, &agents, &[4.0, 0.2, 8.0], &grid(), 10);
        assert!(
            traj.profiles.len() <= 3,
            "rounds used: {}",
            traj.profiles.len() - 1
        );
    }

    #[test]
    fn naive_mechanism_drifts_from_truth() {
        let (_, naive, agents) = setup();
        let truthful: Vec<f64> = agents.iter().map(|a| a.true_rate).collect();
        let traj = best_response_dynamics(&naive, &agents, &truthful, &grid(), 10);
        assert!(
            traj.distance_from_truth(&agents) > 0.1,
            "the manipulable baseline should move away from truth: {:?}",
            traj.last()
        );
    }

    #[test]
    fn truthful_profile_is_a_fixed_point_for_dls_lbl() {
        let (mech, _, agents) = setup();
        let truthful: Vec<f64> = agents.iter().map(|a| a.true_rate).collect();
        let traj = best_response_dynamics(&mech, &agents, &truthful, &grid(), 5);
        assert!(traj.converged);
        assert_eq!(traj.profiles.len(), 2, "no agent should move");
    }
}
