//! The DLS-LBL mechanism (§4): output function + payment function, glued
//! into a one-shot settlement over a whole chain of strategic agents.
//!
//! This module is the *economic* view of the mechanism: given true types,
//! bids, and executions, it computes allocations, payments and utilities.
//! The message-level machinery (signatures, grievances, fines, audits) that
//! *enforces* these numbers lives in the `protocol` crate; the two are
//! wired together by the experiments.

use crate::agent::{Agent, Conduct};
use crate::payment::{self, PaymentBreakdown, PaymentInputs};
use dlt::batch;
use dlt::linear::LinearSolution;
use dlt::model::LinearNetwork;

/// Configuration of the mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechanismConfig {
    /// The link rates `z_1 … z_m` are public infrastructure (the links are
    /// obedient per §4); processors only bid their `w`.
    pub solution_bonus: f64,
}

impl Default for MechanismConfig {
    fn default() -> Self {
        Self {
            solution_bonus: 0.0,
        }
    }
}

/// The mechanism instance for a chain with known (obedient) link rates.
#[derive(Debug, Clone, PartialEq)]
pub struct DlsLbl {
    /// Unit link times `z_1 … z_m`.
    pub link_rates: Vec<f64>,
    /// Root's (obedient) unit processing time `w_0`.
    pub root_rate: f64,
    /// Extension knobs.
    pub config: MechanismConfig,
}

/// The settled outcome for one strategic processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentOutcome {
    /// Prescribed assignment `α_j` under the bids.
    pub assigned_load: f64,
    /// Load actually computed `α̃_j`.
    pub actual_load: f64,
    /// Metered actual rate `w̃_j`.
    pub actual_rate: f64,
    /// Itemized payment.
    pub breakdown: PaymentBreakdown,
}

/// The settled outcome of one round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// The bid-derived network (root + declared rates).
    pub bid_network: LinearNetwork,
    /// The optimal solution under the bids.
    pub solution: LinearSolution,
    /// Root's load (α_0) — the root is obedient and nets zero utility.
    pub root_load: f64,
    /// Per-strategic-agent outcomes (index 0 is `P_1`).
    pub agents: Vec<AgentOutcome>,
}

impl RoundOutcome {
    /// Utility of strategic processor `P_j` (`j ≥ 1`).
    pub fn utility(&self, j: usize) -> f64 {
        self.agents[j - 1].breakdown.utility
    }

    /// Total payments disbursed by the mechanism.
    pub fn total_payment(&self) -> f64 {
        self.agents.iter().map(|a| a.breakdown.payment).sum()
    }
}

impl DlsLbl {
    /// Create a mechanism for a chain whose links have the given rates and
    /// whose root (P_0, obedient) has rate `root_rate`.
    pub fn new(root_rate: f64, link_rates: Vec<f64>) -> Self {
        assert!(
            !link_rates.is_empty(),
            "need at least one strategic processor"
        );
        Self {
            link_rates,
            root_rate,
            config: MechanismConfig::default(),
        }
    }

    /// Builder: enable the eq. 4.13 solution bonus.
    pub fn with_solution_bonus(mut self, s: f64) -> Self {
        assert!(s >= 0.0);
        self.config.solution_bonus = s;
        self
    }

    /// Number of strategic processors `m`.
    pub fn num_agents(&self) -> usize {
        self.link_rates.len()
    }

    /// The output function `α(w)`: assemble the bid network and run
    /// Algorithm 1 (through the batch solver core — bit-identical to the
    /// scalar solver by the `dlt::batch` contract).
    pub fn allocate(&self, bids: &[f64]) -> (LinearNetwork, LinearSolution) {
        assert_eq!(
            bids.len(),
            self.num_agents(),
            "one bid per strategic processor"
        );
        let mut w = Vec::with_capacity(bids.len() + 1);
        w.push(self.root_rate);
        w.extend_from_slice(bids);
        let net = LinearNetwork::from_rates(&w, &self.link_rates);
        let sol = batch::solve_one(&net);
        (net, sol)
    }

    /// Settle a round: given each agent's conduct, compute assignments,
    /// actual loads, payments and utilities.
    ///
    /// `solution_found` feeds the eq. 4.13 extension: agents receive the
    /// solution bonus only when the embedded problem was solved.
    pub fn settle(&self, conducts: &[Conduct], solution_found: bool) -> RoundOutcome {
        assert_eq!(conducts.len(), self.num_agents());
        let bids: Vec<f64> = conducts.iter().map(|c| c.bid).collect();
        let (net, sol) = self.allocate(&bids);
        let s = if solution_found {
            self.config.solution_bonus
        } else {
            0.0
        };
        // One suffix sweep settles the whole profile in O(m); bit-identical
        // to the per-agent `payment::settle` loop (payment-parity suite).
        let inputs: Vec<PaymentInputs> = conducts
            .iter()
            .enumerate()
            .map(|(idx, c)| {
                let assigned = sol.alloc.alpha(idx + 1);
                PaymentInputs {
                    assigned_load: assigned,
                    actual_load: c.actual_load.unwrap_or(assigned),
                    actual_rate: c.actual_rate,
                }
            })
            .collect();
        let agents = payment::settle_all(&net, &inputs, s)
            .into_iter()
            .zip(&inputs)
            .map(|(breakdown, inp)| AgentOutcome {
                assigned_load: inp.assigned_load,
                actual_load: inp.actual_load,
                actual_rate: inp.actual_rate,
                breakdown,
            })
            .collect();
        RoundOutcome {
            root_load: sol.alloc.alpha(0),
            bid_network: net,
            solution: sol,
            agents,
        }
    }

    /// Settle with every agent truthful — the benchmark point of the
    /// strategyproofness experiments.
    pub fn settle_truthful(&self, agents: &[Agent]) -> RoundOutcome {
        let conducts: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        self.settle(&conducts, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mechanism() -> DlsLbl {
        DlsLbl::new(1.0, vec![0.2, 0.1, 0.7])
    }

    fn agents() -> Vec<Agent> {
        vec![Agent::new(2.0), Agent::new(0.5), Agent::new(4.0)]
    }

    #[test]
    fn allocate_matches_direct_solver() {
        let mech = mechanism();
        let (net, sol) = mech.allocate(&[2.0, 0.5, 4.0]);
        let direct = dlt::linear::solve(&LinearNetwork::from_rates(
            &[1.0, 2.0, 0.5, 4.0],
            &[0.2, 0.1, 0.7],
        ));
        assert_eq!(net.len(), 4);
        for i in 0..4 {
            assert!((sol.alloc.alpha(i) - direct.alloc.alpha(i)).abs() < 1e-15);
        }
    }

    #[test]
    fn truthful_settlement_nonnegative_utilities() {
        let mech = mechanism();
        let outcome = mech.settle_truthful(&agents());
        for j in 1..=3 {
            assert!(
                outcome.utility(j) >= 0.0,
                "voluntary participation violated at P{j}"
            );
        }
    }

    #[test]
    fn truthful_utility_equals_w_pred_minus_w_bar_pred() {
        // Lemma 5.4's identity.
        let mech = mechanism();
        let outcome = mech.settle_truthful(&agents());
        let sol = &outcome.solution;
        let net = &outcome.bid_network;
        for j in 1..=3 {
            let expected = net.w(j - 1) - sol.equivalent[j - 1];
            assert!((outcome.utility(j) - expected).abs() < 1e-12, "P{j}");
        }
    }

    #[test]
    fn assigned_equals_actual_for_compliant_agents() {
        let mech = mechanism();
        let outcome = mech.settle_truthful(&agents());
        for a in &outcome.agents {
            assert_eq!(a.assigned_load, a.actual_load);
        }
    }

    #[test]
    fn loads_partition_the_unit() {
        let mech = mechanism();
        let outcome = mech.settle_truthful(&agents());
        let total: f64 =
            outcome.root_load + outcome.agents.iter().map(|a| a.assigned_load).sum::<f64>();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solution_bonus_flows_only_when_found() {
        let mech = mechanism().with_solution_bonus(0.1);
        let conducts: Vec<Conduct> = agents().iter().map(|&a| Conduct::truthful(a)).collect();
        let without = mech.settle(&conducts, false);
        let with = mech.settle(&conducts, true);
        for j in 1..=3 {
            assert!((with.utility(j) - without.utility(j) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn underbidding_does_not_pay() {
        let mech = mechanism();
        let ag = agents();
        let truthful = mech.settle_truthful(&ag);
        for j in 1..=3 {
            let mut conducts: Vec<Conduct> = ag.iter().map(|&a| Conduct::truthful(a)).collect();
            conducts[j - 1] = Conduct::misreport(ag[j - 1], 0.5);
            let deviant = mech.settle(&conducts, false);
            assert!(
                deviant.utility(j) <= truthful.utility(j) + 1e-12,
                "P{j} profited from underbidding: {} > {}",
                deviant.utility(j),
                truthful.utility(j)
            );
        }
    }

    #[test]
    fn overbidding_does_not_pay() {
        let mech = mechanism();
        let ag = agents();
        let truthful = mech.settle_truthful(&ag);
        for j in 1..=3 {
            let mut conducts: Vec<Conduct> = ag.iter().map(|&a| Conduct::truthful(a)).collect();
            conducts[j - 1] = Conduct::misreport(ag[j - 1], 2.0);
            let deviant = mech.settle(&conducts, false);
            assert!(
                deviant.utility(j) <= truthful.utility(j) + 1e-12,
                "P{j} profited from overbidding"
            );
        }
    }

    #[test]
    fn slack_execution_does_not_pay() {
        let mech = mechanism();
        let ag = agents();
        let truthful = mech.settle_truthful(&ag);
        for j in 1..=3 {
            let mut conducts: Vec<Conduct> = ag.iter().map(|&a| Conduct::truthful(a)).collect();
            conducts[j - 1] = Conduct::slack_execution(ag[j - 1], 2.0);
            let deviant = mech.settle(&conducts, false);
            assert!(
                deviant.utility(j) <= truthful.utility(j) + 1e-12,
                "P{j} profited from slacking"
            );
        }
    }

    #[test]
    fn utilities_independent_of_other_bids_shape() {
        // Strategyproofness is dominant-strategy: truthful P1 must weakly
        // prefer truth under *any* profile of others' bids.
        let mech = mechanism();
        let ag = agents();
        for other_factor in [0.3, 1.0, 2.5] {
            let mut base: Vec<Conduct> = ag.iter().map(|&a| Conduct::truthful(a)).collect();
            base[1] = Conduct::misreport(ag[1], other_factor);
            base[2] = Conduct::misreport(ag[2], 1.0 / other_factor.max(0.4));
            let honest = mech.settle(&base, false);
            let mut dev = base.clone();
            dev[0] = Conduct::misreport(ag[0], 1.7);
            let deviant = mech.settle(&dev, false);
            assert!(
                deviant.utility(1) <= honest.utility(1) + 1e-12,
                "P1 gained by lying while others bid ×{other_factor}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one bid per strategic processor")]
    fn allocate_rejects_wrong_arity() {
        mechanism().allocate(&[1.0]);
    }
}
