//! Phase IV audit analysis: the `F/q` overcharging deterrent.
//!
//! Each processor computes *its own* payment and submits the bill; the root
//! challenges the supporting proof with probability `q`. An overcharging
//! processor gains `overcharge` when unchallenged and loses `F/q` when
//! caught, so its expected gain is `overcharge − F`. This module provides
//! the expected-utility analysis and the deterrence boundary; the Monte
//! Carlo counterpart (with real random challenges against the signed-proof
//! machinery) lives in the `protocol` crate.

use crate::fines::FineSchedule;

/// Expected-value analysis of one overcharge attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverchargeAnalysis {
    /// The amount by which the bill was inflated.
    pub overcharge: f64,
    /// Audit probability `q`.
    pub audit_probability: f64,
    /// Fine applied on a caught overcharge (`F/q`).
    pub fine_if_caught: f64,
    /// Expected change in utility relative to billing honestly.
    pub expected_gain: f64,
}

/// Analyze an overcharge attempt of size `overcharge ≥ 0` under the fine
/// schedule.
pub fn analyze_overcharge(schedule: &FineSchedule, overcharge: f64) -> OverchargeAnalysis {
    assert!(overcharge >= 0.0);
    let q = schedule.audit_probability;
    let fine = schedule.overcharge_fine();
    // With prob (1-q): keep the overcharge. With prob q: caught — the bill
    // is rejected (no overcharge collected) and the fine is levied.
    let expected_gain = (1.0 - q) * overcharge - q * fine;
    OverchargeAnalysis {
        overcharge,
        audit_probability: q,
        fine_if_caught: fine,
        expected_gain,
    }
}

/// The largest overcharge with non-negative expected gain:
/// `(1−q)·x = q·F/q = F` ⇒ `x = F / (1−q)` — so deterrence requires `F`
/// to exceed the attainable overcharge scaled by `(1−q)`. For the paper's
/// requirement (`F` larger than any attainable profit) the expected gain is
/// negative for every `x ≤ F`.
pub fn break_even_overcharge(schedule: &FineSchedule) -> f64 {
    let q = schedule.audit_probability;
    if q >= 1.0 {
        f64::INFINITY // always caught: no overcharge ever profits
    } else {
        schedule.base / (1.0 - q)
    }
}

/// Sweep expected gain across a grid of audit probabilities for a fixed
/// overcharge — the data series behind experiment E7.
pub fn q_sweep(base_fine: f64, overcharge: f64, qs: &[f64]) -> Vec<OverchargeAnalysis> {
    qs.iter()
        .map(|&q| analyze_overcharge(&FineSchedule::new(base_fine, q), overcharge))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterrence_when_fine_exceeds_profit() {
        // Paper requirement: F larger than any attainable profit.
        let schedule = FineSchedule::new(10.0, 0.2);
        for overcharge in [0.1, 1.0, 5.0, 9.9] {
            let a = analyze_overcharge(&schedule, overcharge);
            assert!(
                a.expected_gain < 0.0,
                "overcharge {overcharge} should not pay"
            );
        }
    }

    #[test]
    fn expected_gain_formula() {
        let schedule = FineSchedule::new(10.0, 0.5);
        let a = analyze_overcharge(&schedule, 4.0);
        // (1-0.5)*4 − 0.5*20 = 2 − 10 = −8
        assert!((a.expected_gain + 8.0).abs() < 1e-12);
    }

    #[test]
    fn zero_overcharge_strictly_loses_if_audited() {
        // An *invalid proof* with no inflation still risks the fine; honest
        // billing (valid proof) is the only safe play.
        let schedule = FineSchedule::new(10.0, 0.3);
        let a = analyze_overcharge(&schedule, 0.0);
        assert!(a.expected_gain < 0.0);
    }

    #[test]
    fn break_even_grows_with_fine() {
        let lo = break_even_overcharge(&FineSchedule::new(5.0, 0.5));
        let hi = break_even_overcharge(&FineSchedule::new(50.0, 0.5));
        assert!(hi > lo);
        assert!((lo - 10.0).abs() < 1e-12); // 5 / (1-0.5)
    }

    #[test]
    fn certain_audit_deters_everything() {
        assert_eq!(
            break_even_overcharge(&FineSchedule::new(1.0, 1.0)),
            f64::INFINITY
        );
        let a = analyze_overcharge(&FineSchedule::new(1.0, 1.0), 100.0);
        assert!(a.expected_gain < 0.0);
    }

    #[test]
    fn q_sweep_is_monotone_in_q() {
        let sweep = q_sweep(10.0, 5.0, &[0.1, 0.3, 0.5, 0.9]);
        for pair in sweep.windows(2) {
            assert!(pair[1].expected_gain < pair[0].expected_gain);
        }
    }

    #[test]
    fn small_q_with_small_fine_can_leave_profit() {
        // Shows the knob matters: a fine below the paper's requirement
        // fails to deter.
        let schedule = FineSchedule::new(0.5, 0.1);
        let a = analyze_overcharge(&schedule, 10.0);
        assert!(a.expected_gain > 0.0);
        assert!(break_even_overcharge(&schedule) < 10.0);
    }
}
