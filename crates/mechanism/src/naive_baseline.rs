//! The *naive* payment baseline: classical DLT with a flat declared-rate
//! payment and no verification.
//!
//! This is the strawman the paper's introduction argues against: if the
//! scheduler simply pays each processor for its declared work
//! (`Q_j = α_j · w_j`, bid-priced, no meter), a strategic processor can
//! profit by misreporting. The E4 experiment plots this mechanism's
//! utility-vs-bid curves next to DLS-LBL's to show the manipulability gap —
//! the paper's qualitative claim turned into a measurable series.

use crate::agent::{Agent, Conduct};
use dlt::linear;
use dlt::model::LinearNetwork;

/// The naive bid-priced mechanism: allocate with Algorithm 1 on the bids,
/// pay `α_j · w_j` (declared rate), no verification of actual speed.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveMechanism {
    /// Link rates (public).
    pub link_rates: Vec<f64>,
    /// Obedient root rate.
    pub root_rate: f64,
    /// Margin multiplier on the declared price (1.0 = at-cost; >1 gives
    /// agents a surplus, as a deployment would).
    pub price_margin: f64,
}

impl NaiveMechanism {
    /// Create a baseline with the given margin.
    pub fn new(root_rate: f64, link_rates: Vec<f64>, price_margin: f64) -> Self {
        assert!(price_margin >= 1.0);
        Self {
            link_rates,
            root_rate,
            price_margin,
        }
    }

    /// Utility of agent `j` with conduct `c` while others bid `bids`:
    /// pays `margin · α_j w_j` for declared work, costs `α_j w̃_j` to
    /// actually perform it at the *true* rate (the agent computes as fast
    /// as it can — nobody meters it, so slower execution saves nothing and
    /// risks nothing).
    pub fn utility(&self, agents: &[Agent], conducts: &[Conduct], j: usize) -> f64 {
        assert_eq!(agents.len(), conducts.len());
        let mut w = Vec::with_capacity(conducts.len() + 1);
        w.push(self.root_rate);
        w.extend(conducts.iter().map(|c| c.bid));
        let net = LinearNetwork::from_rates(&w, &self.link_rates);
        let sol = linear::solve(&net);
        let alpha = sol.alloc.alpha(j);
        let pay = self.price_margin * alpha * conducts[j - 1].bid;
        let cost = alpha * agents[j - 1].true_rate;
        pay - cost
    }

    /// Utility-vs-bid-factor curve for agent `j`, others truthful.
    pub fn sweep(&self, agents: &[Agent], j: usize, factors: &[f64]) -> Vec<(f64, f64)> {
        let truthful: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        factors
            .iter()
            .map(|&f| {
                let mut conducts = truthful.clone();
                let bid = agents[j - 1].true_rate * f;
                conducts[j - 1] = Conduct {
                    bid,
                    actual_rate: agents[j - 1].true_rate,
                    actual_load: None,
                };
                (f, self.utility(agents, &conducts, j))
            })
            .collect()
    }

    /// The most profitable bid factor on the grid for agent `j`.
    pub fn best_factor(&self, agents: &[Agent], j: usize, factors: &[f64]) -> (f64, f64) {
        self.sweep(agents, j, factors)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty grid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (NaiveMechanism, Vec<Agent>) {
        (
            NaiveMechanism::new(1.0, vec![0.2, 0.1, 0.7], 1.2),
            vec![Agent::new(2.0), Agent::new(0.5), Agent::new(4.0)],
        )
    }

    #[test]
    fn naive_mechanism_is_manipulable() {
        // The whole point of the baseline: for at least one agent, some lie
        // strictly beats the truth.
        let (mech, agents) = setup();
        let grid: Vec<f64> = (1..=30).map(|i| 0.2 + i as f64 * 0.1).collect();
        let mut manipulable = false;
        for j in 1..=agents.len() {
            let truthful = mech.sweep(&agents, j, &[1.0])[0].1;
            let (best_f, best_u) = mech.best_factor(&agents, j, &grid);
            if best_u > truthful + 1e-9 && (best_f - 1.0).abs() > 1e-9 {
                manipulable = true;
            }
        }
        assert!(manipulable, "baseline should reward lying somewhere");
    }

    #[test]
    fn at_cost_truthful_utility_is_zero() {
        let mech = NaiveMechanism::new(1.0, vec![0.2], 1.0);
        let agents = vec![Agent::new(2.0)];
        let truthful = vec![Conduct::truthful(agents[0])];
        assert!((mech.utility(&agents, &truthful, 1)).abs() < 1e-12);
    }

    #[test]
    fn margin_gives_truthful_surplus() {
        let (mech, agents) = setup();
        let truthful: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        for j in 1..=3 {
            assert!(mech.utility(&agents, &truthful, j) > 0.0);
        }
    }

    #[test]
    fn underbidding_at_cost_pricing_loses() {
        // With margin 1, price equals declared cost < true cost when
        // underbidding: guaranteed loss.
        let mech = NaiveMechanism::new(1.0, vec![0.2], 1.0);
        let agents = vec![Agent::new(2.0)];
        let sweep = mech.sweep(&agents, 1, &[0.5]);
        assert!(sweep[0].1 < 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_sub_unit_margin() {
        NaiveMechanism::new(1.0, vec![0.2], 0.9);
    }
}
