//! The DLS-LBL payment functions (eqs. 4.3–4.13).
//!
//! For a strategic processor `P_j` (`j ≥ 1`) the mechanism computes:
//!
//! * **valuation** `V_j = −α̃_j · w̃_j` (eq. 4.5) — the cost of the work
//!   actually performed;
//! * **compensation** `C_j = α_j w̃_j + E_j` (eq. 4.7) with the
//!   **recompense** `E_j = (α̃_j − α_j) w̃_j` when `α̃_j ≥ α_j`, else 0
//!   (eq. 4.8) — overloaded victims are paid for the extra work;
//! * **bonus** `B_j = w_{j-1} − w̄_{j-1}(α(bids), actual)` (eq. 4.9) — the
//!   *improvement* `P_j` and its successors bring to the predecessor's
//!   equivalent processing time, evaluated at the allocation implied by the
//!   bids but re-timed with `P_j`'s *actual* performance via eqs. 4.10–4.11;
//! * optional **solution bonus** `S` (eq. 4.13) for the
//!   selfish-and-annoying extension.
//!
//! Total payment `Q_j = C_j + B_j (+ S)` if the processor computed anything
//! (`α̃_j > 0`), else 0 (eq. 4.6); utility `U_j = V_j + Q_j` (eq. 4.4).

use dlt::batch::{self, SuffixSolutions};
use dlt::linear;
use dlt::model::LinearNetwork;

/// Everything the payment computation for one processor depends on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaymentInputs {
    /// Prescribed assignment `α_j` (units of total load) from the bids.
    pub assigned_load: f64,
    /// Load actually computed, `α̃_j`.
    pub actual_load: f64,
    /// Actual unit processing time `w̃_j` recorded by the meter.
    pub actual_rate: f64,
}

/// Itemized payment for one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaymentBreakdown {
    /// Valuation `V_j` (non-positive).
    pub valuation: f64,
    /// Compensation `C_j` including recompense.
    pub compensation: f64,
    /// Recompense component `E_j` of the compensation.
    pub recompense: f64,
    /// Bonus `B_j`.
    pub bonus: f64,
    /// Solution bonus `S` (0 unless the extension is active and a solution
    /// was found).
    pub solution_bonus: f64,
    /// Total payment `Q_j`.
    pub payment: f64,
    /// Utility `U_j = V_j + Q_j`.
    pub utility: f64,
}

/// Valuation `V_j = −α̃_j w̃_j` (eq. 4.5).
#[inline]
pub fn valuation(actual_load: f64, actual_rate: f64) -> f64 {
    -actual_load * actual_rate
}

/// Recompense `E_j` (eq. 4.8).
#[inline]
pub fn recompense(assigned_load: f64, actual_load: f64, actual_rate: f64) -> f64 {
    if actual_load >= assigned_load {
        (actual_load - assigned_load) * actual_rate
    } else {
        0.0
    }
}

/// Compensation `C_j = α_j w̃_j + E_j` (eq. 4.7).
#[inline]
pub fn compensation(assigned_load: f64, actual_load: f64, actual_rate: f64) -> f64 {
    assigned_load * actual_rate + recompense(assigned_load, actual_load, actual_rate)
}

/// The adjusted equivalent bid `ŵ_j` of the segment `P_j … P_m`
/// (eqs. 4.10–4.11): dominated by `P_j`'s actual performance when it ran
/// slower than bid, unchanged when it ran at or faster than bid.
///
/// * `bids` — the declared rates of the whole chain (used to derive the
///   local fraction `α̂_j` and the equivalent time `w̄_j`);
/// * `j` — the processor being paid;
/// * `actual_rate` — its metered `w̃_j`.
pub fn adjusted_equivalent(bids: &LinearNetwork, j: usize, actual_rate: f64) -> f64 {
    let m = bids.last_index();
    assert!(
        j >= 1 && j <= m,
        "payments are defined for strategic processors 1..=m"
    );
    let sol = linear::solve(&bids.suffix(j));
    let alpha_hat_j = sol.local.alpha_hat(0);
    let w_bar_j = sol.makespan();
    if j == m {
        // eq. 4.10: the terminal processor's equivalent is itself.
        return actual_rate;
    }
    if actual_rate >= bids.w(j) {
        alpha_hat_j * actual_rate // eq. 4.11, slow case
    } else {
        w_bar_j // eq. 4.11, fast case: equivalent time unchanged
    }
}

/// The realized equivalent time of the segment `P_{j-1} … P_m`
/// (the `w̄_{j-1}(α(bids), actual)` term of eq. 4.9): the two-element
/// reduction of `P_{j-1}` against the adjusted equivalent successor, with
/// the split fixed by the *bids* but the successor re-timed by `ŵ_j`.
pub fn realized_predecessor_equivalent(bids: &LinearNetwork, j: usize, actual_rate: f64) -> f64 {
    assert!(j >= 1);
    let w_pred = bids.w(j - 1);
    let z_j = bids.z(j);
    let w_bar_j = linear::equivalent_time(&bids.suffix(j));
    // Local split of P_{j-1} vs its successor segment, from the bids (eq. 2.7).
    let tail = w_bar_j + z_j;
    let alpha_hat_pred = tail / (w_pred + tail);
    let w_hat_j = adjusted_equivalent(bids, j, actual_rate);
    let front = alpha_hat_pred * w_pred;
    let back = (1.0 - alpha_hat_pred) * (z_j + w_hat_j);
    front.max(back)
}

/// Bonus `B_j = w_{j-1} − w̄_{j-1}(α(bids), actual)` (eq. 4.9).
pub fn bonus(bids: &LinearNetwork, j: usize, actual_rate: f64) -> f64 {
    bids.w(j - 1) - realized_predecessor_equivalent(bids, j, actual_rate)
}

/// [`adjusted_equivalent`] evaluated from a precomputed suffix sweep:
/// `sfx.alpha_hat_front(j)` / `sfx.makespan(j)` are bit-identical to the
/// `solve(&bids.suffix(j))` quantities of the scalar path, and the branch
/// structure and FP operations mirror [`adjusted_equivalent`] exactly.
fn adjusted_equivalent_from(
    sfx: &SuffixSolutions,
    bids: &LinearNetwork,
    j: usize,
    actual_rate: f64,
) -> f64 {
    let m = bids.last_index();
    assert!(
        j >= 1 && j <= m,
        "payments are defined for strategic processors 1..=m"
    );
    if j == m {
        // eq. 4.10: the terminal processor's equivalent is itself.
        return actual_rate;
    }
    if actual_rate >= bids.w(j) {
        sfx.alpha_hat_front(j) * actual_rate // eq. 4.11, slow case
    } else {
        sfx.makespan(j) // eq. 4.11, fast case: equivalent time unchanged
    }
}

/// [`realized_predecessor_equivalent`] evaluated from a precomputed suffix
/// sweep. `sfx.equivalent_time(j)` reproduces the scalar path's
/// `equivalent_time(&bids.suffix(j))` (which uses a *different* FP operation
/// order than `solve` — both recursions live in the sweep precisely so this
/// stays bit-identical).
fn realized_predecessor_equivalent_from(
    sfx: &SuffixSolutions,
    bids: &LinearNetwork,
    j: usize,
    actual_rate: f64,
) -> f64 {
    assert!(j >= 1);
    let w_pred = bids.w(j - 1);
    let z_j = bids.z(j);
    let w_bar_j = sfx.equivalent_time(j);
    // Local split of P_{j-1} vs its successor segment, from the bids (eq. 2.7).
    let tail = w_bar_j + z_j;
    let alpha_hat_pred = tail / (w_pred + tail);
    let w_hat_j = adjusted_equivalent_from(sfx, bids, j, actual_rate);
    let front = alpha_hat_pred * w_pred;
    let back = (1.0 - alpha_hat_pred) * (z_j + w_hat_j);
    front.max(back)
}

/// Payment for processor `j` given a precomputed suffix sweep of the bid
/// chain. O(1) per call; bit-identical to [`settle`] (pinned by the
/// payment-parity suite in `mechanism/tests/payment_parity.rs`). Callers
/// settling several agents of one bid profile should compute
/// [`dlt::batch::solve_all_suffixes`] once and use this.
pub fn settle_with(
    sfx: &SuffixSolutions,
    bids: &LinearNetwork,
    j: usize,
    inputs: PaymentInputs,
    solution_bonus: f64,
) -> PaymentBreakdown {
    let v = valuation(inputs.actual_load, inputs.actual_rate);
    if inputs.actual_load <= 0.0 {
        // eq. 4.6: a processor that computed nothing is paid nothing.
        return PaymentBreakdown {
            valuation: v,
            compensation: 0.0,
            recompense: 0.0,
            bonus: 0.0,
            solution_bonus: 0.0,
            payment: 0.0,
            utility: v,
        };
    }
    let e = recompense(inputs.assigned_load, inputs.actual_load, inputs.actual_rate);
    let c = compensation(inputs.assigned_load, inputs.actual_load, inputs.actual_rate);
    let b = bids.w(j - 1) - realized_predecessor_equivalent_from(sfx, bids, j, inputs.actual_rate);
    let q = c + b + solution_bonus;
    PaymentBreakdown {
        valuation: v,
        compensation: c,
        recompense: e,
        bonus: b,
        solution_bonus,
        payment: q,
        utility: v + q,
    }
}

/// Settle every strategic processor of one bid profile in O(m) total: one
/// suffix sweep ([`dlt::batch::solve_all_suffixes`]) replaces the former
/// per-agent `solve_suffix` loop (O(m²)). `inputs[idx]` belongs to
/// `P_{idx+1}`. Every breakdown is bit-identical to calling [`settle`]
/// per agent.
pub fn settle_all(
    bids: &LinearNetwork,
    inputs: &[PaymentInputs],
    solution_bonus: f64,
) -> Vec<PaymentBreakdown> {
    obs::count!("mechanism.payment.settle_all", "m" => bids.last_index());
    assert_eq!(
        inputs.len(),
        bids.last_index(),
        "one PaymentInputs per strategic processor"
    );
    let sfx = batch::solve_all_suffixes(bids);
    inputs
        .iter()
        .enumerate()
        .map(|(idx, inp)| settle_with(&sfx, bids, idx + 1, *inp, solution_bonus))
        .collect()
}

/// Full payment and utility for processor `j` (eqs. 4.4–4.9, plus the
/// optional eq. 4.13 solution bonus).
///
/// This is the scalar per-suffix path (each call re-solves the suffix
/// chains); it doubles as the frozen reference that the O(m) batch path
/// ([`settle_all`] / [`settle_with`]) is differentially pinned against.
pub fn settle(
    bids: &LinearNetwork,
    j: usize,
    inputs: PaymentInputs,
    solution_bonus: f64,
) -> PaymentBreakdown {
    obs::count!("mechanism.payment.settle", "j" => j);
    let v = valuation(inputs.actual_load, inputs.actual_rate);
    if inputs.actual_load <= 0.0 {
        // eq. 4.6: a processor that computed nothing is paid nothing.
        return PaymentBreakdown {
            valuation: v,
            compensation: 0.0,
            recompense: 0.0,
            bonus: 0.0,
            solution_bonus: 0.0,
            payment: 0.0,
            utility: v,
        };
    }
    let e = recompense(inputs.assigned_load, inputs.actual_load, inputs.actual_rate);
    let c = compensation(inputs.assigned_load, inputs.actual_load, inputs.actual_rate);
    let b = bonus(bids, j, inputs.actual_rate);
    let q = c + b + solution_bonus;
    PaymentBreakdown {
        valuation: v,
        compensation: c,
        recompense: e,
        bonus: b,
        solution_bonus,
        payment: q,
        utility: v + q,
    }
}

/// Pro-rata settlement for a processor that crash-stopped or stalled after
/// finishing only `completed_load` of its assignment: it is compensated for
/// exactly the work it metered (`completed · w̃`), with no recompense and no
/// bonus — failure is no-fault (no fine), but the bonus rewards *finishing*
/// the prescribed share, which a failed node did not do. Utility is
/// therefore exactly zero: the node is made whole for its cost, nothing
/// more.
pub fn pro_rata(completed_load: f64, actual_rate: f64) -> PaymentBreakdown {
    obs::count!("mechanism.payment.pro_rata");
    obs::hist!("mechanism.payment.pro_rata_load", completed_load);
    let v = valuation(completed_load, actual_rate);
    let c = completed_load * actual_rate;
    PaymentBreakdown {
        valuation: v,
        compensation: c,
        recompense: 0.0,
        bonus: 0.0,
        solution_bonus: 0.0,
        payment: c,
        utility: v + c,
    }
}

/// Wage for recovery work re-assigned after a chain splice: exactly the
/// metered cost `load · w̃` of the extra work — recovery is
/// utility-neutral for survivors (no bonus, no recompense; the work was
/// never part of anyone's prescribed share, so there is nothing to
/// improve on and nothing to be overloaded against).
pub fn recovery_wage(load: f64, rate: f64) -> f64 {
    obs::count!("mechanism.payment.recovery_wage");
    obs::hist!("mechanism.payment.recovery_wage_load", load);
    load * rate
}

/// Utility of the obedient root (eq. 4.3): always zero — the mechanism
/// reimburses exactly the cost of the work it performed.
pub fn root_utility(assigned_load: f64, actual_rate: f64) -> f64 {
    let v = -assigned_load * actual_rate;
    let c = assigned_load * actual_rate;
    v + c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bids() -> LinearNetwork {
        LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7])
    }

    #[test]
    fn valuation_is_cost() {
        assert_eq!(valuation(0.5, 2.0), -1.0);
        assert_eq!(valuation(0.0, 2.0), 0.0);
    }

    #[test]
    fn recompense_only_for_overload() {
        assert_eq!(recompense(0.3, 0.3, 2.0), 0.0);
        assert_eq!(recompense(0.3, 0.5, 2.0), 0.4);
        assert_eq!(
            recompense(0.3, 0.2, 2.0),
            0.0,
            "underload earns nothing extra"
        );
    }

    #[test]
    fn compensation_covers_assigned_plus_extra() {
        // α = 0.3, α̃ = 0.5, w̃ = 2 → C = 0.6 + 0.4 = 1.0 = α̃ w̃
        assert!((compensation(0.3, 0.5, 2.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn compliant_utility_is_pure_bonus() {
        // When α̃ = α and w̃ = w (bid), V + C = 0 so U = B.
        let net = bids();
        for j in 1..net.len() {
            let sol = dlt::linear::solve(&net);
            let inputs = PaymentInputs {
                assigned_load: sol.alloc.alpha(j),
                actual_load: sol.alloc.alpha(j),
                actual_rate: net.w(j),
            };
            let p = settle(&net, j, inputs, 0.0);
            assert!((p.utility - p.bonus).abs() < 1e-12, "P{j}");
        }
    }

    #[test]
    fn truthful_bonus_equals_marginal_improvement() {
        // At truthful full-speed conduct, ŵ_j = w̄_j and the realized
        // equivalent is exactly w̄_{j-1}, so B_j = w_{j-1} − w̄_{j-1} ≥ 0.
        let net = bids();
        let sol = dlt::linear::solve(&net);
        for j in 1..net.len() {
            let b = bonus(&net, j, net.w(j));
            let expected = net.w(j - 1) - sol.equivalent[j - 1];
            assert!((b - expected).abs() < 1e-12, "P{j}: {b} vs {expected}");
            assert!(b >= 0.0);
        }
    }

    #[test]
    fn adjusted_equivalent_terminal_is_actual() {
        let net = bids();
        let m = net.last_index();
        assert_eq!(adjusted_equivalent(&net, m, 7.5), 7.5);
    }

    #[test]
    fn adjusted_equivalent_fast_interior_unchanged() {
        let net = bids();
        let w_bar_1 = dlt::linear::equivalent_time(&net.suffix(1));
        // executing faster than bid leaves the equivalent at the bid value
        assert!((adjusted_equivalent(&net, 1, net.w(1) * 0.5) - w_bar_1).abs() < 1e-12);
    }

    #[test]
    fn adjusted_equivalent_slow_interior_grows() {
        let net = bids();
        let w_bar_1 = dlt::linear::equivalent_time(&net.suffix(1));
        let adj = adjusted_equivalent(&net, 1, net.w(1) * 2.0);
        assert!(adj > w_bar_1, "running slower must worsen the equivalent");
    }

    #[test]
    fn slow_execution_reduces_bonus() {
        let net = bids();
        for j in 1..net.len() {
            let honest = bonus(&net, j, net.w(j));
            let slow = bonus(&net, j, net.w(j) * 3.0);
            assert!(
                slow < honest - 1e-12,
                "P{j}: slow {slow} vs honest {honest}"
            );
        }
    }

    #[test]
    fn fast_execution_does_not_raise_bonus() {
        let net = bids();
        for j in 1..net.len() - 1 {
            let honest = bonus(&net, j, net.w(j));
            let fast = bonus(&net, j, net.w(j) * 0.5);
            assert!(
                (fast - honest).abs() < 1e-12,
                "interior P{j} cannot gain by overdelivering"
            );
        }
    }

    #[test]
    fn zero_actual_load_pays_nothing() {
        let net = bids();
        let p = settle(
            &net,
            1,
            PaymentInputs {
                assigned_load: 0.2,
                actual_load: 0.0,
                actual_rate: 2.0,
            },
            0.0,
        );
        assert_eq!(p.payment, 0.0);
        assert_eq!(p.utility, 0.0);
    }

    #[test]
    fn overloaded_victim_is_made_whole() {
        // Extra work is fully reimbursed: utility unchanged by the overload.
        let net = bids();
        let sol = dlt::linear::solve(&net);
        let j = 2;
        let base = PaymentInputs {
            assigned_load: sol.alloc.alpha(j),
            actual_load: sol.alloc.alpha(j),
            actual_rate: net.w(j),
        };
        let overloaded = PaymentInputs {
            actual_load: sol.alloc.alpha(j) + 0.1,
            ..base
        };
        let u0 = settle(&net, j, base, 0.0).utility;
        let u1 = settle(&net, j, overloaded, 0.0).utility;
        assert!(
            (u0 - u1).abs() < 1e-12,
            "recompense must neutralize the overload"
        );
    }

    #[test]
    fn solution_bonus_adds_linearly() {
        let net = bids();
        let sol = dlt::linear::solve(&net);
        let inputs = PaymentInputs {
            assigned_load: sol.alloc.alpha(1),
            actual_load: sol.alloc.alpha(1),
            actual_rate: net.w(1),
        };
        let without = settle(&net, 1, inputs, 0.0);
        let with = settle(&net, 1, inputs, 0.25);
        assert!((with.utility - without.utility - 0.25).abs() < 1e-15);
    }

    #[test]
    fn pro_rata_makes_failed_node_whole_without_bonus() {
        let p = pro_rata(0.3, 2.0);
        assert_eq!(p.payment, 0.6);
        assert_eq!(p.bonus, 0.0);
        assert_eq!(p.recompense, 0.0);
        assert!(
            p.utility.abs() < 1e-15,
            "exact cost reimbursement, nothing more"
        );
    }

    #[test]
    fn pro_rata_is_worse_than_finishing() {
        // A node that finishes earns its bonus; one that fails earns zero
        // utility — so failing is never preferable, even without a fine.
        let net = bids();
        let sol = dlt::linear::solve(&net);
        for j in 1..net.len() {
            let full = settle(
                &net,
                j,
                PaymentInputs {
                    assigned_load: sol.alloc.alpha(j),
                    actual_load: sol.alloc.alpha(j),
                    actual_rate: net.w(j),
                },
                0.0,
            );
            let failed = pro_rata(0.5 * sol.alloc.alpha(j), net.w(j));
            assert!(full.utility >= failed.utility - 1e-15, "P{j}");
        }
    }

    #[test]
    fn pro_rata_zero_progress_pays_nothing() {
        let p = pro_rata(0.0, 3.0);
        assert_eq!(p.payment, 0.0);
        assert_eq!(p.utility, 0.0);
    }

    #[test]
    fn root_utility_is_zero() {
        assert_eq!(root_utility(0.4, 1.0), 0.0);
        assert_eq!(root_utility(0.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "strategic")]
    fn bonus_undefined_for_root() {
        adjusted_equivalent(&bids(), 0, 1.0);
    }
}
