//! The DLS-LBL payment functions (eqs. 4.3–4.13).
//!
//! For a strategic processor `P_j` (`j ≥ 1`) the mechanism computes:
//!
//! * **valuation** `V_j = −α̃_j · w̃_j` (eq. 4.5) — the cost of the work
//!   actually performed;
//! * **compensation** `C_j = α_j w̃_j + E_j` (eq. 4.7) with the
//!   **recompense** `E_j = (α̃_j − α_j) w̃_j` when `α̃_j ≥ α_j`, else 0
//!   (eq. 4.8) — overloaded victims are paid for the extra work;
//! * **bonus** `B_j = w_{j-1} − w̄_{j-1}(α(bids), actual)` (eq. 4.9) — the
//!   *improvement* `P_j` and its successors bring to the predecessor's
//!   equivalent processing time, evaluated at the allocation implied by the
//!   bids but re-timed with `P_j`'s *actual* performance via eqs. 4.10–4.11;
//! * optional **solution bonus** `S` (eq. 4.13) for the
//!   selfish-and-annoying extension.
//!
//! Total payment `Q_j = C_j + B_j (+ S)` if the processor computed anything
//! (`α̃_j > 0`), else 0 (eq. 4.6); utility `U_j = V_j + Q_j` (eq. 4.4).

use dlt::batch::{self, SuffixSolutions};
use dlt::linear;
use dlt::model::LinearNetwork;

/// Everything the payment computation for one processor depends on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaymentInputs {
    /// Prescribed assignment `α_j` (units of total load) from the bids.
    pub assigned_load: f64,
    /// Load actually computed, `α̃_j`.
    pub actual_load: f64,
    /// Actual unit processing time `w̃_j` recorded by the meter.
    pub actual_rate: f64,
}

/// Itemized payment for one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaymentBreakdown {
    /// Valuation `V_j` (non-positive).
    pub valuation: f64,
    /// Compensation `C_j` including recompense.
    pub compensation: f64,
    /// Recompense component `E_j` of the compensation.
    pub recompense: f64,
    /// Bonus `B_j`.
    pub bonus: f64,
    /// Solution bonus `S` (0 unless the extension is active and a solution
    /// was found).
    pub solution_bonus: f64,
    /// Total payment `Q_j`.
    pub payment: f64,
    /// Utility `U_j = V_j + Q_j`.
    pub utility: f64,
}

/// Valuation `V_j = −α̃_j w̃_j` (eq. 4.5).
#[inline]
pub fn valuation(actual_load: f64, actual_rate: f64) -> f64 {
    -actual_load * actual_rate
}

/// Recompense `E_j` (eq. 4.8).
#[inline]
pub fn recompense(assigned_load: f64, actual_load: f64, actual_rate: f64) -> f64 {
    if actual_load >= assigned_load {
        (actual_load - assigned_load) * actual_rate
    } else {
        0.0
    }
}

/// Compensation `C_j = α_j w̃_j + E_j` (eq. 4.7).
#[inline]
pub fn compensation(assigned_load: f64, actual_load: f64, actual_rate: f64) -> f64 {
    assigned_load * actual_rate + recompense(assigned_load, actual_load, actual_rate)
}

/// The adjusted equivalent bid `ŵ_j` of the segment `P_j … P_m`
/// (eqs. 4.10–4.11): dominated by `P_j`'s actual performance when it ran
/// slower than bid, unchanged when it ran at or faster than bid.
///
/// * `bids` — the declared rates of the whole chain (used to derive the
///   local fraction `α̂_j` and the equivalent time `w̄_j`);
/// * `j` — the processor being paid;
/// * `actual_rate` — its metered `w̃_j`.
pub fn adjusted_equivalent(bids: &LinearNetwork, j: usize, actual_rate: f64) -> f64 {
    let m = bids.last_index();
    assert!(
        j >= 1 && j <= m,
        "payments are defined for strategic processors 1..=m"
    );
    let sol = linear::solve(&bids.suffix(j));
    let alpha_hat_j = sol.local.alpha_hat(0);
    let w_bar_j = sol.makespan();
    if j == m {
        // eq. 4.10: the terminal processor's equivalent is itself.
        return actual_rate;
    }
    if actual_rate >= bids.w(j) {
        alpha_hat_j * actual_rate // eq. 4.11, slow case
    } else {
        w_bar_j // eq. 4.11, fast case: equivalent time unchanged
    }
}

/// The realized equivalent time of the segment `P_{j-1} … P_m`
/// (the `w̄_{j-1}(α(bids), actual)` term of eq. 4.9): the two-element
/// reduction of `P_{j-1}` against the adjusted equivalent successor, with
/// the split fixed by the *bids* but the successor re-timed by `ŵ_j`.
pub fn realized_predecessor_equivalent(bids: &LinearNetwork, j: usize, actual_rate: f64) -> f64 {
    assert!(j >= 1);
    let w_pred = bids.w(j - 1);
    let z_j = bids.z(j);
    let w_bar_j = linear::equivalent_time(&bids.suffix(j));
    // Local split of P_{j-1} vs its successor segment, from the bids (eq. 2.7).
    let tail = w_bar_j + z_j;
    let alpha_hat_pred = tail / (w_pred + tail);
    let w_hat_j = adjusted_equivalent(bids, j, actual_rate);
    let front = alpha_hat_pred * w_pred;
    let back = (1.0 - alpha_hat_pred) * (z_j + w_hat_j);
    front.max(back)
}

/// Bonus `B_j = w_{j-1} − w̄_{j-1}(α(bids), actual)` (eq. 4.9).
pub fn bonus(bids: &LinearNetwork, j: usize, actual_rate: f64) -> f64 {
    bids.w(j - 1) - realized_predecessor_equivalent(bids, j, actual_rate)
}

/// [`adjusted_equivalent`] evaluated from a precomputed suffix sweep:
/// `sfx.alpha_hat_front(j)` / `sfx.makespan(j)` are bit-identical to the
/// `solve(&bids.suffix(j))` quantities of the scalar path, and the branch
/// structure and FP operations mirror [`adjusted_equivalent`] exactly.
fn adjusted_equivalent_from(
    sfx: &SuffixSolutions,
    bids: &LinearNetwork,
    j: usize,
    actual_rate: f64,
) -> f64 {
    let m = bids.last_index();
    assert!(
        j >= 1 && j <= m,
        "payments are defined for strategic processors 1..=m"
    );
    if j == m {
        // eq. 4.10: the terminal processor's equivalent is itself.
        return actual_rate;
    }
    if actual_rate >= bids.w(j) {
        sfx.alpha_hat_front(j) * actual_rate // eq. 4.11, slow case
    } else {
        sfx.makespan(j) // eq. 4.11, fast case: equivalent time unchanged
    }
}

/// [`realized_predecessor_equivalent`] evaluated from a precomputed suffix
/// sweep. `sfx.equivalent_time(j)` reproduces the scalar path's
/// `equivalent_time(&bids.suffix(j))` (which uses a *different* FP operation
/// order than `solve` — both recursions live in the sweep precisely so this
/// stays bit-identical).
fn realized_predecessor_equivalent_from(
    sfx: &SuffixSolutions,
    bids: &LinearNetwork,
    j: usize,
    actual_rate: f64,
) -> f64 {
    assert!(j >= 1);
    let w_pred = bids.w(j - 1);
    let z_j = bids.z(j);
    let w_bar_j = sfx.equivalent_time(j);
    // Local split of P_{j-1} vs its successor segment, from the bids (eq. 2.7).
    let tail = w_bar_j + z_j;
    let alpha_hat_pred = tail / (w_pred + tail);
    let w_hat_j = adjusted_equivalent_from(sfx, bids, j, actual_rate);
    let front = alpha_hat_pred * w_pred;
    let back = (1.0 - alpha_hat_pred) * (z_j + w_hat_j);
    front.max(back)
}

/// Payment for processor `j` given a precomputed suffix sweep of the bid
/// chain. O(1) per call; bit-identical to [`settle`] (pinned by the
/// payment-parity suite in `mechanism/tests/payment_parity.rs`). Callers
/// settling several agents of one bid profile should compute
/// [`dlt::batch::solve_all_suffixes`] once and use this.
pub fn settle_with(
    sfx: &SuffixSolutions,
    bids: &LinearNetwork,
    j: usize,
    inputs: PaymentInputs,
    solution_bonus: f64,
) -> PaymentBreakdown {
    let v = valuation(inputs.actual_load, inputs.actual_rate);
    if inputs.actual_load <= 0.0 {
        // eq. 4.6: a processor that computed nothing is paid nothing.
        return PaymentBreakdown {
            valuation: v,
            compensation: 0.0,
            recompense: 0.0,
            bonus: 0.0,
            solution_bonus: 0.0,
            payment: 0.0,
            utility: v,
        };
    }
    let e = recompense(inputs.assigned_load, inputs.actual_load, inputs.actual_rate);
    let c = compensation(inputs.assigned_load, inputs.actual_load, inputs.actual_rate);
    let b = bids.w(j - 1) - realized_predecessor_equivalent_from(sfx, bids, j, inputs.actual_rate);
    let q = c + b + solution_bonus;
    PaymentBreakdown {
        valuation: v,
        compensation: c,
        recompense: e,
        bonus: b,
        solution_bonus,
        payment: q,
        utility: v + q,
    }
}

/// Settle every strategic processor of one bid profile in O(m) total: one
/// suffix sweep ([`dlt::batch::solve_all_suffixes`]) replaces the former
/// per-agent `solve_suffix` loop (O(m²)). `inputs[idx]` belongs to
/// `P_{idx+1}`. Every breakdown is bit-identical to calling [`settle`]
/// per agent.
pub fn settle_all(
    bids: &LinearNetwork,
    inputs: &[PaymentInputs],
    solution_bonus: f64,
) -> Vec<PaymentBreakdown> {
    obs::count!("mechanism.payment.settle_all", "m" => bids.last_index());
    assert_eq!(
        inputs.len(),
        bids.last_index(),
        "one PaymentInputs per strategic processor"
    );
    let sfx = batch::solve_all_suffixes(bids);
    inputs
        .iter()
        .enumerate()
        .map(|(idx, inp)| settle_with(&sfx, bids, idx + 1, *inp, solution_bonus))
        .collect()
}

/// Full payment and utility for processor `j` (eqs. 4.4–4.9, plus the
/// optional eq. 4.13 solution bonus).
///
/// This is the scalar per-suffix path (each call re-solves the suffix
/// chains); it doubles as the frozen reference that the O(m) batch path
/// ([`settle_all`] / [`settle_with`]) is differentially pinned against.
pub fn settle(
    bids: &LinearNetwork,
    j: usize,
    inputs: PaymentInputs,
    solution_bonus: f64,
) -> PaymentBreakdown {
    obs::count!("mechanism.payment.settle", "j" => j);
    let v = valuation(inputs.actual_load, inputs.actual_rate);
    if inputs.actual_load <= 0.0 {
        // eq. 4.6: a processor that computed nothing is paid nothing.
        return PaymentBreakdown {
            valuation: v,
            compensation: 0.0,
            recompense: 0.0,
            bonus: 0.0,
            solution_bonus: 0.0,
            payment: 0.0,
            utility: v,
        };
    }
    let e = recompense(inputs.assigned_load, inputs.actual_load, inputs.actual_rate);
    let c = compensation(inputs.assigned_load, inputs.actual_load, inputs.actual_rate);
    let b = bonus(bids, j, inputs.actual_rate);
    let q = c + b + solution_bonus;
    PaymentBreakdown {
        valuation: v,
        compensation: c,
        recompense: e,
        bonus: b,
        solution_bonus,
        payment: q,
        utility: v + q,
    }
}

/// Pro-rata settlement for a processor that crash-stopped or stalled after
/// finishing only `completed_load` of its assignment: it is compensated for
/// exactly the work it metered (`completed · w̃`), with no recompense and no
/// bonus — failure is no-fault (no fine), but the bonus rewards *finishing*
/// the prescribed share, which a failed node did not do. Utility is
/// therefore exactly zero: the node is made whole for its cost, nothing
/// more.
pub fn pro_rata(completed_load: f64, actual_rate: f64) -> PaymentBreakdown {
    obs::count!("mechanism.payment.pro_rata");
    obs::hist!("mechanism.payment.pro_rata_load", completed_load);
    let v = valuation(completed_load, actual_rate);
    let c = completed_load * actual_rate;
    PaymentBreakdown {
        valuation: v,
        compensation: c,
        recompense: 0.0,
        bonus: 0.0,
        solution_bonus: 0.0,
        payment: c,
        utility: v + c,
    }
}

/// Wage for recovery work re-assigned after a chain splice: exactly the
/// metered cost `load · w̃` of the extra work — recovery is
/// utility-neutral for survivors (no bonus, no recompense; the work was
/// never part of anyone's prescribed share, so there is nothing to
/// improve on and nothing to be overloaded against).
pub fn recovery_wage(load: f64, rate: f64) -> f64 {
    obs::count!("mechanism.payment.recovery_wage");
    obs::hist!("mechanism.payment.recovery_wage_load", load);
    load * rate
}

/// Utility of the obedient root (eq. 4.3): always zero — the mechanism
/// reimburses exactly the cost of the work it performed.
pub fn root_utility(assigned_load: f64, actual_rate: f64) -> f64 {
    let v = -assigned_load * actual_rate;
    let c = assigned_load * actual_rate;
    v + c
}

/// Settlement of one *job* of size `load` for processor `j`
/// (the multi-job serving path, PR 9).
///
/// `inputs` are in **absolute job units** (`α_j · load`, not fractions):
/// valuation, compensation and recompense are linear in load, so they are
/// computed directly from the absolute quantities. The bonus (eq. 4.9) is
/// a *rate* improvement — it prices the predecessor's equivalent
/// processing time per unit load — so a job of size `load` pays
/// `bonus(bids, j, w̃_j) · load`. With `load = 1` and fractional inputs
/// this is exactly [`settle`] (multiplying the bonus by 1.0 is exact).
pub fn settle_job(
    bids: &LinearNetwork,
    j: usize,
    inputs: PaymentInputs,
    load: f64,
    solution_bonus: f64,
) -> PaymentBreakdown {
    obs::count!("mechanism.payment.settle_job", "j" => j);
    let v = valuation(inputs.actual_load, inputs.actual_rate);
    if inputs.actual_load <= 0.0 {
        // eq. 4.6: a processor that computed nothing is paid nothing.
        return PaymentBreakdown {
            valuation: v,
            compensation: 0.0,
            recompense: 0.0,
            bonus: 0.0,
            solution_bonus: 0.0,
            payment: 0.0,
            utility: v,
        };
    }
    let e = recompense(inputs.assigned_load, inputs.actual_load, inputs.actual_rate);
    let c = compensation(inputs.assigned_load, inputs.actual_load, inputs.actual_rate);
    let b = bonus(bids, j, inputs.actual_rate) * load;
    let q = c + b + solution_bonus;
    PaymentBreakdown {
        valuation: v,
        compensation: c,
        recompense: e,
        bonus: b,
        solution_bonus,
        payment: q,
        utility: v + q,
    }
}

/// Cross-round payment carry-over: per-installment postings accumulate
/// into one per-job ledger entry per strategic processor, settled once at
/// job completion via [`settle_job`].
///
/// Valuation, compensation and recompense are linear in load, so summing
/// the per-installment assigned/actual loads (and load-averaging the
/// metered rate) reproduces the one-shot settlement of the whole job —
/// no processor can gain or lose by the load being split into rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct JobLedger {
    /// Installments posted so far.
    postings: usize,
    /// Σ assigned load per strategic processor (`P_1 …`).
    assigned: Vec<f64>,
    /// Σ actual load per strategic processor.
    actual: Vec<f64>,
    /// Σ actual_load · actual_rate per strategic processor — the metered
    /// cost, from which the load-weighted aggregate rate is recovered.
    cost: Vec<f64>,
}

impl JobLedger {
    /// An empty ledger for `m` strategic processors (`P_1 ..= P_m`).
    pub fn new(m: usize) -> Self {
        Self {
            postings: 0,
            assigned: vec![0.0; m],
            actual: vec![0.0; m],
            cost: vec![0.0; m],
        }
    }

    /// Post one installment: `inputs[idx]` belongs to `P_{idx+1}`, in
    /// absolute job units.
    pub fn post(&mut self, inputs: &[PaymentInputs]) {
        assert_eq!(
            inputs.len(),
            self.assigned.len(),
            "one posting per strategic processor"
        );
        for (idx, inp) in inputs.iter().enumerate() {
            self.assigned[idx] += inp.assigned_load;
            self.actual[idx] += inp.actual_load;
            self.cost[idx] += inp.actual_load * inp.actual_rate;
        }
        self.postings += 1;
    }

    /// Number of installments posted so far.
    pub fn postings(&self) -> usize {
        self.postings
    }

    /// Aggregate [`PaymentInputs`] for `P_j` (absolute job units; the rate
    /// is the load-weighted mean of the posted rates — exact when every
    /// installment ran at the same metered rate).
    pub fn aggregate(&self, bids: &LinearNetwork, j: usize) -> PaymentInputs {
        assert!(j >= 1 && j <= self.assigned.len());
        let idx = j - 1;
        let actual = self.actual[idx];
        let rate = if actual > 0.0 {
            self.cost[idx] / actual
        } else {
            bids.w(j) // no work metered; rate is irrelevant (eq. 4.6 pays 0)
        };
        PaymentInputs {
            assigned_load: self.assigned[idx],
            actual_load: actual,
            actual_rate: rate,
        }
    }

    /// Settle the whole job in one entry per strategic processor.
    pub fn finalize(
        &self,
        bids: &LinearNetwork,
        load: f64,
        solution_bonus: f64,
    ) -> Vec<PaymentBreakdown> {
        obs::count!("mechanism.payment.job_finalize", "rounds" => self.postings);
        (1..=self.assigned.len())
            .map(|j| settle_job(bids, j, self.aggregate(bids, j), load, solution_bonus))
            .collect()
    }
}

/// Utility processor `P_j` collects across a multi-job batch when the
/// chain's declared profile is `bids`, its true unit processing time is
/// `true_rate`, and jobs of sizes `loads` each ship in `rounds` uniform
/// installments.
///
/// Allocations follow the bids (the mechanism prescribes them); `P_j`
/// executes its share at its true rate while every other processor runs
/// as bid. Each job's installment postings flow through a [`JobLedger`]
/// and settle at completion — this is the exact path the `svc::jobs`
/// scheduler takes, so sweeping `bids.w(j)` over misreports with this
/// function is the jobs-mode strategyproofness check: per unit load the
/// utility is the eq. 4.9 bonus, whose maximum is at the truthful bid, and
/// a batch utility is a positive combination of unit utilities — so no
/// misreport can profit across the batch.
pub fn jobs_batch_utility(
    bids: &LinearNetwork,
    j: usize,
    true_rate: f64,
    loads: &[f64],
    rounds: usize,
) -> f64 {
    assert!(rounds >= 1);
    let m = bids.last_index();
    assert!(j >= 1 && j <= m);
    let sol = linear::solve(bids);
    let share = 1.0 / rounds as f64;
    let mut total = 0.0;
    for &load in loads {
        let mut ledger = JobLedger::new(m);
        for _ in 0..rounds {
            let postings: Vec<PaymentInputs> = (1..=m)
                .map(|i| {
                    let amount = sol.alloc.alpha(i) * share * load;
                    PaymentInputs {
                        assigned_load: amount,
                        actual_load: amount,
                        actual_rate: if i == j { true_rate } else { bids.w(i) },
                    }
                })
                .collect();
            ledger.post(&postings);
        }
        total += ledger.finalize(bids, load, 0.0)[j - 1].utility;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bids() -> LinearNetwork {
        LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7])
    }

    #[test]
    fn valuation_is_cost() {
        assert_eq!(valuation(0.5, 2.0), -1.0);
        assert_eq!(valuation(0.0, 2.0), 0.0);
    }

    #[test]
    fn recompense_only_for_overload() {
        assert_eq!(recompense(0.3, 0.3, 2.0), 0.0);
        assert_eq!(recompense(0.3, 0.5, 2.0), 0.4);
        assert_eq!(
            recompense(0.3, 0.2, 2.0),
            0.0,
            "underload earns nothing extra"
        );
    }

    #[test]
    fn compensation_covers_assigned_plus_extra() {
        // α = 0.3, α̃ = 0.5, w̃ = 2 → C = 0.6 + 0.4 = 1.0 = α̃ w̃
        assert!((compensation(0.3, 0.5, 2.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn compliant_utility_is_pure_bonus() {
        // When α̃ = α and w̃ = w (bid), V + C = 0 so U = B.
        let net = bids();
        for j in 1..net.len() {
            let sol = dlt::linear::solve(&net);
            let inputs = PaymentInputs {
                assigned_load: sol.alloc.alpha(j),
                actual_load: sol.alloc.alpha(j),
                actual_rate: net.w(j),
            };
            let p = settle(&net, j, inputs, 0.0);
            assert!((p.utility - p.bonus).abs() < 1e-12, "P{j}");
        }
    }

    #[test]
    fn truthful_bonus_equals_marginal_improvement() {
        // At truthful full-speed conduct, ŵ_j = w̄_j and the realized
        // equivalent is exactly w̄_{j-1}, so B_j = w_{j-1} − w̄_{j-1} ≥ 0.
        let net = bids();
        let sol = dlt::linear::solve(&net);
        for j in 1..net.len() {
            let b = bonus(&net, j, net.w(j));
            let expected = net.w(j - 1) - sol.equivalent[j - 1];
            assert!((b - expected).abs() < 1e-12, "P{j}: {b} vs {expected}");
            assert!(b >= 0.0);
        }
    }

    #[test]
    fn adjusted_equivalent_terminal_is_actual() {
        let net = bids();
        let m = net.last_index();
        assert_eq!(adjusted_equivalent(&net, m, 7.5), 7.5);
    }

    #[test]
    fn adjusted_equivalent_fast_interior_unchanged() {
        let net = bids();
        let w_bar_1 = dlt::linear::equivalent_time(&net.suffix(1));
        // executing faster than bid leaves the equivalent at the bid value
        assert!((adjusted_equivalent(&net, 1, net.w(1) * 0.5) - w_bar_1).abs() < 1e-12);
    }

    #[test]
    fn adjusted_equivalent_slow_interior_grows() {
        let net = bids();
        let w_bar_1 = dlt::linear::equivalent_time(&net.suffix(1));
        let adj = adjusted_equivalent(&net, 1, net.w(1) * 2.0);
        assert!(adj > w_bar_1, "running slower must worsen the equivalent");
    }

    #[test]
    fn slow_execution_reduces_bonus() {
        let net = bids();
        for j in 1..net.len() {
            let honest = bonus(&net, j, net.w(j));
            let slow = bonus(&net, j, net.w(j) * 3.0);
            assert!(
                slow < honest - 1e-12,
                "P{j}: slow {slow} vs honest {honest}"
            );
        }
    }

    #[test]
    fn fast_execution_does_not_raise_bonus() {
        let net = bids();
        for j in 1..net.len() - 1 {
            let honest = bonus(&net, j, net.w(j));
            let fast = bonus(&net, j, net.w(j) * 0.5);
            assert!(
                (fast - honest).abs() < 1e-12,
                "interior P{j} cannot gain by overdelivering"
            );
        }
    }

    #[test]
    fn zero_actual_load_pays_nothing() {
        let net = bids();
        let p = settle(
            &net,
            1,
            PaymentInputs {
                assigned_load: 0.2,
                actual_load: 0.0,
                actual_rate: 2.0,
            },
            0.0,
        );
        assert_eq!(p.payment, 0.0);
        assert_eq!(p.utility, 0.0);
    }

    #[test]
    fn overloaded_victim_is_made_whole() {
        // Extra work is fully reimbursed: utility unchanged by the overload.
        let net = bids();
        let sol = dlt::linear::solve(&net);
        let j = 2;
        let base = PaymentInputs {
            assigned_load: sol.alloc.alpha(j),
            actual_load: sol.alloc.alpha(j),
            actual_rate: net.w(j),
        };
        let overloaded = PaymentInputs {
            actual_load: sol.alloc.alpha(j) + 0.1,
            ..base
        };
        let u0 = settle(&net, j, base, 0.0).utility;
        let u1 = settle(&net, j, overloaded, 0.0).utility;
        assert!(
            (u0 - u1).abs() < 1e-12,
            "recompense must neutralize the overload"
        );
    }

    #[test]
    fn solution_bonus_adds_linearly() {
        let net = bids();
        let sol = dlt::linear::solve(&net);
        let inputs = PaymentInputs {
            assigned_load: sol.alloc.alpha(1),
            actual_load: sol.alloc.alpha(1),
            actual_rate: net.w(1),
        };
        let without = settle(&net, 1, inputs, 0.0);
        let with = settle(&net, 1, inputs, 0.25);
        assert!((with.utility - without.utility - 0.25).abs() < 1e-15);
    }

    #[test]
    fn pro_rata_makes_failed_node_whole_without_bonus() {
        let p = pro_rata(0.3, 2.0);
        assert_eq!(p.payment, 0.6);
        assert_eq!(p.bonus, 0.0);
        assert_eq!(p.recompense, 0.0);
        assert!(
            p.utility.abs() < 1e-15,
            "exact cost reimbursement, nothing more"
        );
    }

    #[test]
    fn pro_rata_is_worse_than_finishing() {
        // A node that finishes earns its bonus; one that fails earns zero
        // utility — so failing is never preferable, even without a fine.
        let net = bids();
        let sol = dlt::linear::solve(&net);
        for j in 1..net.len() {
            let full = settle(
                &net,
                j,
                PaymentInputs {
                    assigned_load: sol.alloc.alpha(j),
                    actual_load: sol.alloc.alpha(j),
                    actual_rate: net.w(j),
                },
                0.0,
            );
            let failed = pro_rata(0.5 * sol.alloc.alpha(j), net.w(j));
            assert!(full.utility >= failed.utility - 1e-15, "P{j}");
        }
    }

    #[test]
    fn pro_rata_zero_progress_pays_nothing() {
        let p = pro_rata(0.0, 3.0);
        assert_eq!(p.payment, 0.0);
        assert_eq!(p.utility, 0.0);
    }

    #[test]
    fn root_utility_is_zero() {
        assert_eq!(root_utility(0.4, 1.0), 0.0);
        assert_eq!(root_utility(0.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "strategic")]
    fn bonus_undefined_for_root() {
        adjusted_equivalent(&bids(), 0, 1.0);
    }

    #[test]
    fn settle_job_unit_load_equals_settle() {
        let net = bids();
        let sol = dlt::linear::solve(&net);
        for j in 1..net.len() {
            let inputs = PaymentInputs {
                assigned_load: sol.alloc.alpha(j),
                actual_load: sol.alloc.alpha(j),
                actual_rate: net.w(j),
            };
            let a = settle(&net, j, inputs, 0.0);
            let b = settle_job(&net, j, inputs, 1.0, 0.0);
            assert_eq!(a, b, "P{j}: unit-load job settlement must be settle");
        }
    }

    #[test]
    fn settle_job_scales_linearly_in_load() {
        let net = bids();
        let sol = dlt::linear::solve(&net);
        let load = 2.5;
        for j in 1..net.len() {
            let unit = PaymentInputs {
                assigned_load: sol.alloc.alpha(j),
                actual_load: sol.alloc.alpha(j),
                actual_rate: net.w(j),
            };
            let scaled = PaymentInputs {
                assigned_load: unit.assigned_load * load,
                actual_load: unit.actual_load * load,
                actual_rate: unit.actual_rate,
            };
            let u1 = settle(&net, j, unit, 0.0).utility;
            let ul = settle_job(&net, j, scaled, load, 0.0).utility;
            assert!((ul - u1 * load).abs() < 1e-9, "P{j}: {ul} vs {}", u1 * load);
        }
    }

    #[test]
    fn ledger_finalize_matches_one_shot_settlement() {
        // Posting k uniform installments and settling the aggregate must
        // reproduce settling the whole job in one entry.
        let net = bids();
        let sol = dlt::linear::solve(&net);
        let m = net.last_index();
        let load = 1.75;
        for k in [1usize, 3, 8] {
            let mut ledger = JobLedger::new(m);
            let share = 1.0 / k as f64;
            for _ in 0..k {
                let postings: Vec<PaymentInputs> = (1..=m)
                    .map(|i| PaymentInputs {
                        assigned_load: sol.alloc.alpha(i) * share * load,
                        actual_load: sol.alloc.alpha(i) * share * load,
                        actual_rate: net.w(i),
                    })
                    .collect();
                ledger.post(&postings);
            }
            assert_eq!(ledger.postings(), k);
            let settled = ledger.finalize(&net, load, 0.0);
            for j in 1..=m {
                let one_shot = settle_job(
                    &net,
                    j,
                    PaymentInputs {
                        assigned_load: sol.alloc.alpha(j) * load,
                        actual_load: sol.alloc.alpha(j) * load,
                        actual_rate: net.w(j),
                    },
                    load,
                    0.0,
                );
                let s = settled[j - 1];
                assert!(
                    (s.utility - one_shot.utility).abs() < 1e-9
                        && (s.payment - one_shot.payment).abs() < 1e-9
                        && (s.bonus - one_shot.bonus).abs() < 1e-9,
                    "P{j} k={k}: {s:?} vs {one_shot:?}"
                );
            }
        }
    }

    #[test]
    fn ledger_zero_work_pays_nothing() {
        let net = bids();
        let m = net.last_index();
        let mut ledger = JobLedger::new(m);
        ledger.post(&vec![
            PaymentInputs {
                assigned_load: 0.0,
                actual_load: 0.0,
                actual_rate: 1.0,
            };
            m
        ]);
        for p in ledger.finalize(&net, 1.0, 0.0) {
            assert_eq!(p.payment, 0.0);
            assert_eq!(p.utility, 0.0);
        }
    }

    #[test]
    fn jobs_batch_truthful_bid_is_dominant() {
        // E2-style sweep through the job path: no misreported bid may beat
        // the truthful one across a multi-job batch.
        let truth = bids();
        let loads = [1.0, 0.5, 2.0];
        for j in 1..truth.len() {
            let true_rate = truth.w(j);
            let honest = payment_sweep_utility(&truth, j, true_rate, &loads);
            for factor in [0.25, 0.5, 0.8, 1.25, 2.0, 4.0] {
                let mut w = truth.rates_w().to_vec();
                w[j] = true_rate * factor;
                let lied = LinearNetwork::from_rates(&w, &truth.rates_z());
                let misreported = payment_sweep_utility(&lied, j, true_rate, &loads);
                assert!(
                    misreported <= honest + 1e-9,
                    "P{j} ×{factor}: misreport {misreported} vs honest {honest}"
                );
            }
        }
    }

    fn payment_sweep_utility(
        declared: &LinearNetwork,
        j: usize,
        true_rate: f64,
        loads: &[f64],
    ) -> f64 {
        jobs_batch_utility(declared, j, true_rate, loads, 4)
    }
}
