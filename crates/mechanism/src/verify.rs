//! Empirical checkers for the mechanism's two headline properties:
//! strategyproofness (Theorem 5.3) and voluntary participation
//! (Theorem 5.4). These power the E4/E5 experiments and the property-based
//! test suite.

use crate::agent::{Agent, Conduct};
use crate::dls_lbl::DlsLbl;

/// One point on a utility-vs-bid curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The bid as a multiple of the true rate.
    pub bid_factor: f64,
    /// The absolute bid.
    pub bid: f64,
    /// The agent's resulting utility (best feasible execution for that
    /// bid: full capacity, prescribed load).
    pub utility: f64,
}

/// The utility-vs-bid curve for one agent, holding the others truthful (or
/// at any fixed conduct).
#[derive(Debug, Clone, PartialEq)]
pub struct BidSweep {
    /// Index of the swept strategic processor (1-based, `P_j`).
    pub agent: usize,
    /// The curve, in increasing bid order.
    pub points: Vec<SweepPoint>,
    /// Utility at the truthful bid.
    pub truthful_utility: f64,
}

impl BidSweep {
    /// True if no swept bid beats the truthful bid by more than `tol`.
    pub fn truthful_is_best(&self, tol: f64) -> bool {
        self.points
            .iter()
            .all(|p| p.utility <= self.truthful_utility + tol)
    }

    /// The most profitable deviation found (positive means a
    /// strategyproofness violation).
    pub fn max_gain(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.utility - self.truthful_utility)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Sweep agent `j`'s bid across `factors × t_j` while the other agents
/// follow `others` (typically truthful conduct).
///
/// For each bid the agent executes at its best feasible rate: full capacity
/// when the bid is at or above the true rate, and the (forced) true rate
/// when it underbids — it cannot compute faster than its hardware.
pub fn bid_sweep(
    mech: &DlsLbl,
    agents: &[Agent],
    j: usize,
    others: &[Conduct],
    factors: &[f64],
) -> BidSweep {
    assert!(j >= 1 && j <= agents.len());
    assert_eq!(others.len(), agents.len());
    let me = agents[j - 1];
    let utility_at = |bid: f64| -> f64 {
        let mut conducts = others.to_vec();
        conducts[j - 1] = Conduct {
            bid,
            actual_rate: me.feasible_actual(bid.min(me.true_rate)),
            actual_load: None,
        };
        mech.settle(&conducts, false).utility(j)
    };
    let truthful_utility = utility_at(me.true_rate);
    let points = factors
        .iter()
        .map(|&f| {
            let bid = me.true_rate * f;
            SweepPoint {
                bid_factor: f,
                bid,
                utility: utility_at(bid),
            }
        })
        .collect();
    BidSweep {
        agent: j,
        points,
        truthful_utility,
    }
}

/// Check strategyproofness for every agent over a factor grid, others
/// truthful. Returns the per-agent sweeps; the caller asserts
/// [`BidSweep::truthful_is_best`].
pub fn strategyproofness_report(mech: &DlsLbl, agents: &[Agent], factors: &[f64]) -> Vec<BidSweep> {
    let truthful: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
    (1..=agents.len())
        .map(|j| bid_sweep(mech, agents, j, &truthful, factors))
        .collect()
}

/// Voluntary participation report: truthful utilities for every agent.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticipationReport {
    /// Truthful utility per strategic processor (index 0 is `P_1`).
    pub utilities: Vec<f64>,
}

impl ParticipationReport {
    /// Minimum utility across agents.
    pub fn min_utility(&self) -> f64 {
        self.utilities.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// True if every truthful agent nets at least `-tol`.
    pub fn holds(&self, tol: f64) -> bool {
        self.min_utility() >= -tol
    }
}

/// Compute the participation report at the truthful profile.
pub fn participation_report(mech: &DlsLbl, agents: &[Agent]) -> ParticipationReport {
    let outcome = mech.settle_truthful(agents);
    ParticipationReport {
        utilities: (1..=agents.len()).map(|j| outcome.utility(j)).collect(),
    }
}

/// The default factor grid used by experiments: a dense sweep around the
/// truthful point (factor 1) plus aggressive outliers.
pub fn default_factor_grid() -> Vec<f64> {
    let mut f: Vec<f64> = (1..=40).map(|i| 0.25 + i as f64 * 0.05).collect(); // 0.30 … 2.25
    f.extend_from_slice(&[0.05, 0.1, 3.0, 5.0, 10.0]);
    f.sort_by(f64::total_cmp);
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DlsLbl, Vec<Agent>) {
        (
            DlsLbl::new(1.0, vec![0.2, 0.1, 0.7]),
            vec![Agent::new(2.0), Agent::new(0.5), Agent::new(4.0)],
        )
    }

    #[test]
    fn truthful_is_best_for_every_agent() {
        let (mech, agents) = setup();
        for sweep in strategyproofness_report(&mech, &agents, &default_factor_grid()) {
            assert!(
                sweep.truthful_is_best(1e-9),
                "P{} gains {} by deviating",
                sweep.agent,
                sweep.max_gain()
            );
        }
    }

    #[test]
    fn sweep_includes_truthful_point_with_zero_gain() {
        let (mech, agents) = setup();
        let truthful: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        let sweep = bid_sweep(&mech, &agents, 1, &truthful, &[1.0]);
        assert!((sweep.points[0].utility - sweep.truthful_utility).abs() < 1e-12);
        assert!((sweep.max_gain()).abs() < 1e-12);
    }

    #[test]
    fn participation_holds_truthfully() {
        let (mech, agents) = setup();
        let report = participation_report(&mech, &agents);
        assert!(report.holds(0.0), "min utility {}", report.min_utility());
        assert_eq!(report.utilities.len(), 3);
    }

    #[test]
    fn strategyproof_even_against_lying_others() {
        let (mech, agents) = setup();
        // Others misreport wildly; P2's truth must still dominate.
        let mut others: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        others[0] = Conduct::misreport(agents[0], 0.4);
        others[2] = Conduct::misreport(agents[2], 3.0);
        let sweep = bid_sweep(&mech, &agents, 2, &others, &default_factor_grid());
        assert!(sweep.truthful_is_best(1e-9), "gain {}", sweep.max_gain());
    }

    #[test]
    fn factor_grid_is_sorted_and_covers_truth() {
        let grid = default_factor_grid();
        assert!(grid.windows(2).all(|w| w[0] <= w[1]));
        assert!(grid.iter().any(|&f| (f - 1.0).abs() < 1e-12));
        assert!(grid[0] < 0.1);
        assert!(*grid.last().unwrap() >= 10.0);
    }
}
