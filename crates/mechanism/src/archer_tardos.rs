//! Archer–Tardos one-parameter payments \[1\] — the general framework the
//! paper cites for strategyproof mechanisms over monotone allocation rules.
//!
//! For agents whose private type is a single cost rate (`cost = load ×
//! rate`), any allocation rule with loads *non-increasing in the agent's
//! own bid* admits a strategyproof payment:
//!
//! ```text
//! P_j(b) = b_j·α_j(b) + ∫_{b_j}^{w_max} α_j(b_{-j}, u) du
//! ```
//!
//! over a bounded bid space `(0, w_max]` (DLT loads decay like `1/u`, so
//! the usual `∞` upper limit diverges — the bounded domain is essential
//! and is enforced here). A truthful agent's utility is
//! `∫_{t_j}^{w_max} α_j(u) du ≥ 0`: strategyproofness and voluntary
//! participation both fall out of monotonicity.
//!
//! This module instantiates the framework for the chain (Algorithm 1) and
//! for bus/star networks — the latter realizing the goal of the companion
//! bus mechanism \[14\] inside this codebase. Contrast with
//! [`crate::dls_lbl`]: Archer–Tardos is a **tamper-proof** mechanism (a
//! trusted center computes allocations and payments from bids alone),
//! whereas DLS-LBL works in the **autonomous-node** model where agents run
//! the algorithm themselves and must be kept honest by verification,
//! grievances and fines. The two coincide in *incentive* but differ in
//! *trust architecture* — exactly the gap the paper's protocol fills.

use dlt::linear;
use dlt::model::{LinearNetwork, StarNetwork};
use dlt::star;

/// A one-parameter allocation rule over `m` strategic agents.
pub trait AllocationRule {
    /// Number of strategic agents.
    fn num_agents(&self) -> usize;
    /// The load assigned to agent `j` (1-based) under the given bids.
    fn load(&self, bids: &[f64], j: usize) -> f64;
}

/// The chain rule: Algorithm 1 over (obedient root, strategic `P_1…P_m`).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRule {
    /// Root rate `w_0`.
    pub root_rate: f64,
    /// Link rates `z_1…z_m`.
    pub link_rates: Vec<f64>,
}

impl AllocationRule for ChainRule {
    fn num_agents(&self) -> usize {
        self.link_rates.len()
    }

    fn load(&self, bids: &[f64], j: usize) -> f64 {
        assert_eq!(bids.len(), self.num_agents());
        let mut w = vec![self.root_rate];
        w.extend_from_slice(bids);
        let net = LinearNetwork::from_rates(&w, &self.link_rates);
        linear::solve(&net).alloc.alpha(j)
    }
}

/// The star rule: sequential-distribution star (bus = uniform links) over
/// (obedient root, strategic children) — the substrate of \[14\].
#[derive(Debug, Clone, PartialEq)]
pub struct StarRule {
    /// Root rate.
    pub root_rate: f64,
    /// Per-child link rates (uniform for a bus).
    pub link_rates: Vec<f64>,
}

impl StarRule {
    /// A bus: all children share one link rate.
    pub fn bus(root_rate: f64, children: usize, bus_rate: f64) -> Self {
        Self {
            root_rate,
            link_rates: vec![bus_rate; children],
        }
    }
}

impl AllocationRule for StarRule {
    fn num_agents(&self) -> usize {
        self.link_rates.len()
    }

    fn load(&self, bids: &[f64], j: usize) -> f64 {
        assert_eq!(bids.len(), self.num_agents());
        let mut w = vec![self.root_rate];
        w.extend_from_slice(bids);
        let net = StarNetwork::from_rates(&w, &self.link_rates);
        star::solve(&net).alloc.alpha(j)
    }
}

/// The Archer–Tardos mechanism over a monotone allocation rule.
#[derive(Debug, Clone)]
pub struct ArcherTardos<R: AllocationRule> {
    rule: R,
    /// Upper end of the admissible bid space.
    w_max: f64,
    /// Simpson integration panels (even, ≥ 2).
    panels: usize,
}

/// Outcome for one agent under Archer–Tardos.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtOutcome {
    /// Assigned load `α_j`.
    pub load: f64,
    /// Payment `P_j`.
    pub payment: f64,
    /// Utility at the given true rate (`P_j − α_j·t_j`).
    pub utility: f64,
}

impl<R: AllocationRule> ArcherTardos<R> {
    /// Create the mechanism. Bids outside `(0, w_max]` are rejected.
    pub fn new(rule: R, w_max: f64) -> Self {
        assert!(w_max > 0.0);
        Self {
            rule,
            w_max,
            panels: 256,
        }
    }

    /// Access the rule.
    pub fn rule(&self) -> &R {
        &self.rule
    }

    /// `∫_{a}^{w_max} α_j(b_{-j}, u) du` by composite Simpson.
    fn rebate(&self, bids: &[f64], j: usize, a: f64) -> f64 {
        assert!(
            a <= self.w_max,
            "bid {a} above the admissible space {}",
            self.w_max
        );
        let n = self.panels;
        let h = (self.w_max - a) / n as f64;
        if h <= 0.0 {
            return 0.0;
        }
        let mut scratch = bids.to_vec();
        let mut eval = |u: f64| -> f64 {
            scratch[j - 1] = u;
            self.rule.load(&scratch, j)
        };
        let mut acc = eval(a) + eval(self.w_max);
        for i in 1..n {
            let u = a + i as f64 * h;
            acc += eval(u) * if i % 2 == 1 { 4.0 } else { 2.0 };
        }
        acc * h / 3.0
    }

    /// Settle agent `j`: load, payment and utility given its true rate.
    pub fn settle(&self, bids: &[f64], j: usize, true_rate: f64) -> AtOutcome {
        assert!(j >= 1 && j <= self.rule.num_agents());
        let b_j = bids[j - 1];
        assert!(
            b_j > 0.0 && b_j <= self.w_max,
            "bid outside the admissible space"
        );
        let load = self.rule.load(bids, j);
        let payment = b_j * load + self.rebate(bids, j, b_j);
        AtOutcome {
            load,
            payment,
            utility: payment - load * true_rate,
        }
    }

    /// Utility-vs-bid sweep for agent `j`, others fixed.
    pub fn sweep(&self, bids: &[f64], j: usize, true_rate: f64, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter()
            .filter(|&&b| b > 0.0 && b <= self.w_max)
            .map(|&b| {
                let mut bs = bids.to_vec();
                bs[j - 1] = b;
                (b, self.settle(&bs, j, true_rate).utility)
            })
            .collect()
    }
}

/// Check that a rule is monotone (load non-increasing in own bid) for a
/// specific instance — the precondition for Archer–Tardos truthfulness.
pub fn is_monotone<R: AllocationRule>(rule: &R, bids: &[f64], j: usize, grid: &[f64]) -> bool {
    let mut last = f64::INFINITY;
    let mut sorted = grid.to_vec();
    sorted.sort_by(f64::total_cmp);
    for &b in &sorted {
        let mut bs = bids.to_vec();
        bs[j - 1] = b;
        let load = rule.load(&bs, j);
        if load > last + 1e-9 {
            return false;
        }
        last = load;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_rule() -> ChainRule {
        ChainRule {
            root_rate: 1.0,
            link_rates: vec![0.2, 0.1, 0.7],
        }
    }

    fn grid() -> Vec<f64> {
        (1..=60).map(|i| i as f64 * 0.25).collect() // 0.25 … 15.0
    }

    #[test]
    fn chain_rule_is_monotone() {
        let rule = chain_rule();
        let bids = [2.0, 0.5, 4.0];
        for j in 1..=3 {
            assert!(is_monotone(&rule, &bids, j, &grid()), "agent {j}");
        }
    }

    #[test]
    fn star_rule_is_monotone() {
        let rule = StarRule {
            root_rate: 1.0,
            link_rates: vec![0.2, 0.3, 0.1],
        };
        let bids = [1.5, 0.7, 2.5];
        for j in 1..=3 {
            assert!(is_monotone(&rule, &bids, j, &grid()), "agent {j}");
        }
    }

    #[test]
    fn truthful_utility_is_nonnegative() {
        let at = ArcherTardos::new(chain_rule(), 20.0);
        let truth = [2.0, 0.5, 4.0];
        for j in 1..=3 {
            let out = at.settle(&truth, j, truth[j - 1]);
            assert!(out.utility >= 0.0, "agent {j}: {}", out.utility);
        }
    }

    #[test]
    fn truth_dominates_on_chain() {
        let at = ArcherTardos::new(chain_rule(), 20.0);
        let truth = [2.0, 0.5, 4.0];
        for j in 1..=3 {
            let t_j = truth[j - 1];
            let honest = at.settle(&truth, j, t_j).utility;
            for (_, u) in at.sweep(&truth, j, t_j, &grid()) {
                assert!(u <= honest + 1e-6, "agent {j} gains: {u} vs {honest}");
            }
        }
    }

    #[test]
    fn truth_dominates_on_bus() {
        let at = ArcherTardos::new(StarRule::bus(1.0, 4, 0.25), 20.0);
        let truth = [1.8, 0.6, 2.5, 1.2];
        for j in 1..=4 {
            let t_j = truth[j - 1];
            let honest = at.settle(&truth, j, t_j).utility;
            for (_, u) in at.sweep(&truth, j, t_j, &grid()) {
                assert!(u <= honest + 1e-6, "agent {j} gains: {u} vs {honest}");
            }
        }
    }

    #[test]
    fn utility_equals_rebate_at_truth() {
        // U_j(truth) = ∫_{t_j}^{w_max} α_j(u) du: payment minus cost.
        let at = ArcherTardos::new(chain_rule(), 20.0);
        let truth = [2.0, 0.5, 4.0];
        for j in 1..=3 {
            let out = at.settle(&truth, j, truth[j - 1]);
            let rebate = at.rebate(&truth, j, truth[j - 1]);
            assert!((out.utility - rebate).abs() < 1e-12);
        }
    }

    #[test]
    fn bid_at_w_max_gets_zero_rebate() {
        let at = ArcherTardos::new(chain_rule(), 20.0);
        let mut bids = [2.0, 0.5, 4.0];
        bids[0] = 20.0;
        let out = at.settle(&bids, 1, 2.0);
        // Payment is exactly cost-at-bid: utility = α(w_max)(w_max − t).
        let expected = out.load * (20.0 - 2.0);
        assert!((out.utility - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "admissible")]
    fn rejects_bids_above_w_max() {
        let at = ArcherTardos::new(chain_rule(), 5.0);
        at.settle(&[6.0, 0.5, 4.0], 1, 2.0);
    }

    #[test]
    fn payments_differ_from_dls_lbl_but_both_are_strategyproof() {
        // Same instance, two mechanisms: utilities generally differ (the
        // revenue/architecture trade-off), yet truth is dominant in both.
        let at = ArcherTardos::new(chain_rule(), 20.0);
        let mech = crate::DlsLbl::new(1.0, vec![0.2, 0.1, 0.7]);
        let truth = [2.0f64, 0.5, 4.0];
        let agents: Vec<crate::Agent> = truth.iter().map(|&t| crate::Agent::new(t)).collect();
        let lbl = mech.settle_truthful(&agents);
        let mut any_diff = false;
        for j in 1..=3 {
            let at_u = at.settle(&truth, j, truth[j - 1]).utility;
            if (at_u - lbl.utility(j)).abs() > 1e-6 {
                any_diff = true;
            }
        }
        assert!(
            any_diff,
            "expected the two payment schemes to disagree somewhere"
        );
    }
}
