//! One-parameter agent model (§3 of the paper).
//!
//! Each strategic processor `P_i` is characterized by a *privately known*
//! true unit processing time `t_i`. Towards the mechanism it chooses:
//!
//! * a **bid** `w_i` — the declared unit processing time (any positive
//!   value);
//! * an **actual rate** `w̃_i ≥ t_i` — the speed it really computes at,
//!   recorded by the tamper-proof meter (it cannot compute faster than its
//!   hardware allows, but may stall);
//! * an **actual load** `α̃_i` — how much of its prescribed assignment it
//!   really retains (shedding pushes the remainder onto its successor).

/// A strategic agent's private type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agent {
    /// True unit processing time `t_i` (private).
    pub true_rate: f64,
}

impl Agent {
    /// Create an agent with the given true rate.
    ///
    /// # Panics
    /// Panics unless the rate is positive and finite.
    pub fn new(true_rate: f64) -> Self {
        assert!(true_rate.is_finite() && true_rate > 0.0);
        Self { true_rate }
    }

    /// The fastest rate this agent can legally report as its *actual*
    /// execution speed: its hardware bound `t_i`.
    pub fn fastest(&self) -> f64 {
        self.true_rate
    }

    /// Clamp a desired execution rate to what the hardware permits
    /// (`w̃ ≥ t`).
    pub fn feasible_actual(&self, desired: f64) -> f64 {
        desired.max(self.true_rate)
    }
}

/// What an agent declares and does in one round of the mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Conduct {
    /// Declared unit processing time `w_i`.
    pub bid: f64,
    /// Actual unit processing time `w̃_i` as recorded by the meter.
    pub actual_rate: f64,
    /// Actual retained load `α̃_i` (units of total load). `None` means
    /// exactly the prescribed assignment.
    pub actual_load: Option<f64>,
}

impl Conduct {
    /// Fully truthful conduct for an agent: bid the true rate, execute at
    /// full capacity, take the prescribed load.
    pub fn truthful(agent: Agent) -> Self {
        Self {
            bid: agent.true_rate,
            actual_rate: agent.true_rate,
            actual_load: None,
        }
    }

    /// Misreport the rate by `factor` (>1 overbids/slower, <1 underbids),
    /// but otherwise comply: execute at the fastest *feasible* speed
    /// consistent with the hardware.
    pub fn misreport(agent: Agent, factor: f64) -> Self {
        assert!(factor > 0.0);
        let bid = agent.true_rate * factor;
        Self {
            bid,
            actual_rate: agent.feasible_actual(bid.min(agent.true_rate)),
            actual_load: None,
        }
    }

    /// Bid truthfully but execute slower than capacity (`w̃ = t·factor`,
    /// `factor ≥ 1`).
    pub fn slack_execution(agent: Agent, factor: f64) -> Self {
        assert!(factor >= 1.0);
        Self {
            bid: agent.true_rate,
            actual_rate: agent.true_rate * factor,
            actual_load: None,
        }
    }

    /// True if the conduct is consistent with the agent's hardware
    /// (`w̃ ≥ t`).
    pub fn is_feasible(&self, agent: Agent) -> bool {
        self.actual_rate >= agent.true_rate - 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthful_conduct() {
        let a = Agent::new(2.0);
        let c = Conduct::truthful(a);
        assert_eq!(c.bid, 2.0);
        assert_eq!(c.actual_rate, 2.0);
        assert_eq!(c.actual_load, None);
        assert!(c.is_feasible(a));
    }

    #[test]
    fn underbid_cannot_execute_faster_than_hardware() {
        let a = Agent::new(2.0);
        let c = Conduct::misreport(a, 0.5); // bids 1.0
        assert_eq!(c.bid, 1.0);
        assert_eq!(c.actual_rate, 2.0, "meter will show the true rate");
        assert!(c.is_feasible(a));
    }

    #[test]
    fn overbid_may_execute_at_capacity() {
        let a = Agent::new(2.0);
        let c = Conduct::misreport(a, 2.0); // bids 4.0
        assert_eq!(c.bid, 4.0);
        assert_eq!(c.actual_rate, 2.0);
        assert!(c.is_feasible(a));
    }

    #[test]
    fn slack_execution_is_feasible() {
        let a = Agent::new(1.5);
        let c = Conduct::slack_execution(a, 2.0);
        assert_eq!(c.actual_rate, 3.0);
        assert!(c.is_feasible(a));
    }

    #[test]
    fn infeasible_conduct_detected() {
        let a = Agent::new(2.0);
        let c = Conduct {
            bid: 2.0,
            actual_rate: 1.0,
            actual_load: None,
        };
        assert!(!c.is_feasible(a), "cannot compute faster than hardware");
    }

    #[test]
    fn feasible_actual_clamps() {
        let a = Agent::new(2.0);
        assert_eq!(a.feasible_actual(1.0), 2.0);
        assert_eq!(a.feasible_actual(3.0), 3.0);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_rate() {
        Agent::new(0.0);
    }
}
