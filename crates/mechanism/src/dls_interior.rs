//! DLS-LIL: the interior-origination variant the paper leaves to future
//! work (§6 — "load origination … is either a terminal processor or an
//! interior processor. The DLS-LBL mechanism schedules loads when the root
//! is a terminal processor").
//!
//! With the obedient root strictly inside the chain, the network is two
//! *arms* hanging off the root. Three observations make the mechanism a
//! clean composition of chain machinery:
//!
//! 1. each arm, viewed from the root, is a boundary-origination chain, so
//!    Algorithm 1 applies within arms;
//! 2. the root's split between arms is a two-child star; the one-port
//!    *service order* is fixed **bid-independently** by ascending link
//!    rate (the E18-verified optimal rule) — a bid-dependent order would
//!    create exploitable discontinuities;
//! 3. the DLS-LBL bonus (eqs. 4.9–4.11) involves only *rates*, which are
//!    scale-free under the linear cost model — so each agent's payment is
//!    exactly the chain payment computed within its own arm, with the root
//!    as the arm head's predecessor, regardless of how much load the arm
//!    receives.
//!
//! Consequences (all asserted in tests): strategyproofness and voluntary
//! participation are inherited arm-wise from DLS-LBL, and an agent's
//! utility is *independent of the other arm's bids entirely*.

use crate::agent::{Agent, Conduct};
use crate::payment::{self, PaymentBreakdown, PaymentInputs};
use dlt::interior::{InteriorNetwork, ServiceOrder};
use dlt::model::LinearNetwork;

/// Which arm an agent sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Towards `P_0`.
    Left,
    /// Towards `P_m`.
    Right,
}

/// The interior-origination mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct DlsInterior {
    /// Obedient root rate.
    pub root_rate: f64,
    /// Link rates of the left arm, root-outward (`z` between root and its
    /// left neighbor first).
    pub left_links: Vec<f64>,
    /// Link rates of the right arm, root-outward.
    pub right_links: Vec<f64>,
}

/// Outcome for one strategic agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteriorAgentOutcome {
    /// The arm.
    pub arm: Arm,
    /// Position within the arm (1 = adjacent to the root).
    pub position: usize,
    /// Assigned absolute load.
    pub assigned: f64,
    /// Itemized payment.
    pub breakdown: PaymentBreakdown,
}

/// Settled outcome of a round.
#[derive(Debug, Clone, PartialEq)]
pub struct InteriorOutcome {
    /// Left-arm agents, root-outward.
    pub left: Vec<InteriorAgentOutcome>,
    /// Right-arm agents, root-outward.
    pub right: Vec<InteriorAgentOutcome>,
    /// Root's own load.
    pub root_load: f64,
    /// Achieved makespan under the bids.
    pub makespan: f64,
    /// The (bid-independent) service order used.
    pub order: ServiceOrder,
}

impl InteriorOutcome {
    /// Utility of the agent at `position` (1-based, root-outward) in `arm`.
    pub fn utility(&self, arm: Arm, position: usize) -> f64 {
        let agents = match arm {
            Arm::Left => &self.left,
            Arm::Right => &self.right,
        };
        agents[position - 1].breakdown.utility
    }
}

impl DlsInterior {
    /// Create the mechanism. Both arms must be non-empty (otherwise use
    /// [`crate::DlsLbl`]).
    pub fn new(root_rate: f64, left_links: Vec<f64>, right_links: Vec<f64>) -> Self {
        assert!(
            !left_links.is_empty() && !right_links.is_empty(),
            "interior origination needs both arms; use DlsLbl for boundary origination"
        );
        Self {
            root_rate,
            left_links,
            right_links,
        }
    }

    /// The bid-independent service order: the arm behind the faster first
    /// link is served first.
    pub fn service_order(&self) -> ServiceOrder {
        if self.left_links[0] <= self.right_links[0] {
            ServiceOrder::LeftFirst
        } else {
            ServiceOrder::RightFirst
        }
    }

    /// Number of strategic agents per arm.
    pub fn arm_sizes(&self) -> (usize, usize) {
        (self.left_links.len(), self.right_links.len())
    }

    /// Assemble the full physical chain (left arm reversed, root, right
    /// arm) with the given per-arm bids, plus the root's physical index.
    fn assemble(&self, left_bids: &[f64], right_bids: &[f64]) -> (LinearNetwork, usize) {
        assert_eq!(left_bids.len(), self.left_links.len());
        assert_eq!(right_bids.len(), self.right_links.len());
        let mut w: Vec<f64> = left_bids.iter().rev().copied().collect();
        w.push(self.root_rate);
        w.extend_from_slice(right_bids);
        let mut z: Vec<f64> = self.left_links.iter().rev().copied().collect();
        z.extend_from_slice(&self.right_links);
        (LinearNetwork::from_rates(&w, &z), left_bids.len())
    }

    /// The chain-view of one arm: root first, then the arm's processors
    /// root-outward — exactly the network DLS-LBL payments expect.
    fn arm_network(&self, arm: Arm, bids: &[f64]) -> LinearNetwork {
        let links = match arm {
            Arm::Left => &self.left_links,
            Arm::Right => &self.right_links,
        };
        assert_eq!(bids.len(), links.len());
        let mut w = vec![self.root_rate];
        w.extend_from_slice(bids);
        LinearNetwork::from_rates(&w, links)
    }

    /// Settle a round. Conducts are per arm, root-outward.
    pub fn settle(&self, left: &[Conduct], right: &[Conduct]) -> InteriorOutcome {
        let left_bids: Vec<f64> = left.iter().map(|c| c.bid).collect();
        let right_bids: Vec<f64> = right.iter().map(|c| c.bid).collect();
        let (chain, root_idx) = self.assemble(&left_bids, &right_bids);
        let interior = InteriorNetwork::new(chain, root_idx);
        let order = self.service_order();
        let solution = dlt::interior::solve_with_order(&interior, order);

        let settle_arm = |arm: Arm, conducts: &[Conduct], bids: &[f64]| {
            let net = self.arm_network(arm, bids);
            conducts
                .iter()
                .enumerate()
                .map(|(idx, c)| {
                    let position = idx + 1;
                    // Physical index of this agent in the assembled chain.
                    let phys = match arm {
                        Arm::Left => root_idx - position,
                        Arm::Right => root_idx + position,
                    };
                    let assigned = solution.alloc.alpha(phys);
                    let actual = c.actual_load.unwrap_or(assigned);
                    let inputs = PaymentInputs {
                        assigned_load: assigned,
                        actual_load: actual,
                        actual_rate: c.actual_rate,
                    };
                    InteriorAgentOutcome {
                        arm,
                        position,
                        assigned,
                        breakdown: payment::settle(&net, position, inputs, 0.0),
                    }
                })
                .collect::<Vec<_>>()
        };

        InteriorOutcome {
            left: settle_arm(Arm::Left, left, &left_bids),
            right: settle_arm(Arm::Right, right, &right_bids),
            root_load: solution.alloc.alpha(root_idx),
            makespan: solution.makespan,
            order,
        }
    }

    /// Truthful settlement.
    pub fn settle_truthful(&self, left: &[Agent], right: &[Agent]) -> InteriorOutcome {
        let l: Vec<Conduct> = left.iter().map(|&a| Conduct::truthful(a)).collect();
        let r: Vec<Conduct> = right.iter().map(|&a| Conduct::truthful(a)).collect();
        self.settle(&l, &r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt::linear;

    fn setup() -> (DlsInterior, Vec<Agent>, Vec<Agent>) {
        (
            DlsInterior::new(1.0, vec![0.2, 0.35], vec![0.15, 0.25, 0.4]),
            vec![Agent::new(1.8), Agent::new(0.9)],
            vec![Agent::new(0.6), Agent::new(2.5), Agent::new(1.2)],
        )
    }

    #[test]
    fn loads_partition_the_unit() {
        let (mech, l, r) = setup();
        let out = mech.settle_truthful(&l, &r);
        let total: f64 = out.root_load
            + out.left.iter().map(|a| a.assigned).sum::<f64>()
            + out.right.iter().map(|a| a.assigned).sum::<f64>();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn truthful_utilities_nonnegative() {
        let (mech, l, r) = setup();
        let out = mech.settle_truthful(&l, &r);
        for (arm, n) in [(Arm::Left, 2usize), (Arm::Right, 3)] {
            for p in 1..=n {
                assert!(out.utility(arm, p) >= -1e-12, "{arm:?} position {p}");
            }
        }
    }

    #[test]
    fn truth_dominates_in_both_arms() {
        let (mech, l, r) = setup();
        let honest = mech.settle_truthful(&l, &r);
        let lt: Vec<Conduct> = l.iter().map(|&a| Conduct::truthful(a)).collect();
        let rt: Vec<Conduct> = r.iter().map(|&a| Conduct::truthful(a)).collect();
        for factor in [0.3, 0.7, 1.4, 3.0] {
            for p in 1..=2 {
                let mut lc = lt.clone();
                lc[p - 1] = Conduct::misreport(l[p - 1], factor);
                let dev = mech.settle(&lc, &rt);
                assert!(dev.utility(Arm::Left, p) <= honest.utility(Arm::Left, p) + 1e-9);
            }
            for p in 1..=3 {
                let mut rc = rt.clone();
                rc[p - 1] = Conduct::misreport(r[p - 1], factor);
                let dev = mech.settle(&lt, &rc);
                assert!(dev.utility(Arm::Right, p) <= honest.utility(Arm::Right, p) + 1e-9);
            }
        }
    }

    #[test]
    fn utility_is_independent_of_the_other_arm() {
        // The bonus involves only rates within the agent's own arm.
        let (mech, l, r) = setup();
        let base = mech.settle_truthful(&l, &r);
        let lt: Vec<Conduct> = l.iter().map(|&a| Conduct::truthful(a)).collect();
        let mut rc: Vec<Conduct> = r.iter().map(|&a| Conduct::truthful(a)).collect();
        rc[0] = Conduct::misreport(r[0], 0.4);
        rc[2] = Conduct::misreport(r[2], 2.5);
        let out = mech.settle(&lt, &rc);
        for p in 1..=2 {
            assert!(
                (out.utility(Arm::Left, p) - base.utility(Arm::Left, p)).abs() < 1e-12,
                "left-arm P{p} was affected by right-arm bids"
            );
        }
    }

    #[test]
    fn service_order_is_bid_independent() {
        let (mech, _, _) = setup();
        assert_eq!(mech.service_order(), ServiceOrder::RightFirst); // 0.15 < 0.2
        let mech2 = DlsInterior::new(1.0, vec![0.1], vec![0.5]);
        assert_eq!(mech2.service_order(), ServiceOrder::LeftFirst);
    }

    #[test]
    fn makespan_matches_interior_solver() {
        let (mech, l, r) = setup();
        let out = mech.settle_truthful(&l, &r);
        let (chain, root_idx) = mech.assemble(
            &l.iter().map(|a| a.true_rate).collect::<Vec<_>>(),
            &r.iter().map(|a| a.true_rate).collect::<Vec<_>>(),
        );
        let solution = dlt::interior::solve_with_order(
            &InteriorNetwork::new(chain, root_idx),
            mech.service_order(),
        );
        assert!((out.makespan - solution.makespan).abs() < 1e-12);
    }

    #[test]
    fn arm_head_bonus_uses_root_as_predecessor() {
        // Lemma 5.4 identity within the arm: U = w_pred − w̄_pred with the
        // root as the arm head's predecessor.
        let (mech, l, r) = setup();
        let out = mech.settle_truthful(&l, &r);
        let arm_net = mech.arm_network(
            Arm::Right,
            &r.iter().map(|a| a.true_rate).collect::<Vec<_>>(),
        );
        let sol = linear::solve(&arm_net);
        for p in 1..=3 {
            let expected = arm_net.w(p - 1) - sol.equivalent[p - 1];
            assert!(
                (out.utility(Arm::Right, p) - expected).abs() < 1e-9,
                "position {p}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "both arms")]
    fn rejects_empty_arm() {
        DlsInterior::new(1.0, vec![], vec![0.5]);
    }
}
