//! DLS-T: the tree-network companion mechanism (\[9\], Carroll & Grosu,
//! IPDPS 2006), generalized here from the same building blocks as DLS-LBL.
//!
//! Every non-root node of a tree is a strategic agent bidding its unit
//! processing time; subtrees collapse into equivalent processors exactly
//! as chain suffixes do (see `dlt::tree`). The payment mirrors
//! eqs. 4.4–4.11 with "predecessor" generalized to "parent":
//!
//! * compensation `C_j = α_j w̃_j + E_j` for metered work;
//! * bonus `B_j = w_p − w̄_p(α(bids), actual)`: the improvement agent `j`'s
//!   subtree brings to its parent `p`'s equivalent processing time, with
//!   `j`'s branch re-timed by its measured speed via the tree analogue of
//!   eqs. 4.10–4.11 (`ŵ_j = α̂_j w̃_j` when slower than bid, unchanged
//!   when at least as fast; leaves use `ŵ_j = w̃_j`).
//!
//! A chain is a degenerate tree, and on chains this mechanism **coincides
//! exactly with DLS-LBL** — asserted in the tests — which is the
//! strongest evidence the generalization is the intended one. Bus and
//! star networks are depth-1 trees, so this module also covers the bus
//! companion \[14\] in the paper's own verification style (in contrast to
//! the Archer–Tardos realization in [`crate::archer_tardos`]).

use crate::agent::{Agent, Conduct};
use crate::payment::{compensation, recompense, valuation};
use dlt::model::{Link, Processor, StarNetwork, TreeNode};
use dlt::seqsearch::{self, TreeOrder};
use dlt::{star, tree};

/// How the mechanism chooses each settlement's service order (the order in
/// which every internal node distributes to its children).
///
/// The order is load-bearing for incentives (E18): the strategyproofness
/// argument needs the equal-finish makespan to be monotone in every
/// child's rate, which the canonical ascending-link order guarantees. A
/// **bid-independent** alternative order (e.g. one searched offline at the
/// true rates, [`OrderPolicy::Frozen`]) keeps the allocation rule a fixed
/// function of the bids under a fixed order, and E29 verifies truthfulness
/// survives. A **bid-dependent** order
/// ([`OrderPolicy::BidFastestEquivalentFirst`]) lets an agent's report
/// move its own service position — the manipulation channel E18
/// predicted, kept here as the measurable counter-example.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderPolicy {
    /// The canonical ascending-link order (the default, and the paper's
    /// strategyproof regime).
    Canonical,
    /// A fixed service order over the canonical shape's preorder, applied
    /// identically at every bid profile. Bid-independent by construction.
    Frozen(TreeOrder),
    /// Re-derive the order from the bids at every settlement: each node
    /// serves its children in ascending order of their bid-instantiated
    /// subtree equivalent time (stable for ties). A plausible
    /// "serve the fastest subtree first" rank policy — and manipulable,
    /// because an agent's bid moves its own service position.
    BidFastestEquivalentFirst,
}

/// The shape of the network: processor rates at non-root nodes are
/// *placeholders* (replaced by bids); the root's rate and all link rates
/// are trusted infrastructure.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeMechanism {
    shape: TreeNode,
    agents: usize,
    policy: OrderPolicy,
}

/// Per-agent outcome of a tree settlement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeAgentOutcome {
    /// Preorder index of the node (1-based among non-root nodes).
    pub agent: usize,
    /// Assigned load fraction.
    pub assigned: f64,
    /// Load actually computed.
    pub actual_load: f64,
    /// Bonus component.
    pub bonus: f64,
    /// Total payment.
    pub payment: f64,
    /// Utility.
    pub utility: f64,
}

/// Settled outcome of one tree round.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeOutcome {
    /// Per-agent outcomes in preorder (index 0 is agent 1).
    pub agents: Vec<TreeAgentOutcome>,
    /// The root's assigned load.
    pub root_load: f64,
    /// The optimal makespan under the bids.
    pub makespan: f64,
}

impl TreeOutcome {
    /// Utility of agent `j` (1-based preorder index).
    pub fn utility(&self, j: usize) -> f64 {
        self.agents[j - 1].utility
    }

    /// Payment owed to agent `j` (1-based preorder index) — the honest
    /// bill the fault-recovery path re-posts when a node goes silent
    /// before billing.
    pub fn payment(&self, j: usize) -> f64 {
        self.agents[j - 1].payment
    }
}

/// Flattened per-node view used by the payment computation.
struct NodeInfo {
    parent: Option<usize>,
    /// Bid rate at this node (root: trusted rate).
    rate: f64,
    /// Equivalent unit time of the subtree rooted here (bid-based).
    equivalent: f64,
    /// Assigned fraction of the unit load.
    assigned: f64,
    /// Local retained fraction `α̂` (assigned / received by the subtree).
    alpha_hat: f64,
    /// Is this node a leaf?
    leaf: bool,
    /// Children as `(link rate, child flat index)` in distribution order.
    children: Vec<(f64, usize)>,
}

impl TreeMechanism {
    /// Create the mechanism from a shape. Non-root processor rates in
    /// `shape` are ignored (bids replace them); link rates and the root's
    /// rate are kept.
    /// The shape is canonicalized (children sorted by ascending link
    /// rate) before use: the classical optimal distribution order, and a
    /// precondition for the bonus's monotonicity argument. **Agent indices
    /// are preorder positions in the canonicalized shape.**
    pub fn new(shape: TreeNode) -> Self {
        Self::with_order(shape, OrderPolicy::Canonical)
    }

    /// Create the mechanism with an explicit service-order policy. The
    /// shape is canonicalized first — **agent indices are always preorder
    /// positions in the canonicalized shape**, whatever order the policy
    /// then serves them in; a [`OrderPolicy::Frozen`] order must fit that
    /// canonical shape's preorder.
    pub fn with_order(shape: TreeNode, policy: OrderPolicy) -> Self {
        let shape = dlt::tree::canonicalize(&shape);
        let agents = shape.size() - 1;
        assert!(agents >= 1, "need at least one strategic node");
        if let OrderPolicy::Frozen(order) = &policy {
            assert!(
                order.is_valid(&shape),
                "frozen order does not fit the canonical shape's preorder"
            );
        }
        Self {
            shape,
            agents,
            policy,
        }
    }

    /// The canonicalized shape agent indices refer to.
    pub fn shape(&self) -> &TreeNode {
        &self.shape
    }

    /// The service-order policy in force.
    pub fn policy(&self) -> &OrderPolicy {
        &self.policy
    }

    /// A chain as a degenerate tree (for cross-checks against DLS-LBL).
    pub fn chain(root_rate: f64, link_rates: &[f64]) -> Self {
        let mut node = TreeNode::leaf(1.0);
        for &z in link_rates.iter().skip(1).rev() {
            node = TreeNode {
                processor: Processor::new(1.0),
                children: vec![(Link::new(z), node)],
            };
        }
        let root = TreeNode {
            processor: Processor::new(root_rate),
            children: vec![(Link::new(link_rates[0]), node)],
        };
        Self::new(root)
    }

    /// A star/bus as a depth-1 tree.
    pub fn star(root_rate: f64, link_rates: &[f64]) -> Self {
        let children = link_rates
            .iter()
            .map(|&z| (Link::new(z), TreeNode::leaf(1.0)))
            .collect();
        Self::new(TreeNode {
            processor: Processor::new(root_rate),
            children,
        })
    }

    /// Number of strategic agents.
    pub fn num_agents(&self) -> usize {
        self.agents
    }

    /// Instantiate the tree with the given bids (preorder over non-root
    /// nodes).
    fn with_bids(&self, bids: &[f64]) -> TreeNode {
        assert_eq!(bids.len(), self.agents, "one bid per strategic node");
        fn rebuild(node: &TreeNode, bids: &[f64], next: &mut usize, is_root: bool) -> TreeNode {
            let rate = if is_root {
                node.processor.w
            } else {
                let r = bids[*next];
                *next += 1;
                r
            };
            let children = node
                .children
                .iter()
                .map(|(l, c)| (*l, rebuild(c, bids, next, false)))
                .collect();
            TreeNode {
                processor: Processor::new(rate),
                children,
            }
        }
        let mut next = 0;
        let out = rebuild(&self.shape, bids, &mut next, true);
        assert_eq!(next, self.agents);
        out
    }

    /// The service order the policy prescribes for this bid-instantiated
    /// tree, expressed against the canonical shape's preorder.
    fn service_order(&self, instantiated: &TreeNode) -> TreeOrder {
        match &self.policy {
            // The shape is canonical, so its stored order *is* the
            // canonical service order.
            OrderPolicy::Canonical => seqsearch::identity_order(instantiated),
            OrderPolicy::Frozen(order) => order.clone(),
            OrderPolicy::BidFastestEquivalentFirst => {
                fn walk(node: &TreeNode, out: &mut Vec<Vec<usize>>) {
                    let mut perm: Vec<usize> = (0..node.children.len()).collect();
                    let equivalents: Vec<f64> = node
                        .children
                        .iter()
                        .map(|(_, c)| tree::equivalent_time(c))
                        .collect();
                    perm.sort_by(|&a, &b| equivalents[a].total_cmp(&equivalents[b]));
                    out.push(perm);
                    for (_, c) in &node.children {
                        walk(c, out);
                    }
                }
                let mut perms = Vec::new();
                walk(instantiated, &mut perms);
                TreeOrder { perms }
            }
        }
    }

    /// Flatten the solved tree into per-node info, indexed by the
    /// canonical shape's preorder (agent identity), with children listed
    /// in the *service* order the policy produced.
    fn analyze(&self, bids: &[f64]) -> (Vec<NodeInfo>, f64, f64) {
        let instantiated = self.with_bids(bids);
        let order = self.service_order(&instantiated);
        let (ordered, map) = seqsearch::apply_order_mapped(&instantiated, &order);
        let solution = tree::solve(&ordered);
        let makespan = tree::makespan(&ordered);
        let n = self.agents + 1;
        let mut old_of_new = vec![0usize; n];
        for (old, &new) in map.iter().enumerate() {
            old_of_new[new] = old;
        }
        let mut infos: Vec<Option<NodeInfo>> = (0..n).map(|_| None).collect();
        fn walk(
            node: &TreeNode,
            sol: &tree::TreeSolution,
            parent: Option<usize>,
            next_new: &mut usize,
            old_of_new: &[usize],
            infos: &mut [Option<NodeInfo>],
        ) -> usize {
            let new_id = *next_new;
            *next_new += 1;
            let old = old_of_new[new_id];
            infos[old] = Some(NodeInfo {
                parent,
                rate: node.processor.w,
                equivalent: tree::equivalent_time(node),
                assigned: sol.alpha,
                alpha_hat: if sol.received > 1e-300 {
                    sol.alpha / sol.received
                } else {
                    1.0
                },
                leaf: node.children.is_empty(),
                children: Vec::new(),
            });
            for ((link, child), csol) in node.children.iter().zip(&sol.children) {
                let cold = walk(child, csol, Some(old), next_new, old_of_new, infos);
                infos[old]
                    .as_mut()
                    .expect("parent info just inserted")
                    .children
                    .push((link.z, cold));
            }
            old
        }
        let mut next_new = 0;
        walk(
            &ordered,
            &solution,
            None,
            &mut next_new,
            &old_of_new,
            &mut infos,
        );
        let infos = infos
            .into_iter()
            .map(|i| i.expect("every preorder node visited"))
            .collect();
        (infos, makespan, solution.alpha)
    }

    /// The tree analogue of eqs. 4.10–4.11: agent `j`'s adjusted subtree
    /// equivalent given its metered rate.
    fn adjusted_equivalent(info: &NodeInfo, actual_rate: f64) -> f64 {
        if info.leaf {
            actual_rate
        } else if actual_rate >= info.rate {
            info.alpha_hat * actual_rate
        } else {
            info.equivalent
        }
    }

    /// The realized equivalent time of parent `p`'s local star when child
    /// `j`'s branch is re-timed to `w_hat_j`, all split fractions fixed by
    /// the bids.
    fn realized_parent_equivalent(infos: &[NodeInfo], p: usize, j: usize, w_hat_j: f64) -> f64 {
        let parent = &infos[p];
        let star_net = StarNetwork::new(
            Processor::new(parent.rate),
            parent
                .children
                .iter()
                .map(|&(z, c)| (Link::new(z), Processor::new(infos[c].equivalent)))
                .collect(),
        );
        let local = star::solve(&star_net);
        // Evaluate finish times with child j's rate swapped for ŵ_j.
        let mut worst = local.alloc.alpha(0) * parent.rate;
        let mut comm = 0.0;
        for (i, &(z, c)) in parent.children.iter().enumerate() {
            let a = local.alloc.alpha(i + 1);
            comm += a * z;
            let rate = if c == j { w_hat_j } else { infos[c].equivalent };
            worst = worst.max(comm + a * rate);
        }
        worst
    }

    /// Settle a round of conducts (preorder over non-root nodes).
    pub fn settle(&self, conducts: &[Conduct]) -> TreeOutcome {
        assert_eq!(conducts.len(), self.agents);
        let bids: Vec<f64> = conducts.iter().map(|c| c.bid).collect();
        let (infos, makespan, root_load) = self.analyze(&bids);
        let agents = (1..=self.agents)
            .map(|j| {
                let info = &infos[j];
                let c = &conducts[j - 1];
                let assigned = info.assigned;
                let actual_load = c.actual_load.unwrap_or(assigned);
                let v = valuation(actual_load, c.actual_rate);
                if actual_load <= 0.0 {
                    return TreeAgentOutcome {
                        agent: j,
                        assigned,
                        actual_load,
                        bonus: 0.0,
                        payment: 0.0,
                        utility: v,
                    };
                }
                let comp = compensation(assigned, actual_load, c.actual_rate);
                let _e = recompense(assigned, actual_load, c.actual_rate);
                let p = info.parent.expect("non-root");
                let w_hat = Self::adjusted_equivalent(info, c.actual_rate);
                let realized = Self::realized_parent_equivalent(&infos, p, j, w_hat);
                let bonus = infos[p].rate - realized;
                let payment = comp + bonus;
                TreeAgentOutcome {
                    agent: j,
                    assigned,
                    actual_load,
                    bonus,
                    payment,
                    utility: v + payment,
                }
            })
            .collect();
        TreeOutcome {
            agents,
            root_load,
            makespan,
        }
    }

    /// Truthful settlement.
    pub fn settle_truthful(&self, agents: &[Agent]) -> TreeOutcome {
        let conducts: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        self.settle(&conducts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DlsLbl;

    fn chain_agents() -> Vec<Agent> {
        vec![Agent::new(2.0), Agent::new(0.5), Agent::new(4.0)]
    }

    #[test]
    fn chain_case_matches_dls_lbl_exactly() {
        let tree_mech = TreeMechanism::chain(1.0, &[0.2, 0.1, 0.7]);
        let chain_mech = DlsLbl::new(1.0, vec![0.2, 0.1, 0.7]);
        let agents = chain_agents();
        let t = tree_mech.settle_truthful(&agents);
        let c = chain_mech.settle_truthful(&agents);
        for j in 1..=3 {
            assert!(
                (t.utility(j) - c.utility(j)).abs() < 1e-12,
                "P{j}: tree {} vs chain {}",
                t.utility(j),
                c.utility(j)
            );
        }
        assert!((t.makespan - c.solution.makespan()).abs() < 1e-12);
        assert!((t.root_load - c.root_load).abs() < 1e-12);
    }

    #[test]
    fn chain_case_matches_dls_lbl_under_deviations() {
        let tree_mech = TreeMechanism::chain(1.0, &[0.2, 0.1, 0.7]);
        let chain_mech = DlsLbl::new(1.0, vec![0.2, 0.1, 0.7]);
        let agents = chain_agents();
        for (j, factor) in [(1usize, 0.5), (2, 2.0), (3, 1.5)] {
            let mut conducts: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
            conducts[j - 1] = Conduct::misreport(agents[j - 1], factor);
            let t = tree_mech.settle(&conducts);
            let c = chain_mech.settle(&conducts, false);
            for k in 1..=3 {
                assert!(
                    (t.utility(k) - c.utility(k)).abs() < 1e-12,
                    "deviant P{j}×{factor}, agent P{k}"
                );
            }
        }
    }

    fn binary_tree() -> TreeMechanism {
        // root(1.0) with two internal children, each with two leaves
        let shape = TreeNode::internal(
            1.0,
            vec![
                (
                    0.2,
                    TreeNode::internal(
                        1.0,
                        vec![(0.3, TreeNode::leaf(1.0)), (0.25, TreeNode::leaf(1.0))],
                    ),
                ),
                (
                    0.15,
                    TreeNode::internal(
                        1.0,
                        vec![(0.4, TreeNode::leaf(1.0)), (0.1, TreeNode::leaf(1.0))],
                    ),
                ),
            ],
        );
        TreeMechanism::new(shape)
    }

    fn tree_agents() -> Vec<Agent> {
        // preorder: branch1, leaf, leaf, branch2, leaf, leaf
        vec![
            Agent::new(1.5),
            Agent::new(2.0),
            Agent::new(0.8),
            Agent::new(1.1),
            Agent::new(3.0),
            Agent::new(0.6),
        ]
    }

    #[test]
    fn tree_truthful_utilities_nonnegative() {
        let mech = binary_tree();
        let agents = tree_agents();
        let outcome = mech.settle_truthful(&agents);
        for j in 1..=6 {
            assert!(outcome.utility(j) >= -1e-12, "P{j}: {}", outcome.utility(j));
        }
    }

    #[test]
    fn tree_truth_dominates_misreports() {
        let mech = binary_tree();
        let agents = tree_agents();
        let honest = mech.settle_truthful(&agents);
        for j in 1..=6 {
            for factor in [0.3, 0.6, 0.9, 1.1, 1.5, 2.5, 5.0] {
                let mut conducts: Vec<Conduct> =
                    agents.iter().map(|&a| Conduct::truthful(a)).collect();
                conducts[j - 1] = Conduct::misreport(agents[j - 1], factor);
                let deviant = mech.settle(&conducts);
                assert!(
                    deviant.utility(j) <= honest.utility(j) + 1e-9,
                    "P{j}×{factor}: {} vs {}",
                    deviant.utility(j),
                    honest.utility(j)
                );
            }
        }
    }

    #[test]
    fn tree_slack_execution_does_not_pay() {
        let mech = binary_tree();
        let agents = tree_agents();
        let honest = mech.settle_truthful(&agents);
        for j in 1..=6 {
            let mut conducts: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
            conducts[j - 1] = Conduct::slack_execution(agents[j - 1], 2.0);
            let deviant = mech.settle(&conducts);
            assert!(deviant.utility(j) <= honest.utility(j) + 1e-12, "P{j}");
        }
    }

    #[test]
    fn star_case_covers_the_bus_companion() {
        let mech = TreeMechanism::star(1.0, &[0.3, 0.3, 0.3]); // a bus
        let agents = vec![Agent::new(1.5), Agent::new(0.9), Agent::new(2.0)];
        let honest = mech.settle_truthful(&agents);
        for j in 1..=3 {
            assert!(honest.utility(j) >= 0.0);
            for factor in [0.4, 0.8, 1.3, 3.0] {
                let mut conducts: Vec<Conduct> =
                    agents.iter().map(|&a| Conduct::truthful(a)).collect();
                conducts[j - 1] = Conduct::misreport(agents[j - 1], factor);
                let deviant = mech.settle(&conducts);
                assert!(
                    deviant.utility(j) <= honest.utility(j) + 1e-9,
                    "P{j}×{factor}"
                );
            }
        }
    }

    #[test]
    fn loads_partition_the_unit() {
        let mech = binary_tree();
        let outcome = mech.settle_truthful(&tree_agents());
        let total: f64 = outcome.root_load + outcome.agents.iter().map(|a| a.assigned).sum::<f64>();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one bid per strategic node")]
    fn rejects_wrong_bid_arity() {
        binary_tree().with_bids(&[1.0, 2.0]);
    }

    #[test]
    fn canonical_policy_is_the_default_and_identical() {
        let shape = binary_tree().shape().clone();
        let a = TreeMechanism::new(shape.clone());
        let b = TreeMechanism::with_order(shape, OrderPolicy::Canonical);
        let agents = tree_agents();
        let oa = a.settle_truthful(&agents);
        let ob = b.settle_truthful(&agents);
        assert_eq!(oa, ob);
    }

    #[test]
    fn frozen_canonical_order_settles_bit_identically() {
        // Freezing the canonical order must be a no-op: same service
        // order, same solve, same payments to the last bit.
        let mech = binary_tree();
        let frozen = TreeMechanism::with_order(
            mech.shape().clone(),
            OrderPolicy::Frozen(dlt::seqsearch::identity_order(mech.shape())),
        );
        let agents = tree_agents();
        assert_eq!(
            mech.settle_truthful(&agents),
            frozen.settle_truthful(&agents)
        );
    }

    #[test]
    fn frozen_non_canonical_order_changes_the_solve_consistently() {
        // Reversing the root's service order is a worse (or equal) order:
        // the settlement must still partition the load, and the makespan
        // can only get worse.
        let mech = binary_tree();
        let shape = mech.shape().clone();
        let mut order = dlt::seqsearch::identity_order(&shape);
        order.perms[0].reverse();
        let reversed = TreeMechanism::with_order(shape, OrderPolicy::Frozen(order));
        let agents = tree_agents();
        let base = mech.settle_truthful(&agents);
        let rev = reversed.settle_truthful(&agents);
        let total: f64 = rev.root_load + rev.agents.iter().map(|a| a.assigned).sum::<f64>();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(rev.makespan >= base.makespan - 1e-12);
    }

    #[test]
    #[should_panic(expected = "frozen order does not fit")]
    fn frozen_order_arity_is_validated() {
        let shape = binary_tree().shape().clone();
        TreeMechanism::with_order(
            shape,
            OrderPolicy::Frozen(dlt::seqsearch::TreeOrder {
                perms: vec![vec![0]],
            }),
        );
    }

    #[test]
    fn bid_dependent_order_reorders_with_the_bids() {
        // Two leaves behind distinct links: under the fastest-equivalent-
        // first policy the served-first child is whoever *bids* lower, so
        // flipping the bids flips the realized makespan away from the
        // canonical one.
        let shape = TreeNode::internal(
            2.1,
            vec![(0.0969, TreeNode::leaf(1.0)), (0.6568, TreeNode::leaf(1.0))],
        );
        let mech = TreeMechanism::with_order(shape, OrderPolicy::BidFastestEquivalentFirst);
        let fast_first = mech.settle(&[
            Conduct {
                bid: 0.5,
                actual_rate: 0.5,
                actual_load: None,
            },
            Conduct {
                bid: 2.0,
                actual_rate: 2.0,
                actual_load: None,
            },
        ]);
        // Swap which node bids low: the slow link is now served first.
        let slow_first = mech.settle(&[
            Conduct {
                bid: 2.0,
                actual_rate: 2.0,
                actual_load: None,
            },
            Conduct {
                bid: 0.5,
                actual_rate: 0.5,
                actual_load: None,
            },
        ]);
        assert!(
            (fast_first.makespan - slow_first.makespan).abs() > 1e-9,
            "the service order must have responded to the bids: {} vs {}",
            fast_first.makespan,
            slow_first.makespan
        );
    }

    #[test]
    fn overloaded_tree_victim_made_whole() {
        let mech = binary_tree();
        let agents = tree_agents();
        let honest = mech.settle_truthful(&agents);
        let mut conducts: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        let base = honest.agents[1].assigned;
        conducts[1].actual_load = Some(base + 0.05);
        let outcome = mech.settle(&conducts);
        assert!((outcome.utility(2) - honest.utility(2)).abs() < 1e-9);
    }
}
