//! # `mechanism` — the DLS-LBL strategyproof mechanism with verification
//!
//! The economic core of the reproduction of Carroll & Grosu (IPPS 2007):
//! one-parameter strategic agents ([`agent`]), the paper's payment functions
//! (eqs. 4.3–4.13, [`payment`]), the assembled mechanism ([`dls_lbl`]), the
//! fine schedule and audit deterrence analysis ([`fines`], [`audit`]),
//! empirical checkers for strategyproofness and voluntary participation
//! ([`verify`]), and the manipulable no-verification baseline the paper
//! motivates against ([`naive_baseline`]).
//!
//! The message-level enforcement (signatures, grievances, arbitration) is
//! the `protocol` crate; this crate answers "who is paid what and why".
//!
//! ```
//! use mechanism::{Agent, DlsLbl};
//!
//! // Root P0 (obedient, rate 1.0) plus three strategic processors.
//! let mech = DlsLbl::new(1.0, vec![0.2, 0.1, 0.7]);
//! let agents = vec![Agent::new(2.0), Agent::new(0.5), Agent::new(4.0)];
//! let outcome = mech.settle_truthful(&agents);
//! // Theorem 5.4: truthful agents never lose.
//! for j in 1..=3 {
//!     assert!(outcome.utility(j) >= 0.0);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Parallel-array indexing is idiomatic throughout this numeric code.
#![allow(clippy::needless_range_loop)]

pub mod agent;
pub mod archer_tardos;
pub mod audit;
pub mod dls_interior;
pub mod dls_lbl;
pub mod dls_tree;
pub mod equilibrium;
pub mod fines;
pub mod naive_baseline;
pub mod payment;
pub mod verify;

pub use agent::{Agent, Conduct};
pub use dls_lbl::{AgentOutcome, DlsLbl, RoundOutcome};
pub use dls_tree::{OrderPolicy, TreeMechanism, TreeOutcome};
pub use fines::FineSchedule;
pub use payment::{JobLedger, PaymentBreakdown, PaymentInputs};
