//! Fine schedule for deviation penalties (§4).
//!
//! The mechanism punishes substantiated deviations with a fine `F` that
//! must exceed *any profit attainable by cheating* (the paper's requirement
//! on `F`), and punishes overcharging caught by a probability-`q` audit
//! with `F/q`, so the *expected* penalty for overcharging is again `F`.

use dlt::model::LinearNetwork;

/// The fine configuration used by the root when arbitrating grievances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FineSchedule {
    /// The base fine `F`.
    pub base: f64,
    /// Audit probability `q ∈ (0, 1]` for Phase IV proof challenges.
    pub audit_probability: f64,
}

impl FineSchedule {
    /// Create a schedule.
    ///
    /// # Panics
    /// Panics unless `base > 0` and `0 < q ≤ 1`.
    pub fn new(base: f64, audit_probability: f64) -> Self {
        assert!(base > 0.0 && base.is_finite());
        assert!(audit_probability > 0.0 && audit_probability <= 1.0);
        Self {
            base,
            audit_probability,
        }
    }

    /// The fine applied to a substantiated protocol deviation.
    pub fn deviation_fine(&self) -> f64 {
        self.base
    }

    /// The fine applied when a Phase IV audit catches an invalid payment
    /// proof: `F/q`, so the expected penalty equals `F` regardless of how
    /// rarely audits run.
    pub fn overcharge_fine(&self) -> f64 {
        self.base / self.audit_probability
    }

    /// A fine provably sufficient for the given chain.
    ///
    /// A strategic processor's utility components are bounded by the chain
    /// parameters: the bonus is at most `w_{j-1} ≤ max_i w_i`, and
    /// compensation tracks work actually performed (which the valuation
    /// cancels), so no single deviation can net more than
    /// `max_w + total work value ≤ max_w + max_w`. We take `2·max_w` with a
    /// 50 % safety margin.
    pub fn sufficient_for(net: &LinearNetwork, audit_probability: f64) -> Self {
        let max_w = net.rates_w().into_iter().fold(0.0f64, f64::max);
        Self::new(3.0 * max_w, audit_probability)
    }

    /// Expected penalty for an overcharge attempt (caught with probability
    /// `q`, fined `F/q`): always exactly `F`.
    pub fn expected_overcharge_penalty(&self) -> f64 {
        self.audit_probability * self.overcharge_fine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overcharge_fine_scales_inverse_q() {
        let f = FineSchedule::new(10.0, 0.25);
        assert_eq!(f.overcharge_fine(), 40.0);
        assert_eq!(f.deviation_fine(), 10.0);
    }

    #[test]
    fn expected_overcharge_penalty_is_f() {
        for q in [0.01, 0.1, 0.5, 1.0] {
            let f = FineSchedule::new(7.0, q);
            assert!((f.expected_overcharge_penalty() - 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sufficient_fine_dominates_max_bonus() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]);
        let f = FineSchedule::sufficient_for(&net, 0.5);
        // The bonus for P_j is at most w_{j-1}; the fine must beat it.
        let max_w = 4.0;
        assert!(f.base > max_w);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_audit_probability() {
        FineSchedule::new(1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_q_above_one() {
        FineSchedule::new(1.0, 1.5);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_fine() {
        FineSchedule::new(0.0, 0.5);
    }
}
