//! Property-based tests of the payment layer: identities and inequalities
//! from §4–§5, fuzzed over random networks and conducts.

use mechanism::payment;
use mechanism::{Agent, Conduct, DlsLbl};
use proptest::prelude::*;

fn mech_strategy() -> impl Strategy<Value = (DlsLbl, Vec<Agent>)> {
    (2usize..=8).prop_flat_map(|m| {
        (
            0.1f64..5.0,
            proptest::collection::vec(0.1f64..5.0, m),
            proptest::collection::vec(0.01f64..2.0, m),
        )
            .prop_map(|(root, rates, links)| {
                (
                    DlsLbl::new(root, links),
                    rates.into_iter().map(Agent::new).collect::<Vec<Agent>>(),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// V_j + C_j = 0 for a compliant agent: compensation exactly covers
    /// cost, so utility is pure bonus.
    #[test]
    fn compliant_utility_is_pure_bonus((mech, agents) in mech_strategy()) {
        let outcome = mech.settle_truthful(&agents);
        for (idx, a) in outcome.agents.iter().enumerate() {
            prop_assert!(
                (a.breakdown.utility - a.breakdown.bonus).abs() < 1e-9,
                "P{}: U {} ≠ B {}",
                idx + 1,
                a.breakdown.utility,
                a.breakdown.bonus
            );
        }
    }

    /// The Lemma 5.4 identity: truthful utility = w_{j-1} − w̄_{j-1}.
    #[test]
    fn lemma_5_4_identity((mech, agents) in mech_strategy()) {
        let outcome = mech.settle_truthful(&agents);
        for j in 1..=agents.len() {
            let expected = outcome.bid_network.w(j - 1) - outcome.solution.equivalent[j - 1];
            prop_assert!((outcome.utility(j) - expected).abs() < 1e-9, "P{j}");
        }
    }

    /// Recompense neutralizes overloads exactly: E_j = (α̃−α)·w̃ when
    /// α̃ ≥ α, so the utility is overload-invariant.
    #[test]
    fn recompense_is_exact(
        (mech, agents) in mech_strategy(),
        extra in 0.0f64..0.5,
    ) {
        let truthful: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        let base = mech.settle(&truthful, false);
        for j in 1..=agents.len() {
            let mut overloaded = truthful.clone();
            overloaded[j - 1].actual_load = Some(base.agents[j - 1].assigned_load + extra);
            let out = mech.settle(&overloaded, false);
            prop_assert!((out.utility(j) - base.utility(j)).abs() < 1e-9, "P{j}");
        }
    }

    /// Q_j = 0 when α̃_j = 0 (eq. 4.6's zero branch).
    #[test]
    fn zero_work_zero_pay((mech, agents) in mech_strategy()) {
        let mut conducts: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        conducts[0].actual_load = Some(0.0);
        let outcome = mech.settle(&conducts, false);
        prop_assert_eq!(outcome.agents[0].breakdown.payment, 0.0);
    }

    /// Bonus is non-increasing in the metered execution time (running
    /// slower never raises the bonus) — the payment-side engine of the
    /// slack-execution analysis.
    #[test]
    fn bonus_monotone_in_actual_rate(
        (mech, agents) in mech_strategy(),
        slack_a in 1.0f64..4.0,
        slack_b in 1.0f64..4.0,
    ) {
        let (lo, hi) = if slack_a <= slack_b { (slack_a, slack_b) } else { (slack_b, slack_a) };
        let bids: Vec<f64> = agents.iter().map(|a| a.true_rate).collect();
        let (net, _) = mech.allocate(&bids);
        for j in 1..=agents.len() {
            let fast = payment::bonus(&net, j, agents[j - 1].true_rate * lo);
            let slow = payment::bonus(&net, j, agents[j - 1].true_rate * hi);
            prop_assert!(slow <= fast + 1e-9, "P{j}: slower execution raised the bonus");
        }
    }

    /// The adjusted equivalent never falls below the bid-based equivalent
    /// when the agent is slower than bid (eq. 4.11's penalty direction).
    #[test]
    fn adjustment_only_penalizes(
        (mech, agents) in mech_strategy(),
        slack in 1.0f64..4.0,
    ) {
        let bids: Vec<f64> = agents.iter().map(|a| a.true_rate).collect();
        let (net, _) = mech.allocate(&bids);
        for j in 1..=agents.len() {
            let base = dlt::linear::equivalent_time(&net.suffix(j));
            let adjusted = payment::adjusted_equivalent(&net, j, agents[j - 1].true_rate * slack);
            prop_assert!(adjusted >= base - 1e-9, "P{j}");
        }
    }

    /// Root utility is identically zero (eq. 4.3).
    #[test]
    fn root_nets_zero(load in 0.0f64..1.0, rate in 0.1f64..5.0) {
        prop_assert_eq!(payment::root_utility(load, rate), 0.0);
    }

    /// Total settlement is budget-feasible for the mechanism operator in
    /// the sense that payments are finite and individually bounded by
    /// compensation + predecessor rate (the bonus can never exceed
    /// w_{j-1}).
    #[test]
    fn payments_are_bounded((mech, agents) in mech_strategy()) {
        let outcome = mech.settle_truthful(&agents);
        for (idx, a) in outcome.agents.iter().enumerate() {
            let j = idx + 1;
            let w_pred = outcome.bid_network.w(j - 1);
            prop_assert!(a.breakdown.bonus <= w_pred + 1e-9, "P{j} bonus exceeds w_(j-1)");
            prop_assert!(a.breakdown.payment.is_finite());
        }
    }

    /// Settlement determinism: the same conducts settle identically.
    #[test]
    fn settlement_is_deterministic((mech, agents) in mech_strategy()) {
        let conducts: Vec<Conduct> = agents
            .iter()
            .enumerate()
            .map(|(i, &a)| if i % 2 == 0 { Conduct::truthful(a) } else { Conduct::misreport(a, 1.5) })
            .collect();
        let a = mech.settle(&conducts, false);
        let b = mech.settle(&conducts, false);
        prop_assert_eq!(a, b);
    }
}
