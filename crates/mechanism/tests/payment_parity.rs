//! Payment-parity suite (ISSUE 8): the O(m) batch settlement path
//! (`payment::settle_all` / `payment::settle_with` over one
//! `dlt::batch::solve_all_suffixes` sweep) must produce **byte-identical**
//! `PaymentBreakdown`s to the scalar per-agent `payment::settle`, which
//! re-solves the suffix chains from scratch on every call.
//!
//! Equality is asserted on `Debug`-formatted bytes (shortest-roundtrip
//! float printing is injective on finite f64, so equal bytes imply equal
//! bits in every field: valuation, compensation, recompense, bonus,
//! payment, utility).
//!
//! The deterministic test replays the E4 population — 500 random networks
//! (3–9 processors), every strategic agent, the full 45-point
//! `default_factor_grid()` of misreported bids — the exact workload whose
//! report bytes (`results/exp_strategyproof_sweep.json`) the rewiring is
//! required to leave unchanged. The proptests add adversarial conduct
//! (over/under-execution, slack rates, zero actual load) beyond what the
//! sweep exercises.

use dlt::batch;
use dlt::model::LinearNetwork;
use mechanism::payment::{self, PaymentInputs};
use mechanism::verify::default_factor_grid;
use proptest::prelude::*;
use workloads::ChainConfig;

/// Settle every agent the slow way: one scalar `settle` per agent.
fn settle_scalar(
    bids: &LinearNetwork,
    inputs: &[PaymentInputs],
    solution_bonus: f64,
) -> Vec<payment::PaymentBreakdown> {
    inputs
        .iter()
        .enumerate()
        .map(|(idx, inp)| payment::settle(bids, idx + 1, *inp, solution_bonus))
        .collect()
}

/// Truthful-execution inputs for a bid chain: each agent is assigned its
/// bid-optimal share and computes exactly that at its true rate.
fn truthful_inputs(bid_net: &LinearNetwork, true_rates: &[f64]) -> Vec<PaymentInputs> {
    let sol = batch::solve_one(bid_net);
    (1..bid_net.len())
        .map(|j| PaymentInputs {
            assigned_load: sol.alloc.alpha(j),
            actual_load: sol.alloc.alpha(j),
            actual_rate: true_rates[j - 1],
        })
        .collect()
}

/// E4-population parity: 500 networks × every agent × 45 bid factors,
/// batch settlement byte-equal to the scalar reference.
#[test]
fn settle_all_matches_scalar_settle_on_the_e4_population() {
    let grid = default_factor_grid();
    assert_eq!(grid.len(), 45, "E4 bid grid drifted");
    let mut profiles = 0usize;
    for seed in 0..500u64 {
        let cfg = ChainConfig {
            processors: 2 + (seed % 7) as usize + 1,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, seed);
        let parts = workloads::mechanism_parts(&net);
        let m = parts.true_rates.len();
        for j in 1..=m {
            for &f in &grid {
                // Agent j misreports its rate by factor f; others truthful.
                let mut bids = parts.true_rates.clone();
                bids[j - 1] *= f;
                let mut w = vec![parts.root_rate];
                w.extend_from_slice(&bids);
                let bid_net = LinearNetwork::from_rates(&w, &parts.link_rates);
                let inputs = truthful_inputs(&bid_net, &parts.true_rates);
                let fast = payment::settle_all(&bid_net, &inputs, 0.0);
                let slow = settle_scalar(&bid_net, &inputs, 0.0);
                assert_eq!(
                    format!("{fast:?}"),
                    format!("{slow:?}"),
                    "seed {seed}, agent {j}, factor {f}"
                );
                profiles += 1;
            }
        }
    }
    // Σ_seed (2 + seed % 7) agents × 45 factors = 2494 × 45.
    assert_eq!(profiles, 112_230, "population drifted");
}

fn chain_strategy() -> impl Strategy<Value = LinearNetwork> {
    (2usize..=10).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.05f64..5.0, n),
            proptest::collection::vec(0.0f64..2.0, n - 1),
        )
            .prop_map(|(w, z)| LinearNetwork::from_rates(&w, &z))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random chains, truthful execution, with and without the solution
    /// bonus: batch settlement byte-equal to scalar.
    #[test]
    fn parity_under_truthful_execution(
        bid_net in chain_strategy(),
        bonus in 0.0f64..0.5,
    ) {
        let rates: Vec<f64> = (1..bid_net.len()).map(|j| bid_net.w(j)).collect();
        let inputs = truthful_inputs(&bid_net, &rates);
        for s in [0.0, bonus] {
            let fast = payment::settle_all(&bid_net, &inputs, s);
            let slow = settle_scalar(&bid_net, &inputs, s);
            prop_assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
        }
    }

    /// Adversarial conduct: actual rate and load diverge from the bids
    /// (slack execution, over/under-computation, including a zero-load
    /// agent hitting the eq. 4.6 early-out). Parity must still be exact.
    #[test]
    fn parity_under_adversarial_conduct(
        bid_net in chain_strategy(),
        rate_slack in proptest::collection::vec(1.0f64..4.0, 10),
        load_skew in proptest::collection::vec(0.0f64..2.0, 10),
    ) {
        let sol = batch::solve_one(&bid_net);
        let inputs: Vec<PaymentInputs> = (1..bid_net.len())
            .map(|j| {
                let assigned = sol.alloc.alpha(j);
                PaymentInputs {
                    assigned_load: assigned,
                    // load_skew < 0.1 → zero actual load (eq. 4.6 branch).
                    actual_load: if load_skew[(j - 1) % 10] < 0.1 {
                        0.0
                    } else {
                        assigned * load_skew[(j - 1) % 10]
                    },
                    actual_rate: bid_net.w(j) * rate_slack[(j - 1) % 10],
                }
            })
            .collect();
        let fast = payment::settle_all(&bid_net, &inputs, 0.125);
        let slow = settle_scalar(&bid_net, &inputs, 0.125);
        prop_assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
    }
}
