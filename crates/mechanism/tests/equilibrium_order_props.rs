//! Truthfulness under searched service orders (E29's verification layer).
//!
//! The sequencing theory says the canonical ascending-link order is
//! optimal independently of processor rates, so an order *searched at the
//! true rates* and then **frozen** is still bid-independent — the
//! allocation rule stays a fixed function of the bids and
//! strategyproofness must survive. These tests verify that over the full
//! E29 grid: zero profitable misreports on the E13-style factor grid, and
//! one-round best-response convergence to truth.
//!
//! The converse is pinned too: a **bid-dependent** searched order
//! ([`OrderPolicy::BidFastestEquivalentFirst`]) re-opens the E18
//! manipulation channel, and a concrete profitable misreport is kept as a
//! regression witness.

use dlt::seqsearch::{local_search, LocalSearchConfig};
use mechanism::equilibrium::{best_response_dynamics, BidGame};
use mechanism::{Agent, OrderPolicy, TreeMechanism};
use proptest::prelude::*;
use workloads::{misreport_factors, order_search_grid};

/// Build the frozen-searched-order mechanism for a grid case: search at
/// the true rates (the shape embeds them), freeze the winner.
fn frozen_mechanism(case: &workloads::TreeFaultCase) -> TreeMechanism {
    let searched = local_search(&case.shape, &LocalSearchConfig::default());
    TreeMechanism::with_order(case.shape.clone(), OrderPolicy::Frozen(searched.best_order))
}

#[test]
fn frozen_searched_orders_admit_no_profitable_misreport() {
    let factors = misreport_factors();
    let mut sweeps = 0usize;
    for case in order_search_grid(0xE29) {
        let mech = frozen_mechanism(&case);
        let agents: Vec<Agent> = case.true_rates.iter().map(|&t| Agent::new(t)).collect();
        let truthful = case.true_rates.clone();
        for j in 1..=agents.len() {
            let honest = mech.utility(&agents, &truthful, j);
            for &f in &factors {
                let mut bids = truthful.clone();
                bids[j - 1] = case.true_rates[j - 1] * f;
                let gain = mech.utility(&agents, &bids, j) - honest;
                assert!(
                    gain <= 1e-9,
                    "{}: agent {j} gains {gain} from factor {f}",
                    case.label
                );
                sweeps += 1;
            }
        }
    }
    assert!(sweeps > 100, "the sweep must actually cover the grid");
}

#[test]
fn frozen_searched_orders_converge_to_truth_in_one_round() {
    let mut grid = misreport_factors();
    grid.push(1.0);
    for case in order_search_grid(0xE29) {
        let mech = frozen_mechanism(&case);
        let agents: Vec<Agent> = case.true_rates.iter().map(|&t| Agent::new(t)).collect();
        // Start every agent off-truth on both sides of it.
        let initial: Vec<f64> = case
            .true_rates
            .iter()
            .enumerate()
            .map(|(i, &t)| if i % 2 == 0 { t * 2.0 } else { t * 0.5 })
            .collect();
        let traj = best_response_dynamics(&mech, &agents, &initial, &grid, 10);
        assert!(traj.converged, "{}", case.label);
        // Dominant-strategy truthfulness: one corrective round plus the
        // fixed-point check.
        assert!(
            traj.profiles.len() <= 3,
            "{}: took {} rounds",
            case.label,
            traj.profiles.len() - 1
        );
        assert!(
            traj.distance_from_truth(&agents) < 1e-9,
            "{}: ended at {:?}",
            case.label,
            traj.last()
        );
    }
}

/// Regression witness for the manipulation channel E18 predicted: under
/// the bid-dependent order, the agent behind the slowest link of the
/// anti-correlated star profits by overbidding (the lie moves its service
/// position, and the makespan is not monotone in its reported rate there).
#[test]
fn bid_dependent_searched_order_is_manipulable() {
    let case = order_search_grid(0xE29)
        .into_iter()
        .find(|c| c.label == "anti/m3")
        .expect("the grid carries the anti-correlated star");
    let mech =
        TreeMechanism::with_order(case.shape.clone(), OrderPolicy::BidFastestEquivalentFirst);
    let agents: Vec<Agent> = case.true_rates.iter().map(|&t| Agent::new(t)).collect();
    let truthful = case.true_rates.clone();

    // Canonical preorder puts the slowest link (0.6568, rate 0.6) last:
    // agent 3. Overbidding by 1.9 is profitable — found by grid probe,
    // pinned here so the counter-example cannot silently evaporate.
    let j = 3;
    assert!((case.true_rates[j - 1] - 0.6).abs() < 1e-12);
    let honest = mech.utility(&agents, &truthful, j);
    let mut bids = truthful.clone();
    bids[j - 1] = case.true_rates[j - 1] * 1.9;
    let gain = mech.utility(&agents, &bids, j) - honest;
    assert!(
        gain > 7e-3,
        "the pinned profitable misreport vanished: gain {gain}"
    );

    // The same lie under the frozen searched order is strictly
    // unprofitable — the fix is freezing, not the search itself.
    let frozen = frozen_mechanism(&case);
    let frozen_gain = frozen.utility(&agents, &bids, j) - frozen.utility(&agents, &truthful, j);
    assert!(
        frozen_gain <= 1e-9,
        "frozen order leaked gain {frozen_gain}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Strategyproofness of the frozen order holds against arbitrary
    /// (not just truthful) opponents: whatever the others bid, truth is a
    /// best response on the factor grid.
    #[test]
    fn frozen_order_truth_is_best_response_against_lying_others(
        case_seed in 0u64..1_000,
        others in proptest::collection::vec(0.3f64..3.0, 8),
        j_pick in 0usize..8,
    ) {
        let grid = order_search_grid(0xE29);
        let case = &grid[(case_seed as usize) % grid.len()];
        let mech = frozen_mechanism(case);
        let agents: Vec<Agent> = case.true_rates.iter().map(|&t| Agent::new(t)).collect();
        let j = 1 + j_pick % agents.len();
        // Opponents misreport by arbitrary factors; agent j stays truthful.
        let mut bids: Vec<f64> = case
            .true_rates
            .iter()
            .enumerate()
            .map(|(i, &t)| t * others[i % others.len()])
            .collect();
        bids[j - 1] = case.true_rates[j - 1];
        let honest = mech.utility(&agents, &bids, j);
        for &f in &misreport_factors() {
            let mut lie = bids.clone();
            lie[j - 1] = case.true_rates[j - 1] * f;
            let gain = mech.utility(&agents, &lie, j) - honest;
            prop_assert!(
                gain <= 1e-9,
                "{}: agent {} gains {} at factor {} vs others {:?}",
                case.label, j, gain, f, bids
            );
        }
    }
}
