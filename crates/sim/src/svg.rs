//! Standalone SVG rendering of Gantt charts — publication-quality output
//! for the Figure 2 reproduction (the ASCII renderer stays the quick-look
//! tool).
//!
//! No dependencies: the SVG is assembled as a string. Colors follow the
//! paper's convention of communication above the axis and computation
//! below, here mapped to per-activity fills within each processor's lane.

use crate::gantt::{Activity, GanttChart};
use std::fmt::Write;

/// Visual parameters for the SVG renderer.
#[derive(Debug, Clone, Copy)]
pub struct SvgStyle {
    /// Total chart width in pixels (excluding margins).
    pub width: f64,
    /// Height of each lane's activity row.
    pub row_height: f64,
    /// Margin around the chart.
    pub margin: f64,
}

impl Default for SvgStyle {
    fn default() -> Self {
        Self {
            width: 860.0,
            row_height: 22.0,
            margin: 48.0,
        }
    }
}

fn fill(activity: Activity) -> &'static str {
    match activity {
        Activity::Receive => "#7eb6e8",
        Activity::Compute => "#3a6ea5",
        Activity::Send => "#c9dff2",
    }
}

/// Render the chart as a self-contained SVG document. Each processor gets
/// two rows: communication (receive/send) on top, computation below —
/// mirroring Figure 2's layout.
pub fn render_svg(chart: &GanttChart, style: &SvgStyle) -> String {
    let horizon = chart.horizon().max(1e-12);
    let scale = style.width / horizon;
    let lane_height = style.row_height * 2.0 + 10.0;
    let height = style.margin * 2.0 + chart.lanes.len() as f64 * lane_height + 30.0;
    let total_width = style.width + style.margin * 2.0;
    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{total_width:.0}" height="{height:.0}" viewBox="0 0 {total_width:.0} {height:.0}">"#
    );
    let _ = write!(
        out,
        r#"<rect width="100%" height="100%" fill="white"/><style>text{{font-family:sans-serif;font-size:12px}}</style>"#
    );
    for (lane_idx, lane) in chart.lanes.iter().enumerate() {
        let y0 = style.margin + lane_idx as f64 * lane_height;
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
            style.margin - 8.0,
            y0 + style.row_height + 4.0,
            lane.label
        );
        // Row guides.
        let _ = write!(
            out,
            r##"<line x1="{m:.1}" y1="{y:.1}" x2="{x2:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            m = style.margin,
            y = y0 + style.row_height,
            x2 = style.margin + style.width,
        );
        for segment in &lane.segments {
            let x = style.margin + segment.start * scale;
            let w = (segment.duration() * scale).max(0.5);
            let (y, h) = match segment.activity {
                Activity::Compute => (y0 + style.row_height + 2.0, style.row_height),
                _ => (y0, style.row_height),
            };
            let _ = write!(
                out,
                r##"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.1}" fill="{}" stroke="#456" stroke-width="0.4"><title>{} {:?} [{:.4}, {:.4}] load {:.4}</title></rect>"##,
                fill(segment.activity),
                lane.label,
                segment.activity,
                segment.start,
                segment.end,
                segment.load,
            );
        }
    }
    // Time axis.
    let axis_y = style.margin + chart.lanes.len() as f64 * lane_height + 12.0;
    let _ = write!(
        out,
        r##"<line x1="{m:.1}" y1="{axis_y:.1}" x2="{x2:.1}" y2="{axis_y:.1}" stroke="#333"/>"##,
        m = style.margin,
        x2 = style.margin + style.width,
    );
    for i in 0..=8 {
        let t = horizon * i as f64 / 8.0;
        let x = style.margin + t * scale;
        let _ = write!(
            out,
            r##"<line x1="{x:.1}" y1="{axis_y:.1}" x2="{x:.1}" y2="{:.1}" stroke="#333"/><text x="{x:.1}" y="{:.1}" text-anchor="middle">{t:.3}</text>"##,
            axis_y + 5.0,
            axis_y + 18.0,
        );
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::simulate_honest;
    use dlt::linear;
    use dlt::model::LinearNetwork;

    fn chart() -> GanttChart {
        let net = LinearNetwork::from_rates(&[1.0, 1.8, 0.6], &[0.25, 0.15]);
        let sol = linear::solve(&net);
        simulate_honest(&net, &sol.local).gantt
    }

    #[test]
    fn produces_well_formed_svg() {
        let svg = render_svg(&chart(), &SvgStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<svg").count(), 1);
    }

    #[test]
    fn has_one_labeled_lane_per_processor() {
        let svg = render_svg(&chart(), &SvgStyle::default());
        for label in ["P0", "P1", "P2"] {
            assert!(svg.contains(&format!(">{label}</text>")), "missing {label}");
        }
    }

    #[test]
    fn contains_compute_and_comm_rects() {
        let svg = render_svg(&chart(), &SvgStyle::default());
        assert!(svg.contains(fill(Activity::Compute)));
        assert!(svg.contains(fill(Activity::Receive)));
        assert!(svg.contains(fill(Activity::Send)));
    }

    #[test]
    fn tooltips_carry_segment_metadata() {
        let svg = render_svg(&chart(), &SvgStyle::default());
        assert!(svg.contains("<title>"));
        assert!(svg.contains("Compute"));
    }

    #[test]
    fn empty_chart_renders_without_panic() {
        let empty = GanttChart::with_processors(2);
        let svg = render_svg(&empty, &SvgStyle::default());
        assert!(svg.contains("</svg>"));
    }
}
