//! Event-driven simulation of star/bus execution, used by the
//! cross-architecture experiment (E10) and to validate the star solver's
//! closed form the same way [`crate::chain`] validates the chain solver.
//!
//! The root serves children sequentially over its single port while
//! computing its own share through its front-end; child `i`'s transfer can
//! only begin once child `i-1`'s transfer completes.

use crate::engine::Engine;
use crate::gantt::{Activity, GanttChart};
use crate::time::SimTime;
use dlt::model::{Allocation, StarNetwork};

/// Result of a simulated star run.
#[derive(Debug, Clone, PartialEq)]
pub struct StarRun {
    /// Recorded Gantt chart (lane 0 is the root, lane `i` child `i`).
    pub gantt: GanttChart,
    /// Per-processor finish times.
    pub finish_times: Vec<f64>,
    /// Overall makespan.
    pub makespan: f64,
    /// Number of events processed.
    pub events: u64,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Transfer to child `index` (1-based lane) completed.
    TransferComplete { index: usize },
    /// A processor finished computing.
    ComputeComplete { node: usize },
}

/// Simulate the star under an arbitrary allocation (root first, children in
/// distribution order).
pub fn simulate(net: &StarNetwork, alloc: &Allocation) -> StarRun {
    let n = net.len();
    assert_eq!(alloc.len(), n);
    let mut gantt = GanttChart::with_processors(n);
    let mut finish = vec![0.0; n];

    let mut engine: Engine<Event> = Engine::new();

    // Root computes its share immediately.
    if alloc.alpha(0) > 0.0 {
        let dur = alloc.alpha(0) * net.root().w;
        gantt.record(0, Activity::Compute, 0.0, dur, alloc.alpha(0));
        engine.schedule_at(SimTime::new(dur), Event::ComputeComplete { node: 0 });
    }
    // Chain the child transfers over the root's single port.
    let mut port_free = 0.0;
    for (i, (link, _)) in net.children().iter().enumerate() {
        let lane = i + 1;
        let amount = alloc.alpha(lane);
        let dur = amount * link.z;
        if amount > 0.0 {
            gantt.record(0, Activity::Send, port_free, port_free + dur, amount);
            gantt.record(lane, Activity::Receive, port_free, port_free + dur, amount);
            engine.schedule_at(
                SimTime::new(port_free + dur),
                Event::TransferComplete { index: lane },
            );
        }
        port_free += dur;
    }

    engine.run(|eng, t, ev| match ev {
        Event::TransferComplete { index } => {
            let amount = alloc.alpha(index);
            let w = net.children()[index - 1].1.w;
            let dur = amount * w;
            gantt.record(
                index,
                Activity::Compute,
                t.as_f64(),
                t.as_f64() + dur,
                amount,
            );
            eng.schedule_in(dur, Event::ComputeComplete { node: index });
        }
        Event::ComputeComplete { node } => {
            finish[node] = t.as_f64();
        }
    });

    let makespan = finish.iter().copied().fold(0.0, f64::max);
    let events = engine.processed();
    StarRun {
        gantt,
        finish_times: finish,
        makespan,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt::star;

    fn net() -> StarNetwork {
        StarNetwork::from_rates(&[1.0, 2.0, 0.7, 3.0], &[0.1, 0.4, 0.2])
    }

    #[test]
    fn optimal_allocation_finishes_simultaneously() {
        let net = net();
        let sol = star::solve(&net);
        let run = simulate(&net, &sol.alloc);
        for (i, &t) in run.finish_times.iter().enumerate() {
            assert!(
                (t - sol.makespan).abs() < 1e-12,
                "P{i}: {t} vs {}",
                sol.makespan
            );
        }
    }

    #[test]
    fn simulated_times_match_closed_form() {
        let net = net();
        let alloc = Allocation::new(vec![0.4, 0.3, 0.2, 0.1]);
        let run = simulate(&net, &alloc);
        let expected = star::finish_times(&net, &alloc);
        for i in 0..net.len() {
            assert!((run.finish_times[i] - expected[i]).abs() < 1e-12, "P{i}");
        }
    }

    #[test]
    fn one_port_respected_on_root() {
        let net = net();
        let sol = star::solve(&net);
        let run = simulate(&net, &sol.alloc);
        run.gantt.validate_one_port().unwrap();
        // Send segments on the root lane are contiguous, not parallel.
        let sends: Vec<_> = run.gantt.lanes[0].of(Activity::Send).collect();
        for pair in sends.windows(2) {
            assert!(pair[1].start >= pair[0].end - 1e-12);
        }
    }

    #[test]
    fn zero_share_child_never_computes() {
        let net = net();
        let alloc = Allocation::new(vec![0.5, 0.5, 0.0, 0.0]);
        let run = simulate(&net, &alloc);
        assert_eq!(run.finish_times[2], 0.0);
        assert_eq!(run.finish_times[3], 0.0);
        assert!(run.gantt.lanes[3].segments.is_empty());
    }

    #[test]
    fn later_child_waits_for_port() {
        let net = StarNetwork::from_rates(&[1.0, 1.0, 1.0], &[1.0, 1.0]);
        let alloc = Allocation::new(vec![0.2, 0.4, 0.4]);
        let run = simulate(&net, &alloc);
        let recv2 = run.gantt.lanes[2].of(Activity::Receive).next().unwrap();
        assert!(
            (recv2.start - 0.4).abs() < 1e-12,
            "child 2 waits for child 1's transfer"
        );
    }
}
