//! # `sim` — discrete-event simulation of divisible load execution
//!
//! The execution substrate of the DLS-LBL reproduction. The paper's timing
//! model (Figure 2) is analytic; this crate re-derives it by *simulation*:
//! a small discrete-event engine drives store-and-forward chain execution
//! (and sequential star distribution) under the one-port, front-end model,
//! recording a Gantt chart. Honest runs must agree with `dlt`'s closed
//! forms to machine precision — that agreement is asserted all over the
//! test suite and is the backbone of experiment E1.
//!
//! Beyond validation, the simulator is what gives Phase III misbehavior its
//! semantics: a node that sheds load (`α̃ < α`) or computes slower than bid
//! (`w̃ > w`) produces a concretely different timeline, which the protocol
//! layer's verification then has to catch.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Parallel-array indexing is idiomatic throughout this numeric code.
#![allow(clippy::needless_range_loop)]

pub mod blocks;
pub mod chain;
pub mod engine;
pub mod gantt;
pub mod star_sim;
pub mod svg;
pub mod time;
pub mod timeline_render;

pub use blocks::{simulate_blocks, BlockRun};
pub use chain::{simulate as simulate_chain, simulate_honest, ChainRun, NodeBehavior};
pub use engine::Engine;
pub use gantt::{Activity, GanttChart, Lane, Segment};
pub use star_sim::{simulate as simulate_star, StarRun};
pub use svg::{render_svg, SvgStyle};
pub use time::SimTime;
pub use timeline_render::{phase_timeline_to_gantt, render_timeline_svg};
