//! Simulation time: a totally ordered wrapper over `f64`.
//!
//! `f64` itself is not `Ord` (NaN); the event queue needs a total order, so
//! simulation time is a newtype that rejects NaN at construction and derives
//! its order from `f64::total_cmp`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time. Non-negative and never NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct a simulation time.
    ///
    /// # Panics
    /// Panics if `t` is NaN or negative.
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "simulation time cannot be NaN");
        assert!(t >= 0.0, "simulation time cannot be negative, got {t}");
        SimTime(t)
    }

    /// The raw value.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative() {
        SimTime::new(-0.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(1.5) + 0.5;
        assert_eq!(t.as_f64(), 2.0);
        assert_eq!(t - SimTime::new(0.5), 1.5);
        let mut u = SimTime::ZERO;
        u += 3.0;
        assert_eq!(u.as_f64(), 3.0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::new(0.25).to_string(), "t=0.250000");
    }
}
