//! Rendering of `obs` phase timelines through the existing Gantt/SVG path.
//!
//! A [`obs::PhaseTimeline`] records what each node spent its virtual time
//! on (phase work, detection-timeout waits, recovery load, splice markers);
//! this module maps those spans onto [`GanttChart`] lanes so the one
//! renderer family (ASCII + SVG) serves both simulator output and protocol
//! observability:
//!
//! * [`TimelineKind::Work`] and [`TimelineKind::Recovery`] → `Compute`
//!   segments (the lane's "busy" row);
//! * [`TimelineKind::Timeout`] → `Receive` segments (the comm row, shown as
//!   a wait on the inbound link);
//! * [`TimelineKind::Splice`] → zero-width `Send` markers (the instant the
//!   dead node was cut out of the chain).

use crate::gantt::{Activity, GanttChart};
use obs::{PhaseTimeline, TimelineKind};

/// Map a phase timeline onto a Gantt chart, one lane per node.
pub fn phase_timeline_to_gantt(timeline: &PhaseTimeline) -> GanttChart {
    let mut chart = GanttChart::with_processors(timeline.nodes);
    for s in &timeline.spans {
        let activity = match s.kind {
            TimelineKind::Work | TimelineKind::Recovery => Activity::Compute,
            TimelineKind::Timeout => Activity::Receive,
            TimelineKind::Splice => Activity::Send,
        };
        chart.record(s.node, activity, s.start, s.end, s.load);
    }
    chart
}

/// Render a phase timeline straight to SVG with the default style.
pub fn render_timeline_svg(timeline: &PhaseTimeline) -> String {
    crate::svg::render_svg(
        &phase_timeline_to_gantt(timeline),
        &crate::svg::SvgStyle::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhaseTimeline {
        let mut t = PhaseTimeline::new(3);
        t.push(0, 3, TimelineKind::Work, (0.0, 0.6), 0.4);
        t.push(1, 3, TimelineKind::Work, (0.1, 0.6), 0.35);
        t.push(2, 3, TimelineKind::Timeout, (0.6, 0.65), 0.0);
        t.mark(1, 3, TimelineKind::Splice, 0.65);
        t.push(2, 3, TimelineKind::Recovery, (0.65, 0.8), 0.25);
        t.makespan = 0.8;
        t
    }

    #[test]
    fn maps_kinds_to_activities() {
        let chart = phase_timeline_to_gantt(&sample());
        assert_eq!(chart.lanes.len(), 3);
        // Work + Recovery land on the compute row.
        assert_eq!(chart.lanes[0].of(Activity::Compute).count(), 1);
        assert_eq!(chart.lanes[2].of(Activity::Compute).count(), 1);
        // Timeout is a receive-side wait.
        assert_eq!(chart.lanes[2].of(Activity::Receive).count(), 1);
        // Splice is a zero-width send marker.
        let splice: Vec<_> = chart.lanes[1].of(Activity::Send).collect();
        assert_eq!(splice.len(), 1);
        assert_eq!(splice[0].start, splice[0].end);
    }

    #[test]
    fn horizon_matches_timeline() {
        let t = sample();
        let chart = phase_timeline_to_gantt(&t);
        assert!((chart.horizon() - t.horizon()).abs() < 1e-15);
    }

    #[test]
    fn svg_renders_without_error() {
        let svg = render_timeline_svg(&sample());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn empty_timeline_renders_empty_chart() {
        let chart = phase_timeline_to_gantt(&PhaseTimeline::new(2));
        assert_eq!(chart.lanes.len(), 2);
        assert!(chart.lanes.iter().all(|l| l.segments.is_empty()));
    }
}
