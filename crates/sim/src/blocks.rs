//! Per-block discrete-event simulation — the fine-grained twin of
//! [`crate::chain`].
//!
//! The Λ device divides the load into `B` tagged blocks; this module
//! simulates every block's hop as its own event instead of aggregating
//! whole transfers. Semantics are identical to the aggregate model (links
//! carry a node's outbound blocks back-to-back, a node still computes only
//! once its entire retained set has arrived), so the finish times must
//! match the aggregate simulation to rounding — asserted in tests — while
//! the event count scales with `B`. This is the "DES granularity" ablation
//! of DESIGN.md §5, and it doubles as the faithful execution model for
//! protocols that meter per-block receipts.

use crate::engine::Engine;
use crate::time::SimTime;
use dlt::model::{LinearNetwork, LocalAllocation};

/// Result of a per-block run.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockRun {
    /// Number of blocks each node retained.
    pub retained_blocks: Vec<usize>,
    /// Number of blocks each node received.
    pub received_blocks: Vec<usize>,
    /// Per-node compute finish times (0 for idle nodes).
    pub finish_times: Vec<f64>,
    /// Overall makespan.
    pub makespan: f64,
    /// Number of discrete events processed.
    pub events: u64,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// One block finished arriving at `node`.
    BlockArrived { node: usize },
    /// `node` finished computing its retained set.
    ComputeComplete { node: usize },
}

/// Simulate the chain at block granularity.
///
/// Block accounting: node `i` receives `received_blocks[i]` blocks, keeps
/// the first `retained_blocks[i]` (block counts are rounded from the plan;
/// the terminal node keeps everything), forwards the rest. A link carries
/// blocks one at a time, `block_size × z` each; a node starts computing
/// when its last retained block lands and computes `retained × block_size
/// × w̃`.
pub fn simulate_blocks(
    net: &LinearNetwork,
    plan: &LocalAllocation,
    actual_rates: &[f64],
    blocks: usize,
) -> BlockRun {
    let n = net.len();
    assert_eq!(plan.len(), n);
    assert_eq!(actual_rates.len(), n);
    assert!(blocks >= 1);
    let m = n - 1;
    let block_size = 1.0 / blocks as f64;

    // Static block accounting (the plan is fixed before execution).
    let mut received = vec![0usize; n];
    let mut retained = vec![0usize; n];
    let mut pool = blocks;
    for i in 0..n {
        received[i] = pool;
        let keep = if i == m {
            pool
        } else {
            ((plan.alpha_hat(i) * pool as f64).round() as usize).min(pool)
        };
        retained[i] = keep;
        pool -= keep;
    }

    // Event-driven execution.
    let mut engine: Engine<Event> = Engine::new();
    let mut arrived = vec![0usize; n];
    let mut finish = vec![0.0f64; n];
    // `link_free[i]`: when the link into node i can start its next block.
    let mut link_free = vec![0.0f64; n];

    // The root "receives" all blocks at t = 0.
    arrived[0] = received[0];
    if retained[0] > 0 {
        let dur = retained[0] as f64 * block_size * actual_rates[0];
        engine.schedule_at(SimTime::new(dur), Event::ComputeComplete { node: 0 });
    }
    // Root forwards its outbound blocks back-to-back from t = 0.
    if m >= 1 {
        let fwd = received[0] - retained[0];
        let mut t = 0.0;
        for _ in 0..fwd {
            t += block_size * net.z(1);
            engine.schedule_at(SimTime::new(t), Event::BlockArrived { node: 1 });
        }
        link_free[1] = t;
    }

    engine.run(|eng, t, ev| match ev {
        Event::BlockArrived { node } => {
            arrived[node] += 1;
            // Start computing once the full retained set is in. Retained
            // blocks are the *first* `retained[node]` to arrive.
            if arrived[node] == retained[node] && retained[node] > 0 {
                let dur = retained[node] as f64 * block_size * actual_rates[node];
                eng.schedule_in(dur, Event::ComputeComplete { node });
            }
            // Forward every block beyond the retained set immediately
            // (front-end), respecting the outbound link's serialization.
            if node < m && arrived[node] > retained[node] {
                let start = link_free[node + 1].max(t.as_f64());
                let end = start + block_size * net.z(node + 1);
                link_free[node + 1] = end;
                eng.schedule_at(SimTime::new(end), Event::BlockArrived { node: node + 1 });
            }
        }
        Event::ComputeComplete { node } => {
            finish[node] = t.as_f64();
        }
    });

    let makespan = finish.iter().copied().fold(0.0, f64::max);
    BlockRun {
        retained_blocks: retained,
        received_blocks: received,
        finish_times: finish,
        makespan,
        events: engine.processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::simulate_honest;
    use dlt::linear;

    fn net() -> LinearNetwork {
        LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7])
    }

    #[test]
    fn block_counts_partition_the_load() {
        let net = net();
        let sol = linear::solve(&net);
        let rates = net.rates_w();
        let run = simulate_blocks(&net, &sol.local, &rates, 1000);
        assert_eq!(run.retained_blocks.iter().sum::<usize>(), 1000);
        assert_eq!(run.received_blocks[0], 1000);
    }

    #[test]
    fn converges_to_aggregate_simulation() {
        // Block rounding perturbs the allocation by O(1/B); the makespan
        // must converge to the aggregate model's as B grows.
        let net = net();
        let sol = linear::solve(&net);
        let rates = net.rates_w();
        let aggregate = simulate_honest(&net, &sol.local);
        let mut errors = Vec::new();
        for blocks in [100usize, 1000, 10_000] {
            let run = simulate_blocks(&net, &sol.local, &rates, blocks);
            errors.push((run.makespan - aggregate.makespan).abs());
        }
        assert!(
            errors[2] < errors[0],
            "error should shrink with granularity: {errors:?}"
        );
        assert!(
            errors[2] < 1e-3,
            "10k blocks should be within 1e-3: {errors:?}"
        );
    }

    #[test]
    fn event_count_scales_with_blocks() {
        let net = net();
        let sol = linear::solve(&net);
        let rates = net.rates_w();
        let small = simulate_blocks(&net, &sol.local, &rates, 100);
        let large = simulate_blocks(&net, &sol.local, &rates, 1000);
        assert!(large.events > small.events * 5);
    }

    #[test]
    fn cut_through_forwarding_cannot_be_slower_than_store_and_forward() {
        // Per-block forwarding lets downstream transfers start before a
        // node's full delivery completes, so finish times are ≤ the
        // aggregate model's (up to rounding).
        let net = net();
        let sol = linear::solve(&net);
        let rates = net.rates_w();
        let aggregate = simulate_honest(&net, &sol.local);
        let run = simulate_blocks(&net, &sol.local, &rates, 10_000);
        for i in 0..net.len() {
            assert!(
                run.finish_times[i] <= aggregate.finish_times[i] + 1e-3,
                "P{i}: blocks {} vs aggregate {}",
                run.finish_times[i],
                aggregate.finish_times[i]
            );
        }
    }

    #[test]
    fn single_block_degenerates_gracefully() {
        let net = LinearNetwork::from_rates(&[1.0, 1.0], &[0.5]);
        let plan = linear::solve(&net).local;
        let run = simulate_blocks(&net, &plan, &[1.0, 1.0], 1);
        // One block: someone gets everything (rounding decides whom).
        assert_eq!(run.retained_blocks.iter().sum::<usize>(), 1);
        assert!(run.makespan > 0.0);
    }

    #[test]
    fn slow_actual_rate_delays_finish() {
        let net = net();
        let sol = linear::solve(&net);
        let mut rates = net.rates_w();
        let base = simulate_blocks(&net, &sol.local, &rates, 1000);
        rates[2] *= 3.0;
        let slow = simulate_blocks(&net, &sol.local, &rates, 1000);
        assert!(slow.finish_times[2] > base.finish_times[2]);
    }

    #[test]
    fn terminal_keeps_all_remaining_blocks() {
        let net = net();
        let sol = linear::solve(&net);
        let run = simulate_blocks(&net, &sol.local, &net.rates_w(), 777);
        assert_eq!(run.retained_blocks[3], run.received_blocks[3]);
    }
}
