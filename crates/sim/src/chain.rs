//! Event-driven simulation of chain execution — Figure 2 brought to life,
//! including the misbehaviors of §4 Phase III.
//!
//! The simulation is driven by the [`Engine`] event queue: load transfers
//! and computations are events whose completion triggers downstream
//! activity. An honest run must reproduce the analytic schedule of
//! [`dlt::timing::ChainSchedule`] exactly; deviant runs let nodes compute
//! slower than bid (`w̃ > w`) or retain less than prescribed (`α̃ < α`,
//! shedding work onto their successors), which is precisely what the
//! mechanism's verification layer must detect.

use crate::engine::Engine;
use crate::gantt::{Activity, GanttChart};
use crate::time::SimTime;
use dlt::model::{LinearNetwork, LocalAllocation, EPSILON};

/// Per-node runtime behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeBehavior {
    /// Actual unit processing time `w̃_i` the node computes at. The paper
    /// requires `w̃_i ≥ t_i`; the simulator itself accepts any positive
    /// value and leaves enforcement to the caller.
    pub actual_rate: f64,
    /// Actual *local* retention `α̃̂_i`: the fraction of received load the
    /// node keeps. `None` means the prescribed fraction. Ignored for the
    /// terminal node, which has no successor and must keep everything.
    pub retention_override: Option<f64>,
    /// Fraction of the retained load the node actually finishes computing
    /// before halting (crash-stop or stall). `None` means it runs to
    /// completion. Forwarding is unaffected: under the store-and-forward
    /// front-end model the outbound transfer completes before computation,
    /// so a compute-phase failure never starves the successors.
    pub compute_cap: Option<f64>,
}

impl NodeBehavior {
    /// Fully compliant behavior at the given actual rate.
    pub fn compliant(actual_rate: f64) -> Self {
        Self {
            actual_rate,
            retention_override: None,
            compute_cap: None,
        }
    }

    /// Load-shedding behavior: keep only `fraction` of the received load
    /// (forwarding the rest), computing at `actual_rate`.
    pub fn shedding(actual_rate: f64, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        Self {
            actual_rate,
            retention_override: Some(fraction),
            compute_cap: None,
        }
    }

    /// Failing behavior: the node halts (crash-stop or stall) after
    /// completing `progress` of its retained load, having already forwarded
    /// the rest of the chain's share.
    pub fn failing(actual_rate: f64, progress: f64) -> Self {
        assert!((0.0..=1.0).contains(&progress));
        Self {
            actual_rate,
            retention_override: None,
            compute_cap: Some(progress),
        }
    }
}

/// Result of a simulated chain run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRun {
    /// The recorded Gantt chart.
    pub gantt: GanttChart,
    /// Load actually received by each node (`D̃_i`).
    pub received: Vec<f64>,
    /// Load actually retained by each node (`α̃_i`).
    pub retained: Vec<f64>,
    /// Load actually *finished* by each node — equal to `retained` except
    /// for nodes that halted mid-computation (`compute_cap`).
    pub computed: Vec<f64>,
    /// Load actually forwarded by each node.
    pub forwarded: Vec<f64>,
    /// Per-node compute finish times (0 for idle nodes).
    pub finish_times: Vec<f64>,
    /// Overall makespan.
    pub makespan: f64,
    /// Number of discrete events processed.
    pub events: u64,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// `amount` units finished arriving at node `to`.
    TransferComplete { to: usize, amount: f64 },
    /// Node finished computing its retained load.
    ComputeComplete { node: usize },
}

/// Simulate the chain under the prescribed local allocation `plan` with the
/// given per-node behaviors.
///
/// # Panics
/// Panics if the vector lengths disagree with the network size.
pub fn simulate(
    net: &LinearNetwork,
    plan: &LocalAllocation,
    behaviors: &[NodeBehavior],
) -> ChainRun {
    let n = net.len();
    assert_eq!(plan.len(), n, "plan size mismatch");
    assert_eq!(behaviors.len(), n, "behavior size mismatch");
    let m = n - 1;

    let mut gantt = GanttChart::with_processors(n);
    let mut received = vec![0.0; n];
    let mut retained = vec![0.0; n];
    let mut computed = vec![0.0; n];
    let mut forwarded = vec![0.0; n];
    let mut finish = vec![0.0; n];

    let retention = |i: usize| -> f64 {
        if i == m {
            1.0
        } else {
            behaviors[i]
                .retention_override
                .unwrap_or_else(|| plan.alpha_hat(i))
        }
    };

    let mut engine: Engine<Event> = Engine::new();
    // The root "receives" the whole load at time zero.
    engine.schedule_at(
        SimTime::ZERO,
        Event::TransferComplete { to: 0, amount: 1.0 },
    );

    engine.run(|eng, t, ev| match ev {
        Event::TransferComplete { to, amount } => {
            let now = t.as_f64();
            received[to] = amount;
            if to > 0 {
                let dur = amount * net.z(to);
                gantt.record(to, Activity::Receive, now - dur, now, amount);
                gantt.record(to - 1, Activity::Send, now - dur, now, amount);
            }
            let keep = (retention(to) * amount).min(amount);
            let fwd = amount - keep;
            retained[to] = keep;
            forwarded[to] = fwd;
            let done = keep * behaviors[to].compute_cap.unwrap_or(1.0);
            computed[to] = done;
            if done > 0.0 {
                let dur = done * behaviors[to].actual_rate;
                gantt.record(to, Activity::Compute, now, now + dur, done);
                eng.schedule_in(dur, Event::ComputeComplete { node: to });
            }
            if to < m && fwd > EPSILON {
                let dur = fwd * net.z(to + 1);
                eng.schedule_in(
                    dur,
                    Event::TransferComplete {
                        to: to + 1,
                        amount: fwd,
                    },
                );
            }
        }
        Event::ComputeComplete { node } => {
            finish[node] = t.as_f64();
        }
    });

    let makespan = finish.iter().copied().fold(0.0, f64::max);
    let events = engine.processed();
    ChainRun {
        gantt,
        received,
        retained,
        computed,
        forwarded,
        finish_times: finish,
        makespan,
        events,
    }
}

/// Simulate a fully honest run: every node computes at the network rate and
/// retains the prescribed fraction.
pub fn simulate_honest(net: &LinearNetwork, plan: &LocalAllocation) -> ChainRun {
    let behaviors: Vec<NodeBehavior> = (0..net.len())
        .map(|i| NodeBehavior::compliant(net.w(i)))
        .collect();
    simulate(net, plan, &behaviors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt::linear;
    use dlt::timing::{finish_times as analytic_times, ChainSchedule};

    fn net4() -> LinearNetwork {
        LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7])
    }

    #[test]
    fn honest_run_matches_analytic_finish_times() {
        let net = net4();
        let sol = linear::solve(&net);
        let run = simulate_honest(&net, &sol.local);
        let expected = analytic_times(&net, &sol.alloc);
        for i in 0..net.len() {
            assert!(
                (run.finish_times[i] - expected[i]).abs() < 1e-12,
                "T_{i}: sim {} vs analytic {}",
                run.finish_times[i],
                expected[i]
            );
        }
        assert!((run.makespan - sol.makespan()).abs() < 1e-12);
    }

    #[test]
    fn honest_run_matches_analytic_schedule() {
        let net = net4();
        let sol = linear::solve(&net);
        let run = simulate_honest(&net, &sol.local);
        let analytic = ChainSchedule::analytic(&net, &sol.alloc);
        for (i, p) in analytic.processors.iter().enumerate() {
            let lane = &run.gantt.lanes[i];
            let compute = lane.of(Activity::Compute).next().expect("compute segment");
            assert!(
                (compute.start - p.compute.start).abs() < 1e-12,
                "P{i} compute start"
            );
            assert!(
                (compute.end - p.compute.end).abs() < 1e-12,
                "P{i} compute end"
            );
        }
    }

    #[test]
    fn honest_run_receives_match_closed_form() {
        let net = net4();
        let sol = linear::solve(&net);
        let run = simulate_honest(&net, &sol.local);
        let expected = sol.alloc.received();
        for i in 0..net.len() {
            assert!((run.received[i] - expected[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn gantt_is_one_port_consistent() {
        let net = net4();
        let sol = linear::solve(&net);
        let run = simulate_honest(&net, &sol.local);
        run.gantt.validate_one_port().unwrap();
    }

    #[test]
    fn event_count_is_linear_in_nodes() {
        let net = LinearNetwork::homogeneous(10, 1.0, 0.1);
        let sol = linear::solve(&net);
        let run = simulate_honest(&net, &sol.local);
        // per node: one transfer-in + one compute-complete
        assert_eq!(run.events, 20);
    }

    #[test]
    fn slow_node_delays_only_its_own_finish() {
        let net = net4();
        let sol = linear::solve(&net);
        let mut behaviors: Vec<NodeBehavior> = (0..net.len())
            .map(|i| NodeBehavior::compliant(net.w(i)))
            .collect();
        behaviors[2].actual_rate = net.w(2) * 3.0; // P2 computes 3x slower
        let run = simulate(&net, &sol.local, &behaviors);
        let honest = simulate_honest(&net, &sol.local);
        assert!(run.finish_times[2] > honest.finish_times[2] + 1e-9);
        // Other nodes' finish times are unchanged: computation does not
        // block forwarding under the front-end model.
        for i in [0usize, 1, 3] {
            assert!((run.finish_times[i] - honest.finish_times[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn shedding_node_pushes_load_downstream() {
        let net = net4();
        let sol = linear::solve(&net);
        let mut behaviors: Vec<NodeBehavior> = (0..net.len())
            .map(|i| NodeBehavior::compliant(net.w(i)))
            .collect();
        // P1 keeps only half of what it should.
        let prescribed = sol.local.alpha_hat(1);
        behaviors[1] = NodeBehavior::shedding(net.w(1), prescribed / 2.0);
        let run = simulate(&net, &sol.local, &behaviors);
        let honest = simulate_honest(&net, &sol.local);
        assert!(run.retained[1] < honest.retained[1] - 1e-9);
        assert!(
            run.received[2] > honest.received[2] + 1e-9,
            "successor receives extra"
        );
        // Total load is conserved.
        let total: f64 = run.retained.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shedding_everything_gives_node_zero_finish_time() {
        let net = net4();
        let sol = linear::solve(&net);
        let mut behaviors: Vec<NodeBehavior> = (0..net.len())
            .map(|i| NodeBehavior::compliant(net.w(i)))
            .collect();
        behaviors[1] = NodeBehavior::shedding(net.w(1), 0.0);
        let run = simulate(&net, &sol.local, &behaviors);
        assert_eq!(run.retained[1], 0.0);
        assert_eq!(run.finish_times[1], 0.0);
    }

    #[test]
    fn terminal_node_cannot_shed() {
        let net = net4();
        let sol = linear::solve(&net);
        let mut behaviors: Vec<NodeBehavior> = (0..net.len())
            .map(|i| NodeBehavior::compliant(net.w(i)))
            .collect();
        behaviors[3] = NodeBehavior::shedding(net.w(3), 0.0); // ignored
        let run = simulate(&net, &sol.local, &behaviors);
        assert!(run.retained[3] > 0.0);
        let total: f64 = run.retained.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn failing_node_finishes_only_its_progress() {
        let net = net4();
        let sol = linear::solve(&net);
        let mut behaviors: Vec<NodeBehavior> = (0..net.len())
            .map(|i| NodeBehavior::compliant(net.w(i)))
            .collect();
        behaviors[1] = NodeBehavior::failing(net.w(1), 0.25);
        let run = simulate(&net, &sol.local, &behaviors);
        let honest = simulate_honest(&net, &sol.local);
        // It still receives and forwards the full flow...
        assert!((run.received[1] - honest.received[1]).abs() < 1e-12);
        assert!((run.retained[1] - honest.retained[1]).abs() < 1e-12);
        for i in [0usize, 2, 3] {
            assert!(
                (run.received[i] - honest.received[i]).abs() < 1e-12,
                "P{i} flow disturbed"
            );
            assert!((run.computed[i] - honest.retained[i]).abs() < 1e-12);
        }
        // ...but only a quarter of its own share is ever finished.
        assert!((run.computed[1] - 0.25 * honest.retained[1]).abs() < 1e-12);
        assert!(run.finish_times[1] < honest.finish_times[1]);
    }

    #[test]
    fn failing_at_zero_progress_computes_nothing() {
        let net = net4();
        let sol = linear::solve(&net);
        let mut behaviors: Vec<NodeBehavior> = (0..net.len())
            .map(|i| NodeBehavior::compliant(net.w(i)))
            .collect();
        behaviors[2] = NodeBehavior::failing(net.w(2), 0.0);
        let run = simulate(&net, &sol.local, &behaviors);
        assert_eq!(run.computed[2], 0.0);
        assert_eq!(run.finish_times[2], 0.0);
        assert!(run.retained[2] > 0.0, "the load was still delivered to it");
    }

    #[test]
    fn compliant_runs_compute_everything_they_retain() {
        let net = net4();
        let sol = linear::solve(&net);
        let run = simulate_honest(&net, &sol.local);
        for i in 0..net.len() {
            assert!((run.computed[i] - run.retained[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn single_processor_run() {
        let net = LinearNetwork::homogeneous(1, 2.0, 0.0);
        let sol = linear::solve(&net);
        let run = simulate_honest(&net, &sol.local);
        assert_eq!(run.makespan, 2.0);
        assert_eq!(run.retained, vec![1.0]);
    }
}
