//! A minimal generic discrete-event engine: a priority queue of timestamped
//! events with FIFO tie-breaking, plus a driver loop.
//!
//! The engine is deliberately small — the divisible-load model has no
//! preemption or cancellation — but it is a *real* event queue: the chain
//! and star simulations in this crate are driven entirely by event
//! causality, and their agreement with the closed-form schedules of
//! `dlt::timing` is what validates both.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: a payload due at a time. Events at equal times pop in
/// insertion order (deterministic FIFO tie-break).
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event queue and simulation clock.
#[derive(Debug)]
pub struct Engine<E> {
    queue: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at time zero.
    pub fn new() -> Self {
        Self {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — the model has no retro-causality.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {} < {}",
            at,
            self.now
        );
        self.queue.push(Scheduled {
            time: at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedule `payload` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: f64, payload: E) {
        let at = self.now + delay;
        self.schedule_at(at, payload);
    }

    /// Pop the next event, advancing the clock. Returns `None` when the
    /// queue is drained.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let ev = self.queue.pop()?;
        self.now = ev.time;
        self.processed += 1;
        Some((ev.time, ev.payload))
    }

    /// Run to completion, invoking `handler` for every event. The handler
    /// may schedule further events through the engine it is handed.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Engine<E>, SimTime, E)) {
        while let Some((t, e)) = self.next_event() {
            handler(self, t, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::new(3.0), "c");
        eng.schedule_at(SimTime::new(1.0), "a");
        eng.schedule_at(SimTime::new(2.0), "b");
        let mut seen = Vec::new();
        while let Some((_, e)) = eng.next_event() {
            seen.push(e);
        }
        assert_eq!(seen, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut eng = Engine::new();
        for label in ["first", "second", "third"] {
            eng.schedule_at(SimTime::new(1.0), label);
        }
        let mut seen = Vec::new();
        while let Some((_, e)) = eng.next_event() {
            seen.push(e);
        }
        assert_eq!(seen, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_events() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::new(5.0), ());
        assert_eq!(eng.now(), SimTime::ZERO);
        eng.next_event();
        assert_eq!(eng.now(), SimTime::new(5.0));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn rejects_past_scheduling() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::new(5.0), ());
        eng.next_event();
        eng.schedule_at(SimTime::new(1.0), ());
    }

    #[test]
    fn handler_can_chain_events() {
        // Count down from 3 by self-rescheduling.
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::new(1.0), 3u32);
        let mut fired = Vec::new();
        eng.run(|eng, t, n| {
            fired.push((t.as_f64(), n));
            if n > 1 {
                eng.schedule_in(1.0, n - 1);
            }
        });
        assert_eq!(fired, vec![(1.0, 3), (2.0, 2), (3.0, 1)]);
        assert_eq!(eng.processed(), 3);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::new(2.0), "start");
        eng.next_event();
        eng.schedule_in(0.5, "later");
        let (t, _) = eng.next_event().unwrap();
        assert_eq!(t, SimTime::new(2.5));
    }
}
