//! Gantt chart recording and rendering — the computational reproduction of
//! Figure 2 of the paper.
//!
//! Every simulation records activity segments per lane (one lane per
//! processor, one per link); the chart can be checked for model-consistency
//! (no overlapping activity on a one-port resource) and rendered as ASCII
//! art for the `exp_fig2_gantt` experiment.

/// The kind of activity a segment represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Receiving load on an inbound link.
    Receive,
    /// Computing retained load.
    Compute,
    /// Transmitting load on an outbound link.
    Send,
}

impl Activity {
    /// One-character glyph for ASCII rendering.
    pub fn glyph(self) -> char {
        match self {
            Activity::Receive => '▒',
            Activity::Compute => '█',
            Activity::Send => '░',
        }
    }
}

/// One activity interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// What is happening.
    pub activity: Activity,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
    /// The amount of load involved.
    pub load: f64,
}

impl Segment {
    /// Duration of the segment.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A lane of the chart (one processor's activity).
#[derive(Debug, Clone, PartialEq)]
pub struct Lane {
    /// Lane label (e.g. `P3`).
    pub label: String,
    /// Segments in insertion order.
    pub segments: Vec<Segment>,
}

impl Lane {
    /// Segments of a given activity kind.
    pub fn of(&self, activity: Activity) -> impl Iterator<Item = &Segment> {
        self.segments.iter().filter(move |s| s.activity == activity)
    }
}

/// A full Gantt chart.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GanttChart {
    /// Lanes in processor order.
    pub lanes: Vec<Lane>,
}

impl GanttChart {
    /// Create a chart with `n` empty lanes labelled `P0 … P{n-1}`.
    pub fn with_processors(n: usize) -> Self {
        Self {
            lanes: (0..n)
                .map(|i| Lane {
                    label: format!("P{i}"),
                    segments: Vec::new(),
                })
                .collect(),
        }
    }

    /// Record a segment on lane `lane`.
    pub fn record(&mut self, lane: usize, activity: Activity, start: f64, end: f64, load: f64) {
        assert!(end >= start, "segment ends before it starts");
        self.lanes[lane].segments.push(Segment {
            activity,
            start,
            end,
            load,
        });
    }

    /// Latest end time over all segments.
    pub fn horizon(&self) -> f64 {
        self.lanes
            .iter()
            .flat_map(|l| l.segments.iter())
            .map(|s| s.end)
            .fold(0.0, f64::max)
    }

    /// The end of the last *compute* segment on each lane (0 if none):
    /// the per-processor finish times.
    pub fn finish_times(&self) -> Vec<f64> {
        self.lanes
            .iter()
            .map(|l| l.of(Activity::Compute).map(|s| s.end).fold(0.0, f64::max))
            .collect()
    }

    /// Model-consistency check: within a lane, compute segments must not
    /// overlap each other, and receive must precede compute on the same
    /// load (we check the weaker, structural property: no two segments of
    /// the *same* activity kind overlap — the front-end model allows
    /// receive/send/compute to run concurrently).
    pub fn validate_one_port(&self) -> Result<(), String> {
        for lane in &self.lanes {
            for kind in [Activity::Receive, Activity::Compute, Activity::Send] {
                let mut segs: Vec<&Segment> = lane.of(kind).collect();
                segs.sort_by(|a, b| a.start.total_cmp(&b.start));
                for pair in segs.windows(2) {
                    if pair[0].end > pair[1].start + 1e-12 {
                        return Err(format!(
                            "{}: overlapping {kind:?} segments [{}, {}] and [{}, {}]",
                            lane.label, pair[0].start, pair[0].end, pair[1].start, pair[1].end
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Render the chart as ASCII art, `width` characters across the time
    /// horizon. Each lane shows communication above the axis (paper's
    /// convention) via a `comm` row (receive/send) and a `comp` row.
    pub fn render_ascii(&self, width: usize) -> String {
        let horizon = self.horizon();
        if horizon <= 0.0 {
            return String::from("(empty chart)\n");
        }
        let scale = width as f64 / horizon;
        let mut out = String::new();
        for lane in &self.lanes {
            let mut comm = vec![' '; width];
            let mut comp = vec![' '; width];
            for s in &lane.segments {
                let a = ((s.start * scale) as usize).min(width - 1);
                let b = ((s.end * scale).ceil() as usize).clamp(a + 1, width);
                let row = match s.activity {
                    Activity::Compute => &mut comp,
                    _ => &mut comm,
                };
                for cell in row.iter_mut().take(b).skip(a) {
                    *cell = s.activity.glyph();
                }
            }
            out.push_str(&format!(
                "{:>4} comm |{}|\n",
                lane.label,
                comm.iter().collect::<String>()
            ));
            out.push_str(&format!(
                "{:>4} comp |{}|\n",
                "",
                comp.iter().collect::<String>()
            ));
        }
        out.push_str(&format!(
            "{:>4}      0{}{:.4}\n",
            "time",
            " ".repeat(width.saturating_sub(6)),
            horizon
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GanttChart {
        let mut g = GanttChart::with_processors(2);
        g.record(0, Activity::Compute, 0.0, 2.0 / 3.0, 2.0 / 3.0);
        g.record(0, Activity::Send, 0.0, 1.0 / 3.0, 1.0 / 3.0);
        g.record(1, Activity::Receive, 0.0, 1.0 / 3.0, 1.0 / 3.0);
        g.record(1, Activity::Compute, 1.0 / 3.0, 2.0 / 3.0, 1.0 / 3.0);
        g
    }

    #[test]
    fn horizon_is_latest_end() {
        let g = sample();
        assert!((g.horizon() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn finish_times_use_compute_end() {
        let g = sample();
        let t = g.finish_times();
        assert!((t[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((t[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_front_end_concurrency() {
        // compute and send overlap on P0 — allowed by the front-end model.
        assert!(sample().validate_one_port().is_ok());
    }

    #[test]
    fn validate_rejects_overlapping_computes() {
        let mut g = GanttChart::with_processors(1);
        g.record(0, Activity::Compute, 0.0, 1.0, 0.5);
        g.record(0, Activity::Compute, 0.5, 1.5, 0.5);
        assert!(g.validate_one_port().is_err());
    }

    #[test]
    fn empty_lane_has_zero_finish() {
        let g = GanttChart::with_processors(1);
        assert_eq!(g.finish_times(), vec![0.0]);
    }

    #[test]
    fn ascii_render_contains_lanes_and_axis() {
        let s = sample().render_ascii(40);
        assert!(s.contains("P0 comm"));
        assert!(s.contains("P1 comm"));
        assert!(s.contains("0.6667"));
        assert!(s.contains('█'));
    }

    #[test]
    fn ascii_render_empty_chart() {
        let g = GanttChart::with_processors(1);
        assert_eq!(g.render_ascii(40), "(empty chart)\n");
    }

    #[test]
    #[should_panic(expected = "ends before")]
    fn record_rejects_reversed_segment() {
        let mut g = GanttChart::with_processors(1);
        g.record(0, Activity::Compute, 1.0, 0.5, 0.1);
    }
}
