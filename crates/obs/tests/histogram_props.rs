//! Property tests for [`obs::Histogram::merge`], the primitive the
//! `metrics` op leans on for fleet-wide aggregation: the router merges
//! per-shard windows, so merge must be order-insensitive and must
//! preserve the exact all-time counts the conservation story quotes.
//!
//! Samples are drawn as small integers cast to `f64` so sums are exactly
//! representable — the sum-preservation properties assert bit-exact
//! equality, not epsilon closeness.

use obs::Histogram;
use proptest::prelude::*;

/// A shard's worth of samples: small integers, exactly summable in f64.
fn shard_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u32..1000).prop_map(f64::from), 0..40)
}

fn shards_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(shard_strategy(), 1..6)
}

/// Record `samples` into a histogram with the given cap (0 = unbounded).
fn hist_of(samples: &[f64], cap: usize) -> Histogram {
    let mut h = if cap == 0 {
        Histogram::new()
    } else {
        Histogram::with_cap(cap)
    };
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging unbounded shards in any order yields the same sample set,
    /// hence identical percentiles at every rank.
    #[test]
    fn merge_is_order_insensitive(shards in shards_strategy()) {
        let hists: Vec<Histogram> = shards.iter().map(|s| hist_of(s, 0)).collect();
        let mut forward = Histogram::new();
        for h in &hists {
            forward.merge(h);
        }
        let mut backward = Histogram::new();
        for h in hists.iter().rev() {
            backward.merge(h);
        }
        prop_assert_eq!(forward.sorted_samples(), backward.sorted_samples());
        prop_assert_eq!(forward.total_count(), backward.total_count());
        for q in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let (f, b) = (forward.percentile(q), backward.percentile(q));
            prop_assert!(f == b || (f.is_nan() && b.is_nan()), "q={q}: {f} vs {b}");
        }
    }

    /// An unbounded merge is sample-set union: exact count, exact sum,
    /// and the sorted union of the inputs.
    #[test]
    fn unbounded_merge_preserves_count_and_sum(shards in shards_strategy()) {
        let mut merged = Histogram::new();
        let mut all: Vec<f64> = Vec::new();
        for s in &shards {
            merged.merge(&hist_of(s, 0));
            all.extend_from_slice(s);
        }
        prop_assert_eq!(merged.total_count(), all.len() as u64);
        prop_assert_eq!(merged.len(), all.len());
        // Integer-valued samples: both sums are exact, so bit-equal.
        prop_assert_eq!(merged.sum(), all.iter().sum::<f64>());
        all.sort_by(f64::total_cmp);
        prop_assert_eq!(merged.sorted_samples(), all.as_slice());
    }

    /// `total_count` survives capped windows exactly, on the shards and
    /// through the merge: eviction drops samples, never history. This is
    /// what lets the `metrics` op report exact all-time counts from
    /// bounded memory.
    #[test]
    fn capped_windows_keep_exact_total_count(
        shards in shards_strategy(),
        cap in 1usize..16,
    ) {
        let recorded: u64 = shards.iter().map(|s| s.len() as u64).sum();
        let hists: Vec<Histogram> = shards.iter().map(|s| hist_of(s, cap)).collect();
        for (h, s) in hists.iter().zip(&shards) {
            prop_assert_eq!(h.total_count(), s.len() as u64);
            prop_assert!(h.len() <= cap);
            prop_assert!(h.len() == s.len().min(cap));
        }
        // Unbounded scratch target (the router's aggregation pattern):
        // stored samples are the shard windows' union, count is all-time.
        let mut scratch = Histogram::new();
        for h in &hists {
            scratch.merge(h);
        }
        prop_assert_eq!(scratch.total_count(), recorded);
        let stored: usize = hists.iter().map(Histogram::len).sum();
        prop_assert_eq!(scratch.len(), stored);
        let window_sum: f64 = hists.iter().map(Histogram::sum).sum();
        prop_assert_eq!(scratch.sum(), window_sum);

        // Capped target: storage stays within the cap, count stays exact.
        let mut capped = Histogram::with_cap(cap);
        for h in &hists {
            capped.merge(h);
        }
        prop_assert_eq!(capped.total_count(), recorded);
        prop_assert!(capped.len() <= cap);
        prop_assert_eq!(capped.len(), stored.min(cap));
    }

    /// Merge percentiles equal percentiles of the concatenated sample —
    /// no bucket-boundary error, the exactness claim in the module docs.
    #[test]
    fn merge_percentiles_match_concatenation(a in shard_strategy(), b in shard_strategy()) {
        let mut merged = hist_of(&a, 0);
        merged.merge(&hist_of(&b, 0));
        let mut concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        concat.sort_by(f64::total_cmp);
        for q in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let want = obs::percentile(&concat, q);
            let got = merged.percentile(q);
            prop_assert!(
                got == want || (got.is_nan() && want.is_nan()),
                "q={q}: merged {got} vs concatenated {want}"
            );
        }
    }
}
