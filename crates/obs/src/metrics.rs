//! Summary statistics over histogram samples: percentiles and the compact
//! summaries `dls-trace` and the experiment binaries print.

/// Nearest-rank percentile of a **sorted** sample (`q` in `[0, 100]`).
/// Returns NaN on an empty sample.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Compact distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarize a sample (unsorted; empty samples yield an all-NaN, n = 0
    /// summary).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                n: 0,
                min: f64::NAN,
                p50: f64::NAN,
                p90: f64::NAN,
                p99: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            n: sorted.len(),
            min: sorted[0],
            p50: percentile(&sorted, 50.0),
            p90: percentile(&sorted, 90.0),
            p99: percentile(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }
}

/// A mergeable sample histogram with exact nearest-rank percentiles.
///
/// Stores raw samples (8 bytes each), which keeps percentiles exact and
/// [`merge`](Histogram::merge) trivially correct: merging is sample-set
/// union, so `merge(a, b).percentile(q)` equals the percentile of the
/// concatenated samples — no bucket-boundary error. The intended sharding
/// pattern is one `Histogram` per worker thread, each recorded into only
/// by its owner (no cross-thread locking on the record path), merged into
/// a scratch histogram when a stats reader wants an aggregate view.
///
/// By default storage is unbounded — right for batch experiments, where
/// exactness over every sample is the point. Long-running services should
/// use [`with_cap`](Histogram::with_cap): a capped histogram keeps at
/// most `cap` samples in a rotating window (new samples overwrite the
/// slot a cycling cursor points at once the window is full), so memory
/// stays bounded while percentiles reflect a recent window of the
/// stream. [`total_count`](Histogram::total_count) always reports the
/// exact all-time number of samples recorded or merged in, capped or
/// not.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
    /// Max stored samples; 0 means unbounded.
    cap: usize,
    /// Overwrite cursor, used only once a capped histogram is full.
    cursor: usize,
    /// All-time samples recorded or merged in (≥ `samples.len()`).
    total: u64,
}

impl Histogram {
    /// An empty, unbounded histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty histogram that stores at most `cap` samples (a `cap` of 0
    /// means unbounded, same as [`new`](Histogram::new)).
    pub fn with_cap(cap: usize) -> Self {
        Self {
            cap,
            ..Self::default()
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        self.store(value);
    }

    fn store(&mut self, value: f64) {
        self.sorted = false;
        if self.cap > 0 && self.samples.len() >= self.cap {
            // Full window: overwrite the slot under the cycling cursor.
            // (After a percentile query the samples are sorted, so the
            // evicted sample is arbitrary rather than strictly oldest —
            // fine for a bounded stats window.)
            self.cursor %= self.cap;
            self.samples[self.cursor] = value;
            self.cursor += 1;
        } else {
            self.samples.push(value);
        }
    }

    /// Number of samples currently stored (≤ the cap, when one is set).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Exact all-time count of samples recorded or merged in, including
    /// any that a capped window has since evicted.
    pub fn total_count(&self) -> u64 {
        self.total
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of the currently stored samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Absorb every stored sample of `other` (sample-set union; `other`
    /// is not modified), subject to `self`'s cap. The aggregation
    /// primitive for per-worker sharding: merging bounded shards into an
    /// unbounded scratch histogram stays bounded by `shards × cap`.
    pub fn merge(&mut self, other: &Histogram) {
        self.total += other.total;
        if self.cap == 0 {
            self.sorted = false;
            self.samples.extend_from_slice(&other.samples);
        } else {
            for &v in &other.samples {
                self.store(v);
            }
        }
    }

    /// Exact nearest-rank percentile (`q` in `[0, 100]`; NaN when empty).
    pub fn percentile(&mut self, q: f64) -> f64 {
        self.ensure_sorted();
        percentile(&self.samples, q)
    }

    /// Compact summary of the recorded samples.
    pub fn summary(&mut self) -> Summary {
        self.ensure_sorted();
        // `Summary::of` re-sorts a copy; feeding it the sorted sample keeps
        // that sort O(n) in practice and the result identical.
        Summary::of(&self.samples)
    }

    /// The raw samples, in recording order (unsorted accessor not needed;
    /// exposed sorted for deterministic snapshots).
    pub fn sorted_samples(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.samples
    }

    /// Drop all samples and reset the all-time count (the cap is kept).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = false;
        self.cursor = 0;
        self.total = 0;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 50.0), 50.0);
        assert_eq!(percentile(&s, 90.0), 90.0);
        assert_eq!(percentile(&s, 99.0), 99.0);
        assert_eq!(percentile(&s, 100.0), 100.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
    }

    #[test]
    fn percentile_small_samples() {
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[1.0, 2.0], 50.0), 1.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert!((s.mean - 2.5).abs() < 1e-15);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.sum(), 10.0);
        assert_eq!(h.percentile(50.0), 2.0);
        assert_eq!(h.summary(), Summary::of(&[1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn merged_percentiles_equal_percentiles_of_concatenation() {
        // Per-worker shards merged for the stats endpoint must agree with
        // one histogram that saw every sample.
        let shards: Vec<Vec<f64>> = vec![
            (1..=40).map(|i| i as f64).collect(),
            (41..=90).rev().map(|i| i as f64).collect(),
            vec![0.5, 90.5],
            vec![],
        ];
        let mut merged = Histogram::new();
        let mut all = Vec::new();
        for shard_samples in &shards {
            let mut shard = Histogram::new();
            for &v in shard_samples {
                shard.record(v);
            }
            merged.merge(&shard);
            all.extend_from_slice(shard_samples);
        }
        all.sort_by(f64::total_cmp);
        assert_eq!(merged.len(), all.len());
        for q in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(merged.percentile(q), percentile(&all, q), "q = {q}");
        }
    }

    #[test]
    fn capped_histogram_bounds_storage_but_counts_exactly() {
        let mut h = Histogram::with_cap(4);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.len(), 4, "storage must stay at the cap");
        assert_eq!(h.total_count(), 100, "all-time count stays exact");
        assert!(!h.is_empty());
        // Percentiles stay well-defined over the bounded window.
        let p100 = h.percentile(100.0);
        assert!(p100.is_finite());
        // The window holds recent-ish samples, not the first four.
        assert!(h.sorted_samples().iter().all(|&v| v >= 4.0));
        h.clear();
        assert_eq!(h.total_count(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn merging_capped_shards_into_unbounded_scratch_is_bounded() {
        // The serving pattern: per-worker capped shards, an unbounded
        // scratch merge per stats read. Scratch size ≤ shards × cap,
        // total_count is the exact all-time sum.
        let mut scratch = Histogram::new();
        for w in 0..3 {
            let mut shard = Histogram::with_cap(8);
            for i in 0..50 {
                shard.record((w * 50 + i) as f64);
            }
            assert_eq!(shard.len(), 8);
            scratch.merge(&shard);
        }
        assert_eq!(scratch.len(), 24);
        assert_eq!(scratch.total_count(), 150);
        assert_eq!(scratch.summary().n, 24);
    }

    #[test]
    fn merge_into_capped_histogram_respects_its_cap() {
        let mut a = Histogram::with_cap(3);
        a.record(1.0);
        let mut b = Histogram::new();
        for v in [2.0, 3.0, 4.0, 5.0] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.total_count(), 5);
    }

    #[test]
    fn merge_into_nonempty_after_percentile_query_stays_exact() {
        // Interleave queries (which sort) with merges (which append) to
        // check the lazy-sort flag is maintained.
        let mut a = Histogram::new();
        a.record(3.0);
        a.record(1.0);
        assert_eq!(a.percentile(100.0), 3.0);
        let mut b = Histogram::new();
        b.record(2.0);
        b.record(0.0);
        a.merge(&b);
        assert_eq!(a.percentile(0.0), 0.0);
        assert_eq!(a.percentile(50.0), 1.0);
        assert_eq!(a.sorted_samples(), &[0.0, 1.0, 2.0, 3.0]);
        a.clear();
        assert!(a.is_empty());
        assert!(a.percentile(50.0).is_nan());
    }
}
