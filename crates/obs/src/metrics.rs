//! Summary statistics over histogram samples: percentiles and the compact
//! summaries `dls-trace` and the experiment binaries print.

/// Nearest-rank percentile of a **sorted** sample (`q` in `[0, 100]`).
/// Returns NaN on an empty sample.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Compact distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarize a sample (unsorted; empty samples yield an all-NaN, n = 0
    /// summary).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                n: 0,
                min: f64::NAN,
                p50: f64::NAN,
                p90: f64::NAN,
                p99: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            n: sorted.len(),
            min: sorted[0],
            p50: percentile(&sorted, 50.0),
            p90: percentile(&sorted, 90.0),
            p99: percentile(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }
}

/// A mergeable sample histogram with exact nearest-rank percentiles.
///
/// Stores raw samples (8 bytes each), which keeps percentiles exact and
/// [`merge`](Histogram::merge) trivially correct: merging is sample-set
/// union, so `merge(a, b).percentile(q)` equals the percentile of the
/// concatenated samples — no bucket-boundary error. The intended sharding
/// pattern is one `Histogram` per worker thread, each recorded into only
/// by its owner (no cross-thread locking on the record path), merged into
/// a scratch histogram when a stats reader wants an aggregate view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: f64) {
        self.sorted = false;
        self.samples.push(value);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Absorb every sample of `other` (sample-set union; `other` is not
    /// modified). The aggregation primitive for per-worker sharding.
    pub fn merge(&mut self, other: &Histogram) {
        self.sorted = false;
        self.samples.extend_from_slice(&other.samples);
    }

    /// Exact nearest-rank percentile (`q` in `[0, 100]`; NaN when empty).
    pub fn percentile(&mut self, q: f64) -> f64 {
        self.ensure_sorted();
        percentile(&self.samples, q)
    }

    /// Compact summary of the recorded samples.
    pub fn summary(&mut self) -> Summary {
        self.ensure_sorted();
        // `Summary::of` re-sorts a copy; feeding it the sorted sample keeps
        // that sort O(n) in practice and the result identical.
        Summary::of(&self.samples)
    }

    /// The raw samples, in recording order (unsorted accessor not needed;
    /// exposed sorted for deterministic snapshots).
    pub fn sorted_samples(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.samples
    }

    /// Drop all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 50.0), 50.0);
        assert_eq!(percentile(&s, 90.0), 90.0);
        assert_eq!(percentile(&s, 99.0), 99.0);
        assert_eq!(percentile(&s, 100.0), 100.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
    }

    #[test]
    fn percentile_small_samples() {
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[1.0, 2.0], 50.0), 1.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert!((s.mean - 2.5).abs() < 1e-15);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.sum(), 10.0);
        assert_eq!(h.percentile(50.0), 2.0);
        assert_eq!(h.summary(), Summary::of(&[1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn merged_percentiles_equal_percentiles_of_concatenation() {
        // Per-worker shards merged for the stats endpoint must agree with
        // one histogram that saw every sample.
        let shards: Vec<Vec<f64>> = vec![
            (1..=40).map(|i| i as f64).collect(),
            (41..=90).rev().map(|i| i as f64).collect(),
            vec![0.5, 90.5],
            vec![],
        ];
        let mut merged = Histogram::new();
        let mut all = Vec::new();
        for shard_samples in &shards {
            let mut shard = Histogram::new();
            for &v in shard_samples {
                shard.record(v);
            }
            merged.merge(&shard);
            all.extend_from_slice(shard_samples);
        }
        all.sort_by(f64::total_cmp);
        assert_eq!(merged.len(), all.len());
        for q in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(merged.percentile(q), percentile(&all, q), "q = {q}");
        }
    }

    #[test]
    fn merge_into_nonempty_after_percentile_query_stays_exact() {
        // Interleave queries (which sort) with merges (which append) to
        // check the lazy-sort flag is maintained.
        let mut a = Histogram::new();
        a.record(3.0);
        a.record(1.0);
        assert_eq!(a.percentile(100.0), 3.0);
        let mut b = Histogram::new();
        b.record(2.0);
        b.record(0.0);
        a.merge(&b);
        assert_eq!(a.percentile(0.0), 0.0);
        assert_eq!(a.percentile(50.0), 1.0);
        assert_eq!(a.sorted_samples(), &[0.0, 1.0, 2.0, 3.0]);
        a.clear();
        assert!(a.is_empty());
        assert!(a.percentile(50.0).is_nan());
    }
}
