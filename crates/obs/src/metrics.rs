//! Summary statistics over histogram samples: percentiles and the compact
//! summaries `dls-trace` and the experiment binaries print.

/// Nearest-rank percentile of a **sorted** sample (`q` in `[0, 100]`).
/// Returns NaN on an empty sample.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Compact distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarize a sample (unsorted; empty samples yield an all-NaN, n = 0
    /// summary).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                n: 0,
                min: f64::NAN,
                p50: f64::NAN,
                p90: f64::NAN,
                p99: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            n: sorted.len(),
            min: sorted[0],
            p50: percentile(&sorted, 50.0),
            p90: percentile(&sorted, 90.0),
            p99: percentile(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&s, 50.0), 50.0);
        assert_eq!(percentile(&s, 90.0), 90.0);
        assert_eq!(percentile(&s, 99.0), 99.0);
        assert_eq!(percentile(&s, 100.0), 100.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
    }

    #[test]
    fn percentile_small_samples() {
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[1.0, 2.0], 50.0), 1.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert!((s.mean - 2.5).abs() < 1e-15);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
    }
}
