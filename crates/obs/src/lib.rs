//! # `obs` — zero-dependency structured observability
//!
//! Hand-rolled tracing for the DLS workspace (the build environment has no
//! registry access, so the `tracing` crate is unavailable): spans and
//! events with key/value fields, counters and histograms, pluggable sinks,
//! and deterministic per-run [phase timelines](timeline::PhaseTimeline).
//!
//! ## Design
//!
//! * **Disabled is the default and costs one relaxed atomic load.** Until
//!   a sink is [`install`]ed, every instrumentation macro bails out before
//!   constructing fields; experiment reports are bit-identical with and
//!   without a sink because instrumentation only *reads* protocol state.
//! * **Records, not strings.** Instrumented code emits typed
//!   [`Record`]s; the sink decides the encoding ([`NoopSink`] discards,
//!   [`MemorySink`] buffers and aggregates, [`JsonlSink`] serializes via
//!   `minijson` — one JSON object per line).
//! * **Two clocks.** Every record carries wall-clock microseconds since
//!   process start *and*, where the caller knows it, the simulation's
//!   virtual time. Deterministic artifacts (timelines) carry only virtual
//!   time.
//!
//! ## Usage
//!
//! ```
//! use std::sync::Arc;
//! let sink = Arc::new(obs::MemorySink::new());
//! obs::install(sink.clone());
//! {
//!     let _span = obs::span("solver.linear");
//!     obs::count!("solver.calls");
//!     obs::event!("solver.done", "m" => 5usize);
//! }
//! obs::uninstall();
//! assert_eq!(sink.counter_total("solver.calls"), 1.0);
//! ```
//!
//! Set `DLS_TRACE=trace.jsonl` and call [`init_from_env`] (the experiment
//! binaries do) to stream a run's records to a JSONL file for `dls-trace`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod metrics;
pub mod record;
pub mod sink;
pub mod timeline;

pub use clock::RunClock;
pub use metrics::{percentile, Histogram, Summary};
pub use record::{Field, FieldValue, Record, RecordKind};
pub use sink::{JsonlSink, MemorySink, NoopSink, Sink};
pub use timeline::{PhaseSpan, PhaseTimeline, TimelineKind};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// True if a sink is installed. The fast path every instrumentation site
/// checks first — a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install a sink, enabling instrumentation process-wide. Replaces (and
/// flushes) any previous sink.
pub fn install(sink: Arc<dyn Sink>) {
    let mut slot = SINK.write().unwrap();
    if let Some(old) = slot.take() {
        old.flush();
    }
    *slot = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Remove the current sink (flushing it), disabling instrumentation.
/// Returns the sink that was installed, if any.
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    let mut slot = SINK.write().unwrap();
    ENABLED.store(false, Ordering::SeqCst);
    let old = slot.take();
    if let Some(s) = &old {
        s.flush();
    }
    old
}

/// Flush the installed sink's buffers (JSONL files).
pub fn flush() {
    if let Some(s) = SINK.read().unwrap().as_ref() {
        s.flush();
    }
}

/// If the `DLS_TRACE` environment variable is set, install a [`JsonlSink`]
/// writing to that path and return the path. Call once from a binary's
/// `main`; library code never does this implicitly.
pub fn init_from_env() -> Option<String> {
    let path = std::env::var("DLS_TRACE").ok()?;
    if path.is_empty() {
        return None;
    }
    match JsonlSink::create(&path) {
        Ok(sink) => {
            install(Arc::new(sink));
            Some(path)
        }
        Err(e) => {
            eprintln!("obs: cannot open DLS_TRACE={path}: {e}");
            None
        }
    }
}

/// Allocate a process-unique trace id (monotone, starts at 1). Used by
/// the serving router to tag a request's whole cross-hop journey; ids are
/// unique within a process, which is all the fleet inspector needs to
/// join router- and shard-side records (one router injects per fleet).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Microseconds of wall time since the first record of the process.
fn wall_micros() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Deliver a record to the installed sink (drops it if none).
#[doc(hidden)]
pub fn __emit(record: Record) {
    if let Some(s) = SINK.read().unwrap().as_ref() {
        s.record(&record);
    }
}

fn current_span() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// An RAII span: records `SpanStart` on creation and `SpanEnd` on drop.
/// Inert (id 0) when instrumentation is disabled.
#[must_use = "a span ends when dropped; bind it to a variable"]
pub struct SpanGuard {
    id: u64,
    name: &'static str,
    end_vtime: f64,
}

impl SpanGuard {
    /// The span id (0 when instrumentation was disabled at creation).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Anchor the span's end to a virtual-clock instant.
    pub fn end_at(&mut self, vtime: f64) {
        self.end_vtime = vtime;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        __emit(Record {
            kind: RecordKind::SpanEnd,
            name: self.name,
            span: self.id,
            parent: 0,
            vtime: self.end_vtime,
            wall_micros: wall_micros(),
            value: 0.0,
            fields: Vec::new(),
        });
    }
}

/// Open a span with fields, anchored at virtual time `vtime` (NaN when the
/// virtual clock is not meaningful at this site). Prefer the [`span!`]
/// macro, which skips field construction when disabled.
pub fn span_with(name: &'static str, vtime: f64, fields: Vec<Field>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            name,
            end_vtime: f64::NAN,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_span();
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    __emit(Record {
        kind: RecordKind::SpanStart,
        name,
        span: id,
        parent,
        vtime,
        wall_micros: wall_micros(),
        value: 0.0,
        fields,
    });
    SpanGuard {
        id,
        name,
        end_vtime: f64::NAN,
    }
}

/// Open a plain span (no fields, no virtual time).
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, f64::NAN, Vec::new())
}

/// Record a point event. Prefer the [`event!`] macro in hot paths.
pub fn event_with(name: &'static str, vtime: f64, fields: Vec<Field>) {
    if !enabled() {
        return;
    }
    __emit(Record {
        kind: RecordKind::Event,
        name,
        span: current_span(),
        parent: 0,
        vtime,
        wall_micros: wall_micros(),
        value: 0.0,
        fields,
    });
}

/// Increment a counter by `delta` with fields. Prefer the [`count!`] macro.
pub fn counter_with(name: &'static str, delta: f64, fields: Vec<Field>) {
    if !enabled() {
        return;
    }
    __emit(Record {
        kind: RecordKind::Counter,
        name,
        span: current_span(),
        parent: 0,
        vtime: f64::NAN,
        wall_micros: wall_micros(),
        value: delta,
        fields,
    });
}

/// Record a histogram sample with fields. Prefer the [`hist!`] macro.
pub fn histogram_with(name: &'static str, value: f64, fields: Vec<Field>) {
    if !enabled() {
        return;
    }
    __emit(Record {
        kind: RecordKind::Histogram,
        name,
        span: current_span(),
        parent: 0,
        vtime: f64::NAN,
        wall_micros: wall_micros(),
        value,
        fields,
    });
}

/// Open a span: `obs::span!("name")`, `obs::span!("name", vt = t)`, with
/// trailing `"key" => value` fields. Fields are not constructed when
/// instrumentation is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        $crate::span!($name, vt = f64::NAN $(, $k => $v)*)
    };
    ($name:expr, vt = $vt:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::span_with($name, $vt, vec![$(($k, $crate::FieldValue::from($v))),*])
        } else {
            $crate::span_with($name, f64::NAN, Vec::new())
        }
    };
}

/// Record an event: `obs::event!("name", "key" => value, ...)`; optional
/// `vt = <virtual time>` first. Fields are not constructed when disabled.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        $crate::event!($name, vt = f64::NAN $(, $k => $v)*)
    };
    ($name:expr, vt = $vt:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::event_with($name, $vt, vec![$(($k, $crate::FieldValue::from($v))),*]);
        }
    };
}

/// Increment a counter: `obs::count!("name")`, `obs::count!("name", by = 3.0)`,
/// with trailing `"key" => value` fields.
#[macro_export]
macro_rules! count {
    ($name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        $crate::count!($name, by = 1.0 $(, $k => $v)*)
    };
    ($name:expr, by = $delta:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::counter_with($name, $delta, vec![$(($k, $crate::FieldValue::from($v))),*]);
        }
    };
}

/// Record a histogram sample: `obs::hist!("name", value, "key" => v, ...)`.
#[macro_export]
macro_rules! hist {
    ($name:expr, $value:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::histogram_with($name, $value, vec![$(($k, $crate::FieldValue::from($v))),*]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The recorder is process-global; serialize tests that install sinks.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_macros_are_inert() {
        let _g = LOCK.lock().unwrap();
        assert!(!enabled());
        // None of these should panic or record anything.
        count!("c");
        event!("e", "k" => 1.0);
        hist!("h", 2.0);
        let _s = span!("s");
    }

    #[test]
    fn memory_sink_captures_span_tree_and_metrics() {
        let _g = LOCK.lock().unwrap();
        let sink = Arc::new(MemorySink::new());
        install(sink.clone());
        {
            let outer = span!("outer", "m" => 4usize);
            let outer_id = outer.id();
            assert_ne!(outer_id, 0);
            {
                let inner = span!("inner", vt = 1.5);
                count!("msgs", by = 2.0, "phase" => 1u8);
                hist!("lat", 0.25);
                event!("tick", vt = 2.0, "node" => 3usize);
                drop(inner);
            }
            let records = sink.records();
            let inner_start = records
                .iter()
                .find(|r| r.kind == RecordKind::SpanStart && r.name == "inner")
                .unwrap();
            assert_eq!(inner_start.parent, outer_id);
            assert_eq!(inner_start.vtime, 1.5);
        }
        uninstall();
        assert!(!enabled());
        assert_eq!(sink.counter_total("msgs"), 2.0);
        assert_eq!(sink.histogram("lat"), vec![0.25]);
        // outer + inner starts and ends, counter, hist, event
        assert_eq!(sink.len(), 7);
        // Events inherit the enclosing span.
        let ev = sink
            .records()
            .into_iter()
            .find(|r| r.kind == RecordKind::Event)
            .unwrap();
        assert_ne!(ev.span, 0);
    }

    #[test]
    fn uninstall_returns_the_sink() {
        let _g = LOCK.lock().unwrap();
        let sink = Arc::new(MemorySink::new());
        install(sink.clone());
        count!("x");
        let back = uninstall().expect("sink was installed");
        assert_eq!(Arc::strong_count(&sink), 2); // ours + returned
        drop(back);
        assert!(uninstall().is_none());
    }

    #[test]
    fn span_guard_is_inert_when_disabled() {
        let _g = LOCK.lock().unwrap();
        let s = span("quiet");
        assert_eq!(s.id(), 0);
        drop(s); // must not emit or panic
    }
}
