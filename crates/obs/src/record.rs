//! The wire format of the observability layer: one [`Record`] per span
//! boundary, event, counter increment or histogram sample.
//!
//! Records are plain data — sinks decide what to do with them (discard,
//! buffer, serialize). The JSONL serialization uses short keys to keep
//! traces compact: `k` kind, `n` name, `id`/`p` span ids, `vt` virtual
//! time, `wus` wall microseconds, `v` value, `f` fields.

use minijson::Value;

/// A typed field value attached to a record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A floating-point quantity.
    F64(f64),
    /// An unsigned integer (node ids, phases, counts).
    U64(u64),
    /// A boolean flag.
    Bool(bool),
    /// A string label.
    Str(String),
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u8> for FieldValue {
    fn from(v: u8) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    /// Convert to a JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            FieldValue::F64(x) => Value::Number(*x),
            FieldValue::U64(x) => Value::Number(*x as f64),
            FieldValue::Bool(b) => Value::Bool(*b),
            FieldValue::Str(s) => Value::String(s.clone()),
        }
    }

    /// The numeric view (integers widen, booleans are 0/1, strings None).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::F64(x) => Some(*x),
            FieldValue::U64(x) => Some(*x as f64),
            FieldValue::Bool(b) => Some(*b as u64 as f64),
            FieldValue::Str(_) => None,
        }
    }
}

/// A key/value field.
pub type Field = (&'static str, FieldValue);

/// What a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened (`span` carries its id, `parent` its enclosing span).
    SpanStart,
    /// A span closed (`span` carries its id).
    SpanEnd,
    /// A point event.
    Event,
    /// A counter increment (`value` is the delta).
    Counter,
    /// A histogram sample (`value` is the sample).
    Histogram,
}

impl RecordKind {
    /// Short serialized tag.
    pub fn tag(self) -> &'static str {
        match self {
            RecordKind::SpanStart => "ss",
            RecordKind::SpanEnd => "se",
            RecordKind::Event => "ev",
            RecordKind::Counter => "ct",
            RecordKind::Histogram => "hg",
        }
    }

    /// Parse a serialized tag.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "ss" => RecordKind::SpanStart,
            "se" => RecordKind::SpanEnd,
            "ev" => RecordKind::Event,
            "ct" => RecordKind::Counter,
            "hg" => RecordKind::Histogram,
            _ => return None,
        })
    }
}

/// One observability record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The record kind.
    pub kind: RecordKind,
    /// Span/event/metric name.
    pub name: &'static str,
    /// Span id for `SpanStart`/`SpanEnd`; the *enclosing* span for events
    /// and metrics (0 = none).
    pub span: u64,
    /// Parent span id for `SpanStart` (0 = root).
    pub parent: u64,
    /// Virtual (simulation) time, when known; NaN when the record is not
    /// anchored to the simulated clock (serialized as `null`).
    pub vtime: f64,
    /// Wall-clock microseconds since the recorder was initialized.
    pub wall_micros: u64,
    /// Counter delta or histogram sample (0 otherwise).
    pub value: f64,
    /// Structured fields.
    pub fields: Vec<Field>,
}

impl Record {
    /// Serialize as a single JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        let mut members: Vec<(String, Value)> = vec![
            ("k".into(), Value::String(self.kind.tag().into())),
            ("n".into(), Value::String(self.name.into())),
        ];
        if self.span != 0 {
            members.push(("id".into(), Value::Number(self.span as f64)));
        }
        if self.parent != 0 {
            members.push(("p".into(), Value::Number(self.parent as f64)));
        }
        if !self.vtime.is_nan() {
            members.push(("vt".into(), Value::Number(self.vtime)));
        }
        members.push(("wus".into(), Value::Number(self.wall_micros as f64)));
        if self.value != 0.0 {
            members.push(("v".into(), Value::Number(self.value)));
        }
        if !self.fields.is_empty() {
            members.push((
                "f".into(),
                Value::Object(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_value()))
                        .collect(),
                ),
            ));
        }
        Value::Object(members).to_json()
    }

    /// The value of a field, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_shape() {
        let r = Record {
            kind: RecordKind::Event,
            name: "protocol.timeout",
            span: 3,
            parent: 0,
            vtime: 1.25,
            wall_micros: 42,
            value: 0.0,
            fields: vec![("node", 2usize.into()), ("phase", 3u8.into())],
        };
        let v = Value::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("ev"));
        assert_eq!(v.get("n").unwrap().as_str(), Some("protocol.timeout"));
        assert_eq!(v.get("vt").unwrap().as_f64(), Some(1.25));
        assert_eq!(v.get("f").unwrap().get("node").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn nan_vtime_is_omitted() {
        let r = Record {
            kind: RecordKind::Counter,
            name: "c",
            span: 0,
            parent: 0,
            vtime: f64::NAN,
            wall_micros: 1,
            value: 1.0,
            fields: vec![],
        };
        let v = Value::parse(&r.to_json()).unwrap();
        assert!(v.get("vt").is_none());
        assert_eq!(v.get("v").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn kind_tags_round_trip() {
        for k in [
            RecordKind::SpanStart,
            RecordKind::SpanEnd,
            RecordKind::Event,
            RecordKind::Counter,
            RecordKind::Histogram,
        ] {
            assert_eq!(RecordKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(RecordKind::from_tag("xx"), None);
    }

    #[test]
    fn field_values_convert() {
        assert_eq!(FieldValue::from(2.5).as_f64(), Some(2.5));
        assert_eq!(FieldValue::from(7usize).as_f64(), Some(7.0));
        assert_eq!(FieldValue::from(true).as_f64(), Some(1.0));
        assert_eq!(FieldValue::from("x").as_f64(), None);
    }
}
