//! The per-run **phase timeline** artifact: which node spent which interval
//! of virtual time in which protocol phase, plus detection timeouts and
//! recovery splices.
//!
//! The timeline is *deterministic* — it carries only virtual-clock
//! timestamps (never wall time), so reports that embed one stay
//! bit-identical across runs. Rendering goes through the existing
//! Gantt/SVG path (`sim::phase_timeline_to_gantt`); serialization goes
//! through `minijson` ([`PhaseTimeline::to_json`] / [`from_json`]).

use minijson::Value;

/// What a timeline span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineKind {
    /// Scheduled protocol work (Phase III compute, or the logical extent of
    /// a message phase).
    Work,
    /// A detection-timeout wait (a neighbour waiting on a silent node).
    Timeout,
    /// Recovery work re-assigned after a chain splice.
    Recovery,
    /// A chain-splice marker (zero-width: the instant the dead node was cut
    /// out of the chain).
    Splice,
}

impl TimelineKind {
    /// Serialized label.
    pub fn label(self) -> &'static str {
        match self {
            TimelineKind::Work => "work",
            TimelineKind::Timeout => "timeout",
            TimelineKind::Recovery => "recovery",
            TimelineKind::Splice => "splice",
        }
    }

    /// Parse a serialized label.
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "work" => TimelineKind::Work,
            "timeout" => TimelineKind::Timeout,
            "recovery" => TimelineKind::Recovery,
            "splice" => TimelineKind::Splice,
            _ => return None,
        })
    }
}

/// One interval on one node's timeline lane.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpan {
    /// Node index (0 = root).
    pub node: usize,
    /// Protocol phase 1–4 (0 for spans outside any phase).
    pub phase: u8,
    /// What the node was doing.
    pub kind: TimelineKind,
    /// Virtual start time.
    pub start: f64,
    /// Virtual end time (`== start` for markers).
    pub end: f64,
    /// Load involved (compute/recovery spans; 0 otherwise).
    pub load: f64,
}

/// A full per-run timeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseTimeline {
    /// Number of nodes (root included).
    pub nodes: usize,
    /// All spans, in recording order.
    pub spans: Vec<PhaseSpan>,
    /// The run's final virtual time (reported makespan).
    pub makespan: f64,
}

impl PhaseTimeline {
    /// An empty timeline over `nodes` lanes.
    pub fn new(nodes: usize) -> Self {
        PhaseTimeline {
            nodes,
            spans: Vec::new(),
            makespan: 0.0,
        }
    }

    /// Record a span. Panics if the interval is reversed or the node is out
    /// of range.
    pub fn push(
        &mut self,
        node: usize,
        phase: u8,
        kind: TimelineKind,
        (start, end): (f64, f64),
        load: f64,
    ) {
        assert!(node < self.nodes, "timeline node {node} out of range");
        assert!(end >= start, "timeline span ends before it starts");
        self.spans.push(PhaseSpan {
            node,
            phase,
            kind,
            start,
            end,
            load,
        });
    }

    /// Record a zero-width marker.
    pub fn mark(&mut self, node: usize, phase: u8, kind: TimelineKind, at: f64) {
        self.push(node, phase, kind, (at, at), 0.0);
    }

    /// Spans of a given kind.
    pub fn of(&self, kind: TimelineKind) -> impl Iterator<Item = &PhaseSpan> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Spans on one node's lane.
    pub fn lane(&self, node: usize) -> impl Iterator<Item = &PhaseSpan> {
        self.spans.iter().filter(move |s| s.node == node)
    }

    /// Latest span end (0 for an empty timeline).
    pub fn horizon(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Serialize via `minijson`.
    pub fn to_json(&self) -> String {
        Value::Object(vec![
            ("nodes".into(), Value::Number(self.nodes as f64)),
            ("makespan".into(), Value::Number(self.makespan)),
            (
                "spans".into(),
                Value::Array(
                    self.spans
                        .iter()
                        .map(|s| {
                            Value::Object(vec![
                                ("node".into(), Value::Number(s.node as f64)),
                                ("phase".into(), Value::Number(s.phase as f64)),
                                ("kind".into(), Value::String(s.kind.label().into())),
                                ("start".into(), Value::Number(s.start)),
                                ("end".into(), Value::Number(s.end)),
                                ("load".into(), Value::Number(s.load)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_json()
    }

    /// Parse a timeline serialized by [`to_json`](Self::to_json).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        let nodes = v
            .get("nodes")
            .and_then(Value::as_u64)
            .ok_or("missing nodes")? as usize;
        let makespan = v
            .get("makespan")
            .and_then(Value::as_f64)
            .ok_or("missing makespan")?;
        let mut spans = Vec::new();
        for s in v
            .get("spans")
            .and_then(Value::as_array)
            .ok_or("missing spans")?
        {
            spans.push(PhaseSpan {
                node: s.get("node").and_then(Value::as_u64).ok_or("span.node")? as usize,
                phase: s.get("phase").and_then(Value::as_u64).ok_or("span.phase")? as u8,
                kind: s
                    .get("kind")
                    .and_then(Value::as_str)
                    .and_then(TimelineKind::from_label)
                    .ok_or("span.kind")?,
                start: s.get("start").and_then(Value::as_f64).ok_or("span.start")?,
                end: s.get("end").and_then(Value::as_f64).ok_or("span.end")?,
                load: s.get("load").and_then(Value::as_f64).unwrap_or(0.0),
            });
        }
        Ok(PhaseTimeline {
            nodes,
            spans,
            makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhaseTimeline {
        let mut t = PhaseTimeline::new(3);
        t.push(0, 3, TimelineKind::Work, (0.0, 0.6), 0.4);
        t.push(1, 3, TimelineKind::Work, (0.1, 0.6), 0.35);
        t.push(2, 3, TimelineKind::Timeout, (0.6, 0.65), 0.0);
        t.mark(1, 3, TimelineKind::Splice, 0.65);
        t.push(2, 3, TimelineKind::Recovery, (0.65, 0.8), 0.25);
        t.makespan = 0.8;
        t
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let t = sample();
        let back = PhaseTimeline::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn horizon_and_filters() {
        let t = sample();
        assert!((t.horizon() - 0.8).abs() < 1e-15);
        assert_eq!(t.of(TimelineKind::Work).count(), 2);
        assert_eq!(t.of(TimelineKind::Splice).count(), 1);
        assert_eq!(t.lane(2).count(), 2);
    }

    #[test]
    #[should_panic(expected = "ends before")]
    fn rejects_reversed_span() {
        let mut t = PhaseTimeline::new(1);
        t.push(0, 3, TimelineKind::Work, (1.0, 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_node() {
        let mut t = PhaseTimeline::new(1);
        t.push(1, 3, TimelineKind::Work, (0.0, 0.5), 0.0);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(PhaseTimeline::from_json("{}").is_err());
        assert!(PhaseTimeline::from_json("not json").is_err());
        assert!(PhaseTimeline::from_json(
            r#"{"nodes":1,"makespan":0,"spans":[{"node":0,"phase":3,"kind":"bogus","start":0,"end":1}]}"#
        )
        .is_err());
    }
}
