//! Pluggable record sinks.
//!
//! * [`NoopSink`] — discards everything; what `install` defaults to when a
//!   caller wants the enabled path without storage.
//! * [`MemorySink`] — buffers records in memory and aggregates counters and
//!   histograms; the test sink.
//! * [`JsonlSink`] — serializes each record as one JSON line to a file
//!   (the `DLS_TRACE=path.jsonl` sink).

use crate::record::{Record, RecordKind};
use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A consumer of observability records. Implementations must be cheap and
/// must never panic — they run inside instrumented hot paths.
pub trait Sink: Send + Sync {
    /// Consume one record.
    fn record(&self, record: &Record);
    /// Flush buffered output (file sinks). Default: no-op.
    fn flush(&self) {}
}

/// Discards every record.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _record: &Record) {}
}

/// Buffers records and aggregates metrics; for tests and in-process
/// summaries.
#[derive(Debug, Default)]
pub struct MemorySink {
    inner: Mutex<MemoryInner>,
}

#[derive(Debug, Default)]
struct MemoryInner {
    records: Vec<Record>,
    counters: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Vec<f64>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records captured.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().records.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all captured records.
    pub fn records(&self) -> Vec<Record> {
        self.inner.lock().unwrap().records.clone()
    }

    /// Total of a named counter (0 if never incremented).
    pub fn counter_total(&self, name: &str) -> f64 {
        *self
            .inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .unwrap_or(&0.0)
    }

    /// All samples of a named histogram.
    pub fn histogram(&self, name: &str) -> Vec<f64> {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Names of all counters seen, sorted.
    pub fn counter_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .unwrap()
            .counters
            .keys()
            .map(|k| k.to_string())
            .collect()
    }

    /// Drop everything captured so far.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.records.clear();
        inner.counters.clear();
        inner.histograms.clear();
    }
}

impl Sink for MemorySink {
    fn record(&self, record: &Record) {
        let mut inner = self.inner.lock().unwrap();
        match record.kind {
            RecordKind::Counter => {
                *inner.counters.entry(record.name).or_insert(0.0) += record.value;
            }
            RecordKind::Histogram => {
                inner
                    .histograms
                    .entry(record.name)
                    .or_default()
                    .push(record.value);
            }
            _ => {}
        }
        inner.records.push(record.clone());
    }
}

/// Streams records to a file as JSON lines.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Create (truncate) the trace file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, record: &Record) {
        let line = record.to_json();
        let mut w = self.writer.lock().unwrap();
        // Trace output is best-effort: a full disk must not kill the run.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: RecordKind, name: &'static str, value: f64) -> Record {
        Record {
            kind,
            name,
            span: 0,
            parent: 0,
            vtime: f64::NAN,
            wall_micros: 0,
            value,
            fields: vec![],
        }
    }

    #[test]
    fn memory_sink_aggregates_counters_and_histograms() {
        let sink = MemorySink::new();
        sink.record(&rec(RecordKind::Counter, "msgs", 1.0));
        sink.record(&rec(RecordKind::Counter, "msgs", 2.0));
        sink.record(&rec(RecordKind::Histogram, "lat", 0.5));
        sink.record(&rec(RecordKind::Histogram, "lat", 1.5));
        assert_eq!(sink.counter_total("msgs"), 3.0);
        assert_eq!(sink.histogram("lat"), vec![0.5, 1.5]);
        assert_eq!(sink.counter_total("absent"), 0.0);
        assert_eq!(sink.len(), 4);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!("obs-test-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(&rec(RecordKind::Event, "e1", 0.0));
            sink.record(&rec(RecordKind::Counter, "c1", 4.0));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            minijson::Value::parse(line).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
