//! The run clock: a single accumulator for virtual (simulated) time.
//!
//! The fault-tolerant runner used to compute makespans with ad-hoc
//! arithmetic (`base + timeout + residual · w̄`) while the timeline was
//! assembled separately — two codepaths that could drift. [`RunClock`]
//! is the one place both go through: every interval of virtual time is
//! `advance`d exactly once, the returned `(start, end)` pair feeds the
//! phase timeline, and the final `now()` *is* the reported makespan.
//!
//! Addition order is preserved (`advance` is a single `+=` per interval),
//! so replacing the ad-hoc expressions with a clock is bit-identical:
//! `((a + b) + c)` in f64 is exactly what sequential advances produce.

/// An accumulating virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunClock {
    now: f64,
}

impl RunClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        Self::starting_at(0.0)
    }

    /// A clock starting at `t` (e.g. the fault-free makespan, when
    /// detection begins after the interrupted phase completes).
    pub fn starting_at(t: f64) -> Self {
        assert!(!t.is_nan(), "virtual time cannot be NaN");
        RunClock { now: t }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by `dt`, returning the `(start, end)` interval just spent —
    /// the timeline span for whatever consumed that time.
    #[inline]
    pub fn advance(&mut self, dt: f64) -> (f64, f64) {
        let start = self.now;
        self.now += dt;
        (start, self.now)
    }
}

impl Default for RunClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_accumulate_left_to_right() {
        let mut c = RunClock::starting_at(1.5);
        let (s1, e1) = c.advance(0.25);
        let (s2, e2) = c.advance(0.5);
        assert_eq!((s1, e1), (1.5, 1.75));
        assert_eq!((s2, e2), (1.75, 2.25));
        assert_eq!(c.now(), 2.25);
    }

    #[test]
    fn matches_inline_expression_bitwise() {
        // The exact shape ft_runner uses: base + timeout + residual·w̄.
        let (base, timeout, residual, per_unit) = (0.731, 0.05, 0.3178, 1.137);
        let inline = base + timeout + residual * per_unit;
        let mut c = RunClock::starting_at(base);
        c.advance(timeout);
        c.advance(residual * per_unit);
        assert_eq!(c.now().to_bits(), inline.to_bits());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_start() {
        RunClock::starting_at(f64::NAN);
    }
}
