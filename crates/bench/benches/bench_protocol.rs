//! Protocol-layer benchmarks: full four-phase runs (honest and deviant),
//! the DES event engine's raw throughput, and the signature substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use protocol::{Deviation, Registry, Scenario};
use sim::{Engine, SimTime};
use std::hint::black_box;
use workloads::ChainConfig;

fn scenario(m: usize) -> Scenario {
    let cfg = ChainConfig {
        processors: m + 1,
        ..Default::default()
    };
    let net = workloads::chain(&cfg, 42);
    let parts = workloads::mechanism_parts(&net);
    Scenario::honest(parts.root_rate, parts.true_rates, parts.link_rates)
}

fn full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_run");
    group.sample_size(20);
    for &m in &[4usize, 16, 64] {
        let honest = scenario(m);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("honest", m), &honest, |b, s| {
            b.iter(|| black_box(protocol::run(s)))
        });
        let deviant = scenario(m).with_deviation(2, Deviation::ShedLoad { keep_fraction: 0.5 });
        group.bench_with_input(BenchmarkId::new("shed_load", m), &deviant, |b, s| {
            b.iter(|| black_box(protocol::run(s)))
        });
    }
    group.finish();
}

fn event_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_engine");
    for &events in &[1_000usize, 100_000] {
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::from_parameter(events), &events, |b, &n| {
            b.iter(|| {
                let mut eng: Engine<u64> = Engine::new();
                for i in 0..n as u64 {
                    // pseudo-random interleaving without rand in the hot loop
                    let t = ((i.wrapping_mul(2654435761)) % 1_000_000) as f64;
                    eng.schedule_at(SimTime::new(t), i);
                }
                let mut acc = 0u64;
                while let Some((_, e)) = eng.next_event() {
                    acc = acc.wrapping_add(e);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn signatures(c: &mut Criterion) {
    let registry = Registry::new(16, 42);
    let key = registry.keypair(3);
    let payload = 0.123456789f64;
    c.bench_function("dsm_sign", |b| b.iter(|| black_box(key.sign(&payload))));
    let sig = key.sign(&payload);
    c.bench_function("dsm_verify", |b| {
        b.iter(|| black_box(registry.verify(3, &payload, sig)))
    });
}

criterion_group!(benches, full_run, event_engine, signatures);
criterion_main!(benches);
