//! E29 companion — sequencing-search benchmarks: exhaustive oracle cost
//! versus the seeded local search across order-space sizes, plus the cost
//! of one order evaluation (reorder + tree solve) and of an
//! order-parameterized mechanism settlement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlt::seqsearch::{
    canonical_order, exhaustive_search, local_search, order_makespan, LocalSearchConfig,
};
use mechanism::{Agent, OrderPolicy, TreeMechanism};
use std::hint::black_box;
use workloads::order_search_grid;

fn searches(c: &mut Criterion) {
    let mut group = c.benchmark_group("seqsearch");
    let grid = order_search_grid(0xE29);
    for case in &grid {
        let orderable = dlt::seqsearch::orderable_nodes(&case.shape);
        if !matches!(case.label.as_str(), "star/m5" | "binary/m6" | "wide/s0") {
            continue;
        }
        if orderable <= 7 {
            group.bench_with_input(
                BenchmarkId::new("exhaustive", &case.label),
                &case.shape,
                |b, shape| b.iter(|| black_box(exhaustive_search(shape, 5_040).unwrap())),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("local", &case.label),
            &case.shape,
            |b, shape| b.iter(|| black_box(local_search(shape, &LocalSearchConfig::default()))),
        );
        let order = canonical_order(&case.shape);
        group.bench_with_input(
            BenchmarkId::new("one_evaluation", &case.label),
            &(&case.shape, &order),
            |b, (shape, order)| b.iter(|| black_box(order_makespan(shape, order))),
        );
    }
    group.finish();
}

fn settlements(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_settlement");
    let grid = order_search_grid(0xE29);
    let case = grid
        .iter()
        .find(|c| c.label == "wide/s1")
        .expect("grid carries the wide tree");
    let agents: Vec<Agent> = case.true_rates.iter().map(|&r| Agent::new(r)).collect();
    let searched = local_search(&case.shape, &LocalSearchConfig::default()).best_order;
    for (name, policy) in [
        ("canonical", OrderPolicy::Canonical),
        ("frozen", OrderPolicy::Frozen(searched)),
        ("bid_dependent", OrderPolicy::BidFastestEquivalentFirst),
    ] {
        let mech = TreeMechanism::with_order(case.shape.clone(), policy);
        group.bench_with_input(BenchmarkId::new(name, &case.label), &mech, |b, mech| {
            b.iter(|| black_box(mech.settle_truthful(&agents)))
        });
    }
    group.finish();
}

criterion_group!(benches, searches, settlements);
criterion_main!(benches);
