//! Mechanism-layer benchmarks: settlement cost per round, per-agent
//! payment computation, and the full strategyproofness sweep used by E4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mechanism::payment::{self, PaymentInputs};
use mechanism::verify::{default_factor_grid, strategyproofness_report};
use mechanism::{Agent, Conduct, DlsLbl};
use std::hint::black_box;
use workloads::ChainConfig;

fn setup(n: usize) -> (DlsLbl, Vec<Agent>) {
    let cfg = ChainConfig {
        processors: n + 1,
        ..Default::default()
    };
    let net = workloads::chain(&cfg, 42);
    let parts = workloads::mechanism_parts(&net);
    let mech = DlsLbl::new(parts.root_rate, parts.link_rates);
    let agents = parts.true_rates.into_iter().map(Agent::new).collect();
    (mech, agents)
}

fn settle(c: &mut Criterion) {
    let mut group = c.benchmark_group("settle_round");
    for &m in &[4usize, 16, 64, 256] {
        let (mech, agents) = setup(m);
        let conducts: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &conducts, |b, conducts| {
            b.iter(|| black_box(mech.settle(conducts, false)))
        });
    }
    group.finish();
}

fn single_payment(c: &mut Criterion) {
    let (mech, agents) = setup(16);
    let (net, sol) = mech.allocate(&agents.iter().map(|a| a.true_rate).collect::<Vec<_>>());
    let j = 8;
    let inputs = PaymentInputs {
        assigned_load: sol.alloc.alpha(j),
        actual_load: sol.alloc.alpha(j),
        actual_rate: net.w(j),
    };
    c.bench_function("payment_single_agent", |b| {
        b.iter(|| black_box(payment::settle(&net, j, inputs, 0.0)))
    });
}

fn sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategyproof_sweep");
    group.sample_size(10);
    let grid = default_factor_grid();
    for &m in &[4usize, 16] {
        let (mech, agents) = setup(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &agents, |b, agents| {
            b.iter(|| black_box(strategyproofness_report(&mech, agents, &grid)))
        });
    }
    group.finish();
}

criterion_group!(benches, settle, single_payment, sweep);
criterion_main!(benches);
