//! Ablation benchmarks for the design choices called out in DESIGN.md §5:
//!
//! * f64 reduction solver vs exact-rational solver (speed cost of
//!   exactness);
//! * far-end-first reduction (Algorithm 1) vs bisection fixed-point
//!   baseline (algorithmic choice);
//! * sequential vs rayon-parallel sweep driver (experiment harness);
//! * DES execution vs closed-form schedule evaluation (simulation cost).

use bench::{par_sweep, seq_sweep};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlt::baseline::{solve_bisection, BisectionParams};
use dlt::exact::ExactChain;
use dlt::timing::ChainSchedule;
use dlt::{exact, linear};
use std::hint::black_box;
use workloads::ChainConfig;

fn arithmetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_arithmetic");
    let n = 12usize;
    let w: Vec<i64> = (0..n as i64).map(|i| 10 + (i * 7) % 13).collect();
    let z: Vec<i64> = (1..n as i64).map(|i| 1 + (i * 3) % 5).collect();
    let chain = ExactChain::from_scaled_ints(&w, &z, 10);
    let f64net = chain.to_f64_network();
    group.bench_function("f64", |b| b.iter(|| black_box(linear::solve(&f64net))));
    group.bench_function("exact_rational", |b| {
        b.iter(|| black_box(exact::chain::solve(&chain)))
    });
    group.finish();
}

fn algorithm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_algorithm");
    for &n in &[16usize, 256] {
        let cfg = ChainConfig {
            processors: n,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, 42);
        group.bench_with_input(BenchmarkId::new("reduction", n), &net, |b, net| {
            b.iter(|| black_box(linear::solve(net)))
        });
        group.bench_with_input(BenchmarkId::new("bisection", n), &net, |b, net| {
            b.iter(|| black_box(solve_bisection(net, BisectionParams::default())))
        });
    }
    group.finish();
}

fn sweep_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sweep_driver");
    group.sample_size(10);
    let cfg = ChainConfig {
        processors: 16,
        ..Default::default()
    };
    let work = move |seed: u64| {
        let net = workloads::chain(&cfg, seed);
        linear::solve(&net).makespan()
    };
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(seq_sweep(0..512, work)))
    });
    group.bench_function("rayon", |b| b.iter(|| black_box(par_sweep(0..512, work))));
    group.finish();
}

fn execution_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_execution");
    for &n in &[16usize, 256] {
        let cfg = ChainConfig {
            processors: n,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, 42);
        let sol = linear::solve(&net);
        group.bench_with_input(BenchmarkId::new("des", n), &net, |b, net| {
            b.iter(|| black_box(sim::simulate_honest(net, &sol.local)))
        });
        group.bench_with_input(BenchmarkId::new("closed_form", n), &net, |b, net| {
            b.iter(|| black_box(ChainSchedule::analytic(net, &sol.alloc)))
        });
    }
    group.finish();
}

fn des_granularity(c: &mut Criterion) {
    // DESIGN.md §5: per-block (Λ-granular) events vs aggregate transfers.
    let mut group = c.benchmark_group("ablation_des_granularity");
    group.sample_size(20);
    let net = workloads::chain(
        &ChainConfig {
            processors: 8,
            ..Default::default()
        },
        42,
    );
    let sol = linear::solve(&net);
    let rates = net.rates_w();
    group.bench_function("aggregate", |b| {
        b.iter(|| black_box(sim::simulate_honest(&net, &sol.local)))
    });
    for &blocks in &[100usize, 1_000, 10_000] {
        group.bench_with_input(
            criterion::BenchmarkId::new("per_block", blocks),
            &blocks,
            |b, &blocks| {
                b.iter(|| black_box(sim::simulate_blocks(&net, &sol.local, &rates, blocks)))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    arithmetic,
    algorithm,
    sweep_driver,
    execution_model,
    des_granularity
);
criterion_main!(benches);
