//! E9 — solver scaling benchmarks: Algorithm 1 (O(m)) vs the bisection
//! oracle (O(m log 1/ε)) vs the exact-rational solver, plus the companion
//! star/tree/interior solvers, across chain lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlt::baseline::{solve_bisection, BisectionParams};
use dlt::exact::ExactChain;
use dlt::interior::InteriorNetwork;
use dlt::model::{StarNetwork, TreeNode};
use dlt::{exact, interior, linear, star, tree};
use std::hint::black_box;
use workloads::ChainConfig;

fn chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_solver");
    for &n in &[4usize, 16, 64, 256, 1024] {
        let cfg = ChainConfig {
            processors: n,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &net, |b, net| {
            b.iter(|| black_box(linear::solve(net)))
        });
        group.bench_with_input(BenchmarkId::new("bisection", n), &net, |b, net| {
            b.iter(|| black_box(solve_bisection(net, BisectionParams::default())))
        });
        group.bench_with_input(BenchmarkId::new("equivalent_only", n), &net, |b, net| {
            b.iter(|| black_box(linear::equivalent_time(net)))
        });
    }
    group.finish();
}

fn exact_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solver");
    for &n in &[4usize, 8, 16] {
        let w: Vec<i64> = (0..n as i64).map(|i| 10 + (i * 7) % 13).collect();
        let z: Vec<i64> = (1..n as i64).map(|i| 1 + (i * 3) % 5).collect();
        let chain = ExactChain::from_scaled_ints(&w, &z, 10);
        group.bench_with_input(BenchmarkId::new("rational", n), &chain, |b, chain| {
            b.iter(|| black_box(exact::chain::solve(chain)))
        });
    }
    group.finish();
}

fn companions(c: &mut Criterion) {
    let mut group = c.benchmark_group("companion_solvers");
    for &n in &[16usize, 256] {
        let cfg = ChainConfig {
            processors: n,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, 42);
        let star_net = StarNetwork::from_rates(&net.rates_w(), &net.rates_z());
        group.bench_with_input(BenchmarkId::new("star", n), &star_net, |b, s| {
            b.iter(|| black_box(star::solve(s)))
        });
        let tree_net = TreeNode::from_chain(&net);
        group.bench_with_input(BenchmarkId::new("tree_chain", n), &tree_net, |b, t| {
            b.iter(|| black_box(tree::solve(t)))
        });
        let interior_net = InteriorNetwork::new(net.clone(), n / 2);
        group.bench_with_input(BenchmarkId::new("interior", n), &interior_net, |b, i| {
            b.iter(|| black_box(interior::solve(i)))
        });
    }
    group.finish();
}

criterion_group!(benches, chains, exact_solver, companions);
criterion_main!(benches);
