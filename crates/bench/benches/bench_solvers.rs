//! E9 — solver scaling benchmarks: Algorithm 1 (O(m)) vs the bisection
//! oracle (O(m log 1/ε)) vs the exact-rational solver, the batch core
//! (`solve_many` vs a scalar loop, `solve_all_suffixes` vs the per-suffix
//! loop), plus the companion star/tree/interior solvers, across chain
//! lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlt::baseline::{solve_bisection, BisectionParams};
use dlt::exact::ExactChain;
use dlt::interior::InteriorNetwork;
use dlt::model::{StarNetwork, TreeNode};
use dlt::{exact, interior, linear, star, tree};
use std::hint::black_box;
use workloads::ChainConfig;

fn chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_solver");
    for &n in &[4usize, 16, 64, 256, 1024] {
        let cfg = ChainConfig {
            processors: n,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &net, |b, net| {
            b.iter(|| black_box(linear::solve(net)))
        });
        group.bench_with_input(BenchmarkId::new("bisection", n), &net, |b, net| {
            b.iter(|| black_box(solve_bisection(net, BisectionParams::default())))
        });
        group.bench_with_input(BenchmarkId::new("equivalent_only", n), &net, |b, net| {
            b.iter(|| black_box(linear::equivalent_time(net)))
        });
    }
    group.finish();
}

fn exact_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solver");
    for &n in &[4usize, 8, 16] {
        let w: Vec<i64> = (0..n as i64).map(|i| 10 + (i * 7) % 13).collect();
        let z: Vec<i64> = (1..n as i64).map(|i| 1 + (i * 3) % 5).collect();
        let chain = ExactChain::from_scaled_ints(&w, &z, 10);
        group.bench_with_input(BenchmarkId::new("rational", n), &chain, |b, chain| {
            b.iter(|| black_box(exact::chain::solve(chain)))
        });
    }
    group.finish();
}

fn batch_core(c: &mut Criterion) {
    use dlt::batch::{self, BatchScratch, BatchSolution};
    let mut group = c.benchmark_group("batch_solver");
    let cfg = ChainConfig {
        processors: 16,
        ..Default::default()
    };
    for &k in &[32usize, 1024, 32_768] {
        let nets = workloads::chain_population(&cfg, 0..k as u64);
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("scalar_loop", k), &nets, |b, nets| {
            b.iter(|| {
                for net in nets {
                    black_box(linear::solve(net));
                }
            })
        });
        let mut scratch = BatchScratch::new();
        let mut out = BatchSolution::new();
        group.bench_with_input(BenchmarkId::new("solve_many", k), &nets, |b, nets| {
            b.iter(|| {
                batch::solve_many_into(nets, &mut scratch, &mut out);
                black_box(&out);
            })
        });
    }
    for &m in &[16usize, 256] {
        let cfg = ChainConfig {
            processors: m,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, 42);
        group.bench_with_input(BenchmarkId::new("suffix_loop", m), &net, |b, net| {
            b.iter(|| {
                for i in 0..net.len() {
                    black_box(linear::solve_suffix(net, i));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("suffix_sweep", m), &net, |b, net| {
            b.iter(|| black_box(batch::solve_all_suffixes(net)))
        });
    }
    group.finish();
}

fn companions(c: &mut Criterion) {
    let mut group = c.benchmark_group("companion_solvers");
    for &n in &[16usize, 256] {
        let cfg = ChainConfig {
            processors: n,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, 42);
        let star_net = StarNetwork::from_rates(&net.rates_w(), &net.rates_z());
        group.bench_with_input(BenchmarkId::new("star", n), &star_net, |b, s| {
            b.iter(|| black_box(star::solve(s)))
        });
        let tree_net = TreeNode::from_chain(&net);
        group.bench_with_input(BenchmarkId::new("tree_chain", n), &tree_net, |b, t| {
            b.iter(|| black_box(tree::solve(t)))
        });
        let interior_net = InteriorNetwork::new(net.clone(), n / 2);
        group.bench_with_input(BenchmarkId::new("interior", n), &interior_net, |b, i| {
            b.iter(|| black_box(interior::solve(i)))
        });
    }
    group.finish();
}

criterion_group!(benches, chains, batch_core, exact_solver, companions);
criterion_main!(benches);
