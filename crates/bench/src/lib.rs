//! # `bench` — experiment harness shared utilities
//!
//! Each experiment from DESIGN.md §4 is a binary in `src/bin/exp_*.rs`;
//! this library holds the shared plumbing: aligned table printing, summary
//! statistics, machine-readable JSON mirrors of the text reports, and a
//! rayon-parallel map for wide sweeps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Parallel-array indexing is idiomatic throughout this numeric code.
#![allow(clippy::needless_range_loop)]

use minijson::Value;
use rayon::prelude::*;

/// A plain-text table printer with right-aligned columns.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Rows (stringified cells, insertion order).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// JSON mirror of the table: an array of objects keyed by header, with
    /// cells that parse as finite numbers emitted as JSON numbers and
    /// everything else as strings.
    pub fn to_json_value(&self) -> Value {
        Value::Array(
            self.rows
                .iter()
                .map(|row| {
                    Value::Object(
                        self.headers
                            .iter()
                            .zip(row)
                            .map(|(h, cell)| (h.clone(), cell_value(cell)))
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

fn cell_value(cell: &str) -> Value {
    match cell.parse::<f64>() {
        Ok(x) if x.is_finite() => Value::Number(x),
        _ => Value::String(cell.to_string()),
    }
}

/// A machine-readable mirror of one experiment's text report, written as a
/// single JSON document next to the `results/*.txt` file. The schema is
/// documented in `results/README.md`: a top-level object with
/// `experiment`, `schema_version`, and experiment-chosen keys whose table
/// values come from [`Table::to_json_value`].
#[derive(Debug)]
pub struct JsonReport {
    entries: Vec<(String, Value)>,
}

impl JsonReport {
    /// Start a report for the named experiment (schema version 1).
    pub fn new(experiment: &str) -> Self {
        Self {
            entries: vec![
                ("experiment".into(), Value::String(experiment.into())),
                ("schema_version".into(), Value::Number(1.0)),
            ],
        }
    }

    /// Attach a numeric scalar.
    pub fn scalar(&mut self, key: &str, value: f64) -> &mut Self {
        self.entries.push((key.into(), Value::Number(value)));
        self
    }

    /// Attach a string.
    pub fn text(&mut self, key: &str, value: &str) -> &mut Self {
        self.entries.push((key.into(), Value::String(value.into())));
        self
    }

    /// Attach a table (as an array of row objects).
    pub fn table(&mut self, key: &str, table: &Table) -> &mut Self {
        self.entries.push((key.into(), table.to_json_value()));
        self
    }

    /// Attach an arbitrary pre-built JSON value.
    pub fn value(&mut self, key: &str, value: Value) -> &mut Self {
        self.entries.push((key.into(), value));
        self
    }

    /// Serialize the report document.
    pub fn to_json(&self) -> String {
        Value::Object(self.entries.clone()).to_json()
    }

    /// Write the document to `path`, creating parent directories.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Stats {
    /// Compute statistics; panics on an empty sample.
    pub fn of(sample: &[f64]) -> Self {
        assert!(!sample.is_empty());
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        Self {
            n,
            min: sample.iter().copied().fold(f64::INFINITY, f64::min),
            max: sample.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean,
            std: var.sqrt(),
        }
    }
}

/// Rayon-parallel map over seeds — the sweep driver used by the wide
/// experiments (and ablated against its sequential twin in `bench_ablation`).
pub fn par_sweep<T: Send>(
    seeds: std::ops::Range<u64>,
    f: impl Fn(u64) -> T + Sync + Send,
) -> Vec<T> {
    seeds.into_par_iter().map(f).collect()
}

/// Sequential twin of [`par_sweep`] for the ablation bench.
pub fn seq_sweep<T>(seeds: std::ops::Range<u64>, f: impl Fn(u64) -> T) -> Vec<T> {
    seeds.map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "2.25".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_row() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn stats_basics() {
        let s = Stats::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn par_and_seq_sweeps_agree() {
        let p = par_sweep(0..32, |s| s * s);
        let q = seq_sweep(0..32, |s| s * s);
        assert_eq!(p, q);
    }

    #[test]
    fn table_json_mirror_types_cells() {
        let mut t = Table::new(&["k", "v"]);
        t.row(vec!["alpha".into(), "1.5".into()]);
        t.row(vec!["beta".into(), "n/a".into()]);
        let v = t.to_json_value();
        let rows = v.as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("k").unwrap().as_str(), Some("alpha"));
        assert_eq!(rows[0].get("v").unwrap().as_f64(), Some(1.5));
        assert_eq!(rows[1].get("v").unwrap().as_str(), Some("n/a"));
    }

    #[test]
    fn json_report_round_trips_through_minijson() {
        let mut t = Table::new(&["seed", "makespan"]);
        t.row(vec!["0".into(), "0.75".into()]);
        let mut r = JsonReport::new("exp_test");
        r.scalar("runs", 1.0).text("note", "ok").table("sweep", &t);
        let doc = Value::parse(&r.to_json()).unwrap();
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("exp_test"));
        assert_eq!(doc.get("schema_version").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("runs").unwrap().as_f64(), Some(1.0));
        let rows = doc.get("sweep").unwrap().as_array().unwrap();
        assert_eq!(rows[0].get("makespan").unwrap().as_f64(), Some(0.75));
    }
}
