//! E26 — fleet telemetry: tracing never changes bytes, costs nothing
//! when disabled, and conserves every request.
//!
//! Reruns the E25 chaos plans through the full resilient topology
//! (supervised in-process shards behind the failover router, seeded
//! chaos proxy on the client link) twice each — once with observability
//! disabled, once streaming a `JsonlSink` to `results/e26_<plan>.jsonl`
//! — and asserts:
//!
//! 1. **Byte-identity** — at every line index answered by both runs, the
//!    traced response bytes equal the untraced ones, modulo the `cached`
//!    flag (which duplicate of a chain arrives first is a scheduling
//!    accident across 4 concurrent connections, not a tracing effect —
//!    E25's oracle check skips it the same way). The router's trace
//!    injection touches request envelopes only (DESIGN.md §12), so the
//!    response stream is invariant.
//! 2. **Conservation** — reading each plan's JSONL back, every trace id
//!    satisfies `svc.receive == router.forward_attempt −
//!    router.attempt_failed`, including the `kill`/`mixed` plans where a
//!    shard is SIGKILLed (or retired) mid-burst and restarted, and an
//!    extra `drain` plan (beyond E25's seven) where a shard drains
//!    behind the router's back so traces provably fail over mid-chain.
//! 3. **Disabled-path overhead** — E21-style interleaved batch medians
//!    of a serial solve stream through the fleet, disabled vs
//!    `NoopSink`; the disabled path (one relaxed atomic load per site)
//!    must be within noise (≤1.5×) of the enabled-but-discarding path.
//!
//! Additionally probes the router's `metrics` op once per traced plan
//! and checks it aggregates fleet-wide counters from every live shard.
//!
//! This binary deliberately does **not** honor `DLS_TRACE`: it manages
//! sinks itself, and an ambient sink would corrupt the disabled
//! baseline. Inspect the per-plan traces with
//! `dls-trace --fleet results/e26_<plan>.jsonl`.
//!
//! Writes `results/exp_fleet_telemetry.txt` and `.json`. Environment
//! overrides: `DLS_E26_REQUESTS`, `DLS_E26_CONNS`, `DLS_E26_SHARDS`,
//! `DLS_E26_DISTINCT`, `DLS_E26_BUDGET`, `DLS_E26_SEED`.

use bench::{JsonReport, Table};
use minijson::Value;
use obs::{JsonlSink, NoopSink};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use svc::chaos::{ChaosConfig, ChaosProxy};
use svc::resilient_client::{ResilientClient, RetryPolicy};
use svc::supervisor::ShardRuntime;
use svc::{Client, ClientConfig, Router, RouterConfig, ServerConfig, Supervisor, SupervisorConfig};
use workloads::requests::{self, RequestMixConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Plan {
    name: &'static str,
    chaos: ChaosConfig,
    kill: bool,
    /// Gracefully drain shard 0 behind the router's back (a direct
    /// `shutdown` op, no `mark_down`): the router keeps routing to it
    /// and must fail over on the `draining` rejections, exercising
    /// multi-attempt traces deterministically.
    drain: bool,
}

/// The E25 chaos plan set, byte for byte (the telemetry claims must hold
/// under exactly the conditions the resilience claims were proven
/// under), plus a `drain` plan that forces router-level failover chains.
fn plans(seed: u64, budget: u64) -> Vec<Plan> {
    let base = ChaosConfig {
        seed,
        event_budget: budget,
        ..ChaosConfig::transparent(seed)
    };
    vec![
        Plan {
            name: "none",
            chaos: ChaosConfig::transparent(seed),
            kill: false,
            drain: false,
        },
        Plan {
            name: "resets",
            chaos: ChaosConfig {
                reset_prob: 0.08,
                ..base.clone()
            },
            kill: false,
            drain: false,
        },
        Plan {
            name: "delays",
            chaos: ChaosConfig {
                delay_prob: 0.25,
                delay: Duration::from_millis(15),
                ..base.clone()
            },
            kill: false,
            drain: false,
        },
        Plan {
            name: "partial",
            chaos: ChaosConfig {
                partial_prob: 0.25,
                ..base.clone()
            },
            kill: false,
            drain: false,
        },
        Plan {
            name: "corrupt",
            chaos: ChaosConfig {
                corrupt_prob: 0.08,
                ..base.clone()
            },
            kill: false,
            drain: false,
        },
        Plan {
            name: "kill",
            chaos: ChaosConfig::transparent(seed),
            kill: true,
            drain: false,
        },
        Plan {
            name: "mixed",
            chaos: ChaosConfig {
                reset_prob: 0.04,
                delay_prob: 0.10,
                delay: Duration::from_millis(10),
                partial_prob: 0.10,
                corrupt_prob: 0.04,
                ..base
            },
            kill: true,
            drain: false,
        },
        Plan {
            name: "drain",
            chaos: ChaosConfig::transparent(seed),
            kill: false,
            drain: true,
        },
    ]
}

#[derive(Default)]
struct PlanOutcome {
    ok: u64,
    exhausted: u64,
    attempts: u64,
    failovers: u64,
    restarts: u64,
    fleet_received: u64,
    shards_reporting: u64,
}

/// Drive one chaos plan through the full stack; collect the raw response
/// per line index (None where retries exhausted). When `probe_metrics`,
/// also round-trip the router's `metrics` op before shutdown.
fn run_plan(
    plan: &Plan,
    shards: usize,
    conns: usize,
    lines: &[(String, usize)],
    seed: u64,
    probe_metrics: bool,
) -> (PlanOutcome, Vec<Option<String>>) {
    let sup = Supervisor::start(SupervisorConfig {
        shards,
        server: ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        monitor_interval: Duration::from_millis(20),
        backoff_base: Duration::from_millis(20),
        backoff_max: Duration::from_millis(200),
        runtime: ShardRuntime::InProcess,
    })
    .expect("start fleet");
    let router = Router::spawn(
        sup.directory(),
        RouterConfig {
            health_interval: Duration::from_millis(50),
            ..RouterConfig::default()
        },
    )
    .expect("bind router");
    let mut proxy =
        ChaosProxy::spawn(router.addr(), plan.chaos.clone()).expect("spawn chaos proxy");
    let proxy_addr = proxy.addr();

    let responses: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; lines.len()]);
    let ok = AtomicU64::new(0);
    let exhausted = AtomicU64::new(0);
    let attempts = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for conn in 0..conns {
            let (ok, exhausted, attempts, responses) = (&ok, &exhausted, &attempts, &responses);
            let slots: Vec<(usize, &(String, usize))> =
                lines.iter().enumerate().skip(conn).step_by(conns).collect();
            scope.spawn(move || {
                let mut rc = ResilientClient::new(
                    proxy_addr.to_string(),
                    RetryPolicy {
                        max_attempts: 8,
                        base_backoff: Duration::from_millis(10),
                        max_backoff: Duration::from_millis(150),
                        client: ClientConfig::fast(Duration::from_millis(800)),
                        seed: seed ^ conn as u64,
                        ..RetryPolicy::default()
                    },
                );
                for (pos, (line, _)) in slots {
                    match rc.call(line) {
                        Ok(out) => {
                            attempts.fetch_add(out.attempts as u64, Ordering::Relaxed);
                            ok.fetch_add(1, Ordering::Relaxed);
                            responses.lock().unwrap()[pos] = Some(out.raw);
                        }
                        Err(_) => {
                            exhausted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        if plan.kill || plan.drain {
            // Fire strictly mid-burst: wait until a quarter of the calls
            // have been answered (a fixed sleep can miss a fast burst
            // entirely), then disrupt shard 0 with ~75% still in flight.
            let (ok, exhausted, sup) = (&ok, &exhausted, &sup);
            let quarter = (lines.len() / 4) as u64;
            let directory = sup.directory();
            scope.spawn(move || {
                while ok.load(Ordering::Relaxed) + exhausted.load(Ordering::Relaxed) < quarter {
                    std::thread::sleep(Duration::from_micros(200));
                }
                if plan.kill {
                    sup.kill_shard(0, true);
                } else {
                    // Drain shard 0 behind the router's back: a direct
                    // `shutdown` op, no `mark_down`. The router keeps
                    // routing to it until the `draining` rejections and
                    // failed probes push it out — every such request is
                    // a multi-attempt failover chain in the trace.
                    let addr = directory.snapshot()[0].addr.expect("slot 0 has an addr");
                    if let Ok(mut c) = Client::connect(addr) {
                        let _ = c.call_raw(r#"{"op":"shutdown"}"#);
                    }
                }
            });
        }
    });

    let answered = ok.load(Ordering::Relaxed) + exhausted.load(Ordering::Relaxed);
    assert_eq!(
        answered,
        lines.len() as u64,
        "[{}] some calls never terminated",
        plan.name
    );
    assert!(
        ok.load(Ordering::Relaxed) > 0,
        "[{}] the fleet answered nothing",
        plan.name
    );

    let mut shards_reporting = 0u64;
    if probe_metrics {
        let mut c = Client::connect(router.addr()).expect("connect for metrics probe");
        let raw = c
            .call_raw(r#"{"op":"metrics"}"#)
            .expect("metrics round-trip");
        let v = Value::parse(&raw).expect("metrics response parses");
        assert_eq!(
            v.get("status").and_then(Value::as_str),
            Some("ok"),
            "[{}] metrics op failed: {raw}",
            plan.name
        );
        let result = v.get("result").expect("metrics result");
        assert_eq!(result.get("role").and_then(Value::as_str), Some("router"));
        shards_reporting = result
            .get("fleet")
            .and_then(|f| f.get("shards_reporting"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        assert!(
            shards_reporting >= 1,
            "[{}] router metrics aggregated no shards: {raw}",
            plan.name
        );
        assert!(
            result
                .get("text")
                .and_then(Value::as_str)
                .is_some_and(|t| t.contains("# TYPE dls_router_received_total counter")),
            "[{}] prometheus text missing router counters",
            plan.name
        );
    }

    let rstats = router.stats();
    proxy.stop();
    router.shutdown();
    router.join();
    let restarts = sup.restarts();
    let total = sup.shutdown();
    assert!(
        total.conserved(),
        "[{}] fleet ledger broken: {total:?}",
        plan.name
    );
    if plan.kill {
        assert!(
            restarts >= 1,
            "[{}] killed shard never restarted",
            plan.name
        );
    }
    (
        PlanOutcome {
            ok: ok.load(Ordering::Relaxed),
            exhausted: exhausted.load(Ordering::Relaxed),
            attempts: attempts.load(Ordering::Relaxed),
            failovers: rstats.failovers,
            restarts,
            fleet_received: total.received,
            shards_reporting,
        },
        responses.into_inner().unwrap(),
    )
}

#[derive(Default)]
struct Ledger {
    attempts: u64,
    failed: u64,
    receives: u64,
}

/// Read a plan's JSONL back and fold the conservation ledger per trace
/// id. Returns (ledgers, record count).
fn read_ledgers(path: &str) -> (BTreeMap<u64, Ledger>, usize) {
    let text = std::fs::read_to_string(path).expect("read trace back");
    let mut ledgers: BTreeMap<u64, Ledger> = BTreeMap::new();
    let mut records = 0usize;
    for line in text.lines() {
        let Ok(v) = Value::parse(line) else { continue };
        records += 1;
        if v.get("k").and_then(Value::as_str) != Some("ev") {
            continue;
        }
        let Some(name) = v.get("n").and_then(Value::as_str) else {
            continue;
        };
        let Some(trace) = v
            .get("f")
            .and_then(|f| f.get("trace"))
            .and_then(Value::as_u64)
        else {
            continue;
        };
        let l = ledgers.entry(trace).or_default();
        match name {
            "router.forward_attempt" => l.attempts += 1,
            "router.attempt_failed" => l.failed += 1,
            "svc.receive" => l.receives += 1,
            _ => {}
        }
    }
    (ledgers, records)
}

/// The E21-style overhead probe: a serial solve stream through a
/// chaos-free fleet, interleaving disabled and NoopSink batches; returns
/// (disabled median, noop median) in seconds.
fn overhead_probe(lines: &[(String, usize)], shards: usize) -> (f64, f64) {
    let sup = Supervisor::start(SupervisorConfig {
        shards,
        runtime: ShardRuntime::InProcess,
        ..SupervisorConfig::default()
    })
    .expect("start fleet");
    let router = Router::spawn(
        sup.directory(),
        RouterConfig {
            health_interval: Duration::ZERO,
            ..RouterConfig::default()
        },
    )
    .expect("bind router");
    let mut c = Client::connect(router.addr()).expect("connect");
    let mut batch = |_label: &str| {
        let t = Instant::now();
        for (line, _) in lines {
            c.call_raw(line).expect("call");
        }
        t.elapsed().as_secs_f64()
    };
    batch("warmup"); // cache-warming, untimed
    const BATCHES: usize = 5;
    let mut disabled = Vec::with_capacity(BATCHES);
    let mut noop = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        obs::uninstall();
        disabled.push(batch("disabled"));
        obs::install(Arc::new(NoopSink));
        noop.push(batch("noop"));
        obs::uninstall();
    }
    router.shutdown();
    router.join();
    assert!(sup.shutdown().conserved());
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    (median(&mut disabled), median(&mut noop))
}

fn main() {
    let total = env_usize("DLS_E26_REQUESTS", 160);
    let conns = env_usize("DLS_E26_CONNS", 4);
    let shards = env_usize("DLS_E26_SHARDS", 3);
    let distinct = env_usize("DLS_E26_DISTINCT", 10);
    let budget = env_u64("DLS_E26_BUDGET", 40);
    let seed = env_u64("DLS_E26_SEED", 0xE26);

    obs::uninstall(); // the untraced baseline must run with no sink

    let cfg = RequestMixConfig {
        total,
        distinct_chains: distinct,
        processors: 5,
        ft_fraction: 0.0,
        seed,
    };
    let lines = requests::solve_lines_indexed(&cfg);
    std::fs::create_dir_all("results").expect("create results/");

    println!(
        "E26: {total} requests x {} plans x 2 runs (untraced, traced), \
         {conns} conns, {shards} shards, chaos budget {budget}",
        plans(seed, budget).len()
    );
    println!();

    let mut table = Table::new(&[
        "plan",
        "ok",
        "ok_traced",
        "byte_matched",
        "traces",
        "failovers",
        "violations",
        "restarts",
        "records",
    ]);
    let mut report = JsonReport::new("exp_fleet_telemetry");
    report
        .scalar("requests_per_plan", total as f64)
        .scalar("connections", conns as f64)
        .scalar("shards", shards as f64)
        .scalar("chaos_budget", budget as f64)
        .scalar("seed", seed as f64);

    for plan in plans(seed, budget) {
        // Untraced baseline: observability fully disabled.
        obs::uninstall();
        let (base, base_resp) = run_plan(&plan, shards, conns, &lines, seed, false);

        // Traced run: every process-wide record streams to the plan file.
        let trace_path = format!("results/e26_{}.jsonl", plan.name);
        let sink = JsonlSink::create(&trace_path).expect("create trace file");
        obs::install(Arc::new(sink));
        let (traced, traced_resp) = run_plan(&plan, shards, conns, &lines, seed, true);
        obs::uninstall(); // flushes the JSONL writer

        // 1. Byte-identity at every index both runs answered. The
        // `cached` flag is normalized first: it records arrival order
        // among duplicate chains, a scheduling accident, not bytes the
        // solver or the tracing layer control.
        let normalize = |s: &str| s.replace("\"cached\":true", "\"cached\":false");
        let mut matched = 0usize;
        for (i, (b, t)) in base_resp.iter().zip(&traced_resp).enumerate() {
            if let (Some(b), Some(t)) = (b, t) {
                assert_eq!(
                    normalize(b),
                    normalize(t),
                    "[{}] traced response {i} diverged from untraced bytes\n line: {}",
                    plan.name,
                    lines[i].0
                );
                matched += 1;
            }
        }
        assert!(
            matched > 0,
            "[{}] no line index answered by both runs",
            plan.name
        );

        // 2. Conservation: fold the JSONL back into per-trace ledgers.
        let (ledgers, records) = read_ledgers(&trace_path);
        assert!(
            !ledgers.is_empty(),
            "[{}] traced run produced no traced requests",
            plan.name
        );
        let mut violations = 0usize;
        let mut multi_hop = 0usize;
        for (t, l) in &ledgers {
            if l.receives != l.attempts - l.failed.min(l.attempts) {
                eprintln!(
                    "[{}] trace {t}: attempts={} failed={} receives={}",
                    plan.name, l.attempts, l.failed, l.receives
                );
                violations += 1;
            }
            if l.attempts > 1 {
                multi_hop += 1;
            }
        }
        assert_eq!(
            violations, 0,
            "[{}] conservation violated for {violations} trace(s)",
            plan.name
        );
        if plan.drain {
            assert!(
                multi_hop >= 1,
                "[{}] the drained shard produced no failover chains",
                plan.name
            );
        }

        println!(
            "{:>8}: ok={}/{} byte_matched={} traces={} multi_hop={} failovers={} \
             restarts={} shards_reporting={} records={}",
            plan.name,
            base.ok,
            traced.ok,
            matched,
            ledgers.len(),
            multi_hop,
            traced.failovers,
            traced.restarts,
            traced.shards_reporting,
            records,
        );
        table.row(vec![
            plan.name.into(),
            base.ok.to_string(),
            traced.ok.to_string(),
            matched.to_string(),
            ledgers.len().to_string(),
            traced.failovers.to_string(),
            violations.to_string(),
            traced.restarts.to_string(),
            records.to_string(),
        ]);
        report
            .scalar(&format!("{}_ok", plan.name), base.ok as f64)
            .scalar(&format!("{}_ok_traced", plan.name), traced.ok as f64)
            .scalar(&format!("{}_byte_matched", plan.name), matched as f64)
            .scalar(&format!("{}_traces", plan.name), ledgers.len() as f64)
            .scalar(&format!("{}_multi_hop", plan.name), multi_hop as f64)
            .scalar(&format!("{}_failovers", plan.name), traced.failovers as f64)
            .scalar(&format!("{}_violations", plan.name), violations as f64)
            .scalar(&format!("{}_restarts", plan.name), traced.restarts as f64)
            .scalar(&format!("{}_exhausted", plan.name), base.exhausted as f64)
            .scalar(&format!("{}_attempts", plan.name), traced.attempts as f64)
            .scalar(
                &format!("{}_fleet_received", plan.name),
                traced.fleet_received as f64,
            );
    }
    println!();

    // 3. Disabled-path overhead through the serving stack.
    let probe_lines = &lines[..lines.len().min(4 * distinct)];
    let (disabled_med, noop_med) = overhead_probe(probe_lines, shards);
    println!(
        "overhead: disabled {:.2}ms vs NoopSink {:.2}ms per {}-request batch \
         (median of 5)",
        1e3 * disabled_med,
        1e3 * noop_med,
        probe_lines.len()
    );
    assert!(
        disabled_med <= noop_med * 1.5,
        "disabled path measurably slower than NoopSink: {disabled_med}s vs {noop_med}s"
    );
    report
        .scalar("overhead_disabled_median_s", disabled_med)
        .scalar("overhead_noop_median_s", noop_med);

    table.print();
    report
        .write("results/exp_fleet_telemetry.json")
        .expect("write E26 json");
    std::fs::write("results/exp_fleet_telemetry.txt", table.render()).expect("write E26 txt");
    println!("wrote results/exp_fleet_telemetry.json");
    println!(
        "E26: tracing byte-invariant, conservation holds on every plan, \
         disabled path within noise"
    );
    println!("  inspect: cargo run --release -p bench --bin dls-trace -- --fleet results/e26_mixed.jsonl");
}
