//! E28 — online multi-job scheduling per chain: pipelined multiround
//! composition, truthful payment carry-over, and the frozen single-job
//! byte guarantee.
//!
//! Four claims, measured:
//!
//! 1. **Pipelined ≤ sequential.** Over a grid of chain sizes, batch
//!    lengths, and per-installment startup costs, the composed batch
//!    ([`dlt::multiround::compose_best`]) never finishes later than
//!    running every job as an independent one-shot solve — on *every*
//!    grid point, not on average. Strict wins are tallied (they come from
//!    `k* > 1` shifting load off the root and from the removed inter-job
//!    barrier).
//! 2. **Jobs-mode strategyproofness.** An E2-style bid sweep through the
//!    exact [`mechanism::JobLedger`] carry-over path the serving
//!    scheduler uses: across misreport factors, batch shapes, and round
//!    counts, zero profitable misreports.
//! 3. **Frozen single-job bytes.** A fresh server answering one plain
//!    `submit_job` (unit load, no rounds hint, no startup) produces bytes
//!    bit-identical to a fresh server answering `solve` for the same
//!    chain; both transcripts are written for CI to diff
//!    (`results/e28_single_job_solve.txt` / `_jobs.txt`).
//! 4. **Serving ledger.** A seeded `job_mix` driven over loopback TCP
//!    completes with `submitted == completed + cancelled + rejected` and
//!    every composed report obeying `batch ≤ sequential`.
//!
//! Writes `results/exp_multi_job.txt` and `.json`. Environment overrides:
//! `DLS_E28_SEEDS` (chains per grid cell), `DLS_E28_MAX_ROUNDS` (auto
//! round-count ceiling), `DLS_E28_MIX` (jobs in the served mix),
//! `DLS_E28_SWEEP_SEEDS` (chains per strategyproofness cell).
//!
//! ```sh
//! cargo run --release -p bench --bin exp_multi_job
//! ```

use bench::{JsonReport, Table};
use dlt::model::LinearNetwork;
use dlt::multiround;
use mechanism::payment::jobs_batch_utility;
use minijson::Value;
use svc::{serve, Client, ServerConfig};
use workloads::requests::{self, JobMixConfig};
use workloads::ChainConfig;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic batch loads: mixed sizes, no RNG needed.
fn batch_loads(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + 0.45 * (i % 4) as f64).collect()
}

fn main() {
    if let Some(path) = obs::init_from_env() {
        eprintln!("tracing to {path} (DLS_TRACE)");
    }
    println!("E28: multi-job queues — pipelined composition, carry-over settlement, frozen bytes");
    println!();
    let mut mirror = JsonReport::new("exp_multi_job");
    let mut txt = String::new();
    std::fs::create_dir_all("results").expect("create results/");

    // ── 1. Pipelined vs sequential over the grid ────────────────────────
    let seeds = env_usize("DLS_E28_SEEDS", 5) as u64;
    let max_rounds = env_usize("DLS_E28_MAX_ROUNDS", 16);
    let mut t = Table::new(&[
        "m",
        "jobs",
        "startup",
        "pipelined (mean)",
        "sequential (mean)",
        "saving",
        "strict wins",
    ]);
    let mut grid_points = 0usize;
    let mut strict_wins_total = 0usize;
    let mut worst_excess = f64::NEG_INFINITY;
    for &m in &[3usize, 8, 16] {
        for &jobs in &[2usize, 4, 8] {
            for &startup in &[0.0f64, 0.05, 0.2] {
                let (mut pipe_sum, mut seq_sum) = (0.0f64, 0.0f64);
                let mut strict = 0usize;
                for seed in 0..seeds {
                    let cfg = ChainConfig {
                        processors: m,
                        ..ChainConfig::default()
                    };
                    let net = workloads::chain(&cfg, 0xE28 ^ seed);
                    let loads = batch_loads(jobs);
                    let best = multiround::compose_best(&net, &loads, startup, max_rounds);
                    grid_points += 1;
                    worst_excess = worst_excess.max(best.makespan - best.sequential_makespan);
                    assert!(
                        best.makespan <= best.sequential_makespan + 1e-9,
                        "pipelined {} > sequential {} at m={m} jobs={jobs} startup={startup} seed={seed}",
                        best.makespan,
                        best.sequential_makespan
                    );
                    if best.makespan < best.sequential_makespan - 1e-9 {
                        strict += 1;
                    }
                    pipe_sum += best.makespan;
                    seq_sum += best.sequential_makespan;
                }
                strict_wins_total += strict;
                let saving = 1.0 - pipe_sum / seq_sum;
                t.row(vec![
                    m.to_string(),
                    jobs.to_string(),
                    format!("{startup}"),
                    format!("{:.4}", pipe_sum / seeds as f64),
                    format!("{:.4}", seq_sum / seeds as f64),
                    format!("{:.1}%", saving * 100.0),
                    format!("{strict}/{seeds}"),
                ]);
            }
        }
    }
    t.print();
    txt.push_str(&t.render());
    let line = format!(
        "grid: {grid_points} points, pipelined ≤ sequential everywhere \
         (worst excess {worst_excess:.2e}), {strict_wins_total} strict wins"
    );
    println!("{line}");
    println!();
    txt.push_str(&line);
    txt.push('\n');
    mirror.table("grid", &t);
    mirror.scalar("grid_points", grid_points as f64);
    mirror.scalar("grid_strict_wins", strict_wins_total as f64);
    mirror.scalar("grid_worst_excess", worst_excess);

    // ── 2. Jobs-mode strategyproofness (E2-style bid sweep) ─────────────
    let sweep_seeds = env_usize("DLS_E28_SWEEP_SEEDS", 3) as u64;
    let factors: Vec<f64> = vec![0.25, 0.5, 0.8, 0.9, 0.95, 1.05, 1.1, 1.25, 2.0, 4.0];
    let loads = batch_loads(5);
    let mut sweeps = 0usize;
    let mut profitable = 0usize;
    let mut worst_gain = f64::NEG_INFINITY;
    for &m in &[3usize, 8] {
        for seed in 0..sweep_seeds {
            let cfg = ChainConfig {
                processors: m,
                ..ChainConfig::default()
            };
            let truth = workloads::chain(&cfg, 0x5EED ^ seed);
            let w: Vec<f64> = (0..truth.len()).map(|i| truth.w(i)).collect();
            for j in 1..truth.len() {
                for &rounds in &[1usize, 4] {
                    let honest = jobs_batch_utility(&truth, j, truth.w(j), &loads, rounds);
                    for &f in &factors {
                        if (f - 1.0).abs() < 1e-12 {
                            continue;
                        }
                        let mut lied = w.clone();
                        lied[j] = truth.w(j) * f;
                        let misreport = LinearNetwork::from_rates(&lied, &truth.rates_z());
                        let u = jobs_batch_utility(&misreport, j, truth.w(j), &loads, rounds);
                        sweeps += 1;
                        worst_gain = worst_gain.max(u - honest);
                        if u > honest + 1e-9 {
                            profitable += 1;
                        }
                    }
                }
            }
        }
    }
    let line = format!(
        "strategyproofness: {sweeps} misreports swept through the job ledger, \
         {profitable} profitable (max gain {worst_gain:.2e})"
    );
    println!("{line}");
    println!();
    txt.push_str(&line);
    txt.push('\n');
    assert_eq!(
        profitable, 0,
        "a misreport profited through the jobs carry-over path"
    );
    mirror.scalar("sweep_misreports", sweeps as f64);
    mirror.scalar("sweep_profitable", profitable as f64);
    mirror.scalar("sweep_max_gain", worst_gain);

    // ── 3. Frozen single-job bytes: submit_job(plain) == solve ──────────
    let links = [0.2, 0.1, 0.7];
    let bids = [2.0, 0.5, 4.0];
    let solve_srv = serve(ServerConfig::default()).expect("start solve server");
    let jobs_srv = serve(ServerConfig::default()).expect("start jobs server");
    let mut via_solve = Client::connect(solve_srv.addr()).expect("connect");
    let mut via_jobs = Client::connect(jobs_srv.addr()).expect("connect");
    let solve_bytes = via_solve
        .call_raw(&requests::solve_line(1, 1.0, &links, &bids))
        .expect("solve");
    let job_bytes = via_jobs
        .call_raw(&requests::job_line(1, 1.0, &links, &bids, 1.0, None, 0.0))
        .expect("submit_job");
    std::fs::write("results/e28_single_job_solve.txt", &solve_bytes)
        .expect("write solve transcript");
    std::fs::write("results/e28_single_job_jobs.txt", &job_bytes).expect("write jobs transcript");
    assert_eq!(
        solve_bytes, job_bytes,
        "single plain job must be byte-identical to solve"
    );
    solve_srv.shutdown();
    jobs_srv.shutdown();
    drop(via_solve);
    drop(via_jobs);
    assert!(solve_srv.join().conserved());
    assert!(jobs_srv.join().conserved());
    let line = format!(
        "frozen bytes: single plain job == solve ({} bytes, transcripts in results/) ✓",
        solve_bytes.len()
    );
    println!("{line}");
    println!();
    txt.push_str(&line);
    txt.push('\n');
    mirror.scalar("single_job_bytes_identical", 1.0);

    // ── 4. Served job mix: conservation + per-report pipelining bound ───
    let mix = JobMixConfig {
        total: env_usize("DLS_E28_MIX", 128),
        distinct_chains: 6,
        processors: 5,
        comm_startup: 0.02,
        ..JobMixConfig::default()
    };
    let lines = requests::job_lines_indexed(&mix);
    let handle = serve(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut c = Client::connect(handle.addr()).expect("connect");
    for (line, _) in &lines {
        c.send(line).expect("send");
    }
    c.flush().expect("flush");
    let (mut ok, mut rejected, mut composed_reports, mut bound_violations) = (0usize, 0, 0, 0);
    for _ in 0..lines.len() {
        let v = c.recv().expect("recv");
        match v.get("status").and_then(Value::as_str) {
            Some("ok") => {
                ok += 1;
                let r = v.get("result").expect("ok body");
                if let (Some(batch), Some(seq)) = (
                    r.get("batch_makespan").and_then(Value::as_f64),
                    r.get("sequential_makespan").and_then(Value::as_f64),
                ) {
                    composed_reports += 1;
                    if batch > seq + 1e-9 {
                        bound_violations += 1;
                    }
                }
            }
            Some("rejected") => rejected += 1,
            other => panic!("unexpected status {other:?}: {v:?}"),
        }
    }
    let stats = c.call(r#"{"op":"stats"}"#).expect("stats");
    let jb = stats.get("result").unwrap().get("jobs").unwrap();
    let get = |k: &str| jb.get(k).and_then(Value::as_u64).unwrap();
    let (submitted, completed, cancelled, jrejected) = (
        get("submitted"),
        get("completed"),
        get("cancelled"),
        get("rejected"),
    );
    handle.shutdown();
    drop(c);
    let snapshot = handle.join();
    assert!(snapshot.conserved(), "drain ledger: {snapshot:?}");
    assert_eq!(submitted, lines.len() as u64);
    assert_eq!(
        submitted,
        completed + cancelled + jrejected,
        "jobs ledger must balance"
    );
    assert_eq!(completed, ok as u64);
    assert_eq!(jrejected, rejected as u64);
    assert_eq!(bound_violations, 0, "a served batch exceeded sequential");
    let line = format!(
        "served mix: {} jobs → {ok} ok ({composed_reports} composed reports, 0 over bound), \
         {rejected} rejected; ledger {submitted} == {completed} + {cancelled} + {jrejected} ✓",
        lines.len()
    );
    println!("{line}");
    println!();
    txt.push_str(&line);
    txt.push('\n');
    mirror.scalar("mix_jobs", lines.len() as f64);
    mirror.scalar("mix_completed", completed as f64);
    mirror.scalar("mix_rejected", jrejected as f64);
    mirror.scalar("mix_composed_reports", composed_reports as f64);

    mirror
        .write("results/exp_multi_job.json")
        .expect("write JSON mirror");
    std::fs::write("results/exp_multi_job.txt", &txt).expect("write E28 txt");
    obs::flush();
    println!(
        "PASS: pipelined ≤ sequential on all {grid_points} grid points; \
         0/{sweeps} profitable misreports; single-job bytes frozen; serving ledger balanced"
    );
}
