//! E20 — fault injection: makespan degradation and recovery overhead.
//!
//! Sweeps crash-stop failures over every chain position and phase
//! (3–8-node chains) and over crash *time* (Phase III progress), running
//! the fault-tolerant protocol with chain-splice recovery. Reports the
//! makespan overhead of detection + recovery and checks the robustness
//! invariants on every run: the unit workload is fully recovered, the
//! report is deterministic, and — the fault-tolerant extension of Lemma
//! 5.2 — no honest survivor is ever fined.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_fault_sweep
//! ```

use bench::{par_sweep, JsonReport, Table};
use protocol::{run_with_faults, FaultKind, FaultPlan, Scenario};
use workloads::{crash_position_grid, crash_time_grid, seeded_cases, FaultCase, FaultCaseKind};

fn to_plan(case: &FaultCase) -> FaultPlan {
    let kind = match case.kind {
        FaultCaseKind::Crash => FaultKind::Crash {
            phase: case.phase,
            progress: case.progress,
        },
        FaultCaseKind::Stall => FaultKind::Stall {
            progress: case.progress,
        },
        FaultCaseKind::DropMessage => FaultKind::DropMessage { phase: case.phase },
        FaultCaseKind::DelayMessage => FaultKind::DelayMessage {
            phase: case.phase,
            delay: case.delay,
        },
        FaultCaseKind::CorruptMessage => FaultKind::CorruptMessage { phase: case.phase },
    };
    FaultPlan::none().with_event(case.node, kind)
}

/// A heterogeneous chain with `m` strategic processors.
fn chain(m: usize) -> Scenario {
    let true_rates: Vec<f64> = (0..m).map(|j| 0.6 + 0.8 * ((j * 5 % 4) as f64)).collect();
    let link_rates: Vec<f64> = (0..m).map(|j| 0.1 + 0.12 * ((j * 3 % 3) as f64)).collect();
    Scenario::honest(1.0, true_rates, link_rates)
}

fn check_invariants(s: &Scenario, plan: &FaultPlan, tag: &str) -> protocol::FtRunReport {
    let ft = run_with_faults(s, plan).expect("valid plan");
    assert!(
        ft.load_conserved(1e-9),
        "{tag}: lost load, completed {:?}",
        ft.completed
    );
    assert!(
        ft.makespan >= ft.base_makespan - 1e-12,
        "{tag}: recovery cannot be free"
    );
    for j in 1..=s.num_agents() {
        assert!(ft.fines_paid(j) <= 1e-12, "{tag}: honest P{j} fined");
    }
    let again = run_with_faults(s, plan).expect("valid plan");
    assert_eq!(ft, again, "{tag}: report not deterministic");
    ft
}

fn main() {
    if let Some(path) = obs::init_from_env() {
        eprintln!("tracing to {path} (DLS_TRACE)");
    }
    println!("E20: fault injection — makespan degradation and recovery overhead");
    println!();
    let mut mirror = JsonReport::new("exp_fault_sweep");

    // ---- Overhead vs crash position (node × phase), per chain size ----
    println!("crash position sweep: relative makespan overhead (makespan / fault-free − 1)");
    for m in 2..=7usize {
        let s = chain(m);
        let mut t = Table::new(&["node", "phase 1", "phase 2", "phase 3 @0.5", "phase 4"]);
        for node in 1..=m {
            let mut cells = vec![format!("P{node}")];
            for phase in 1..=4u8 {
                let progress = if phase == 3 { 0.5 } else { 0.0 };
                let ft = check_invariants(
                    &s,
                    &FaultPlan::crash(node, phase, progress),
                    &format!("m={m} node={node} phase={phase}"),
                );
                cells.push(format!(
                    "{:+.1}%",
                    100.0 * (ft.makespan / ft.base_makespan - 1.0)
                ));
            }
            t.row(cells);
        }
        println!("chain of {} nodes (m = {m}):", m + 1);
        t.print();
        println!();
        mirror.table(&format!("crash_position_m{m}"), &t);
    }

    // ---- Recovery overhead vs crash time (Phase III progress) ----
    let s = chain(4);
    let node = 2;
    println!("recovery overhead vs crash time (m = 4, crash of P{node} in Phase III):");
    let mut t = Table::new(&["progress", "residual", "abs overhead", "rel overhead"]);
    let mut overheads = Vec::new();
    for case in crash_time_grid(node, 11) {
        let ft = check_invariants(&s, &to_plan(&case), &case.label());
        overheads.push(ft.overhead());
        t.row(vec![
            format!("{:.1}", case.progress),
            format!("{:.4}", ft.recovered_load),
            format!("{:.4}", ft.overhead()),
            format!("{:+.1}%", 100.0 * (ft.makespan / ft.base_makespan - 1.0)),
        ]);
    }
    t.print();
    mirror.table("crash_time", &t);
    assert!(
        overheads.windows(2).all(|p| p[0] >= p[1] - 1e-12),
        "later crashes must leave less to recover: {overheads:?}"
    );
    println!("overhead decreases monotonically in crash progress (less residual to re-solve)");
    println!();

    // ---- Full position grid + mixed seeded faults, in parallel ----
    let grid_runs: usize = (2..=7)
        .map(|m| {
            let s = chain(m);
            let grid = crash_position_grid(m, &[0.0, 0.25, 0.5, 0.75, 1.0]);
            let results = par_sweep(0..grid.len() as u64, |i| {
                let case = &grid[i as usize];
                check_invariants(&s, &to_plan(case), &case.label()).overhead()
            });
            assert_eq!(results.len(), grid.len());
            results.len()
        })
        .sum();
    let mixed_runs: usize = (2..=7)
        .map(|m| {
            let s = chain(m);
            let cases = seeded_cases(0xE20, m, 40);
            let results = par_sweep(0..cases.len() as u64, |i| {
                let case = &cases[i as usize];
                check_invariants(&s, &to_plan(case), &case.label());
            });
            results.len()
        })
        .sum();
    println!(
        "invariant sweep: {grid_runs} crash-grid runs + {mixed_runs} mixed fault runs \
         (crashes, stalls, drops, delays, corruption)"
    );
    println!("  every run: load conserved, deterministic, zero fines on honest survivors");
    println!();
    mirror
        .scalar("crash_grid_runs", grid_runs as f64)
        .scalar("mixed_fault_runs", mixed_runs as f64);
    mirror
        .write("results/exp_fault_sweep.json")
        .expect("write JSON mirror");
    obs::flush();
    println!("PASS: E20 chain-splice recovery holds the fault-tolerance invariants");
}
