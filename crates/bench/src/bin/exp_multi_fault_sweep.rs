//! E22 — multi-failure injection: cascading and simultaneous crashes.
//!
//! Sweeps *multi-event* fault plans — simultaneous crash pairs across
//! every phase combination, recovery-during-recovery cascades of
//! increasing depth, and seeded mixed batches — through the
//! fault-tolerant protocol. Every run checks the robustness invariants
//! (unit workload fully recovered, deterministic byte-identical replay,
//! no honest survivor fined), and every plan with at most one halting
//! fault is additionally run through the frozen PR 1 single-failure
//! reference path and must match it byte for byte.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_multi_fault_sweep
//! ```

use bench::{par_sweep, JsonReport, Table};
use protocol::{run_with_faults, run_with_faults_single, FaultKind, FaultPlan, Scenario};
use workloads::{
    cascade_grid, crash_pair_grid, multi_label, seeded_multi_cases, FaultCase, FaultCaseKind,
};

fn to_plan(cases: &[FaultCase]) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for case in cases {
        let kind = match case.kind {
            FaultCaseKind::Crash => FaultKind::Crash {
                phase: case.phase,
                progress: case.progress,
            },
            FaultCaseKind::Stall => FaultKind::Stall {
                progress: case.progress,
            },
            FaultCaseKind::DropMessage => FaultKind::DropMessage { phase: case.phase },
            FaultCaseKind::DelayMessage => FaultKind::DelayMessage {
                phase: case.phase,
                delay: case.delay,
            },
            FaultCaseKind::CorruptMessage => FaultKind::CorruptMessage { phase: case.phase },
        };
        plan = plan.with_event(case.node, kind);
    }
    plan
}

/// The E20 heterogeneous chain with `m` strategic processors, so the two
/// sweeps stress the same workloads.
fn chain(m: usize) -> Scenario {
    let true_rates: Vec<f64> = (0..m).map(|j| 0.6 + 0.8 * ((j * 5 % 4) as f64)).collect();
    let link_rates: Vec<f64> = (0..m).map(|j| 0.1 + 0.12 * ((j * 3 % 3) as f64)).collect();
    Scenario::honest(1.0, true_rates, link_rates)
}

fn check_invariants(s: &Scenario, cases: &[FaultCase], tag: &str) -> protocol::FtRunReport {
    let plan = to_plan(cases);
    let ft = run_with_faults(s, &plan).expect("valid plan");
    assert!(
        ft.load_conserved(1e-9),
        "{tag}: lost load, completed {:?}",
        ft.completed
    );
    assert!(
        ft.makespan >= ft.base_makespan - 1e-12,
        "{tag}: recovery cannot be free"
    );
    for j in 1..=s.num_agents() {
        assert!(ft.fines_paid(j) <= 1e-12, "{tag}: honest P{j} fined");
    }
    let again = run_with_faults(s, &plan).expect("valid plan");
    assert_eq!(ft, again, "{tag}: report not deterministic");
    // Plans that halt at most one node must be byte-identical to the
    // frozen single-failure path they generalize.
    if plan.halting_faults().count() <= 1 {
        let single = run_with_faults_single(s, &plan).expect("valid plan");
        assert_eq!(
            format!("{ft:?}"),
            format!("{single:?}"),
            "{tag}: diverged from the frozen single-failure reference"
        );
    }
    ft
}

fn main() {
    if let Some(path) = obs::init_from_env() {
        eprintln!("tracing to {path} (DLS_TRACE)");
    }
    println!("E22: multi-failure injection — cascading and simultaneous crashes");
    println!();
    let mut mirror = JsonReport::new("exp_multi_fault_sweep");

    // ---- Simultaneous / mixed crash pairs, aggregated per phase pair ----
    const PHASE_PAIRS: [(u8, u8); 5] = [(1, 1), (3, 3), (4, 4), (1, 3), (3, 4)];
    println!("crash pairs: relative makespan overhead (makespan / fault-free − 1)");
    let mut pair_runs = 0usize;
    for m in 3..=6usize {
        let s = chain(m);
        let mut t = Table::new(&["phases", "pairs", "mean overhead", "max overhead"]);
        for &(pa, pb) in &PHASE_PAIRS {
            let grid = crash_pair_grid(m, &[(pa, pb)], 0.5);
            let overheads: Vec<f64> = grid
                .iter()
                .map(|cases| {
                    let tag = format!("m={m} {}", multi_label(cases));
                    let ft = check_invariants(&s, cases, &tag);
                    ft.makespan / ft.base_makespan - 1.0
                })
                .collect();
            pair_runs += grid.len();
            let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
            let max = overheads.iter().cloned().fold(f64::MIN, f64::max);
            t.row(vec![
                format!("ph{pa}+ph{pb}"),
                format!("{}", grid.len()),
                format!("{:+.1}%", 100.0 * mean),
                format!("{:+.1}%", 100.0 * max),
            ]);
        }
        println!("chain of {} nodes (m = {m}):", m + 1);
        t.print();
        println!();
        mirror.table(&format!("crash_pairs_m{m}"), &t);
    }

    // ---- Recovery-during-recovery cascades of increasing depth ----
    let m = 6usize;
    let s = chain(m);
    println!("cascade depth sweep (m = {m}, Phase III crashes stacked from P1):");
    let mut t = Table::new(&[
        "depth",
        "progress",
        "recovered load",
        "splices",
        "rel overhead",
    ]);
    let mut cascade_runs = 0usize;
    let mut prev: Option<(usize, f64)> = None;
    for cases in cascade_grid(m, 4, &[0.25, 0.5, 0.75]) {
        let ft = check_invariants(&s, &cases, &multi_label(&cases));
        cascade_runs += 1;
        let depth = cases.len();
        let overhead = ft.makespan / ft.base_makespan - 1.0;
        t.row(vec![
            format!("{depth}"),
            format!("{:.2}", cases[0].progress),
            format!("{:.4}", ft.recovered_load),
            format!("{}", ft.crashed.len()),
            format!("{:+.1}%", 100.0 * overhead),
        ]);
        if let Some((d, o)) = prev {
            if d == depth {
                assert!(
                    o >= overhead - 1e-12,
                    "later cascades must leave less to recover at depth {depth}"
                );
            }
        }
        prev = Some((depth, overhead));
    }
    t.print();
    mirror.table("cascade_depth", &t);
    println!("overhead decreases in crash progress at every depth (less residual per splice)");
    println!();

    // ---- Seeded mixed multi-failure batches, in parallel ----
    let seeded_runs: usize = (2..=7)
        .map(|m| {
            let s = chain(m);
            let batch = seeded_multi_cases(0xE22, m, 60, 3);
            let results = par_sweep(0..batch.len() as u64, |i| {
                let cases = &batch[i as usize];
                check_invariants(&s, cases, &format!("m={m} {}", multi_label(cases)));
            });
            results.len()
        })
        .sum();
    println!(
        "invariant sweep: {pair_runs} crash-pair runs + {cascade_runs} cascade runs \
         + {seeded_runs} seeded mixed multi-failure runs"
    );
    println!("  every run: load conserved, deterministic, zero fines on honest survivors");
    println!("  every ≤1-halt plan: byte-identical to the frozen single-failure path");
    println!();
    mirror
        .scalar("crash_pair_runs", pair_runs as f64)
        .scalar("cascade_runs", cascade_runs as f64)
        .scalar("seeded_multi_runs", seeded_runs as f64);
    mirror
        .write("results/exp_multi_fault_sweep.json")
        .expect("write JSON mirror");
    obs::flush();
    println!("PASS: E22 composed chain-splice recovery holds the fault-tolerance invariants");
}
