//! E29 — sequencing search over chain & tree service orders, with
//! truthfulness-under-search verification.
//!
//! Three parts, measured over `workloads::order_search_grid`:
//!
//! 1. **Search quality.** The seeded local search
//!    (`dlt::seqsearch::local_search`) is compared per case against the
//!    canonical ascending-link order and — wherever the order space fits
//!    the exhaustive budget — against the exhaustive oracle. Gates: the
//!    searched makespan never exceeds canonical anywhere, and matches the
//!    oracle optimum on **100%** of oracle-checkable cases. The classical
//!    sequencing result predicts zero searched gain (canonical is already
//!    optimal); the table verifies that prediction instead of assuming it.
//! 2. **Truthfulness under frozen searched orders.** Each case's searched
//!    order (found at the true rates) is frozen into the tree mechanism
//!    ([`OrderPolicy::Frozen`]); a misreport sweep over the E13-style
//!    factor grid must find **0 profitable misreports**, and best-response
//!    dynamics from a distorted profile must converge to truth in one
//!    round. Bid-independence is what the proof needs — freezing
//!    preserves it, so strategyproofness survives the search.
//! 3. **The counter-example.** Re-deriving the order from the *bids*
//!    ([`OrderPolicy::BidFastestEquivalentFirst`]) re-opens the E18
//!    manipulation channel: on the anti-correlated star the agent behind
//!    the slowest link profits by overbidding. The run demonstrates a
//!    strictly positive gain and shows the same lie is unprofitable once
//!    the order is frozen.
//!
//! Writes `results/exp_seqsearch.txt` and `.json`. Environment overrides:
//! `DLS_E29_SEED` (grid seed), `DLS_E29_RESTARTS` (local-search restarts),
//! `DLS_E29_MAX_STEPS` (descent cap), `DLS_E29_BUDGET` (exhaustive-oracle
//! evaluation budget).
//!
//! ```sh
//! cargo run --release -p bench --bin exp_seqsearch
//! ```

use bench::{JsonReport, Table};
use dlt::seqsearch::{
    exhaustive_search, local_search, order_space_size, orderable_nodes, LocalSearchConfig,
};
use mechanism::equilibrium::{best_response_dynamics, BidGame};
use mechanism::{Agent, OrderPolicy, TreeMechanism};
use workloads::{misreport_factors, order_search_grid};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    if let Some(path) = obs::init_from_env() {
        eprintln!("tracing to {path} (DLS_TRACE)");
    }
    println!("E29: sequencing search over tree service orders + truthfulness under search");
    println!();
    let mut mirror = JsonReport::new("exp_seqsearch");
    let mut txt = String::new();

    let seed = env_u64("DLS_E29_SEED", 0xE29);
    let budget = env_u64("DLS_E29_BUDGET", 5_040);
    let cfg = LocalSearchConfig {
        restarts: env_u64("DLS_E29_RESTARTS", 3) as usize,
        max_steps: env_u64("DLS_E29_MAX_STEPS", 200) as usize,
        ..Default::default()
    };
    let grid = order_search_grid(seed);

    // ── 1. Search quality: canonical vs local search vs oracle ─────────
    let mut t = Table::new(&[
        "case",
        "agents",
        "orderable",
        "order space",
        "canonical",
        "searched",
        "gain",
        "evals",
        "oracle",
    ]);
    let mut oracle_checked = 0usize;
    let mut oracle_matched = 0usize;
    let searched: Vec<_> = grid
        .iter()
        .map(|case| {
            let out = local_search(&case.shape, &cfg);
            assert!(
                out.best_makespan <= out.canonical_makespan,
                "{}: search lost to canonical",
                case.label
            );
            assert!(out.best_order.is_valid(&case.shape), "{}", case.label);
            let space = order_space_size(&case.shape);
            let oracle_cell = match exhaustive_search(&case.shape, budget) {
                Ok(oracle) => {
                    oracle_checked += 1;
                    let hit = (out.best_makespan - oracle.best_makespan).abs() < 1e-12;
                    if hit {
                        oracle_matched += 1;
                    }
                    assert!(hit, "{}: local search missed the optimum", case.label);
                    format!("opt ({} evals)", oracle.evaluated)
                }
                Err(e) => format!("skipped ({} > {})", e.required, e.budget),
            };
            let gain = 1.0 - out.best_makespan / out.canonical_makespan;
            t.row(vec![
                case.label.clone(),
                case.num_agents().to_string(),
                orderable_nodes(&case.shape).to_string(),
                space.map_or("overflow".into(), |s| s.to_string()),
                format!("{:.6}", out.canonical_makespan),
                format!("{:.6}", out.best_makespan),
                format!("{:.2}%", gain * 100.0),
                out.evaluated.to_string(),
                oracle_cell,
            ]);
            out
        })
        .collect();
    t.print();
    txt.push_str(&t.render());
    assert_eq!(
        oracle_matched, oracle_checked,
        "local search must match the exhaustive optimum on every checkable case"
    );
    assert!(oracle_checked > 0, "grid must carry oracle-checkable cases");
    let line = format!(
        "search quality: {oracle_matched}/{oracle_checked} oracle-checkable cases at the exhaustive \
         optimum; searched ≤ canonical on {}/{} cases (classical prediction: gain 0 everywhere)",
        grid.len(),
        grid.len()
    );
    println!("{line}");
    txt.push('\n');
    txt.push_str(&line);
    txt.push('\n');
    println!();

    // ── 2. Truthfulness sweep under frozen searched orders ──────────────
    let factors = misreport_factors();
    let mut t2 = Table::new(&[
        "case",
        "sweeps",
        "profitable misreports",
        "BR rounds to truth",
    ]);
    let mut total_sweeps = 0usize;
    let mut total_profitable = 0usize;
    let mut br_grid = factors.clone();
    br_grid.push(1.0);
    for (case, out) in grid.iter().zip(&searched) {
        let mech = TreeMechanism::with_order(
            case.shape.clone(),
            OrderPolicy::Frozen(out.best_order.clone()),
        );
        let agents: Vec<Agent> = case.true_rates.iter().map(|&r| Agent::new(r)).collect();
        let truthful = case.true_rates.clone();
        let mut sweeps = 0usize;
        let mut profitable = 0usize;
        for j in 1..=agents.len() {
            let honest = mech.utility(&agents, &truthful, j);
            for &f in &factors {
                let mut bids = truthful.clone();
                bids[j - 1] = case.true_rates[j - 1] * f;
                if mech.utility(&agents, &bids, j) > honest + 1e-9 {
                    profitable += 1;
                }
                sweeps += 1;
            }
        }
        let initial: Vec<f64> = case
            .true_rates
            .iter()
            .enumerate()
            .map(|(i, &r)| if i % 2 == 0 { r * 2.0 } else { r * 0.5 })
            .collect();
        let traj = best_response_dynamics(&mech, &agents, &initial, &br_grid, 10);
        assert!(
            traj.converged && traj.distance_from_truth(&agents) < 1e-9,
            "{}: dynamics failed to reach truth",
            case.label
        );
        let rounds = traj.profiles.len() - 1;
        t2.row(vec![
            case.label.clone(),
            sweeps.to_string(),
            profitable.to_string(),
            rounds.to_string(),
        ]);
        total_sweeps += sweeps;
        total_profitable += profitable;
    }
    t2.print();
    txt.push('\n');
    txt.push_str(&t2.render());
    assert_eq!(
        total_profitable, 0,
        "a frozen (bid-independent) searched order must stay strategyproof"
    );
    let line = format!(
        "truthfulness: {total_profitable}/{total_sweeps} profitable misreports under frozen \
         searched orders; best-response dynamics reached truth on every case"
    );
    println!("{line}");
    txt.push('\n');
    txt.push_str(&line);
    txt.push('\n');
    println!();

    // ── 3. Bid-dependent order: the manipulation channel, demonstrated ──
    let case = grid
        .iter()
        .find(|c| c.label == "anti/m3")
        .expect("grid carries the anti-correlated star");
    let bid_dep =
        TreeMechanism::with_order(case.shape.clone(), OrderPolicy::BidFastestEquivalentFirst);
    let frozen = TreeMechanism::with_order(
        case.shape.clone(),
        OrderPolicy::Frozen(local_search(&case.shape, &cfg).best_order),
    );
    let agents: Vec<Agent> = case.true_rates.iter().map(|&r| Agent::new(r)).collect();
    let truthful = case.true_rates.clone();
    let mut t3 = Table::new(&["agent", "factor", "gain (bid-dep order)", "gain (frozen)"]);
    let mut best_gain = f64::NEG_INFINITY;
    for j in 1..=agents.len() {
        let honest_dep = bid_dep.utility(&agents, &truthful, j);
        let honest_frz = frozen.utility(&agents, &truthful, j);
        for &f in &factors {
            let mut bids = truthful.clone();
            bids[j - 1] = case.true_rates[j - 1] * f;
            let gain_dep = bid_dep.utility(&agents, &bids, j) - honest_dep;
            let gain_frz = frozen.utility(&agents, &bids, j) - honest_frz;
            assert!(gain_frz <= 1e-9, "frozen order leaked a profitable lie");
            if gain_dep > 1e-9 {
                t3.row(vec![
                    j.to_string(),
                    format!("{f}"),
                    format!("{gain_dep:+.6}"),
                    format!("{gain_frz:+.6}"),
                ]);
            }
            best_gain = best_gain.max(gain_dep);
        }
    }
    t3.print();
    txt.push('\n');
    txt.push_str(&t3.render());
    assert!(
        best_gain > 1e-4,
        "the bid-dependent order should be manipulable on anti/m3 (best gain {best_gain})"
    );
    let line = format!(
        "counter-example: bid-dependent order is manipulable on {} (best overbid gain \
         {best_gain:.6}); the identical lies are unprofitable under the frozen order",
        case.label
    );
    println!("{line}");
    txt.push('\n');
    txt.push_str(&line);
    txt.push('\n');
    println!();

    mirror
        .table("search_quality", &t)
        .table("truthfulness", &t2)
        .table("bid_dependent_gains", &t3)
        .scalar("grid_cases", grid.len() as f64)
        .scalar("oracle_checked", oracle_checked as f64)
        .scalar("oracle_matched", oracle_matched as f64)
        .scalar("misreport_sweeps", total_sweeps as f64)
        .scalar("profitable_misreports_frozen", total_profitable as f64)
        .scalar("best_gain_bid_dependent", best_gain)
        .scalar("search_restarts", cfg.restarts as f64);
    mirror
        .write("results/exp_seqsearch.json")
        .expect("write JSON mirror");
    std::fs::write("results/exp_seqsearch.txt", &txt).expect("write E29 txt");
    obs::flush();
    println!(
        "PASS: E29 — searched orders match the exhaustive optimum, frozen searched orders stay \
         strategyproof, bid-dependent orders are manipulable"
    );
}
