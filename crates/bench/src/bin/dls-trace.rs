//! `dls-trace` — summarize a JSONL observability trace.
//!
//! Reads a trace produced by `obs::JsonlSink` (one record per line, short
//! keys: `k` kind, `n` name, `id`/`p` span ids, `vt` virtual time, `wus`
//! wall microseconds, `v` value, `f` fields) and prints:
//!
//! * per-span wall-clock latency percentiles (start/end pairs matched by id),
//! * counter totals with per-`phase` and per-`node` breakdowns (protocol
//!   messages, verification checks, audits, complaints),
//! * histogram summaries (makespans, timeout waits, fines levied),
//! * the fault-recovery breakdown (detection timeouts, waits, splices,
//!   residual re-solves).
//!
//! ```sh
//! DLS_TRACE=trace.jsonl cargo run --release -p bench --bin exp_fault_sweep
//! cargo run --release -p bench --bin dls-trace -- trace.jsonl
//! ```

use bench::Table;
use minijson::Value;
use obs::Summary;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Aggregated counter: total delta plus per-field-value breakdowns for the
/// `phase` and `node` fields the protocol instrumentation uses.
#[derive(Default)]
struct CounterAgg {
    total: f64,
    by_phase: BTreeMap<String, f64>,
    by_node: BTreeMap<String, f64>,
}

#[derive(Default)]
struct TraceSummary {
    records: usize,
    by_kind: BTreeMap<String, usize>,
    /// Open spans: id → (name, start wall µs).
    open_spans: BTreeMap<u64, (String, u64)>,
    /// Closed spans: name → wall-clock durations in µs.
    span_durations: BTreeMap<String, Vec<f64>>,
    unmatched_span_ends: usize,
    counters: BTreeMap<String, CounterAgg>,
    histograms: BTreeMap<String, Vec<f64>>,
    /// Event name → (count, min vt, max vt); vt bounds are NaN when no
    /// event of that name carried a virtual time.
    events: BTreeMap<String, (usize, f64, f64)>,
}

/// Render a field value the way the breakdown tables key it.
fn field_repr(v: &Value) -> String {
    match v {
        Value::Number(x) if x.fract() == 0.0 && x.abs() < 2f64.powi(53) => {
            format!("{}", *x as i64)
        }
        Value::Number(x) => format!("{x}"),
        Value::String(s) => s.clone(),
        Value::Bool(b) => format!("{b}"),
        other => other.to_json(),
    }
}

fn ingest(summary: &mut TraceSummary, line_no: usize, line: &str) -> Result<(), String> {
    let v = Value::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
    let kind = v
        .get("k")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing record kind `k`"))?
        .to_string();
    let name = v
        .get("n")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing record name `n`"))?
        .to_string();
    let wus = v.get("wus").and_then(Value::as_u64).unwrap_or(0);
    let value = v.get("v").and_then(Value::as_f64).unwrap_or(0.0);
    let vt = v.get("vt").and_then(Value::as_f64);

    summary.records += 1;
    *summary.by_kind.entry(kind.clone()).or_insert(0) += 1;

    match kind.as_str() {
        "ss" => {
            if let Some(id) = v.get("id").and_then(Value::as_u64) {
                summary.open_spans.insert(id, (name, wus));
            }
        }
        "se" => {
            let opened = v
                .get("id")
                .and_then(Value::as_u64)
                .and_then(|id| summary.open_spans.remove(&id));
            match opened {
                Some((open_name, start)) => summary
                    .span_durations
                    .entry(open_name)
                    .or_default()
                    .push(wus.saturating_sub(start) as f64),
                None => summary.unmatched_span_ends += 1,
            }
        }
        "ct" => {
            let agg = summary.counters.entry(name).or_default();
            agg.total += value;
            if let Some(fields) = v.get("f") {
                if let Some(p) = fields.get("phase") {
                    *agg.by_phase.entry(field_repr(p)).or_insert(0.0) += value;
                }
                if let Some(n) = fields.get("node") {
                    *agg.by_node.entry(field_repr(n)).or_insert(0.0) += value;
                }
            }
        }
        "hg" => summary.histograms.entry(name).or_default().push(value),
        "ev" => {
            let e = summary
                .events
                .entry(name)
                .or_insert((0, f64::NAN, f64::NAN));
            e.0 += 1;
            if let Some(t) = vt {
                e.1 = if e.1.is_nan() { t } else { e.1.min(t) };
                e.2 = if e.2.is_nan() { t } else { e.2.max(t) };
            }
        }
        other => return Err(format!("line {line_no}: unknown record kind {other:?}")),
    }
    Ok(())
}

fn micros(x: f64) -> String {
    format!("{x:.0}")
}

fn breakdown(label: &str, map: &BTreeMap<String, f64>) -> String {
    let parts: Vec<String> = map.iter().map(|(k, v)| format!("{label}{k}={v}")).collect();
    parts.join("  ")
}

fn print_summary(summary: &TraceSummary) {
    let kinds: Vec<String> = summary
        .by_kind
        .iter()
        .map(|(k, n)| format!("{k}:{n}"))
        .collect();
    println!(
        "{} records ({}), {} span(s) left open, {} unmatched span end(s)",
        summary.records,
        kinds.join(" "),
        summary.open_spans.len(),
        summary.unmatched_span_ends,
    );
    println!();

    if !summary.span_durations.is_empty() {
        println!("span latency (wall-clock µs):");
        let mut t = Table::new(&["span", "n", "p50", "p90", "p99", "max"]);
        for (name, durations) in &summary.span_durations {
            let s = Summary::of(durations);
            t.row(vec![
                name.clone(),
                s.n.to_string(),
                micros(s.p50),
                micros(s.p90),
                micros(s.p99),
                micros(s.max),
            ]);
        }
        t.print();
        println!();
    }

    if !summary.counters.is_empty() {
        println!("counters:");
        let mut t = Table::new(&["counter", "total", "breakdown"]);
        for (name, agg) in &summary.counters {
            let mut parts = Vec::new();
            if !agg.by_phase.is_empty() {
                parts.push(breakdown("phase ", &agg.by_phase));
            }
            if !agg.by_node.is_empty() {
                parts.push(breakdown("node ", &agg.by_node));
            }
            t.row(vec![
                name.clone(),
                format!("{}", agg.total),
                parts.join(" | "),
            ]);
        }
        t.print();
        println!();
    }

    if !summary.histograms.is_empty() {
        println!("histograms:");
        let mut t = Table::new(&["histogram", "n", "min", "p50", "p90", "max", "mean"]);
        for (name, samples) in &summary.histograms {
            let s = Summary::of(samples);
            t.row(vec![
                name.clone(),
                s.n.to_string(),
                format!("{:.4}", s.min),
                format!("{:.4}", s.p50),
                format!("{:.4}", s.p90),
                format!("{:.4}", s.max),
                format!("{:.4}", s.mean),
            ]);
        }
        t.print();
        println!();
    }

    if !summary.events.is_empty() {
        println!("events:");
        let mut t = Table::new(&["event", "count", "vt range"]);
        for (name, (count, lo, hi)) in &summary.events {
            let range = if lo.is_nan() {
                "-".to_string()
            } else {
                format!("[{lo:.4}, {hi:.4}]")
            };
            t.row(vec![name.clone(), count.to_string(), range]);
        }
        t.print();
        println!();
    }

    // Fault-recovery breakdown, when the trace contains any of it.
    let timeouts = summary
        .counters
        .get("protocol.ft.detection_timeouts")
        .map(|a| a.total)
        .unwrap_or(0.0);
    let splices = summary
        .events
        .get("protocol.ft.splice")
        .map(|e| e.0)
        .unwrap_or(0);
    let resolves = summary
        .events
        .get("protocol.ft.residual_resolve")
        .map(|e| e.0)
        .unwrap_or(0);
    if timeouts > 0.0 || splices > 0 || resolves > 0 {
        println!("fault recovery:");
        println!("  detection timeouts: {timeouts}");
        println!("  chain splices:      {splices}");
        println!("  residual re-solves: {resolves}");
        if let Some(waits) = summary.histograms.get("protocol.ft.timeout_wait") {
            let s = Summary::of(waits);
            println!(
                "  timeout wait (virtual time): n={} p50={:.4} max={:.4}",
                s.n, s.p50, s.max
            );
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let path = match args.get(1) {
        Some(p) if p != "-h" && p != "--help" => p,
        _ => {
            eprintln!("usage: dls-trace <trace.jsonl>");
            eprintln!("summarize a JSONL trace written by obs::JsonlSink (DLS_TRACE=...)");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dls-trace: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut summary = TraceSummary::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = ingest(&mut summary, i + 1, line) {
            eprintln!("dls-trace: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("trace: {path}");
    print_summary(&summary);
    ExitCode::SUCCESS
}
