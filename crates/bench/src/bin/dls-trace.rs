//! `dls-trace` — summarize a JSONL observability trace, or join a
//! fleet's traces by request trace id.
//!
//! Reads traces produced by `obs::JsonlSink` (one record per line, short
//! keys: `k` kind, `n` name, `id`/`p` span ids, `vt` virtual time, `wus`
//! wall microseconds, `v` value, `f` fields) and prints:
//!
//! * per-span wall-clock latency percentiles (start/end pairs matched by id),
//! * counter totals with per-`phase` and per-`node` breakdowns (protocol
//!   messages, verification checks, audits, complaints),
//! * histogram summaries (makespans, timeout waits, fines levied),
//! * the fault-recovery breakdown (detection timeouts, waits, splices,
//!   residual re-solves).
//!
//! Corrupted or truncated lines are counted and skipped, never fatal: a
//! trace cut off mid-write (e.g. by a SIGKILL chaos drill) still
//! summarizes.
//!
//! ## `--fleet` mode
//!
//! With `--fleet`, every argument is a JSONL file (router + shards +
//! clients — or one file when an in-process fleet shares a sink) and the
//! records are joined by the `trace` field the router splices into
//! request envelopes (DESIGN.md §12). On top of the per-file summary it
//! reconstructs:
//!
//! * **conservation** — per trace id, shard-side `svc.receive` events
//!   must equal `router.forward_attempt` minus `router.attempt_failed`;
//!   any imbalance (a lost or double-counted request) is a violation and
//!   the exit code is non-zero,
//! * **failover chains** — the slot sequence each multi-attempt trace
//!   visited, with the failure reason per abandoned hop,
//! * **per-hop latency** — percentiles for traced spans only
//!   (`router.request`, `svc.execute`, `client.call`),
//! * **lifecycle timeline** — supervisor kills/restarts and client
//!   breaker transitions in wall-clock order.
//!
//! ```sh
//! DLS_TRACE=trace.jsonl cargo run --release -p bench --bin exp_fault_sweep
//! cargo run --release -p bench --bin dls-trace -- trace.jsonl
//! cargo run --release -p bench --bin dls-trace -- --fleet router.jsonl shard0.jsonl
//! ```

use bench::Table;
use minijson::Value;
use obs::Summary;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Aggregated counter: total delta plus per-field-value breakdowns for the
/// `phase` and `node` fields the protocol instrumentation uses.
#[derive(Default)]
struct CounterAgg {
    total: f64,
    by_phase: BTreeMap<String, f64>,
    by_node: BTreeMap<String, f64>,
}

/// Per-job lifecycle ledger joined on the `job` field the `svc::jobs`
/// events carry (`job.submit` / `job.installment` / `job.done` /
/// `job.cancelled` / `job.rejected`). The audit: every submitted job
/// reaches exactly one terminal state, so across the fleet
/// `submitted == done + cancelled + rejected`.
#[derive(Default)]
struct JobLedgerEntry {
    submits: u64,
    installments: u64,
    done: u64,
    cancelled: u64,
    rejected: u64,
}

impl JobLedgerEntry {
    fn terminals(&self) -> u64 {
        self.done + self.cancelled + self.rejected
    }
}

/// Per-trace-id conservation ledger (see `svc::router::Forwarder::forward`).
#[derive(Default)]
struct TraceLedger {
    forward_attempts: u64,
    attempt_failed: u64,
    receives: u64,
    /// Hops in arrival order: (wall µs, event name, slot, reason).
    hops: Vec<(u64, &'static str, Option<u64>, String)>,
}

#[derive(Default)]
struct TraceSummary {
    records: usize,
    corrupt_lines: usize,
    /// First few corruption descriptions, for the report.
    corrupt_examples: Vec<String>,
    by_kind: BTreeMap<String, usize>,
    /// Open spans: (file, id) → (name, start wall µs, trace id).
    open_spans: BTreeMap<(usize, u64), (String, u64, Option<u64>)>,
    /// Closed spans: name → wall-clock durations in µs.
    span_durations: BTreeMap<String, Vec<f64>>,
    /// Closed spans that carried a trace id: name → durations in µs.
    traced_span_durations: BTreeMap<String, Vec<f64>>,
    unmatched_span_ends: usize,
    counters: BTreeMap<String, CounterAgg>,
    histograms: BTreeMap<String, Vec<f64>>,
    /// Event name → (count, min vt, max vt); vt bounds are NaN when no
    /// event of that name carried a virtual time.
    events: BTreeMap<String, (usize, f64, f64)>,
    /// Fleet join state: trace id → ledger.
    ledgers: BTreeMap<u64, TraceLedger>,
    /// Job lifecycle join state: (file, job id) → ledger. A job's whole
    /// lifecycle is emitted by the shard that owns its chain queue, so
    /// one file holds all of its events; the file index keeps ids from
    /// separate shard processes apart.
    job_ledgers: BTreeMap<(usize, u64), JobLedgerEntry>,
    /// Lifecycle timeline: (wall µs, description).
    timeline: Vec<(u64, String)>,
}

/// Render a field value the way the breakdown tables key it.
fn field_repr(v: &Value) -> String {
    match v {
        Value::Number(x) if x.fract() == 0.0 && x.abs() < 2f64.powi(53) => {
            format!("{}", *x as i64)
        }
        Value::Number(x) => format!("{x}"),
        Value::String(s) => s.clone(),
        Value::Bool(b) => format!("{b}"),
        other => other.to_json(),
    }
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    v.get("f").and_then(|f| f.get(key)).and_then(Value::as_u64)
}

fn field_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    v.get("f").and_then(|f| f.get(key)).and_then(Value::as_str)
}

fn ingest(
    summary: &mut TraceSummary,
    file_idx: usize,
    line_no: usize,
    line: &str,
) -> Result<(), String> {
    let v = Value::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
    let kind = v
        .get("k")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing record kind `k`"))?
        .to_string();
    let name = v
        .get("n")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing record name `n`"))?
        .to_string();
    if !matches!(kind.as_str(), "ss" | "se" | "ct" | "hg" | "ev") {
        return Err(format!("line {line_no}: unknown record kind {kind:?}"));
    }
    let wus = v.get("wus").and_then(Value::as_u64).unwrap_or(0);
    let value = v.get("v").and_then(Value::as_f64).unwrap_or(0.0);
    let vt = v.get("vt").and_then(Value::as_f64);
    let trace = field_u64(&v, "trace");

    summary.records += 1;
    *summary.by_kind.entry(kind.clone()).or_insert(0) += 1;

    match kind.as_str() {
        "ss" => {
            if let Some(id) = v.get("id").and_then(Value::as_u64) {
                summary
                    .open_spans
                    .insert((file_idx, id), (name, wus, trace));
            }
        }
        "se" => {
            let opened = v
                .get("id")
                .and_then(Value::as_u64)
                .and_then(|id| summary.open_spans.remove(&(file_idx, id)));
            match opened {
                Some((open_name, start, open_trace)) => {
                    let d = wus.saturating_sub(start) as f64;
                    if open_trace.is_some() {
                        summary
                            .traced_span_durations
                            .entry(open_name.clone())
                            .or_default()
                            .push(d);
                    }
                    summary.span_durations.entry(open_name).or_default().push(d);
                }
                None => summary.unmatched_span_ends += 1,
            }
        }
        "ct" => {
            if name == "client.breaker.open" {
                summary.timeline.push((wus, "client breaker OPEN".into()));
            }
            let agg = summary.counters.entry(name).or_default();
            agg.total += value;
            if let Some(fields) = v.get("f") {
                if let Some(p) = fields.get("phase") {
                    *agg.by_phase.entry(field_repr(p)).or_insert(0.0) += value;
                }
                if let Some(n) = fields.get("node") {
                    *agg.by_node.entry(field_repr(n)).or_insert(0.0) += value;
                }
            }
        }
        "hg" => summary.histograms.entry(name).or_default().push(value),
        "ev" => {
            match name.as_str() {
                "router.forward_attempt" => {
                    if let Some(t) = trace {
                        let l = summary.ledgers.entry(t).or_default();
                        l.forward_attempts += 1;
                        l.hops
                            .push((wus, "attempt", field_u64(&v, "slot"), String::new()));
                    }
                }
                "router.attempt_failed" => {
                    if let Some(t) = trace {
                        let l = summary.ledgers.entry(t).or_default();
                        l.attempt_failed += 1;
                        let reason = field_str(&v, "reason").unwrap_or("?").to_string();
                        l.hops.push((wus, "failed", field_u64(&v, "slot"), reason));
                    }
                }
                "svc.receive" => {
                    if let Some(t) = trace {
                        let l = summary.ledgers.entry(t).or_default();
                        l.receives += 1;
                        l.hops.push((wus, "receive", None, String::new()));
                    }
                }
                "supervisor.kill" => {
                    let slot = field_u64(&v, "slot").unwrap_or(u64::MAX);
                    summary.timeline.push((wus, format!("kill slot {slot}")));
                }
                "supervisor.shard_died" => {
                    let slot = field_u64(&v, "slot").unwrap_or(u64::MAX);
                    summary
                        .timeline
                        .push((wus, format!("shard DIED slot {slot}")));
                }
                "supervisor.shard_restarted" => {
                    let slot = field_u64(&v, "slot").unwrap_or(u64::MAX);
                    summary
                        .timeline
                        .push((wus, format!("shard RESTARTED slot {slot}")));
                }
                "client.breaker.close" => {
                    summary.timeline.push((wus, "client breaker CLOSE".into()));
                }
                "job.submit" | "job.installment" | "job.done" | "job.cancelled"
                | "job.rejected" => {
                    if let Some(job) = field_u64(&v, "job") {
                        let l = summary.job_ledgers.entry((file_idx, job)).or_default();
                        match name.as_str() {
                            "job.submit" => l.submits += 1,
                            "job.installment" => l.installments += 1,
                            "job.done" => l.done += 1,
                            "job.cancelled" => l.cancelled += 1,
                            _ => l.rejected += 1,
                        }
                    }
                }
                _ => {}
            }
            let e = summary
                .events
                .entry(name)
                .or_insert((0, f64::NAN, f64::NAN));
            e.0 += 1;
            if let Some(t) = vt {
                e.1 = if e.1.is_nan() { t } else { e.1.min(t) };
                e.2 = if e.2.is_nan() { t } else { e.2.max(t) };
            }
        }
        _ => unreachable!("kind validated above"),
    }
    Ok(())
}

fn micros(x: f64) -> String {
    format!("{x:.0}")
}

fn breakdown(label: &str, map: &BTreeMap<String, f64>) -> String {
    let parts: Vec<String> = map.iter().map(|(k, v)| format!("{label}{k}={v}")).collect();
    parts.join("  ")
}

fn span_table(title: &str, durations: &BTreeMap<String, Vec<f64>>) {
    println!("{title}");
    let mut t = Table::new(&["span", "n", "p50", "p90", "p99", "max"]);
    for (name, durations) in durations {
        let s = Summary::of(durations);
        t.row(vec![
            name.clone(),
            s.n.to_string(),
            micros(s.p50),
            micros(s.p90),
            micros(s.p99),
            micros(s.max),
        ]);
    }
    t.print();
    println!();
}

fn print_summary(summary: &TraceSummary) {
    let kinds: Vec<String> = summary
        .by_kind
        .iter()
        .map(|(k, n)| format!("{k}:{n}"))
        .collect();
    println!(
        "{} records ({}), {} span(s) left open, {} unmatched span end(s), {} corrupt line(s) skipped",
        summary.records,
        kinds.join(" "),
        summary.open_spans.len(),
        summary.unmatched_span_ends,
        summary.corrupt_lines,
    );
    for e in &summary.corrupt_examples {
        println!("  corrupt: {e}");
    }
    println!();

    if !summary.span_durations.is_empty() {
        span_table("span latency (wall-clock µs):", &summary.span_durations);
    }

    if !summary.counters.is_empty() {
        println!("counters:");
        let mut t = Table::new(&["counter", "total", "breakdown"]);
        for (name, agg) in &summary.counters {
            let mut parts = Vec::new();
            if !agg.by_phase.is_empty() {
                parts.push(breakdown("phase ", &agg.by_phase));
            }
            if !agg.by_node.is_empty() {
                parts.push(breakdown("node ", &agg.by_node));
            }
            t.row(vec![
                name.clone(),
                format!("{}", agg.total),
                parts.join(" | "),
            ]);
        }
        t.print();
        println!();
    }

    if !summary.histograms.is_empty() {
        println!("histograms:");
        let mut t = Table::new(&["histogram", "n", "min", "p50", "p90", "max", "mean"]);
        for (name, samples) in &summary.histograms {
            let s = Summary::of(samples);
            t.row(vec![
                name.clone(),
                s.n.to_string(),
                format!("{:.4}", s.min),
                format!("{:.4}", s.p50),
                format!("{:.4}", s.p90),
                format!("{:.4}", s.max),
                format!("{:.4}", s.mean),
            ]);
        }
        t.print();
        println!();
    }

    if !summary.events.is_empty() {
        println!("events:");
        let mut t = Table::new(&["event", "count", "vt range"]);
        for (name, (count, lo, hi)) in &summary.events {
            let range = if lo.is_nan() {
                "-".to_string()
            } else {
                format!("[{lo:.4}, {hi:.4}]")
            };
            t.row(vec![name.clone(), count.to_string(), range]);
        }
        t.print();
        println!();
    }

    // Fault-recovery breakdown, when the trace contains any of it.
    let timeouts = summary
        .counters
        .get("protocol.ft.detection_timeouts")
        .map(|a| a.total)
        .unwrap_or(0.0);
    let splices = summary
        .events
        .get("protocol.ft.splice")
        .map(|e| e.0)
        .unwrap_or(0);
    let resolves = summary
        .events
        .get("protocol.ft.residual_resolve")
        .map(|e| e.0)
        .unwrap_or(0);
    if timeouts > 0.0 || splices > 0 || resolves > 0 {
        println!("fault recovery:");
        println!("  detection timeouts: {timeouts}");
        println!("  chain splices:      {splices}");
        println!("  residual re-solves: {resolves}");
        if let Some(waits) = summary.histograms.get("protocol.ft.timeout_wait") {
            let s = Summary::of(waits);
            println!(
                "  timeout wait (virtual time): n={} p50={:.4} max={:.4}",
                s.n, s.p50, s.max
            );
        }
    }
}

/// The fleet join: conservation, failover chains, per-hop latency, and
/// the lifecycle timeline. Returns the number of conservation violations.
fn print_fleet(summary: &mut TraceSummary) -> usize {
    println!("== fleet join ==");
    println!();

    // Conservation: receives == forward_attempts - attempt_failed, per
    // trace id. Attempts the shard answered (even with `draining`) framed
    // the line, so they produced a receive; only IO-failed and
    // connection-limited attempts are excused.
    let mut violations = 0usize;
    let mut multi_hop = 0usize;
    for (t, l) in &summary.ledgers {
        let expected = l.forward_attempts.saturating_sub(l.attempt_failed);
        if l.receives != expected {
            violations += 1;
            println!(
                "CONSERVATION VIOLATION trace {t}: attempts={} failed={} receives={} (expected {})",
                l.forward_attempts, l.attempt_failed, l.receives, expected
            );
        }
        if l.forward_attempts > 1 {
            multi_hop += 1;
        }
    }
    println!(
        "conservation: {} trace(s), {} with failover, {} violation(s)",
        summary.ledgers.len(),
        multi_hop,
        violations
    );
    println!();

    // Failover chains: the slot sequence each multi-attempt trace walked.
    let chains: Vec<(u64, String)> = summary
        .ledgers
        .iter()
        .filter(|(_, l)| l.forward_attempts > 1)
        .map(|(t, l)| {
            let mut hops = l.hops.clone();
            hops.sort_by_key(|h| h.0);
            let parts: Vec<String> = hops
                .iter()
                .map(|(_, what, slot, reason)| match (what, slot) {
                    (&"attempt", Some(s)) => format!("slot{s}"),
                    (&"failed", Some(s)) => format!("slot{s}!{reason}"),
                    (&"receive", _) => "recv".into(),
                    (what, _) => (*what).to_string(),
                })
                .collect();
            (*t, parts.join(" -> "))
        })
        .collect();
    if !chains.is_empty() {
        println!("failover chains ({}):", chains.len());
        for (t, chain) in chains.iter().take(20) {
            println!("  trace {t}: {chain}");
        }
        if chains.len() > 20 {
            println!("  ... and {} more", chains.len() - 20);
        }
        println!();
    }

    // Jobs audit: every submitted job reaches exactly one terminal state,
    // fleet-wide `submitted == done + cancelled + rejected`.
    if !summary.job_ledgers.is_empty() {
        let (mut submits, mut done, mut cancelled, mut rejected, mut installments) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for ((file, job), l) in &summary.job_ledgers {
            submits += l.submits;
            done += l.done;
            cancelled += l.cancelled;
            rejected += l.rejected;
            installments += l.installments;
            if l.submits != 1 || l.terminals() != 1 {
                violations += 1;
                println!(
                    "JOB LIFECYCLE VIOLATION file {file} job {job}: submits={} done={} cancelled={} rejected={}",
                    l.submits, l.done, l.cancelled, l.rejected
                );
            }
        }
        println!(
            "jobs audit: {} job(s), {} installment event(s) — submitted {} == done {} + cancelled {} + rejected {}{}",
            summary.job_ledgers.len(),
            installments,
            submits,
            done,
            cancelled,
            rejected,
            if submits == done + cancelled + rejected {
                " ✓"
            } else {
                " VIOLATED"
            }
        );
        if submits != done + cancelled + rejected {
            violations += 1;
        }
        println!();
    }

    if !summary.traced_span_durations.is_empty() {
        span_table(
            "per-hop latency, traced requests only (wall-clock µs):",
            &summary.traced_span_durations,
        );
    }

    summary.timeline.sort_by_key(|e| e.0);
    if !summary.timeline.is_empty() {
        println!("lifecycle timeline (wall µs):");
        for (wus, what) in &summary.timeline {
            println!("  {wus:>12}  {what}");
        }
        println!();
    }

    violations
}

fn usage() {
    eprintln!("usage: dls-trace [--fleet] <trace.jsonl> [more.jsonl ...]");
    eprintln!();
    eprintln!("summarize JSONL traces written by obs::JsonlSink. Produce one by");
    eprintln!("setting DLS_TRACE=path.jsonl on any instrumented binary (dls-serve,");
    eprintln!("the bench experiments); each process appends records to its file.");
    eprintln!();
    eprintln!("  --fleet   join several files (router + shards + clients) by the");
    eprintln!("            per-request trace id: conservation check, failover");
    eprintln!("            chains, per-hop latency, restart/breaker timeline.");
    eprintln!("            Exits non-zero on any conservation violation.");
    eprintln!();
    eprintln!("corrupted or truncated lines are counted and skipped, never fatal.");
}

fn main() -> ExitCode {
    let mut fleet = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--fleet" => fleet = true,
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        usage();
        return ExitCode::from(2);
    }

    let mut summary = TraceSummary::default();
    for (file_idx, path) in paths.iter().enumerate() {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dls-trace: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if let Err(e) = ingest(&mut summary, file_idx, i + 1, line) {
                summary.corrupt_lines += 1;
                if summary.corrupt_examples.len() < 3 {
                    summary.corrupt_examples.push(format!("{path}: {e}"));
                }
            }
        }
    }

    println!(
        "trace: {}{}",
        paths.join(" "),
        if fleet { " (fleet join)" } else { "" }
    );
    print_summary(&summary);
    if fleet {
        let violations = print_fleet(&mut summary);
        if violations > 0 {
            eprintln!("dls-trace: {violations} conservation violation(s)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
