//! E24 — tree-network fault injection: subtree re-attachment recovery.
//!
//! Sweeps the shared `workloads::tree_shape_grid` population (degenerate
//! paths, stars, a balanced binary tree, seeded random trees) × fault
//! grids — every crash position and phase, plus seeded mixed
//! multi-failure batches — through the fault-tolerant tree runner. Every
//! run checks the robustness invariants (unit workload fully recovered,
//! deterministic byte-identical replay, no honest survivor fined), and
//! every degenerate-path run is additionally executed on the frozen
//! linear fault engine and must match it byte for byte — the tree
//! engine's chain-delegation contract, at experiment scale.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_tree_fault_sweep
//! ```

use bench::{par_sweep, JsonReport, Table};
use dlt::model::TreeNode;
use protocol::{
    run_tree_with_faults, run_with_faults, FaultKind, FaultPlan, FtTreeRunReport, Scenario,
    TreeScenario,
};
use workloads::{
    crash_position_grid, multi_label, seeded_multi_cases, tree_shape_grid, FaultCase,
    FaultCaseKind, TreeFaultCase,
};

fn to_plan(cases: &[FaultCase]) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for case in cases {
        let kind = match case.kind {
            FaultCaseKind::Crash => FaultKind::Crash {
                phase: case.phase,
                progress: case.progress,
            },
            FaultCaseKind::Stall => FaultKind::Stall {
                progress: case.progress,
            },
            FaultCaseKind::DropMessage => FaultKind::DropMessage { phase: case.phase },
            FaultCaseKind::DelayMessage => FaultKind::DelayMessage {
                phase: case.phase,
                delay: case.delay,
            },
            FaultCaseKind::CorruptMessage => FaultKind::CorruptMessage { phase: case.phase },
        };
        plan = plan.with_event(case.node, kind);
    }
    plan
}

fn is_path(node: &TreeNode) -> bool {
    node.children.len() <= 1 && node.children.iter().all(|(_, c)| is_path(c))
}

/// Convert a path-shaped tree scenario to the chain scenario it is.
fn chain_of_path(s: &TreeScenario) -> Scenario {
    let mut links = Vec::new();
    let mut node = &s.shape;
    while let Some((link, child)) = node.children.first() {
        links.push(link.z);
        node = child;
    }
    Scenario::honest(s.shape.processor.w, s.true_rates.clone(), links)
        .with_fine(s.fine)
        .with_seed(s.seed)
}

fn check_invariants(s: &TreeScenario, cases: &[FaultCase], tag: &str) -> FtTreeRunReport {
    let plan = to_plan(cases);
    let ft = run_tree_with_faults(s, &plan).expect("valid plan");
    assert!(
        ft.load_conserved(1e-9),
        "{tag}: lost load, completed {:?}",
        ft.completed
    );
    assert!(
        ft.makespan >= ft.base_makespan - 1e-12,
        "{tag}: recovery cannot be free"
    );
    for j in 1..=s.num_agents() {
        assert!(ft.fines_paid(j) <= 1e-12, "{tag}: honest P{j} fined");
    }
    let again = run_tree_with_faults(s, &plan).expect("valid plan");
    assert_eq!(ft, again, "{tag}: report not deterministic");
    // Degenerate paths must match the frozen linear fault engine byte for
    // byte — the chain-delegation contract.
    if is_path(&s.shape) {
        let lin = run_with_faults(&chain_of_path(s), &plan).expect("valid plan");
        assert_eq!(
            format!("{:?}", ft.ledger),
            format!("{:?}", lin.ledger),
            "{tag}: path ledger diverged from the chain engine"
        );
        assert_eq!(
            format!("{:?}", ft.net_utilities),
            format!("{:?}", lin.net_utilities),
            "{tag}: path payments diverged from the chain engine"
        );
        assert_eq!(ft.makespan, lin.makespan, "{tag}: path makespan diverged");
    }
    ft
}

fn main() {
    if let Some(path) = obs::init_from_env() {
        eprintln!("tracing to {path} (DLS_TRACE)");
    }
    let reduced = std::env::args().any(|a| a == "--reduced");
    println!("E24: tree-network fault injection — subtree re-attachment recovery");
    println!();
    let mut mirror = JsonReport::new("exp_tree_fault_sweep");

    let grid = tree_shape_grid(0xE24);
    let scenario_of =
        |c: &TreeFaultCase| TreeScenario::honest(c.shape.clone(), c.true_rates.clone());

    // ---- Every crash position × phase, per shape ----
    println!("crash positions: relative makespan overhead (makespan / fault-free − 1)");
    let mut t = Table::new(&[
        "shape",
        "m",
        "path?",
        "runs",
        "mean overhead",
        "max overhead",
    ]);
    let mut position_runs = 0usize;
    for case in &grid {
        let s = scenario_of(case);
        let m = case.num_agents();
        let cells = crash_position_grid(m, &[0.0, 0.5, 1.0]);
        let overheads: Vec<f64> = cells
            .iter()
            .map(|c| {
                let tag = format!("{} {}", case.label, c.label());
                let ft = check_invariants(&s, std::slice::from_ref(c), &tag);
                ft.makespan / ft.base_makespan - 1.0
            })
            .collect();
        position_runs += cells.len();
        let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
        let max = overheads.iter().cloned().fold(f64::MIN, f64::max);
        t.row(vec![
            case.label.clone(),
            format!("{m}"),
            format!("{}", is_path(&case.shape)),
            format!("{}", cells.len()),
            format!("{:+.1}%", 100.0 * mean),
            format!("{:+.1}%", 100.0 * max),
        ]);
    }
    t.print();
    mirror.table("crash_positions", &t);
    println!();

    // ---- Internal-node crashes: re-attachment stress ----
    println!("internal-node crashes (pre-distribution): orphaned subtrees re-attach");
    let mut t = Table::new(&["shape", "dead", "survivor load", "rel overhead"]);
    let mut internal_runs = 0usize;
    for case in &grid {
        let s = scenario_of(case);
        for k in 1..=case.num_agents() {
            if !has_children(&s.shape, k) {
                continue;
            }
            let cases = [FaultCase::crash(k, 1, 0.0)];
            let ft = check_invariants(&s, &cases, &format!("{} internal P{k}", case.label));
            internal_runs += 1;
            let survivor_load: f64 = ft.completed.iter().sum::<f64>() - ft.completed[k];
            t.row(vec![
                case.label.clone(),
                format!("P{k}"),
                format!("{:.4}", survivor_load),
                format!("{:+.1}%", 100.0 * (ft.makespan / ft.base_makespan - 1.0)),
            ]);
        }
    }
    t.print();
    mirror.table("internal_crashes", &t);
    println!();

    // ---- Seeded mixed multi-failure batches, in parallel ----
    let batch_size = if reduced { 12 } else { 60 };
    let seeded_runs: usize = grid
        .iter()
        .map(|case| {
            let s = scenario_of(case);
            let m = case.num_agents();
            let batch = seeded_multi_cases(0xE24, m, batch_size, 3);
            let results = par_sweep(0..batch.len() as u64, |i| {
                let cases = &batch[i as usize];
                check_invariants(&s, cases, &format!("{} {}", case.label, multi_label(cases)));
            });
            results.len()
        })
        .sum();
    println!(
        "invariant sweep: {position_runs} crash-position runs + {internal_runs} internal-node \
         runs + {seeded_runs} seeded mixed multi-failure runs across {} shapes",
        grid.len()
    );
    println!("  every run: load conserved, deterministic, zero fines on honest survivors");
    println!("  every degenerate-path run: byte-identical to the linear fault engine");
    println!();
    mirror
        .scalar("shapes", grid.len() as f64)
        .scalar("crash_position_runs", position_runs as f64)
        .scalar("internal_runs", internal_runs as f64)
        .scalar("seeded_multi_runs", seeded_runs as f64);
    mirror
        .write("results/exp_tree_fault_sweep.json")
        .expect("write JSON mirror");
    obs::flush();
    println!("PASS: E24 subtree re-attachment recovery holds the fault-tolerance invariants");
}

/// Does strategic node `k` (preorder) route a subtree?
fn has_children(shape: &TreeNode, k: usize) -> bool {
    fn walk(node: &TreeNode, idx: &mut usize, k: usize) -> Option<bool> {
        let here = *idx;
        *idx += 1;
        if here == k {
            return Some(!node.children.is_empty());
        }
        for (_, c) in &node.children {
            if let Some(ans) = walk(c, idx, k) {
                return Some(ans);
            }
        }
        None
    }
    walk(shape, &mut 0, k).unwrap_or(false)
}
