//! E8 — eq. 4.13: the solution bonus and selfish-and-annoying agents.
//!
//! A *selfish-but-agreeable* agent deviates only for strict gain; a
//! *selfish-and-annoying* agent also performs utility-neutral sabotage
//! (corrupting data), which reduces the probability of finding the embedded
//! solution. The experiment models sabotage as a solution-probability hit
//! and shows:
//!
//! * with `S = 0`, sabotage is utility-neutral (the annoying agent has no
//!   reason *not* to sabotage) — Theorem 5.1 alone cannot stop it;
//! * with `S > 0`, sabotage strictly loses `S × Δp(solution)` in
//!   expectation — Theorem 5.2's discipline.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_solution_bonus
//! ```

use bench::{par_sweep, Table};
use protocol::Scenario;

/// Expected utility of agent `j` when the solution is found with
/// probability `p_solution`.
fn expected_utility(base: &Scenario, j: usize, s: f64, p_solution: f64, seeds: u64) -> f64 {
    let found = protocol::run(&base.clone().with_solution_bonus(s, true));
    let missed = protocol::run(&base.clone().with_solution_bonus(s, false));
    // Utilities are deterministic given the bonus outcome; average the two
    // branches (seeds only affect audits, which are neutral for honest
    // bills — verified by the spread below).
    let spread: f64 = par_sweep(0..seeds, |seed| {
        protocol::run(&base.clone().with_seed(seed).with_solution_bonus(s, true)).utility(j)
    })
    .iter()
    .map(|u| (u - found.utility(j)).abs())
    .fold(0.0, f64::max);
    assert!(spread < 1e-9, "audit randomness leaked into honest utility");
    p_solution * found.utility(j) + (1.0 - p_solution) * missed.utility(j)
}

fn main() {
    println!("E8: eq. 4.13 — the solution bonus disciplines selfish-and-annoying agents");
    println!();
    let base = Scenario::honest(1.0, vec![1.8, 0.6, 2.5, 1.2], vec![0.25, 0.15, 0.40, 0.10]);
    let j = 2;
    // Sabotage model: corrupting data halves the chance the solution is
    // found (e.g. the target key sits in the corrupted half).
    let p_clean = 0.95;
    let p_sabotaged = 0.45;

    let mut t = Table::new(&[
        "S (bonus)",
        "E[U] behave",
        "E[U] sabotage",
        "sabotage margin",
        "deterred",
    ]);
    for s in [0.0, 0.05, 0.1, 0.25, 0.5] {
        let behave = expected_utility(&base, j, s, p_clean, 50);
        let sabotage = expected_utility(&base, j, s, p_sabotaged, 50);
        let margin = behave - sabotage;
        let expected_margin = s * (p_clean - p_sabotaged);
        assert!((margin - expected_margin).abs() < 1e-9);
        t.row(vec![
            format!("{s:.2}"),
            format!("{behave:.5}"),
            format!("{sabotage:.5}"),
            format!("{margin:+.5}"),
            if margin > 1e-12 {
                "yes".into()
            } else {
                "NO (neutral)".to_string()
            },
        ]);
    }
    t.print();
    println!();
    println!(
        "with S = 0 sabotage is exactly utility-neutral — a selfish-and-annoying agent may do it;\n\
         any S > 0 makes good behavior strictly dominant (Theorem 5.2)."
    );
    println!();
    println!("PASS: E8 reproduces the eq. 4.13 extension");
}
