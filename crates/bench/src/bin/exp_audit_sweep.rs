//! E7 — Phase IV audit deterrence: the `F/q` sweep.
//!
//! Sweeps the audit probability `q` and the fine `F`, reporting both the
//! closed-form expected gain of an overcharging agent and a Monte Carlo
//! estimate from real protocol runs (random audits, real proofs). Shows
//! the deterrence boundary: overcharging profits iff `F < (1−q)·x`, so the
//! paper's rule (`F` above any attainable profit) kills it for every `q`.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_audit_sweep
//! ```

use bench::{par_sweep, Table};
use mechanism::audit::{analyze_overcharge, break_even_overcharge};
use mechanism::FineSchedule;
use protocol::{Deviation, Scenario};

fn main() {
    println!("E7: audit probability sweep — expected penalty of overcharging is q·(F/q) = F");
    println!();
    let overcharge = 2.0;
    let trials = 4000u64;

    let scenario = |fine: f64, q: f64, seed: u64| {
        Scenario::honest(1.0, vec![1.8, 0.6, 2.5], vec![0.25, 0.15, 0.40])
            .with_fine(FineSchedule::new(fine, q))
            .with_seed(seed)
    };

    for fine in [1.0f64, 8.0] {
        println!("fine F = {fine} (overcharge x = {overcharge}; deterred iff x < F/(1−q))");
        let mut t = Table::new(&[
            "q",
            "E[gain] closed form",
            "E[gain] Monte Carlo",
            "caught rate",
            "break-even x",
        ]);
        for q in [0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
            let schedule = FineSchedule::new(fine, q);
            let analysis = analyze_overcharge(&schedule, overcharge);
            // Monte Carlo over real protocol runs.
            let results = par_sweep(0..trials, |seed| {
                let base = scenario(fine, q, seed);
                let honest = protocol::run(&base);
                let dev = protocol::run(
                    &base
                        .clone()
                        .with_deviation(2, Deviation::Overcharge { amount: overcharge }),
                );
                let caught = dev.convictions().any(|a| a.accused == 2);
                (dev.utility(2) - honest.utility(2), caught)
            });
            let mc_gain: f64 = results.iter().map(|r| r.0).sum::<f64>() / trials as f64;
            let caught = results.iter().filter(|r| r.1).count() as f64 / trials as f64;
            t.row(vec![
                format!("{q:.2}"),
                format!("{:+.4}", analysis.expected_gain),
                format!("{mc_gain:+.4}"),
                format!("{caught:.3}"),
                format!("{:.2}", break_even_overcharge(&schedule)),
            ]);
            // 4σ band: per-trial outcomes differ by ≈ x + F/q between the
            // caught/uncaught branches, so the mean's standard error is
            // (x + F/q)·√(q(1−q)/N).
            let sigma =
                (overcharge + schedule.overcharge_fine()) * (q * (1.0 - q) / trials as f64).sqrt();
            assert!(
                (mc_gain - analysis.expected_gain).abs() < 4.0 * sigma + 1e-9,
                "Monte Carlo diverges from closed form: {mc_gain} vs {} (4σ = {})",
                analysis.expected_gain,
                4.0 * sigma
            );
            assert!((caught - q).abs() < 0.05, "audit rate off: {caught} vs {q}");
        }
        t.print();
        println!();
    }
    println!(
        "shape check: with F=1 < x(1−q) the cheat profits at small q (mechanism mis-tuned);\n\
         with F=8 > x the expected gain is negative for EVERY q — the paper's requirement."
    );
    println!();
    println!("PASS: E7 reproduces the F/q deterrent and its failure mode");
}
