//! E17 (extension) — collusion probe: is DLS-LBL *group*-strategyproof?
//!
//! Strategyproofness (Theorem 5.3) is an individual guarantee; it says
//! nothing about coalitions with side payments. This experiment sweeps
//! joint misreports by every adjacent pair of processors and measures the
//! coalition's total utility against the all-truthful profile. Two
//! findings are asserted:
//!
//! * the *dominant-strategy inequality* always holds member-wise: given
//!   the partner's lie, each member's truthful response weakly dominates
//!   its own lie (this is Theorem 5.3 and must never fail);
//! * any coalition gains that do exist are quantified and reported — the
//!   paper never claims group-strategyproofness, so positive findings here
//!   delimit the guarantee rather than contradict it.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_collusion
//! ```

use bench::{par_sweep, Stats, Table};
use mechanism::{Agent, Conduct, DlsLbl};
use workloads::ChainConfig;

fn main() {
    println!("E17: collusion probe — coalition utility under joint misreports");
    println!();

    let factors = [0.5f64, 0.75, 1.0, 1.5, 2.5];
    let trials = 300u64;
    let results = par_sweep(0..trials, |seed| {
        let cfg = ChainConfig {
            processors: 6,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, seed);
        let parts = workloads::mechanism_parts(&net);
        let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
        let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
        let m = agents.len();
        let truthful: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        let base = mech.settle(&truthful, false);

        let mut best_gain = f64::NEG_INFINITY;
        let mut dominant_violations = 0usize;
        for a in 1..m {
            let b = a + 1; // adjacent pair (P_a, P_b)
            let pair_truth = base.utility(a) + base.utility(b);
            for &fa in &factors {
                for &fb in &factors {
                    let mut conducts = truthful.clone();
                    conducts[a - 1] = Conduct::misreport(agents[a - 1], fa);
                    conducts[b - 1] = Conduct::misreport(agents[b - 1], fb);
                    let joint = mech.settle(&conducts, false);
                    best_gain = best_gain.max(joint.utility(a) + joint.utility(b) - pair_truth);
                    // Dominant-strategy inequality member-wise: reverting
                    // to truth (partner still lying) must not hurt.
                    let mut a_reverts = conducts.clone();
                    a_reverts[a - 1] = Conduct::truthful(agents[a - 1]);
                    if joint.utility(a) > mech.settle(&a_reverts, false).utility(a) + 1e-9 {
                        dominant_violations += 1;
                    }
                    let mut b_reverts = conducts.clone();
                    b_reverts[b - 1] = Conduct::truthful(agents[b - 1]);
                    if joint.utility(b) > mech.settle(&b_reverts, false).utility(b) + 1e-9 {
                        dominant_violations += 1;
                    }
                }
            }
        }
        (best_gain, dominant_violations)
    });

    let gains: Vec<f64> = results.iter().map(|r| r.0).collect();
    let dominant_violations: usize = results.iter().map(|r| r.1).sum();
    let positive = gains.iter().filter(|&&g| g > 1e-9).count();
    let s = Stats::of(&gains);
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["networks".into(), trials.to_string()]);
    t.row(vec![
        "dominant-strategy violations".into(),
        dominant_violations.to_string(),
    ]);
    t.row(vec![
        "nets where some pair gains jointly".into(),
        format!("{positive}/{trials}"),
    ]);
    t.row(vec![
        "best coalition gain (mean)".into(),
        format!("{:+.4}", s.mean),
    ]);
    t.row(vec![
        "best coalition gain (max)".into(),
        format!("{:+.4}", s.max),
    ]);
    t.print();
    assert_eq!(dominant_violations, 0, "Theorem 5.3 must hold member-wise");
    println!();
    if positive > 0 {
        println!(
            "finding: DLS-LBL is NOT group-strategyproof — {positive}/{trials} networks admit a\n\
             jointly profitable adjacent-pair misreport (requires side payments, since each\n\
             member individually prefers reverting to truth). The paper claims only individual\n\
             strategyproofness; this probe delimits the guarantee."
        );
    } else {
        println!("finding: no profitable pair collusion found on this grid.");
    }
    println!();
    println!("PASS: E17 — dominant-strategy inequality intact; coalition surface mapped");
}
