//! E12 (extension) — multi-installment scheduling \[21\]: the
//! makespan-vs-rounds U-curve.
//!
//! For chains with slow links, splitting the load into `k` installments
//! lets far processors start (and therefore absorb load) earlier; a
//! per-installment communication startup caps the useful `k`. The
//! experiment prints the U-curve for several link speeds and startup
//! costs, plus the load migration towards the tail.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_multiround
//! ```

use bench::Table;
use dlt::model::LinearNetwork;
use dlt::multiround::{self, MultiRoundConfig};

fn main() {
    println!("E12: multi-installment scheduling — makespan vs rounds");
    println!();

    // U-curves across link speeds (6 homogeneous processors).
    let startup = 0.02;
    let mut t = Table::new(&["k", "z=0.1", "z=0.4", "z=0.8", "z=1.6"]);
    let nets: Vec<LinearNetwork> = [0.1, 0.4, 0.8, 1.6]
        .iter()
        .map(|&z| LinearNetwork::homogeneous(6, 1.0, z))
        .collect();
    let sweeps: Vec<Vec<(usize, f64)>> = nets
        .iter()
        .map(|n| multiround::round_sweep(n, startup, 16))
        .collect();
    for k in 1..=16usize {
        t.row(vec![
            k.to_string(),
            format!("{:.5}", sweeps[0][k - 1].1),
            format!("{:.5}", sweeps[1][k - 1].1),
            format!("{:.5}", sweeps[2][k - 1].1),
            format!("{:.5}", sweeps[3][k - 1].1),
        ]);
    }
    t.print();
    println!("(per-installment startup c = {startup})");
    println!();

    let mut t2 = Table::new(&["z", "best k", "k=1 makespan", "best makespan", "speedup"]);
    for (net, z) in nets.iter().zip([0.1, 0.4, 0.8, 1.6]) {
        let k1 = multiround::schedule(net, &MultiRoundConfig::new(1, startup)).makespan;
        let (bk, bms) = multiround::best_rounds(net, startup, 16);
        t2.row(vec![
            format!("{z}"),
            bk.to_string(),
            format!("{k1:.5}"),
            format!("{bms:.5}"),
            format!("{:.3}×", k1 / bms),
        ]);
        assert!(bms <= k1 + 1e-12);
    }
    t2.print();
    println!();

    // Load migration to the tail.
    let net = LinearNetwork::homogeneous(6, 1.0, 0.8);
    let mut t3 = Table::new(&["k", "α_0 (root)", "α_5 (terminal)", "terminal share growth"]);
    let base_tail = multiround::schedule(&net, &MultiRoundConfig::new(1, 0.0))
        .total_alloc
        .alpha(5);
    for k in [1usize, 2, 4, 8, 16] {
        let s = multiround::schedule(&net, &MultiRoundConfig::new(k, 0.0));
        t3.row(vec![
            k.to_string(),
            format!("{:.5}", s.total_alloc.alpha(0)),
            format!("{:.5}", s.total_alloc.alpha(5)),
            format!("{:.2}×", s.total_alloc.alpha(5) / base_tail),
        ]);
    }
    t3.print();
    println!();
    println!("PASS: E12 — pipelining pays on slow links, startup caps the round count");
}
