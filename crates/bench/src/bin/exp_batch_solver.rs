//! E27 — the batch solver core: bit-identity at scale and amortized
//! throughput.
//!
//! Three claims, measured:
//!
//! 1. **Identity.** Over the full E2 shape grid, every chain solved through
//!    `dlt::batch::solve_many` is bit-identical to the frozen scalar
//!    reference, and every suffix from `solve_all_suffixes` matches the
//!    per-suffix reference. The tally must be 100% — a single differing
//!    bit fails the run.
//! 2. **Batch throughput.** Solving a cohort through the struct-of-arrays
//!    kernel (warm scratch, zero steady-state allocation, lanes that
//!    auto-vectorize across chains) beats a loop of scalar `solve` calls;
//!    the gate requires ≥ `DLS_E27_MIN_SPEEDUP`× (default 2) at the
//!    largest batch size.
//! 3. **Suffix sweep.** One O(m) `solve_all_suffixes` sweep replaces the
//!    O(m²) per-agent suffix loop the payment path used to run; measured
//!    speedup grows with m.
//!
//! Writes `results/exp_batch_solver.txt` and `.json`. Environment
//! overrides: `DLS_E27_TRIALS` (identity seeds per shape cell),
//! `DLS_E27_MAX_BATCH` (largest throughput batch), `DLS_E27_REP_CHAINS`
//! (≈ chains timed per batch size), `DLS_E27_MIN_SPEEDUP` (0 disables the
//! throughput gate — for constrained CI runners).
//!
//! ```sh
//! cargo run --release -p bench --bin exp_batch_solver
//! ```

use bench::{JsonReport, Table};
use dlt::batch::{self, BatchScratch, BatchSolution};
use dlt::linear::reference;
use std::hint::black_box;
use std::time::Instant;
use workloads::{ChainConfig, ChainShape};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    if let Some(path) = obs::init_from_env() {
        eprintln!("tracing to {path} (DLS_TRACE)");
    }
    println!("E27: batch solver core — bit-identity at scale, amortized throughput");
    println!();
    let mut mirror = JsonReport::new("exp_batch_solver");
    let mut txt = String::new();

    // ── 1. Identity tally over the E2 shape grid ────────────────────────
    let trials = env_usize("DLS_E27_TRIALS", 500) as u64;
    let mut chains_checked = 0usize;
    let mut chains_identical = 0usize;
    let mut suffixes_checked = 0usize;
    let mut suffixes_identical = 0usize;
    for shape in ChainShape::all() {
        for n in [2usize, 8, 32] {
            let cfg = ChainConfig {
                processors: n,
                shape,
                ..Default::default()
            };
            let nets = workloads::chain_population(&cfg, 0..trials);
            let batch = batch::solve_many(&nets);
            for (i, net) in nets.iter().enumerate() {
                chains_checked += 1;
                let want = reference::solve(net);
                if format!("{:?}", batch.solution(i)) == format!("{want:?}") {
                    chains_identical += 1;
                }
                // Suffix sweep identity on a subsample (it is O(m²) to
                // check, so don't replay it for every seed).
                if i % 50 == 0 {
                    let sfx = batch::solve_all_suffixes(net);
                    for j in 0..net.len() {
                        suffixes_checked += 1;
                        let s = reference::solve_suffix(net, j);
                        if format!("{:?}", sfx.solution(j)) == format!("{s:?}")
                            && sfx.equivalent_time(j).to_bits()
                                == reference::equivalent_time(&net.suffix(j)).to_bits()
                        {
                            suffixes_identical += 1;
                        }
                    }
                }
            }
        }
    }
    let line = format!(
        "identity: {chains_identical}/{chains_checked} chains, \
         {suffixes_identical}/{suffixes_checked} suffixes bit-identical to the frozen reference"
    );
    println!("{line}");
    txt.push_str(&line);
    txt.push('\n');
    assert_eq!(
        chains_identical, chains_checked,
        "batch/scalar bit divergence"
    );
    assert_eq!(
        suffixes_identical, suffixes_checked,
        "suffix bit divergence"
    );
    println!();

    // ── 2. Amortized throughput: scalar loop vs batch kernel ────────────
    let max_batch = env_usize("DLS_E27_MAX_BATCH", 32_768);
    let rep_chains = env_usize("DLS_E27_REP_CHAINS", 262_144);
    let min_speedup = env_f64("DLS_E27_MIN_SPEEDUP", 2.0);
    let cfg = ChainConfig {
        processors: 16,
        ..Default::default()
    };
    let mut t = Table::new(&["batch", "scalar Mchains/s", "batch Mchains/s", "speedup"]);
    let mut last_speedup = 0.0f64;
    let mut scratch = BatchScratch::new();
    let mut out = BatchSolution::new();
    for &k in [1usize, 32, 1024, 32_768]
        .iter()
        .filter(|&&k| k <= max_batch)
    {
        let nets = workloads::chain_population(&cfg, 0..k as u64);
        let reps = (rep_chains / k).max(1);
        // Warm both paths (page in the population, size the scratch).
        for net in &nets {
            black_box(dlt::linear::solve(net));
        }
        batch::solve_many_into(&nets, &mut scratch, &mut out);

        let t0 = Instant::now();
        for _ in 0..reps {
            for net in &nets {
                black_box(dlt::linear::solve(net));
            }
        }
        let scalar_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        for _ in 0..reps {
            batch::solve_many_into(&nets, &mut scratch, &mut out);
            black_box(&out);
        }
        let batch_s = t1.elapsed().as_secs_f64();

        let total = (reps * k) as f64;
        let scalar_mcps = total / scalar_s / 1e6;
        let batch_mcps = total / batch_s / 1e6;
        last_speedup = scalar_s / batch_s;
        t.row(vec![
            k.to_string(),
            format!("{scalar_mcps:.2}"),
            format!("{batch_mcps:.2}"),
            format!("{last_speedup:.2}×"),
        ]);
    }
    t.print();
    txt.push_str(&t.render());
    if min_speedup > 0.0 {
        assert!(
            last_speedup >= min_speedup,
            "batch speedup {last_speedup:.2}× below the {min_speedup}× gate at the largest batch"
        );
        println!("(largest batch ≥ {min_speedup}× scalar ✓)");
    }
    println!();
    mirror.table("throughput", &t);

    // ── 3. Suffix sweep: O(m) vs the former O(m²) payment loop ──────────
    let mut t2 = Table::new(&["m", "per-suffix loop µs", "one sweep µs", "speedup"]);
    let mut sweep_speedup_at_max_m = 0.0f64;
    for &m in &[4usize, 16, 64, 256] {
        let cfg = ChainConfig {
            processors: m,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, 7);
        let reps = (20_000 / m).max(4);
        let t0 = Instant::now();
        for _ in 0..reps {
            for i in 0..net.len() {
                black_box(reference::solve_suffix(&net, i));
            }
        }
        let loop_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        for _ in 0..reps {
            black_box(batch::solve_all_suffixes(&net));
        }
        let sweep_s = t1.elapsed().as_secs_f64();
        sweep_speedup_at_max_m = loop_s / sweep_s;
        t2.row(vec![
            m.to_string(),
            format!("{:.2}", loop_s / reps as f64 * 1e6),
            format!("{:.2}", sweep_s / reps as f64 * 1e6),
            format!("{sweep_speedup_at_max_m:.1}×"),
        ]);
    }
    t2.print();
    txt.push_str(&t2.render());
    assert!(
        sweep_speedup_at_max_m > 1.0,
        "the O(m) sweep must beat the O(m²) loop at m = 256"
    );
    println!("(payment counterfactuals: one sweep beats the per-agent loop ✓)");
    println!();

    mirror
        .table("suffix_sweep", &t2)
        .scalar("identity_chains_checked", chains_checked as f64)
        .scalar("identity_chains_identical", chains_identical as f64)
        .scalar("identity_suffixes_checked", suffixes_checked as f64)
        .scalar("identity_suffixes_identical", suffixes_identical as f64)
        .scalar("throughput_speedup_at_max_batch", last_speedup)
        .scalar("suffix_sweep_speedup_at_m256", sweep_speedup_at_max_m);
    mirror
        .write("results/exp_batch_solver.json")
        .expect("write JSON mirror");
    std::fs::write("results/exp_batch_solver.txt", &txt).expect("write E27 txt");
    obs::flush();
    println!("PASS: batch core bit-identical everywhere; amortized throughput confirmed");
}
