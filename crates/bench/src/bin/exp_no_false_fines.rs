//! E11 — Lemma 5.2 fuzz: honest processors are never fined.
//!
//! Thousands of adversarial protocol runs — random networks, random
//! deviant positions, random deviation types, multiple simultaneous
//! deviants, forged-evidence attempts — and in every single one, every
//! node that followed the protocol ends with zero fines and non-negative
//! reward flow.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_no_false_fines
//! ```

use bench::{par_sweep, Table};
use mechanism::FineSchedule;
use protocol::{Deviation, EntryKind, Scenario};
use workloads::ChainConfig;

fn pick_deviation(k: u64) -> Deviation {
    let catalog = Deviation::catalog();
    catalog[(k as usize) % catalog.len()]
}

fn main() {
    println!("E11: Lemma 5.2 — fuzzing for false fines");
    println!();
    let trials = 3000u64;
    let results = par_sweep(0..trials, |seed| {
        let m = 3 + (seed % 6) as usize; // 3..=8 strategic processors
        let cfg = ChainConfig {
            processors: m + 1,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, seed);
        let parts = workloads::mechanism_parts(&net);
        let mut scenario = Scenario::honest(
            parts.root_rate,
            parts.true_rates.clone(),
            parts.link_rates.clone(),
        )
        .with_fine(FineSchedule::new(
            50.0 * parts.true_rates.iter().cloned().fold(1.0, f64::max),
            0.5,
        ))
        .with_seed(seed);
        // 1–2 deviants at distinct positions.
        let deviants = 1 + (seed % 2) as usize;
        let mut positions = Vec::new();
        for d in 0..deviants {
            let pos = 1 + ((seed / 7 + d as u64 * 3) as usize % m);
            if !positions.contains(&pos) {
                scenario = scenario.with_deviation(pos, pick_deviation(seed + d as u64));
                positions.push(pos);
            }
        }
        let report = protocol::run(&scenario);
        // Any honest node with a net fine is a Lemma 5.2 violation.
        let mut false_fines = 0usize;
        for j in 1..=m {
            if positions.contains(&j) {
                continue;
            }
            if report.ledger.net_of(j, EntryKind::Fine) < 0.0
                || report.ledger.net_of(j, EntryKind::ExtraWorkPenalty) < 0.0
            {
                false_fines += 1;
            }
        }
        (false_fines, report.arbitrations.len(), positions.len())
    });

    let total_false: usize = results.iter().map(|r| r.0).sum();
    let total_arbitrations: usize = results.iter().map(|r| r.1).sum();
    let total_deviants: usize = results.iter().map(|r| r.2).sum();
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["runs".into(), trials.to_string()]);
    t.row(vec!["deviants injected".into(), total_deviants.to_string()]);
    t.row(vec![
        "arbitrations held".into(),
        total_arbitrations.to_string(),
    ]);
    t.row(vec![
        "false fines on honest nodes".into(),
        total_false.to_string(),
    ]);
    t.print();
    assert_eq!(total_false, 0, "Lemma 5.2 violated");
    println!();
    println!("PASS: 0 false fines across {trials} adversarial runs");
}
