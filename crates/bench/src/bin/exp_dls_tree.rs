//! E16 (extension) — DLS-T: the tree-network companion mechanism \[9\].
//!
//! Generalizes the DLS-LBL payment to arbitrary trees (parent-equivalent
//! bonus, eqs. 4.9–4.11 with "predecessor" → "parent"). Checks:
//!
//! * on degenerate trees (chains) the generalization coincides with
//!   DLS-LBL **exactly**, both truthful and under deviations;
//! * strategyproofness and voluntary participation hold on random trees
//!   (bid sweeps per node);
//! * the depth-1 instantiation covers the bus companion \[14\].
//!
//! ```sh
//! cargo run --release -p bench --bin exp_dls_tree
//! ```

use bench::{par_sweep, Table};
use mechanism::dls_tree::TreeMechanism;
use mechanism::{Agent, Conduct, DlsLbl};
use workloads::ChainConfig;

fn main() {
    println!("E16: DLS-T — the tree-network companion mechanism");
    println!();

    // Chain coincidence, truthful and deviant.
    let links = vec![0.25, 0.15, 0.40, 0.10];
    let tree_mech = TreeMechanism::chain(1.0, &links);
    let chain_mech = DlsLbl::new(1.0, links.clone());
    let agents: Vec<Agent> = [1.8, 0.6, 2.5, 1.2]
        .iter()
        .map(|&t| Agent::new(t))
        .collect();
    let t_out = tree_mech.settle_truthful(&agents);
    let c_out = chain_mech.settle_truthful(&agents);
    let mut max_diff = 0.0f64;
    for j in 1..=4 {
        max_diff = max_diff.max((t_out.utility(j) - c_out.utility(j)).abs());
    }
    for factor in [0.5, 2.0] {
        for j in 1..=4 {
            let mut conducts: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
            conducts[j - 1] = Conduct::misreport(agents[j - 1], factor);
            let t = tree_mech.settle(&conducts);
            let c = chain_mech.settle(&conducts, false);
            for k in 1..=4 {
                max_diff = max_diff.max((t.utility(k) - c.utility(k)).abs());
            }
        }
    }
    println!("chain-as-tree vs DLS-LBL: max utility difference = {max_diff:.3e}");
    assert!(max_diff < 1e-12);
    println!();

    // Random trees: strategyproofness + VP sweeps.
    let trials = 200u64;
    let factors = [0.3, 0.5, 0.75, 0.9, 1.0, 1.2, 1.6, 2.5, 5.0];
    let results = par_sweep(0..trials, |seed| {
        let cfg = ChainConfig {
            processors: 7,
            ..Default::default()
        };
        let shape = workloads::tree(&cfg, 3, seed);
        let n_agents = shape.size() - 1;
        if n_agents == 0 {
            return (0usize, 0usize, f64::INFINITY);
        }
        let mech = TreeMechanism::new(shape);
        // Deterministic true rates per agent.
        let agents: Vec<Agent> = (0..n_agents)
            .map(|i| Agent::new(0.5 + ((seed as usize + i * 7) % 30) as f64 / 10.0))
            .collect();
        let honest = mech.settle_truthful(&agents);
        let mut violations = 0usize;
        for j in 1..=n_agents {
            for &f in &factors {
                let mut conducts: Vec<Conduct> =
                    agents.iter().map(|&a| Conduct::truthful(a)).collect();
                conducts[j - 1] = Conduct::misreport(agents[j - 1], f);
                if mech.settle(&conducts).utility(j) > honest.utility(j) + 1e-9 {
                    violations += 1;
                }
            }
        }
        let min_u = (1..=n_agents)
            .map(|j| honest.utility(j))
            .fold(f64::INFINITY, f64::min);
        (violations, n_agents, min_u)
    });
    let violations: usize = results.iter().map(|r| r.0).sum();
    let total_agents: usize = results.iter().map(|r| r.1).sum();
    let min_u = results.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["random trees".into(), trials.to_string()]);
    t.row(vec![
        "agents × bids tested".into(),
        (total_agents * factors.len()).to_string(),
    ]);
    t.row(vec![
        "strategyproofness violations".into(),
        violations.to_string(),
    ]);
    t.row(vec!["min truthful utility".into(), format!("{min_u:+.3e}")]);
    t.print();
    assert_eq!(violations, 0);
    assert!(min_u >= -1e-9);
    println!();

    // Bus instantiation.
    let bus = TreeMechanism::star(1.0, &[0.3, 0.3, 0.3, 0.3]);
    let bus_agents: Vec<Agent> = [1.5, 0.9, 2.0, 1.2]
        .iter()
        .map(|&t| Agent::new(t))
        .collect();
    let honest = bus.settle_truthful(&bus_agents);
    let mut bus_violations = 0;
    for j in 1..=4 {
        for &f in &factors {
            let mut conducts: Vec<Conduct> =
                bus_agents.iter().map(|&a| Conduct::truthful(a)).collect();
            conducts[j - 1] = Conduct::misreport(bus_agents[j - 1], f);
            if bus.settle(&conducts).utility(j) > honest.utility(j) + 1e-9 {
                bus_violations += 1;
            }
        }
    }
    println!("bus (depth-1 tree, companion [14]): violations = {bus_violations}");
    assert_eq!(bus_violations, 0);
    println!();

    // Full tree protocol: the enforcement layer generalizes too.
    use protocol::tree_runner::{run_tree, TreeScenario};
    let shape = dlt::model::TreeNode::internal(
        1.0,
        vec![
            (
                0.15,
                dlt::model::TreeNode::internal(
                    1.0,
                    vec![
                        (0.05, dlt::model::TreeNode::leaf(1.0)),
                        (0.25, dlt::model::TreeNode::leaf(1.0)),
                    ],
                ),
            ),
            (
                0.30,
                dlt::model::TreeNode::internal(
                    1.0,
                    vec![
                        (0.10, dlt::model::TreeNode::leaf(1.0)),
                        (0.20, dlt::model::TreeNode::leaf(1.0)),
                    ],
                ),
            ),
        ],
    );
    let rates = vec![1.4, 2.2, 0.7, 1.9, 1.1, 3.0];
    let base =
        TreeScenario::honest(shape, rates).with_fine(mechanism::FineSchedule::new(50.0, 1.0));
    let honest = run_tree(&base);
    assert!(honest.clean());
    let mut t2 = Table::new(&["deviation at P1 (internal)", "caught", "ΔU(deviant)"]);
    for d in protocol::Deviation::catalog() {
        let report = run_tree(&base.clone().with_deviation(1, d));
        let caught = if d.is_finable() {
            let hit = report.arbitrations.iter().any(|a| {
                (a.substantiated && a.accused == 1) || (!a.substantiated && a.claimant == 1)
            });
            assert!(hit, "{} escaped in the tree protocol", d.label());
            "yes"
        } else {
            "n/a"
        };
        let delta = report.utility(1) - honest.utility(1);
        assert!(delta <= 1e-9, "{} profited in the tree protocol", d.label());
        t2.row(vec![
            d.label().to_string(),
            caught.into(),
            format!("{delta:+.4}"),
        ]);
    }
    t2.print();
    println!();
    println!("PASS: E16 — the tree generalization (mechanism AND protocol) is strategyproof and collapses to DLS-LBL on chains");
}
