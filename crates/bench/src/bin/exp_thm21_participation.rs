//! E2 — Theorem 2.1 (optimal participation): under the optimal allocation
//! *all* processors participate and finish at the same instant.
//!
//! Measures the finish-time spread of Algorithm 1's output across thousands
//! of random networks of every shape (f64), cross-checks the solver against
//! the independent bisection oracle, and verifies the equal-finish identity
//! *exactly* with the arbitrary-precision rational solver.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_thm21_participation
//! ```

use bench::{par_sweep, Stats, Table};
use dlt::baseline::{solve_bisection, BisectionParams};
use dlt::exact;
use dlt::timing::participation_spread;
use workloads::{ChainConfig, ChainShape};

fn main() {
    println!("E2: Theorem 2.1 — equal finish times at the optimum");
    println!();

    let trials = 2000u64;
    let mut table = Table::new(&[
        "shape",
        "n",
        "trials",
        "max spread",
        "min α_i",
        "max |Alg1 − bisection|",
    ]);
    for shape in ChainShape::all() {
        for n in [2usize, 8, 32] {
            let cfg = ChainConfig {
                processors: n,
                shape,
                ..Default::default()
            };
            // The whole cohort is solved in one batch-core call (amortized,
            // auto-vectorized across chains); per-chain results are
            // bit-identical to the scalar solver by the `dlt::batch`
            // contract, so the report below is unchanged by the rewiring.
            let nets = workloads::chain_population(&cfg, 0..trials);
            let batch = dlt::batch::solve_many(&nets);
            let results = par_sweep(0..trials, |seed| {
                let net = &nets[seed as usize];
                let sol = batch.solution(seed as usize);
                sol.alloc.validate().expect("feasible");
                let spread = participation_spread(net, &sol.alloc);
                let min_alpha = sol
                    .alloc
                    .fractions()
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                let bis = solve_bisection(net, BisectionParams::default());
                let dev = (bis.makespan - sol.makespan()).abs();
                (spread, min_alpha, dev)
            });
            let spreads: Vec<f64> = results.iter().map(|r| r.0).collect();
            let alphas: Vec<f64> = results.iter().map(|r| r.1).collect();
            let devs: Vec<f64> = results.iter().map(|r| r.2).collect();
            table.row(vec![
                shape.label().to_string(),
                n.to_string(),
                trials.to_string(),
                format!("{:.2e}", Stats::of(&spreads).max),
                format!("{:.2e}", Stats::of(&alphas).min),
                format!("{:.2e}", Stats::of(&devs).max),
            ]);
            assert!(
                Stats::of(&spreads).max < 1e-9,
                "spread too large for {shape:?} n={n}"
            );
            assert!(Stats::of(&alphas).min > 0.0, "a processor was left out");
        }
    }
    table.print();

    // Exact verification: the identity holds bit-for-bit over rationals.
    println!();
    println!("exact-rational verification (integer-rate chains, denominators up to 10):");
    let mut exact_ok = 0;
    let mut cases = 0;
    for seed in 0..50u64 {
        let m = 2 + (seed % 10) as usize;
        let w: Vec<i64> = (0..=m)
            .map(|i| 3 + ((seed as i64 + i as i64 * 7) % 40))
            .collect();
        let z: Vec<i64> = (0..m)
            .map(|i| 1 + ((seed as i64 * 3 + i as i64 * 5) % 8))
            .collect();
        let chain = exact::ExactChain::from_scaled_ints(&w, &z, 10);
        let sol = exact::chain::solve(&chain);
        cases += 1;
        if exact::chain::verify_equal_finish(&chain, &sol) && exact::chain::verify_total(&sol) {
            exact_ok += 1;
        }
    }
    println!("  {exact_ok}/{cases} random integer chains satisfy T_0 = … = T_m and Σα = 1 EXACTLY");
    assert_eq!(exact_ok, cases);
    println!();
    println!("PASS: Theorem 2.1 reproduced (f64 spread ≤ 1e-9 over all shapes; exact over ℚ)");
}
