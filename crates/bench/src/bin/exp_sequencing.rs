//! E18 (extension) — service-order sequencing: ascending-link-first is
//! optimal, and the tree mechanism needs it.
//!
//! Verifies the classical single-level-tree sequencing result by
//! exhaustive search over all `m!` orders on random stars, quantifies how
//! much a bad order costs, and demonstrates the incentive consequence
//! uncovered during this reproduction: with an **uncanonicalized** child
//! order, the fixed-order equal-finish solution can *improve* when a
//! child's rate worsens (non-monotonicity), which would let a tree agent
//! profit by overbidding.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_sequencing
//! ```

use bench::{par_sweep, Stats, Table};
use dlt::model::StarNetwork;
use dlt::sequencing::{
    ascending_is_optimal, ascending_link_order, order_makespan, try_exhaustive_best_order,
    DEFAULT_ORDER_BUDGET,
};
use dlt::star;
use workloads::ChainConfig;

fn main() {
    println!("E18: service-order sequencing on star networks");
    println!();

    // Exhaustive verification on random stars.
    let trials = 500u64;
    for m in [3usize, 5, 7] {
        let results = par_sweep(0..trials, |seed| {
            let cfg = ChainConfig {
                processors: m + 1,
                ..Default::default()
            };
            let net = workloads::star(&cfg, seed);
            let optimal = ascending_is_optimal(&net, 1e-9);
            let search = try_exhaustive_best_order(&net, DEFAULT_ORDER_BUDGET)
                .expect("m <= 7 fits the default factorial budget");
            let spread = search.worst_makespan / search.best_makespan;
            (optimal, spread)
        });
        let optimal = results.iter().filter(|r| r.0).count();
        let spreads: Vec<f64> = results.iter().map(|r| r.1).collect();
        let s = Stats::of(&spreads);
        println!(
            "m = {m}: ascending-link order optimal in {optimal}/{trials} stars; worst/best makespan ratio mean {:.3}, max {:.3}",
            s.mean, s.max
        );
        assert_eq!(
            optimal as u64, trials,
            "classical sequencing result violated"
        );
    }
    println!();

    // The non-monotonicity a bad order induces (the violation that broke
    // the uncanonicalized tree mechanism).
    println!("non-monotonicity under a BAD order (slow link served first):");
    // Root w=2.1 serving child A over z=0.66 then child B over z=0.097.
    let mk = |w_a: f64| {
        star::solve(&StarNetwork::from_rates(
            &[2.1, w_a, 0.5],
            &[0.6568, 0.0969],
        ))
        .makespan
    };
    let mut t = Table::new(&[
        "w_A",
        "equal-finish makespan (bad order)",
        "ascending order",
    ]);
    let mut decreased = false;
    let mut prev = f64::NEG_INFINITY;
    for &w_a in &[2.0, 2.4, 2.8, 3.2, 3.6, 4.0] {
        let bad = mk(w_a);
        let net = StarNetwork::from_rates(&[2.1, w_a, 0.5], &[0.6568, 0.0969]);
        let good = order_makespan(&net, &ascending_link_order(&net));
        if bad < prev - 1e-12 {
            decreased = true;
        }
        prev = bad;
        t.row(vec![
            format!("{w_a}"),
            format!("{bad:.6}"),
            format!("{good:.6}"),
        ]);
    }
    t.print();
    assert!(
        decreased,
        "the bad order should exhibit the makespan *decreasing* as a child slows down"
    );
    // Ascending order restores monotonicity on this instance.
    let mut prev = f64::NEG_INFINITY;
    for &w_a in &[2.0, 2.4, 2.8, 3.2, 3.6, 4.0] {
        let net = StarNetwork::from_rates(&[2.1, w_a, 0.5], &[0.6568, 0.0969]);
        let good = order_makespan(&net, &ascending_link_order(&net));
        assert!(
            good >= prev - 1e-12,
            "ascending order must be monotone in w_A"
        );
        prev = good;
    }
    println!();
    println!(
        "with the slow link served first, slowing child A *reduces* the equal-finish makespan —\n\
         the non-monotonicity that made the uncanonicalized tree mechanism manipulable (E16);\n\
         ascending-link order restores monotonicity."
    );
    println!();
    println!("PASS: E18 — ascending-link sequencing verified optimal; incentive consequence demonstrated");
}
