//! E21 — observability overhead: instrumentation must be free when
//! disabled and must never perturb results.
//!
//! Runs the same protocol workload (fault-free runs plus a 6-node
//! fault-injection sweep) under three recorder configurations — disabled,
//! `NoopSink`, `MemorySink` — and asserts every report is bit-identical:
//! instrumentation only *reads* protocol state, so the sink choice cannot
//! change a single output. Wall-clock medians over interleaved batches
//! check that the disabled fast path (one relaxed atomic load per site) is
//! not measurably slower than the fully-enabled paths that do strictly
//! more work. Finally streams the fault sweep through a `JsonlSink` to
//! `results/exp_obs_overhead.trace.jsonl` (summarize it with `dls-trace`)
//! and renders one recovery timeline to `results/obs_timeline.svg`.
//!
//! This binary deliberately does **not** honor `DLS_TRACE`
//! (`obs::init_from_env`): it manages sinks itself, and an ambient sink
//! would corrupt the disabled-path baseline.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_obs_overhead
//! ```

use bench::{JsonReport, Table};
use obs::{JsonlSink, MemorySink, NoopSink};
use protocol::{run, run_with_faults, FaultKind, FaultPlan, FtRunReport, RunReport, Scenario};
use std::sync::Arc;
use std::time::Instant;

/// A heterogeneous chain with `m` strategic processors (the E20 topology).
fn chain(m: usize) -> Scenario {
    let true_rates: Vec<f64> = (0..m).map(|j| 0.6 + 0.8 * ((j * 5 % 4) as f64)).collect();
    let link_rates: Vec<f64> = (0..m).map(|j| 0.1 + 0.12 * ((j * 3 % 3) as f64)).collect();
    Scenario::honest(1.0, true_rates, link_rates)
}

/// Crash plans covering every node and phase of the 6-node chain, plus a
/// stall, a drop, a delay and a corruption — the fault side of the
/// workload and the sweep streamed to the JSONL trace.
fn fault_plans(m: usize) -> Vec<FaultPlan> {
    let mut plans = Vec::new();
    for node in 1..=m {
        for phase in 1..=4u8 {
            let progress = if phase == 3 { 0.5 } else { 0.0 };
            plans.push(FaultPlan::crash(node, phase, progress));
        }
    }
    plans.push(FaultPlan::none().with_event(2, FaultKind::Stall { progress: 0.5 }));
    plans.push(FaultPlan::none().with_event(3, FaultKind::DropMessage { phase: 2 }));
    plans.push(FaultPlan::none().with_event(
        1,
        FaultKind::DelayMessage {
            phase: 3,
            delay: 0.05,
        },
    ));
    plans.push(FaultPlan::none().with_event(m, FaultKind::CorruptMessage { phase: 4 }));
    plans
}

/// The fixed workload every recorder configuration executes.
fn workload() -> (Vec<RunReport>, Vec<FtRunReport>) {
    let plain: Vec<RunReport> = (2..=5).map(|m| run(&chain(m))).collect();
    let s = chain(5); // 6-node chain: root + 5 strategic processors
    let faulty: Vec<FtRunReport> = fault_plans(5)
        .iter()
        .map(|plan| run_with_faults(&s, plan).expect("valid plan"))
        .collect();
    (plain, faulty)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    println!("E21: observability overhead — disabled-path cost and report identity");
    println!();
    obs::uninstall(); // defensive: the baseline must run with no sink

    // ---- Bit-identical reports across recorder configurations ----
    let baseline = workload();

    obs::install(Arc::new(NoopSink));
    let under_noop = workload();
    obs::uninstall();

    let memory = Arc::new(MemorySink::new());
    obs::install(memory.clone());
    let under_memory = workload();
    obs::uninstall();

    assert_eq!(baseline, under_noop, "NoopSink perturbed a report");
    assert_eq!(baseline, under_memory, "MemorySink perturbed a report");
    assert_eq!(
        format!("{baseline:?}"),
        format!("{under_memory:?}"),
        "reports differ at the representation level"
    );
    // Prove the instrumentation actually fired while enabled.
    assert!(memory.counter_total("protocol.messages") > 0.0);
    assert!(memory.counter_total("protocol.ft.detection_timeouts") > 0.0);
    assert!(!memory.histogram("protocol.makespan").is_empty());
    println!(
        "reports bit-identical across disabled / NoopSink / MemorySink \
         ({} fault-free + {} fault runs; MemorySink captured {} records)",
        baseline.0.len(),
        baseline.1.len(),
        memory.len(),
    );
    println!();

    // ---- Disabled-path overhead: interleaved batch medians ----
    const BATCHES: usize = 5;
    workload(); // warm-up, untimed
    let mut disabled_times = Vec::with_capacity(BATCHES);
    let mut noop_times = Vec::with_capacity(BATCHES);
    let mut memory_times = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let t = Instant::now();
        workload();
        disabled_times.push(t.elapsed().as_secs_f64());

        obs::install(Arc::new(NoopSink));
        let t = Instant::now();
        workload();
        noop_times.push(t.elapsed().as_secs_f64());
        obs::uninstall();

        obs::install(Arc::new(MemorySink::new()));
        let t = Instant::now();
        workload();
        memory_times.push(t.elapsed().as_secs_f64());
        obs::uninstall();
    }
    let disabled_med = median(&mut disabled_times);
    let noop_med = median(&mut noop_times);
    let memory_med = median(&mut memory_times);
    println!("workload wall time, median of {BATCHES} interleaved batches:");
    let mut t = Table::new(&["recorder", "median (ms)", "vs disabled"]);
    for (name, med) in [
        ("disabled", disabled_med),
        ("NoopSink", noop_med),
        ("MemorySink", memory_med),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:.2}", 1e3 * med),
            format!("{:+.1}%", 100.0 * (med / disabled_med - 1.0)),
        ]);
    }
    t.print();
    // The disabled path does strictly less work than the enabled paths; a
    // generous noise margin keeps this robust on loaded CI machines.
    assert!(
        disabled_med <= noop_med * 1.5,
        "disabled path measurably slower than NoopSink: {disabled_med}s vs {noop_med}s"
    );
    println!("disabled-path overhead unmeasurable (within noise of the enabled paths)");
    println!();

    // ---- Stream the 6-node fault sweep to a JSONL trace ----
    std::fs::create_dir_all("results").expect("create results/");
    let trace_path = "results/exp_obs_overhead.trace.jsonl";
    let sink = JsonlSink::create(trace_path).expect("create trace file");
    obs::install(Arc::new(sink));
    let s = chain(5);
    let mut sweep_runs = 0usize;
    for plan in fault_plans(5) {
        run_with_faults(&s, &plan).expect("valid plan");
        sweep_runs += 1;
    }
    obs::uninstall(); // flushes the JSONL writer
    let trace_text = std::fs::read_to_string(trace_path).expect("read trace back");
    let mut trace_records = 0usize;
    for (i, line) in trace_text.lines().enumerate() {
        minijson::Value::parse(line)
            .unwrap_or_else(|e| panic!("trace line {} is not valid JSON: {e}", i + 1));
        trace_records += 1;
    }
    assert!(trace_records > 0, "trace is empty");
    println!(
        "JSONL trace: {sweep_runs} fault runs on the 6-node chain -> {trace_records} records \
         in {trace_path}"
    );
    println!("  summarize with: cargo run --release -p bench --bin dls-trace -- {trace_path}");

    // ---- Render one recovery timeline ----
    let ft = run_with_faults(&s, &FaultPlan::crash(3, 3, 0.5)).expect("valid plan");
    let svg = sim::render_timeline_svg(&ft.timeline);
    assert!(svg.contains("<svg"), "timeline SVG missing root element");
    let svg_path = "results/obs_timeline.svg";
    std::fs::write(svg_path, &svg).expect("write timeline SVG");
    println!(
        "timeline SVG: mid-computation crash of P3 (makespan {:.4}) -> {svg_path}",
        ft.timeline.makespan
    );
    println!();

    // ---- JSON mirror ----
    let mut report = JsonReport::new("exp_obs_overhead");
    report
        .scalar("fault_free_runs", baseline.0.len() as f64)
        .scalar("fault_runs", baseline.1.len() as f64)
        .scalar("memory_sink_records", memory.len() as f64)
        .scalar("trace_records", trace_records as f64)
        .scalar("disabled_median_s", disabled_med)
        .scalar("noop_median_s", noop_med)
        .scalar("memory_median_s", memory_med)
        .text("trace_path", trace_path)
        .text("timeline_svg", svg_path);
    report
        .write("results/exp_obs_overhead.json")
        .expect("write JSON mirror");
    println!("JSON mirror: results/exp_obs_overhead.json");
    println!();
    println!("PASS: E21 observability is free when disabled and never perturbs reports");
}
