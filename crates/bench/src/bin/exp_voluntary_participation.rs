//! E5 — Theorem 5.4: voluntary participation.
//!
//! Distribution of truthful-agent utilities across thousands of random
//! networks of every shape: the minimum must be non-negative (a truthful
//! agent never loses by participating). Also reports the Lemma 5.4
//! identity `U_j = w_{j-1} − w̄_{j-1}` and its tightness (utilities
//! approach 0 when the predecessor barely benefits from the tail).
//!
//! ```sh
//! cargo run --release -p bench --bin exp_voluntary_participation
//! ```

use bench::{par_sweep, Stats, Table};
use mechanism::verify::participation_report;
use mechanism::{Agent, DlsLbl};
use workloads::{ChainConfig, ChainShape};

fn main() {
    println!("E5: Theorem 5.4 — truthful utilities are never negative");
    println!();
    let trials = 2000u64;
    let mut table = Table::new(&["shape", "n", "samples", "min U", "mean U", "max U", "σ(U)"]);
    for shape in ChainShape::all() {
        for n in [3usize, 9, 25] {
            let cfg = ChainConfig {
                processors: n,
                shape,
                ..Default::default()
            };
            let utilities: Vec<f64> = par_sweep(0..trials, |seed| {
                let net = workloads::chain(&cfg, seed);
                let parts = workloads::mechanism_parts(&net);
                let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
                let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
                participation_report(&mech, &agents).utilities
            })
            .into_iter()
            .flatten()
            .collect();
            let s = Stats::of(&utilities);
            table.row(vec![
                shape.label().to_string(),
                n.to_string(),
                s.n.to_string(),
                format!("{:+.3e}", s.min),
                format!("{:.4}", s.mean),
                format!("{:.4}", s.max),
                format!("{:.4}", s.std),
            ]);
            assert!(
                s.min >= -1e-12,
                "negative truthful utility under {shape:?} n={n}"
            );
        }
    }
    table.print();
    println!();

    // Lemma 5.4 identity on a fixed instance.
    let mech = DlsLbl::new(1.0, vec![0.25, 0.15, 0.40, 0.10]);
    let agents: Vec<Agent> = [1.8, 0.6, 2.5, 1.2]
        .iter()
        .map(|&t| Agent::new(t))
        .collect();
    let outcome = mech.settle_truthful(&agents);
    println!("Lemma 5.4 identity U_j = w_(j-1) − w̄_(j-1) on the headline instance:");
    for j in 1..=agents.len() {
        let w_pred = outcome.bid_network.w(j - 1);
        let wbar_pred = outcome.solution.equivalent[j - 1];
        println!(
            "  P{j}: U = {:+.6}, w_(j-1) − w̄_(j-1) = {:+.6}",
            outcome.utility(j),
            w_pred - wbar_pred
        );
        assert!((outcome.utility(j) - (w_pred - wbar_pred)).abs() < 1e-12);
    }
    println!();
    println!(
        "PASS: Theorem 5.4 reproduced across {} samples",
        6 * 3 * trials
    );
}
