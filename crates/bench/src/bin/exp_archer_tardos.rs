//! E14 (extension) — Archer–Tardos payments vs DLS-LBL payments.
//!
//! Both schemes are strategyproof over the same chain allocation rule, so
//! this experiment compares the *price of trust architecture*: the
//! tamper-proof Archer–Tardos center pays a rebate integral, the
//! autonomous-node DLS-LBL pays compensation plus the marginal-improvement
//! bonus. It reports per-agent utilities and total mechanism outlay under
//! both, across random networks, and runs the bus instantiation realizing
//! the companion mechanism \[14\].
//!
//! ```sh
//! cargo run --release -p bench --bin exp_archer_tardos
//! ```

use bench::{par_sweep, Stats, Table};
use mechanism::archer_tardos::{is_monotone, ArcherTardos, ChainRule, StarRule};
use mechanism::{Agent, DlsLbl};
use workloads::ChainConfig;

fn main() {
    println!("E14: Archer–Tardos (tamper-proof) vs DLS-LBL (autonomous-node) payments");
    println!();
    let w_max = 50.0;

    // Headline instance.
    let truth = [1.8f64, 0.6, 2.5, 1.2];
    let links = vec![0.25, 0.15, 0.40, 0.10];
    let at = ArcherTardos::new(
        ChainRule {
            root_rate: 1.0,
            link_rates: links.clone(),
        },
        w_max,
    );
    let dls = DlsLbl::new(1.0, links.clone());
    let agents: Vec<Agent> = truth.iter().map(|&t| Agent::new(t)).collect();
    let lbl = dls.settle_truthful(&agents);
    let mut t = Table::new(&[
        "agent",
        "α_j",
        "U (Archer–Tardos)",
        "U (DLS-LBL)",
        "P (AT)",
        "Q (LBL)",
    ]);
    let mut at_outlay = 0.0;
    for j in 1..=truth.len() {
        let out = at.settle(&truth, j, truth[j - 1]);
        at_outlay += out.payment;
        t.row(vec![
            format!("P{j}"),
            format!("{:.5}", out.load),
            format!("{:+.5}", out.utility),
            format!("{:+.5}", lbl.utility(j)),
            format!("{:.5}", out.payment),
            format!("{:.5}", lbl.agents[j - 1].breakdown.payment),
        ]);
    }
    t.print();
    println!(
        "total outlay: Archer–Tardos {:.5} vs DLS-LBL {:.5}",
        at_outlay,
        lbl.total_payment()
    );
    println!();

    // Random sweep: both strategyproof, utilities non-negative; outlay
    // ratio distribution.
    let trials = 200u64;
    let results = par_sweep(0..trials, |seed| {
        let cfg = ChainConfig {
            processors: 5,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, seed);
        let parts = workloads::mechanism_parts(&net);
        let rule = ChainRule {
            root_rate: parts.root_rate,
            link_rates: parts.link_rates.clone(),
        };
        // Monotonicity precondition.
        let grid: Vec<f64> = (1..=20).map(|i| i as f64 * 0.5).collect();
        let mono =
            (1..=parts.true_rates.len()).all(|j| is_monotone(&rule, &parts.true_rates, j, &grid));
        let at = ArcherTardos::new(rule, w_max);
        let dls = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
        let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
        let lbl = dls.settle_truthful(&agents);
        let mut at_total = 0.0;
        let mut min_at_u = f64::INFINITY;
        for j in 1..=agents.len() {
            let out = at.settle(&parts.true_rates, j, parts.true_rates[j - 1]);
            at_total += out.payment;
            min_at_u = min_at_u.min(out.utility);
        }
        (mono, min_at_u, at_total / lbl.total_payment().max(1e-12))
    });
    let all_monotone = results.iter().all(|r| r.0);
    let min_u = results.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let ratios: Vec<f64> = results.iter().map(|r| r.2).collect();
    let s = Stats::of(&ratios);
    println!("random sweep ({trials} chains of 5):");
    println!("  allocation rule monotone everywhere: {all_monotone}");
    println!("  min Archer–Tardos truthful utility: {min_u:+.3e} (≥ 0 required)");
    println!(
        "  outlay ratio AT/LBL: mean {:.3}, min {:.3}, max {:.3}",
        s.mean, s.min, s.max
    );
    assert!(all_monotone);
    assert!(min_u >= -1e-9);
    println!();

    // Bus instantiation (companion mechanism [14]).
    let bus = ArcherTardos::new(StarRule::bus(1.0, 4, 0.3), w_max);
    let bus_truth = [1.5f64, 0.9, 2.0, 1.1];
    let sweep_grid: Vec<f64> = (1..=60).map(|i| i as f64 * 0.25).collect();
    let mut violations = 0;
    for j in 1..=4 {
        let honest = bus.settle(&bus_truth, j, bus_truth[j - 1]).utility;
        for (_, u) in bus.sweep(&bus_truth, j, bus_truth[j - 1], &sweep_grid) {
            if u > honest + 1e-6 {
                violations += 1;
            }
        }
    }
    println!(
        "bus network (companion [14]): strategyproofness violations over the grid: {violations}"
    );
    assert_eq!(violations, 0);
    println!();
    println!("PASS: E14 — two strategyproof payment schemes, one allocation rule");
}
