//! E15 (extension) — the affine cost model: startup overheads break the
//! all-participate property.
//!
//! Theorem 2.1 says every processor participates under the *linear* cost
//! model. With affine costs (per-transfer and per-computation startups),
//! far processors get priced out: the experiment sweeps the communication
//! startup and reports the participation count and makespan, reproducing
//! the known qualitative behavior from the DLT literature \[6\].
//!
//! ```sh
//! cargo run --release -p bench --bin exp_affine
//! ```

use bench::{par_sweep, Table};
use dlt::affine::{self, AffineOverheads};
use dlt::linear;
use dlt::model::LinearNetwork;
use workloads::ChainConfig;

fn main() {
    println!("E15: affine cost model — participation vs startup overheads");
    println!();

    let net = LinearNetwork::homogeneous(8, 1.0, 0.3);
    let linear_ms = linear::solve(&net).makespan();
    println!("8 homogeneous processors (w = 1, z = 0.3); linear-model makespan {linear_ms:.5}");
    let mut t = Table::new(&["comm startup c", "participants", "makespan", "vs linear"]);
    for &c in &[0.0, 0.001, 0.005, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0] {
        let sol = affine::solve(&net, &AffineOverheads::uniform(net.len(), 0.0, c));
        t.row(vec![
            format!("{c}"),
            sol.participants.to_string(),
            format!("{:.5}", sol.makespan),
            format!("{:+.1}%", 100.0 * (sol.makespan / linear_ms - 1.0)),
        ]);
    }
    t.print();
    println!();

    // Participation monotonically shrinks with the startup.
    let mut last = usize::MAX;
    for &c in &[0.0, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0] {
        let sol = affine::solve(&net, &AffineOverheads::uniform(net.len(), 0.0, c));
        assert!(sol.participants <= last);
        last = sol.participants;
    }
    assert_eq!(
        affine::solve(&net, &AffineOverheads::uniform(net.len(), 0.0, 100.0)).participants,
        1,
        "prohibitive startups leave the root alone"
    );

    // Consistency sweep: affine with zero overheads ≡ linear model, and
    // participating processors always finish together.
    let trials = 500u64;
    let bad: usize = par_sweep(0..trials, |seed| {
        let cfg = ChainConfig {
            processors: 6,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, seed);
        let zero = affine::solve(&net, &AffineOverheads::zero(net.len()));
        let lin = linear::solve(&net);
        let mut bad = 0usize;
        if (zero.makespan - lin.makespan()).abs() > 1e-7 {
            bad += 1;
        }
        let oh = AffineOverheads::uniform(net.len(), 0.01, 0.02);
        let sol = affine::solve(&net, &oh);
        let times = affine::finish_times(&net, &oh, &sol.alloc);
        for (i, &t) in times.iter().enumerate() {
            if sol.alloc.alpha(i) > 1e-9 && (t - sol.makespan).abs() > 1e-6 {
                bad += 1;
            }
        }
        bad
    })
    .into_iter()
    .sum();
    println!("random consistency sweep ({trials} chains): violations = {bad}");
    assert_eq!(bad, 0);
    println!();
    println!("PASS: E15 — affine startups exclude far processors, zero-overhead case ≡ Theorem 2.1 world");
}
