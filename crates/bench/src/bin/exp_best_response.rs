//! E13 (extension) — best-response dynamics: strategyproofness as a
//! dynamical property.
//!
//! From any starting bid profile, agents repeatedly switch to their
//! utility-maximizing bid. Under DLS-LBL the dynamics jump to the truthful
//! profile in one round and stay there; under the naive bid-priced
//! baseline they drift away from the truth. This turns Theorem 5.3 into a
//! market-convergence statement.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_best_response
//! ```

use bench::{par_sweep, Table};
use mechanism::equilibrium::{best_response_dynamics, BidGame};
use mechanism::naive_baseline::NaiveMechanism;
use mechanism::{Agent, DlsLbl};
use workloads::ChainConfig;

fn grid() -> Vec<f64> {
    let mut g: Vec<f64> = (1..=40).map(|i| 0.05 + i as f64 * 0.075).collect();
    g.push(1.0);
    g
}

fn main() {
    println!("E13: best-response dynamics under DLS-LBL vs the naive baseline");
    println!();

    // Trajectory detail on the headline instance.
    let agents = vec![
        Agent::new(1.8),
        Agent::new(0.6),
        Agent::new(2.5),
        Agent::new(1.2),
    ];
    let links = vec![0.25, 0.15, 0.40, 0.10];
    let dls = DlsLbl::new(1.0, links.clone());
    let naive = NaiveMechanism::new(1.0, links, 1.2);
    let start = vec![3.6, 0.3, 5.0, 0.6]; // everyone starts far from truth

    for (name, traj) in [
        (
            "DLS-LBL",
            best_response_dynamics(&dls, &agents, &start, &grid(), 8),
        ),
        (
            "naive",
            best_response_dynamics(&naive, &agents, &start, &grid(), 8),
        ),
    ] {
        println!(
            "{name}: {} round(s), converged = {}",
            traj.profiles.len() - 1,
            traj.converged
        );
        let mut t = Table::new(&["round", "bid(P1)/t", "bid(P2)/t", "bid(P3)/t", "bid(P4)/t"]);
        for (r, p) in traj.profiles.iter().enumerate() {
            t.row(vec![
                r.to_string(),
                format!("{:.3}", p[0] / agents[0].true_rate),
                format!("{:.3}", p[1] / agents[1].true_rate),
                format!("{:.3}", p[2] / agents[2].true_rate),
                format!("{:.3}", p[3] / agents[3].true_rate),
            ]);
        }
        t.print();
        println!(
            "distance from truth: {:.3e}",
            traj.distance_from_truth(&agents)
        );
        println!();
        if name == "DLS-LBL" {
            assert!(traj.distance_from_truth(&agents) < 1e-9);
        } else {
            assert!(
                traj.distance_from_truth(&agents) > 0.05,
                "baseline should drift"
            );
        }
    }

    // Randomized convergence sweep.
    let trials = 300u64;
    let failures: usize = par_sweep(0..trials, |seed| {
        let cfg = ChainConfig {
            processors: 4 + (seed % 4) as usize,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, seed);
        let parts = workloads::mechanism_parts(&net);
        let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
        let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
        // Deterministic pseudo-random start profile.
        let start: Vec<f64> = agents
            .iter()
            .enumerate()
            .map(|(i, a)| a.true_rate * (0.3 + ((seed as usize + i * 13) % 27) as f64 / 10.0))
            .collect();
        let traj = best_response_dynamics(&mech, &agents, &start, &grid(), 8);
        usize::from(!(traj.converged && traj.distance_from_truth(&agents) < 1e-9))
    })
    .into_iter()
    .sum();
    println!("random sweep: {trials} instances, non-convergence to truth: {failures}");
    assert_eq!(failures, 0);

    // Sanity: the BidGame abstraction is object-safe enough for both.
    fn _takes_game<G: BidGame>(_: &G) {}
    _takes_game(&dls);
    _takes_game(&naive);

    println!();
    println!("PASS: E13 — dominant-strategy truthfulness shows up as one-shot convergence");
}
