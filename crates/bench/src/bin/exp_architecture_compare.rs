//! E10 — cross-architecture comparison: linear (boundary and interior
//! origination), bus, star, and tree scheduling on matched resources.
//!
//! The paper's §1/§6 situate DLS-LBL in a program covering bus \[14\] and
//! tree \[9\] networks. This experiment quantifies the architectural
//! trade-offs on identical processor/link inventories:
//!
//! * chains pay for depth (store-and-forward hops), stars for the shared
//!   root port;
//! * interior origination dominates boundary origination on the same chain;
//! * the homogeneous chain saturates at the closed-form fixed point
//!   `w̄* = (−z + √(z²+4wz))/2` — adding processors beyond a few has
//!   vanishing value.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_architecture_compare
//! ```

use bench::{par_sweep, Stats, Table};
use dlt::interior::{self, InteriorNetwork};
use dlt::model::{LinearNetwork, StarNetwork, TreeNode};
use dlt::{closed_form, linear, star, tree};
use workloads::ChainConfig;

fn main() {
    println!("E10: architecture comparison on matched resources");
    println!();

    // --- random inventories -------------------------------------------
    let trials = 1000u64;
    for n in [4usize, 8, 16] {
        let cfg = ChainConfig {
            processors: n,
            ..Default::default()
        };
        let results = par_sweep(0..trials, |seed| {
            let net = workloads::chain(&cfg, seed);
            let w = net.rates_w();
            let z = net.rates_z();
            let chain_ms = linear::solve(&net).makespan();
            let star_net = StarNetwork::from_rates(&w, &z);
            let star_ms = star::solve(&star_net).makespan;
            let bus_z = z.iter().sum::<f64>() / z.len() as f64;
            let bus_ms = star::solve(&StarNetwork::bus(w[0], &w[1..], bus_z)).makespan;
            let interior_ms = interior::solve(&InteriorNetwork::new(net.clone(), n / 2)).makespan;
            // binary tree over a same-sized random inventory
            let t = workloads::tree(&cfg, 2, seed);
            let tree_ms = tree::makespan(&t);
            (chain_ms, star_ms, bus_ms, interior_ms, tree_ms)
        });
        let col = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| -> Stats {
            Stats::of(&results.iter().map(f).collect::<Vec<_>>())
        };
        let chain = col(|r| r.0);
        let star_s = col(|r| r.1);
        let bus = col(|r| r.2);
        let inter = col(|r| r.3);
        let tr = col(|r| r.4);
        let mut t = Table::new(&["architecture", "mean makespan", "min", "max"]);
        t.row(vec![
            "chain (boundary)".into(),
            format!("{:.4}", chain.mean),
            format!("{:.4}", chain.min),
            format!("{:.4}", chain.max),
        ]);
        t.row(vec![
            "chain (interior)".into(),
            format!("{:.4}", inter.mean),
            format!("{:.4}", inter.min),
            format!("{:.4}", inter.max),
        ]);
        t.row(vec![
            "star".into(),
            format!("{:.4}", star_s.mean),
            format!("{:.4}", star_s.min),
            format!("{:.4}", star_s.max),
        ]);
        t.row(vec![
            "bus (avg z)".into(),
            format!("{:.4}", bus.mean),
            format!("{:.4}", bus.min),
            format!("{:.4}", bus.max),
        ]);
        t.row(vec![
            "binary tree".into(),
            format!("{:.4}", tr.mean),
            format!("{:.4}", tr.min),
            format!("{:.4}", tr.max),
        ]);
        println!("n = {n} processors ({trials} random inventories):");
        t.print();
        // On heterogeneous chains interior origination usually wins (the
        // longest store-and-forward path halves) but is not guaranteed to:
        // the midpoint processor may be the slow one. Report the win rate;
        // the guaranteed dominance on *homogeneous* chains is asserted in
        // `dlt::interior`'s tests.
        let wins = results.iter().filter(|r| r.3 <= r.0 + 1e-9).count();
        println!(
            "interior ≤ boundary: {wins}/{trials} ({:.0}%); mean speedup {:.2}×",
            100.0 * wins as f64 / trials as f64,
            chain.mean / inter.mean
        );
        assert!(
            wins as f64 / trials as f64 > 0.5,
            "interior should usually win"
        );
        println!();
    }

    // --- who wins, where: chain vs star as links slow down -------------
    println!("chain vs star crossover (8 homogeneous processors, w = 1, link rate z sweeps):");
    let mut t = Table::new(&["z", "chain makespan", "star makespan", "winner"]);
    for &z in &[0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let w = vec![1.0; 8];
        let zs = vec![z; 7];
        let chain_ms = linear::solve(&LinearNetwork::from_rates(&w, &zs)).makespan();
        let star_ms = star::solve(&StarNetwork::from_rates(&w, &zs)).makespan;
        t.row(vec![
            format!("{z}"),
            format!("{chain_ms:.4}"),
            format!("{star_ms:.4}"),
            if chain_ms < star_ms - 1e-12 {
                "chain"
            } else {
                "star"
            }
            .into(),
        ]);
    }
    t.print();
    println!();

    // --- homogeneous chain saturation (the fixed point) ----------------
    println!("homogeneous chain saturation (w = 1, z = 0.2):");
    let prof = closed_form::saturation_profile(1.0, 0.2, 32);
    let mut t = Table::new(&["n", "w̄(n)", "fixed point", "gap"]);
    for &n in &[1usize, 2, 4, 8, 16, 32] {
        let v = prof.profile[n - 1];
        t.row(vec![
            n.to_string(),
            format!("{v:.6}"),
            format!("{:.6}", prof.fixed_point),
            format!("{:.2e}", v - prof.fixed_point),
        ]);
    }
    t.print();
    assert!(prof.profile[31] - prof.fixed_point < 1e-3);
    println!();

    // --- degenerate-tree sanity: tree solver ≡ chain solver ------------
    let net = workloads::chain(
        &ChainConfig {
            processors: 12,
            ..Default::default()
        },
        7,
    );
    let chain_ms = linear::solve(&net).makespan();
    let tree_ms = tree::makespan(&TreeNode::from_chain(&net));
    assert!((chain_ms - tree_ms).abs() < 1e-10);
    println!(
        "degenerate-tree cross-check: |chain − tree| = {:.2e} ✓",
        (chain_ms - tree_ms).abs()
    );
    println!();
    println!("PASS: E10 architecture comparison complete");
}
