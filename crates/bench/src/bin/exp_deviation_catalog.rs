//! E6 — Lemma 5.1 / Theorem 5.1: the deviation catalog.
//!
//! Runs the full four-phase protocol with every deviation type injected at
//! every strategic position across many random chains, and reports, per
//! deviation type: detection rate (finable deviations must be 100 %),
//! false-accusation rate against honest nodes (must be 0 %, Lemma 5.2),
//! and the deviant's mean utility delta vs compliance (must be negative).
//!
//! ```sh
//! cargo run --release -p bench --bin exp_deviation_catalog
//! ```

use bench::{par_sweep, Stats, Table};
use mechanism::FineSchedule;
use protocol::{Deviation, EntryKind, Scenario};
use workloads::ChainConfig;

fn main() {
    println!("E6: Lemma 5.1 — every deviation is detected, fined, and unprofitable");
    println!();
    let trials = 300u64;
    let cfg = ChainConfig {
        processors: 6,
        ..Default::default()
    };

    let mut table = Table::new(&[
        "deviation",
        "runs",
        "detected",
        "honest fined",
        "mean ΔU(deviant)",
        "max ΔU",
    ]);

    for deviation in Deviation::catalog() {
        let results = par_sweep(0..trials, |seed| {
            let net = workloads::chain(&cfg, seed);
            let parts = workloads::mechanism_parts(&net);
            let m = parts.true_rates.len();
            // Deterministic target position; skip terminal for the
            // deviations the terminal processor cannot perform.
            let mut target = 1 + (seed as usize % m);
            if matches!(
                deviation,
                Deviation::ShedLoad { .. }
                    | Deviation::WrongDistribution { .. }
                    | Deviation::WrongEquivalent { .. }
            ) && target == m
            {
                target = 1.max(m - 1);
            }
            let base = Scenario::honest(
                parts.root_rate,
                parts.true_rates.clone(),
                parts.link_rates.clone(),
            )
            .with_fine(FineSchedule::new(
                30.0 * parts.true_rates.iter().cloned().fold(1.0, f64::max),
                1.0, // audit every bill so Phase IV detection is exact
            ))
            .with_seed(seed);
            let honest = protocol::run(&base);
            let deviant = protocol::run(&base.clone().with_deviation(target, deviation));
            let detected = match deviation {
                Deviation::FalseAccusation => deviant
                    .arbitrations
                    .iter()
                    .any(|a| !a.substantiated && a.claimant == target),
                _ if deviation.is_finable() => deviant.convictions().any(|a| a.accused == target),
                _ => true, // priced deviations have nothing to detect
            };
            // Lemma 5.2: no honest node is ever net-fined.
            let honest_fined = (1..=m)
                .filter(|&j| j != target)
                .any(|j| deviant.ledger.net_of(j, EntryKind::Fine) < 0.0);
            let delta = deviant.utility(target) - honest.utility(target);
            (detected, honest_fined, delta)
        });
        let detected = results.iter().filter(|r| r.0).count();
        let honest_fined = results.iter().filter(|r| r.1).count();
        let deltas: Vec<f64> = results.iter().map(|r| r.2).collect();
        let s = Stats::of(&deltas);
        table.row(vec![
            deviation.label().to_string(),
            trials.to_string(),
            format!("{}/{}", detected, trials),
            honest_fined.to_string(),
            format!("{:+.4}", s.mean),
            format!("{:+.4}", s.max),
        ]);
        assert_eq!(
            detected as u64,
            trials,
            "{} detection not 100%",
            deviation.label()
        );
        assert_eq!(
            honest_fined,
            0,
            "honest node fined under {}",
            deviation.label()
        );
        assert!(s.max <= 1e-9, "{} profited somewhere", deviation.label());
    }
    table.print();
    println!();
    println!("PASS: 100% detection, 0 false fines (Lemma 5.2), all deltas ≤ 0 (Theorem 5.1)");
}
