//! E1 — Figure 2 reproduction: the Gantt chart of chain execution.
//!
//! Regenerates the paper's Figure 2 (execution on an (m+1)-processor linear
//! network with boundary origination) from the discrete-event simulator,
//! and verifies the timeline against the analytic closed forms
//! (eqs. 2.1–2.2) to machine precision.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_fig2_gantt
//! ```

#![allow(clippy::needless_range_loop)] // parallel arrays in the report table

use bench::Table;
use dlt::linear;
use dlt::model::LinearNetwork;
use dlt::timing::finish_times;

fn main() {
    // The paper's figure is qualitative; we instantiate a representative
    // heterogeneous 5-processor chain.
    let net = LinearNetwork::from_rates(&[1.0, 1.8, 0.6, 2.5, 1.2], &[0.25, 0.15, 0.40, 0.10]);
    let sol = linear::solve(&net);
    let run = sim::simulate_honest(&net, &sol.local);

    println!("E1: Figure 2 — Gantt chart of optimal chain execution");
    println!("network: {net}");
    println!();
    println!("legend: ▒ receive   █ compute   ░ send   (comm row above comp row, as in the paper)");
    println!();
    print!("{}", run.gantt.render_ascii(72));
    println!();

    let analytic = finish_times(&net, &sol.alloc);
    let mut t = Table::new(&[
        "proc",
        "α_i",
        "recv end",
        "T_i (sim)",
        "T_i (eq. 2.1/2.2)",
        "|Δ|",
    ]);
    for i in 0..net.len() {
        let recv_end = run.gantt.lanes[i]
            .of(sim::Activity::Receive)
            .map(|s| s.end)
            .fold(0.0, f64::max);
        t.row(vec![
            format!("P{i}"),
            format!("{:.6}", sol.alloc.alpha(i)),
            format!("{recv_end:.6}"),
            format!("{:.6}", run.finish_times[i]),
            format!("{:.6}", analytic[i]),
            format!("{:.2e}", (run.finish_times[i] - analytic[i]).abs()),
        ]);
    }
    t.print();

    let max_err = (0..net.len())
        .map(|i| (run.finish_times[i] - analytic[i]).abs())
        .fold(0.0, f64::max);
    println!();
    println!("simulated vs analytic max error: {max_err:.3e}");
    println!(
        "makespan: {:.6} (= w̄_0 = {:.6})",
        run.makespan,
        sol.makespan()
    );
    assert!(max_err < 1e-12, "simulation must reproduce the closed form");
    run.gantt.validate_one_port().expect("one-port consistency");

    // Publication-quality output alongside the ASCII art.
    let svg = sim::render_svg(&run.gantt, &sim::SvgStyle::default());
    let path = "results/fig2_gantt.svg";
    if std::fs::create_dir_all("results").is_ok() && std::fs::write(path, &svg).is_ok() {
        println!("SVG written to {path}");
    }
    println!("PASS: DES timeline ≡ eqs. 2.1–2.2; one-port/front-end constraints hold");
}
