//! E4 — Theorem 5.3 / Lemma 5.3: strategyproofness sweeps.
//!
//! For every strategic processor, sweeps its declared rate across a dense
//! grid (others truthful, and also others adversarial) and records the
//! utility curve. The truthful bid must maximize utility; the experiment
//! also prints the contrast with the naive bid-priced baseline, which IS
//! manipulable. Covers terminal and interior processors, under- and
//! over-bids, and slack execution (`w̃ > t`).
//!
//! ```sh
//! cargo run --release -p bench --bin exp_strategyproof_sweep
//! ```

use bench::{par_sweep, JsonReport, Table};
use mechanism::naive_baseline::NaiveMechanism;
use mechanism::verify::{bid_sweep, default_factor_grid, strategyproofness_report};
use mechanism::{Agent, Conduct, DlsLbl};
use workloads::ChainConfig;

fn main() {
    if let Some(path) = obs::init_from_env() {
        eprintln!("tracing to {path} (DLS_TRACE)");
    }
    println!("E4: Theorem 5.3 — utility vs bid (truth must dominate)");
    println!();
    let mut mirror = JsonReport::new("exp_strategyproof_sweep");

    // Headline instance: the curve for each agent around the truthful bid.
    let mech = DlsLbl::new(1.0, vec![0.25, 0.15, 0.40, 0.10]);
    let agents: Vec<Agent> = [1.8, 0.6, 2.5, 1.2]
        .iter()
        .map(|&t| Agent::new(t))
        .collect();
    let factors = [0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0, 4.0];
    let mut t = Table::new(&["bid/t", "U(P1)", "U(P2)", "U(P3)", "U(P4 terminal)"]);
    let sweeps = strategyproofness_report(&mech, &agents, &factors);
    for (k, &f) in factors.iter().enumerate() {
        t.row(vec![
            format!("{f:.2}"),
            format!("{:+.5}", sweeps[0].points[k].utility),
            format!("{:+.5}", sweeps[1].points[k].utility),
            format!("{:+.5}", sweeps[2].points[k].utility),
            format!("{:+.5}", sweeps[3].points[k].utility),
        ]);
    }
    t.print();
    mirror.table("utility_vs_bid", &t);
    for s in &sweeps {
        assert!(
            s.truthful_is_best(1e-9),
            "P{} max gain {}",
            s.agent,
            s.max_gain()
        );
    }
    println!("(row 1.00 is the maximum of every column ✓)");
    println!();

    // Slack execution: bidding truth but running slower must also lose.
    let truthful: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
    let base = mech.settle(&truthful, false);
    let mut t2 = Table::new(&["agent", "U(full speed)", "U(w̃=1.5t)", "U(w̃=3t)"]);
    for j in 1..=agents.len() {
        let slow = |factor: f64| {
            let mut c = truthful.clone();
            c[j - 1] = Conduct::slack_execution(agents[j - 1], factor);
            mech.settle(&c, false).utility(j)
        };
        let u15 = slow(1.5);
        let u30 = slow(3.0);
        assert!(u15 <= base.utility(j) + 1e-12 && u30 <= u15 + 1e-12);
        t2.row(vec![
            format!("P{j}"),
            format!("{:+.5}", base.utility(j)),
            format!("{u15:+.5}"),
            format!("{u30:+.5}"),
        ]);
    }
    t2.print();
    mirror.table("slack_execution", &t2);
    println!("(slack execution is verified by the meter and priced down ✓)");
    println!();

    // Wide randomized check: thousands of networks, dense grid, others
    // truthful AND others adversarial.
    let trials = 500u64;
    let grid = default_factor_grid();
    let violations: usize = par_sweep(0..trials, |seed| {
        let cfg = ChainConfig {
            processors: 2 + (seed % 7) as usize + 1,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, seed);
        let parts = workloads::mechanism_parts(&net);
        let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
        let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
        let mut v = 0usize;
        // others truthful
        for s in strategyproofness_report(&mech, &agents, &grid) {
            if !s.truthful_is_best(1e-9) {
                v += 1;
            }
        }
        // others adversarial (deterministic per-seed misreports)
        let mut adv: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        for (k, c) in adv.iter_mut().enumerate() {
            let f = 0.5 + ((seed as usize + k * 3) % 30) as f64 / 15.0;
            *c = Conduct::misreport(agents[k], f);
        }
        for j in 1..=agents.len() {
            let s = bid_sweep(&mech, &agents, j, &adv, &grid);
            if !s.truthful_is_best(1e-9) {
                v += 1;
            }
        }
        v
    })
    .into_iter()
    .sum();
    println!(
        "random sweep: {trials} networks × all agents × {} bids × 2 rival profiles — violations: {violations}",
        grid.len()
    );
    assert_eq!(violations, 0);
    println!();

    // Contrast: the naive baseline is manipulable.
    let naive = NaiveMechanism::new(1.0, vec![0.25, 0.15, 0.40, 0.10], 1.2);
    let mut manipulable = 0;
    for j in 1..=agents.len() {
        let truthful_u = naive.sweep(&agents, j, &[1.0])[0].1;
        let (bf, bu) = naive.best_factor(&agents, j, &default_factor_grid());
        if bu > truthful_u + 1e-9 {
            manipulable += 1;
            println!(
                "naive baseline: P{j} best bid {bf:.2}×t gains {:+.4} over truth",
                bu - truthful_u
            );
        }
    }
    assert!(manipulable > 0, "baseline should be manipulable somewhere");
    println!();
    mirror
        .scalar("random_trials", trials as f64)
        .scalar("bid_grid_size", grid.len() as f64)
        .scalar("violations", violations as f64)
        .scalar("naive_manipulable_agents", manipulable as f64);
    mirror
        .write("results/exp_strategyproof_sweep.json")
        .expect("write JSON mirror");
    obs::flush();
    println!("PASS: DLS-LBL strategyproof on every instance; naive baseline manipulable");
}
