//! E19 (extension) — DLS-LIL: the interior-origination mechanism (§6
//! future work).
//!
//! With the obedient root strictly inside the chain, each arm is a
//! boundary chain and the DLS-LBL payment applies arm-wise (the bonus is
//! scale-free). Checks: strategyproofness and voluntary participation on
//! random interior chains, and the *arm-independence* property — an
//! agent's utility does not depend on the other arm's bids at all.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_interior_mechanism
//! ```

use bench::{par_sweep, JsonReport, Table};
use mechanism::dls_interior::{Arm, DlsInterior};
use mechanism::{Agent, Conduct};

fn main() {
    if let Some(path) = obs::init_from_env() {
        eprintln!("tracing to {path} (DLS_TRACE)");
    }
    println!("E19: DLS-LIL — interior load origination");
    println!();
    let trials = 300u64;
    let factors = [0.3, 0.6, 0.9, 1.0, 1.3, 2.0, 4.0];
    let results = par_sweep(0..trials, |seed| {
        // Deterministic random-ish arms of 1..=3 agents each.
        let h = |k: u64| 0.3 + ((seed.wrapping_mul(31).wrapping_add(k * 17)) % 40) as f64 / 13.0;
        let left_n = 1 + (seed % 3) as usize;
        let right_n = 1 + ((seed / 3) % 3) as usize;
        let left_links: Vec<f64> = (0..left_n).map(|k| 0.05 + h(k as u64) / 10.0).collect();
        let right_links: Vec<f64> = (0..right_n)
            .map(|k| 0.05 + h(100 + k as u64) / 10.0)
            .collect();
        let mech = DlsInterior::new(1.0, left_links, right_links);
        let left: Vec<Agent> = (0..left_n).map(|k| Agent::new(h(200 + k as u64))).collect();
        let right: Vec<Agent> = (0..right_n)
            .map(|k| Agent::new(h(300 + k as u64)))
            .collect();
        let honest = mech.settle_truthful(&left, &right);
        let lt: Vec<Conduct> = left.iter().map(|&a| Conduct::truthful(a)).collect();
        let rt: Vec<Conduct> = right.iter().map(|&a| Conduct::truthful(a)).collect();
        let mut violations = 0usize;
        let mut min_u = f64::INFINITY;
        for p in 1..=left_n {
            min_u = min_u.min(honest.utility(Arm::Left, p));
            for &f in &factors {
                let mut lc = lt.clone();
                lc[p - 1] = Conduct::misreport(left[p - 1], f);
                if mech.settle(&lc, &rt).utility(Arm::Left, p) > honest.utility(Arm::Left, p) + 1e-9
                {
                    violations += 1;
                }
            }
        }
        for p in 1..=right_n {
            min_u = min_u.min(honest.utility(Arm::Right, p));
            for &f in &factors {
                let mut rc = rt.clone();
                rc[p - 1] = Conduct::misreport(right[p - 1], f);
                if mech.settle(&lt, &rc).utility(Arm::Right, p)
                    > honest.utility(Arm::Right, p) + 1e-9
                {
                    violations += 1;
                }
            }
        }
        // Arm independence: distort the whole right arm, left utilities
        // must not move.
        let mut rc = rt.clone();
        for (k, c) in rc.iter_mut().enumerate() {
            *c = Conduct::misreport(right[k], if k % 2 == 0 { 0.5 } else { 2.0 });
        }
        let cross = mech.settle(&lt, &rc);
        let mut max_cross = 0.0f64;
        for p in 1..=left_n {
            max_cross =
                max_cross.max((cross.utility(Arm::Left, p) - honest.utility(Arm::Left, p)).abs());
        }
        (violations, min_u, max_cross)
    });
    let violations: usize = results.iter().map(|r| r.0).sum();
    let min_u = results.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let max_cross = results.iter().map(|r| r.2).fold(0.0f64, f64::max);
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["random interior chains".into(), trials.to_string()]);
    t.row(vec![
        "strategyproofness violations".into(),
        violations.to_string(),
    ]);
    t.row(vec!["min truthful utility".into(), format!("{min_u:+.3e}")]);
    t.row(vec![
        "max cross-arm utility influence".into(),
        format!("{max_cross:.3e}"),
    ]);
    t.print();
    assert_eq!(violations, 0);
    assert!(min_u >= -1e-9);
    assert!(max_cross < 1e-12, "arm independence must be exact");
    println!();
    let mut mirror = JsonReport::new("exp_interior_mechanism");
    mirror
        .table("metrics", &t)
        .scalar("random_trials", trials as f64)
        .scalar("violations", violations as f64)
        .scalar("min_truthful_utility", min_u)
        .scalar("max_cross_arm_influence", max_cross);
    mirror
        .write("results/exp_interior_mechanism.json")
        .expect("write JSON mirror");
    obs::flush();
    println!("PASS: E19 — interior origination: strategyproof, VP, and arm-independent");
}
