//! E23 — closed-loop load harness for `dls-serve`.
//!
//! Starts the server in-process on loopback and drives it with a
//! configurable number of connections, each pipelining a deterministic
//! request mix (`workloads::requests`). Three phases:
//!
//! 1. **Identity** — every distinct chain is solved twice on one
//!    connection; the cached response must be bit-identical to the cold
//!    solve (the solver-cache contract).
//! 2. **Load** — closed-loop pipelined traffic measuring throughput and
//!    per-request latency percentiles, split cold/cached via the server's
//!    stats endpoint.
//! 3. **Burst** — a deliberate overrun of the admission queue to exercise
//!    backpressure rejections.
//!
//! Finishes with a graceful drain and asserts the ledger
//! `received == completed + rejected`. Writes `results/exp_serve_load.txt`
//! and `.json`. Environment overrides: `DLS_E23_REQUESTS`,
//! `DLS_E23_CONNS`, `DLS_E23_DISTINCT`, `DLS_E23_WORKERS`,
//! `DLS_E23_QUEUE`, `DLS_E23_WINDOW`, `DLS_E23_FT_FRACTION`,
//! `DLS_E23_MIN_RPS` (0 disables the throughput gate).

use bench::{JsonReport, Table};
use minijson::Value;
use std::collections::HashMap;
use std::time::Instant;
use svc::{serve, Client, ServerConfig};
use workloads::requests::{self, RequestMixConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct ConnResult {
    latencies_us: obs::Histogram,
    ok: u64,
    cached: u64,
    rejected: u64,
    errors: u64,
    timeouts: u64,
}

/// Drive one connection closed-loop: keep `window` requests in flight.
fn drive(addr: std::net::SocketAddr, lines: Vec<String>, window: usize) -> ConnResult {
    let mut client = Client::connect(addr).expect("connect");
    let mut result = ConnResult {
        latencies_us: obs::Histogram::new(),
        ok: 0,
        cached: 0,
        rejected: 0,
        errors: 0,
        timeouts: 0,
    };
    let mut inflight: HashMap<i64, Instant> = HashMap::new();
    let mut next = 0usize;
    let total = lines.len();
    let mut received = 0usize;
    while received < total {
        while next < total && inflight.len() < window {
            let id = id_of(&lines[next]);
            client.send(&lines[next]).expect("send");
            inflight.insert(id, Instant::now());
            next += 1;
        }
        client.flush().expect("flush");
        let response = client.recv().expect("recv");
        received += 1;
        let id = response.get("id").and_then(Value::as_i64).unwrap_or(-1);
        if let Some(sent) = inflight.remove(&id) {
            result
                .latencies_us
                .record(sent.elapsed().as_secs_f64() * 1e6);
        }
        match response.get("status").and_then(Value::as_str) {
            Some("ok") => {
                result.ok += 1;
                if response.get("cached").and_then(Value::as_bool) == Some(true) {
                    result.cached += 1;
                }
            }
            Some("rejected") => result.rejected += 1,
            Some("timeout") => result.timeouts += 1,
            _ => result.errors += 1,
        }
    }
    result
}

fn id_of(line: &str) -> i64 {
    Value::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_i64))
        .expect("request line has an id")
}

fn stats_of(client: &mut Client) -> Value {
    let v = client.call(r#"{"op":"stats"}"#).expect("stats");
    v.get("result").expect("stats result").clone()
}

fn main() {
    let total = env_usize("DLS_E23_REQUESTS", 200_000);
    let conns = env_usize("DLS_E23_CONNS", 4);
    let distinct = env_usize("DLS_E23_DISTINCT", 32);
    let workers = env_usize("DLS_E23_WORKERS", 4);
    let queue = env_usize("DLS_E23_QUEUE", 1024);
    let window = env_usize("DLS_E23_WINDOW", 64);
    let ft_fraction = env_f64("DLS_E23_FT_FRACTION", 0.0);
    let min_rps = env_f64("DLS_E23_MIN_RPS", 10_000.0);

    let handle = serve(ServerConfig {
        workers,
        queue_capacity: queue,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = handle.addr();
    println!("E23: dls-serve on {addr} ({workers} workers, queue {queue})");

    // Phase 1 — cache identity over every distinct chain.
    let pool_cfg = RequestMixConfig {
        total,
        distinct_chains: distinct,
        ft_fraction,
        ..RequestMixConfig::default()
    };
    let pool = requests::chain_pool(&pool_cfg);
    let mut probe = Client::connect(addr).expect("connect probe");
    let mut identical = 0usize;
    for (i, net) in pool.iter().enumerate() {
        let rates: Vec<f64> = (1..net.len()).map(|j| net.w(j)).collect();
        let line = requests::solve_line(1_000_000 + i as i64, net.w(0), &net.rates_z(), &rates);
        let cold = probe.call(&line).expect("cold solve");
        let warm = probe.call(&line).expect("warm solve");
        assert_eq!(cold.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(warm.get("cached").and_then(Value::as_bool), Some(true));
        let cold_body = cold.get("result").expect("result").to_json();
        let warm_body = warm.get("result").expect("result").to_json();
        assert_eq!(cold_body, warm_body, "cache hit diverged on chain {i}");
        identical += 1;
    }
    println!(
        "identity: {identical}/{} cached solves bit-identical",
        pool.len()
    );

    // Phase 2 — closed-loop load. The pool is already warm, so the solve
    // stream measures cached throughput; ft_runs (if any) are never cached.
    let (lines, solve_count, ft_count) = requests::request_lines(&pool_cfg);
    let shards: Vec<Vec<String>> = (0..conns)
        .map(|c| lines.iter().skip(c).step_by(conns).cloned().collect())
        .collect();
    let started = Instant::now();
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| scope.spawn(move || drive(addr, shard, window)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut latency = obs::Histogram::new();
    let (mut ok, mut cached, mut rejected, mut errors, mut timeouts) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for r in &results {
        latency.merge(&r.latencies_us);
        ok += r.ok;
        cached += r.cached;
        rejected += r.rejected;
        errors += r.errors;
        timeouts += r.timeouts;
    }
    let answered = ok + rejected + errors + timeouts;
    let throughput = answered as f64 / elapsed;
    let cached_rps = cached as f64 / elapsed;
    let summary = latency.summary();
    println!(
        "load: {answered} answered in {elapsed:.2}s — {throughput:.0} req/s \
         ({cached} cached, {cached_rps:.0} cached-solve/s), p50 {:.0}µs p99 {:.0}µs",
        summary.p50, summary.p99
    );

    // Phase 3 — burst past the queue to exercise admission control.
    let burst_lines: Vec<String> = (0..queue * 2)
        .map(|i| {
            let net = &pool[i % pool.len()];
            let rates: Vec<f64> = (1..net.len()).map(|j| net.w(j)).collect();
            requests::ft_line(
                2_000_000 + i as i64,
                net.w(0),
                &rates,
                &net.rates_z(),
                i as u64,
                Some((1 + i % rates.len(), 3, 0.5)),
            )
        })
        .collect();
    let burst = drive(addr, burst_lines, queue * 2);
    println!(
        "burst: {} ok, {} rejected with backpressure, {} timeouts",
        burst.ok, burst.rejected, burst.timeouts
    );

    // Stats + graceful drain.
    let server_stats = stats_of(&mut probe);
    let bye = probe.call(r#"{"op":"shutdown"}"#).expect("shutdown");
    assert_eq!(bye.get("status").and_then(Value::as_str), Some("ok"));
    drop(probe);
    let snapshot = handle.join();
    assert!(
        snapshot.conserved(),
        "drain lost requests: received={} completed={} rejected={}",
        snapshot.received,
        snapshot.completed,
        snapshot.rejected
    );
    println!(
        "drain: received={} completed={} rejected={} (conserved)",
        snapshot.received, snapshot.completed, snapshot.rejected
    );

    let hit_rate = server_stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Value::as_f64)
        .map(|h| {
            let m = server_stats
                .get("cache")
                .and_then(|c| c.get("misses"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            h / (h + m).max(1.0)
        })
        .unwrap_or(0.0);

    let mut table = Table::new(&["metric", "value"]);
    let mut row = |k: &str, v: String| {
        table.row(vec![k.into(), v]);
    };
    row("connections", conns.to_string());
    row("workers", workers.to_string());
    row("pipeline_window", window.to_string());
    row("requests_load_phase", answered.to_string());
    row("solve_requests", solve_count.to_string());
    row("ft_requests", ft_count.to_string());
    row("elapsed_s", format!("{elapsed:.4}"));
    row("throughput_rps", format!("{throughput:.1}"));
    row("cached_solve_rps", format!("{cached_rps:.1}"));
    row("cache_hit_rate", format!("{hit_rate:.4}"));
    row("latency_p50_us", format!("{:.1}", summary.p50));
    row("latency_p90_us", format!("{:.1}", summary.p90));
    row("latency_p99_us", format!("{:.1}", summary.p99));
    row("burst_rejected", burst.rejected.to_string());
    row("identity_checked_chains", identical.to_string());
    table.print();

    let mut report = JsonReport::new("exp_serve_load");
    report
        .scalar("connections", conns as f64)
        .scalar("workers", workers as f64)
        .scalar("window", window as f64)
        .scalar("queue_capacity", queue as f64)
        .scalar("distinct_chains", distinct as f64)
        .scalar("requests", answered as f64)
        .scalar("elapsed_s", elapsed)
        .scalar("throughput_rps", throughput)
        .scalar("cached_solve_rps", cached_rps)
        .scalar("cache_hit_rate", hit_rate)
        .scalar("latency_p50_us", summary.p50)
        .scalar("latency_p90_us", summary.p90)
        .scalar("latency_p99_us", summary.p99)
        .scalar("latency_max_us", summary.max)
        .scalar("burst_rejected", burst.rejected as f64)
        .scalar("bit_identical_chains", identical as f64)
        .scalar("drain_received", snapshot.received as f64)
        .scalar("drain_completed", snapshot.completed as f64)
        .scalar("drain_rejected", snapshot.rejected as f64)
        .text(
            "drain_conserved",
            if snapshot.conserved() {
                "true"
            } else {
                "false"
            },
        )
        .value("server_stats", server_stats);
    report
        .write("results/exp_serve_load.json")
        .expect("write E23 json");
    std::fs::write("results/exp_serve_load.txt", table.render()).expect("write E23 txt");
    println!("wrote results/exp_serve_load.json");

    if min_rps > 0.0 && cached_rps < min_rps && ft_fraction == 0.0 {
        eprintln!("E23 FAILED: cached solve throughput {cached_rps:.0} < {min_rps:.0} req/s");
        std::process::exit(1);
    }
}
