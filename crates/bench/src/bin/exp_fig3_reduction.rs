//! E3 — Figure 3 reproduction: equivalent-processor reduction.
//!
//! Replays the paper's reduction (collapse the two farthest processors,
//! repeat) step by step on a concrete chain, printing the shrinking network
//! at each step, and verifies the structural properties:
//!
//! * the collapsed pair's `w̄` equals the isolated pair's makespan
//!   (eq. 2.3/2.4);
//! * reduction preserves the whole chain's makespan and the prefix
//!   allocation;
//! * collapsing in any valid order yields the same equivalent time.
//!
//! ```sh
//! cargo run --release -p bench --bin exp_fig3_reduction
//! ```

use bench::{par_sweep, Table};
use dlt::model::LinearNetwork;
use dlt::{linear, reduction};
use workloads::ChainConfig;

fn main() {
    println!("E3: Figure 3 — reduction to equivalent processors");
    println!();
    let net = LinearNetwork::from_rates(&[1.0, 1.8, 0.6, 2.5, 1.2], &[0.25, 0.15, 0.40, 0.10]);
    println!("start: {net}");
    let trace = reduction::reduce_fully(&net);
    let mut t = Table::new(&[
        "step",
        "collapsed pair",
        "α̂ (front keeps)",
        "w̄ (equivalent)",
        "chain after",
    ]);
    for (k, step) in trace.steps.iter().enumerate() {
        t.row(vec![
            (k + 1).to_string(),
            format!("(P{}, P{})", step.index, step.index + 1),
            format!("{:.6}", step.alpha_hat),
            format!("{:.6}", step.w_bar),
            format!("{}", step.network),
        ]);
    }
    t.print();
    println!();
    println!(
        "final equivalent processor: w̄₀ = {:.6} (= optimal makespan {:.6})",
        trace.equivalent_time(),
        linear::solve(&net).makespan()
    );

    // Pairwise w̄ vs segment makespan, every step.
    for (k, step) in trace.steps.iter().enumerate() {
        let before = if k == 0 {
            net.clone()
        } else {
            trace.steps[k - 1].network.clone()
        };
        let pair = before.segment(step.index, step.index + 1);
        let pair_ms = linear::solve(&pair).makespan();
        assert!(
            (step.w_bar - pair_ms).abs() < 1e-12,
            "step {k}: w̄ {} vs pair makespan {pair_ms}",
            step.w_bar
        );
    }
    println!("eq. 2.3/2.4 checked at every step: w̄ = isolated pair makespan ✓");

    // Structural sweep over random networks.
    let trials = 1000u64;
    let cfg = ChainConfig {
        processors: 10,
        ..Default::default()
    };
    let bad = par_sweep(0..trials, |seed| {
        let net = workloads::chain(&cfg, seed);
        let mut violations = 0u32;
        for cut in 0..net.len() {
            if !reduction::reduction_preserves_makespan(&net, cut, 1e-9) {
                violations += 1;
            }
            if !reduction::reduction_preserves_prefix_allocation(&net, cut, 1e-9) {
                violations += 1;
            }
        }
        violations
    })
    .into_iter()
    .sum::<u32>();
    println!();
    println!(
        "random sweep: {trials} chains × 10 cut points, makespan/prefix-preservation violations: {bad}"
    );
    assert_eq!(bad, 0);
    println!("PASS: Figure 3 reduction reproduced and structurally validated");
}
