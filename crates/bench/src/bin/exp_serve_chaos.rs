//! E25 — chaos sweep over the resilient serving topology.
//!
//! Builds the full stack per plan — supervised in-process shard fleet
//! behind the failover router, with the seeded chaos proxy on the
//! client↔router link — and drives a deterministic solve stream through
//! it with retrying clients under seven chaos plans:
//!
//! `none`, `resets`, `delays`, `partial` (writes), `corrupt` (byte
//! flips), `kill` (a shard dies mid-burst and is restarted), and `mixed`
//! (all of the above at once).
//!
//! Three invariants are asserted for **every** plan:
//!
//! 1. **Termination** — every call returns (ok or exhausted-with-error);
//!    nothing hangs.
//! 2. **Bit-identity** — every `ok` response body equals a fresh
//!    out-of-band solve of the same chain, byte for byte. Chaos may cost
//!    retries, never correctness.
//! 3. **Ledger** — the fleet-wide drain conserves
//!    `received == completed + rejected`, across failovers, kills and
//!    restarts.
//!
//! The `none` plan additionally replays its line sequence against a
//! single un-routed server on one serial connection and requires the
//! routed responses to be byte-equal — the router is transparent.
//!
//! Chaos budgets are finite, so every plan converges: once the budget is
//! spent the proxy is a clean pipe and bounded retries succeed.
//!
//! Writes `results/exp_serve_chaos.txt` and `.json`. Environment
//! overrides: `DLS_E25_REQUESTS` (per plan), `DLS_E25_CONNS`,
//! `DLS_E25_SHARDS`, `DLS_E25_DISTINCT`, `DLS_E25_BUDGET`,
//! `DLS_E25_SEED`.

use bench::{JsonReport, Table};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use svc::chaos::{ChaosConfig, ChaosProxy};
use svc::resilient_client::{ResilientClient, RetryPolicy};
use svc::supervisor::ShardRuntime;
use svc::{
    canonicalize, serve, Client, ClientConfig, Router, RouterConfig, ServerConfig, Supervisor,
    SupervisorConfig, DEFAULT_QUANTUM,
};
use workloads::requests::{self, RequestMixConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Plan {
    name: &'static str,
    chaos: ChaosConfig,
    /// Kill shard 0 mid-burst (the supervisor restarts it).
    kill: bool,
}

fn plans(seed: u64, budget: u64) -> Vec<Plan> {
    let base = ChaosConfig {
        seed,
        event_budget: budget,
        ..ChaosConfig::transparent(seed)
    };
    vec![
        Plan {
            name: "none",
            chaos: ChaosConfig::transparent(seed),
            kill: false,
        },
        Plan {
            name: "resets",
            chaos: ChaosConfig {
                reset_prob: 0.08,
                ..base.clone()
            },
            kill: false,
        },
        Plan {
            name: "delays",
            chaos: ChaosConfig {
                delay_prob: 0.25,
                delay: Duration::from_millis(15),
                ..base.clone()
            },
            kill: false,
        },
        Plan {
            name: "partial",
            chaos: ChaosConfig {
                partial_prob: 0.25,
                ..base.clone()
            },
            kill: false,
        },
        Plan {
            name: "corrupt",
            chaos: ChaosConfig {
                corrupt_prob: 0.08,
                ..base.clone()
            },
            kill: false,
        },
        Plan {
            name: "kill",
            chaos: ChaosConfig::transparent(seed),
            kill: true,
        },
        Plan {
            name: "mixed",
            chaos: ChaosConfig {
                reset_prob: 0.04,
                delay_prob: 0.10,
                delay: Duration::from_millis(10),
                partial_prob: 0.10,
                corrupt_prob: 0.04,
                ..base
            },
            kill: true,
        },
    ]
}

struct PlanOutcome {
    ok: u64,
    exhausted: u64,
    attempts: u64,
    rejections: u64,
    elapsed_s: f64,
    failovers: u64,
    restarts: u64,
    chaos_events: u64,
    fleet_received: u64,
    conserved: bool,
}

/// Run one chaos plan end to end. `lines[i] = (request line, oracle index)`;
/// every `ok` response is checked against `oracles[index]`. Panics on any
/// invariant violation — this experiment *is* the assertion.
fn run_plan(
    plan: &Plan,
    shards: usize,
    conns: usize,
    lines: &[(String, usize)],
    oracles: &[String],
    seed: u64,
) -> PlanOutcome {
    let sup = Supervisor::start(SupervisorConfig {
        shards,
        server: ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        monitor_interval: Duration::from_millis(20),
        backoff_base: Duration::from_millis(20),
        backoff_max: Duration::from_millis(200),
        runtime: ShardRuntime::InProcess,
    })
    .expect("start fleet");
    let router = Router::spawn(
        sup.directory(),
        RouterConfig {
            health_interval: Duration::from_millis(50),
            ..RouterConfig::default()
        },
    )
    .expect("bind router");
    let mut proxy =
        ChaosProxy::spawn(router.addr(), plan.chaos.clone()).expect("spawn chaos proxy");
    let proxy_addr = proxy.addr();

    let ok = AtomicU64::new(0);
    let exhausted = AtomicU64::new(0);
    let attempts = AtomicU64::new(0);
    let rejections = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for conn in 0..conns {
            let (ok, exhausted, attempts, rejections) = (&ok, &exhausted, &attempts, &rejections);
            let shard_lines: Vec<&(String, usize)> =
                lines.iter().skip(conn).step_by(conns).collect();
            scope.spawn(move || {
                let mut rc = ResilientClient::new(
                    proxy_addr.to_string(),
                    RetryPolicy {
                        max_attempts: 8,
                        base_backoff: Duration::from_millis(10),
                        max_backoff: Duration::from_millis(150),
                        client: ClientConfig::fast(Duration::from_millis(800)),
                        seed: seed ^ conn as u64,
                        ..RetryPolicy::default()
                    },
                );
                for (line, idx) in shard_lines {
                    match rc.call(line) {
                        Ok(out) => {
                            attempts.fetch_add(out.attempts as u64, Ordering::Relaxed);
                            rejections.fetch_add(out.rejections as u64, Ordering::Relaxed);
                            assert!(
                                out.raw.ends_with(&oracles[*idx]),
                                "[{}] response diverged from the fresh-solve oracle\n \
                                 line: {line}\n got: {}",
                                plan.name,
                                out.raw
                            );
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            // Bounded retries may exhaust mid-plan; the
                            // invariant is termination, not success.
                            let _ = e;
                            exhausted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        if plan.kill {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(80));
                sup.kill_shard(0, true);
            });
        }
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let answered = ok.load(Ordering::Relaxed) + exhausted.load(Ordering::Relaxed);
    assert_eq!(
        answered,
        lines.len() as u64,
        "[{}] some calls never terminated",
        plan.name
    );
    assert!(
        ok.load(Ordering::Relaxed) > 0,
        "[{}] the fleet answered nothing",
        plan.name
    );

    let chaos = proxy.stats();
    let chaos_events = chaos.resets + chaos.delays + chaos.partial_writes + chaos.corruptions;
    let rstats = router.stats();
    proxy.stop();
    router.shutdown();
    router.join();
    let restarts = sup.restarts();
    let total = sup.shutdown();
    assert!(
        total.conserved(),
        "[{}] fleet ledger broken: {total:?}",
        plan.name
    );
    if plan.kill {
        assert!(
            restarts >= 1,
            "[{}] killed shard never restarted",
            plan.name
        );
    }
    PlanOutcome {
        ok: ok.load(Ordering::Relaxed),
        exhausted: exhausted.load(Ordering::Relaxed),
        attempts: attempts.load(Ordering::Relaxed),
        rejections: rejections.load(Ordering::Relaxed),
        elapsed_s,
        failovers: rstats.failovers,
        restarts,
        chaos_events,
        fleet_received: total.received,
        conserved: total.conserved(),
    }
}

/// The `none`-plan transparency check: the same serial line sequence via
/// the routed fleet and via a bare server must produce identical bytes.
fn router_transparency(lines: &[(String, usize)], shards: usize) -> usize {
    let sup = Supervisor::start(SupervisorConfig {
        shards,
        runtime: ShardRuntime::InProcess,
        ..SupervisorConfig::default()
    })
    .expect("start fleet");
    let router = Router::spawn(
        sup.directory(),
        RouterConfig {
            health_interval: Duration::ZERO,
            ..RouterConfig::default()
        },
    )
    .expect("bind router");
    let single = serve(ServerConfig::default()).expect("start single server");

    let drive = |addr: std::net::SocketAddr| -> Vec<String> {
        let mut c = Client::connect(addr).expect("connect");
        lines
            .iter()
            .map(|(l, _)| c.call_raw(l).expect("call"))
            .collect()
    };
    let routed = drive(router.addr());
    let bare = drive(single.addr());
    for (i, (r, b)) in routed.iter().zip(&bare).enumerate() {
        assert_eq!(
            r, b,
            "routed response {i} diverged from the bare server for {:?}",
            lines[i].0
        );
    }
    router.shutdown();
    router.join();
    assert!(sup.shutdown().conserved());
    single.shutdown();
    single.join();
    routed.len()
}

fn main() {
    let total = env_usize("DLS_E25_REQUESTS", 240);
    let conns = env_usize("DLS_E25_CONNS", 4);
    let shards = env_usize("DLS_E25_SHARDS", 3);
    let distinct = env_usize("DLS_E25_DISTINCT", 12);
    let budget = env_u64("DLS_E25_BUDGET", 50);
    let seed = env_u64("DLS_E25_SEED", 0xE25);

    let cfg = RequestMixConfig {
        total,
        distinct_chains: distinct,
        processors: 5,
        ft_fraction: 0.0,
        seed,
    };
    let lines = requests::solve_lines_indexed(&cfg);
    // Fresh-solve oracle per pool chain: the exact `"result":…` suffix the
    // service must serialize, computed out-of-band (no server involved).
    let oracles: Vec<String> = requests::chain_pool(&cfg)
        .iter()
        .map(|net| {
            let bids: Vec<f64> = (1..net.len()).map(|j| net.w(j)).collect();
            let chain = canonicalize(net.w(0), &net.rates_z(), &bids, DEFAULT_QUANTUM)
                .expect("pool chains are valid");
            format!("\"result\":{}}}", svc::handlers::solve_body(&chain))
        })
        .collect();

    println!(
        "E25: {total} requests x {} plans, {conns} conns, {shards} shards, \
         {distinct} chains, chaos budget {budget}",
        plans(seed, budget).len()
    );
    let checked = router_transparency(&lines[..lines.len().min(4 * distinct)], shards);
    println!("transparency: {checked} routed responses byte-equal to a bare server");

    let mut table = Table::new(&[
        "plan",
        "ok",
        "exhausted",
        "attempts",
        "rejections",
        "failovers",
        "restarts",
        "chaos_events",
        "fleet_received",
        "conserved",
        "elapsed_s",
    ]);
    let mut report = JsonReport::new("exp_serve_chaos");
    report
        .scalar("requests_per_plan", total as f64)
        .scalar("connections", conns as f64)
        .scalar("shards", shards as f64)
        .scalar("distinct_chains", distinct as f64)
        .scalar("chaos_budget", budget as f64)
        .scalar("seed", seed as f64)
        .scalar("transparency_checked", checked as f64);

    for plan in plans(seed, budget) {
        let out = run_plan(&plan, shards, conns, &lines, &oracles, seed);
        println!(
            "{:>8}: ok={} exhausted={} attempts={} failovers={} restarts={} \
             chaos_events={} conserved={} ({:.2}s)",
            plan.name,
            out.ok,
            out.exhausted,
            out.attempts,
            out.failovers,
            out.restarts,
            out.chaos_events,
            out.conserved,
            out.elapsed_s
        );
        table.row(vec![
            plan.name.into(),
            out.ok.to_string(),
            out.exhausted.to_string(),
            out.attempts.to_string(),
            out.rejections.to_string(),
            out.failovers.to_string(),
            out.restarts.to_string(),
            out.chaos_events.to_string(),
            out.fleet_received.to_string(),
            out.conserved.to_string(),
            format!("{:.3}", out.elapsed_s),
        ]);
        report
            .scalar(&format!("{}_ok", plan.name), out.ok as f64)
            .scalar(&format!("{}_exhausted", plan.name), out.exhausted as f64)
            .scalar(&format!("{}_attempts", plan.name), out.attempts as f64)
            .scalar(&format!("{}_failovers", plan.name), out.failovers as f64)
            .scalar(&format!("{}_restarts", plan.name), out.restarts as f64)
            .scalar(
                &format!("{}_chaos_events", plan.name),
                out.chaos_events as f64,
            )
            .text(
                &format!("{}_conserved", plan.name),
                if out.conserved { "true" } else { "false" },
            );
    }
    table.print();
    report
        .write("results/exp_serve_chaos.json")
        .expect("write E25 json");
    std::fs::write("results/exp_serve_chaos.txt", table.render()).expect("write E25 txt");
    println!("wrote results/exp_serve_chaos.json");
    println!("E25: every plan terminated, bit-identical, ledger conserved");
}
