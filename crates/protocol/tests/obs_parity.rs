//! Observability parity: installing any `obs` sink must leave every
//! protocol report — and its transcript — byte-identical to the run with
//! instrumentation disabled. Instrumentation only *reads* protocol state,
//! so `MemorySink`, `NoopSink` and the disabled fast path are
//! indistinguishable at the output level (the property E21 asserts at
//! experiment scale).
//!
//! The recorder is process-global, so every test here holds one static
//! mutex for its full body: the "disabled" baseline must really run with
//! no sink installed, not merely with another test's sink.

use obs::{MemorySink, NoopSink, Sink};
use proptest::prelude::*;
use protocol::{run, run_with_faults, Deviation, FaultPlan, Scenario};
use std::sync::{Arc, Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A deterministic heterogeneous chain with `m` strategic processors.
fn chain(m: usize, seed: u64) -> Scenario {
    let s = seed as usize;
    let true_rates: Vec<f64> = (0..m)
        .map(|j| 0.5 + 0.45 * ((s + j * 7) % 5) as f64)
        .collect();
    let link_rates: Vec<f64> = (0..m)
        .map(|j| 0.08 + 0.05 * ((s + j * 3) % 4) as f64)
        .collect();
    Scenario::honest(1.0, true_rates, link_rates).with_seed(seed)
}

/// Run `f` with `sink` installed, uninstalling before returning.
fn under_sink<T>(sink: Arc<dyn Sink>, f: impl Fn() -> T) -> T {
    obs::install(sink);
    let out = f();
    obs::uninstall();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fault_free_runs_identical_under_every_sink(
        m in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let _g = lock();
        obs::uninstall();
        let s = chain(m, seed);
        let disabled = run(&s);
        let noop = under_sink(Arc::new(NoopSink), || run(&s));
        let memory_sink = Arc::new(MemorySink::new());
        let memory = under_sink(memory_sink.clone(), || run(&s));
        prop_assert_eq!(&disabled, &noop);
        prop_assert_eq!(&disabled, &memory);
        // Byte-identical, not merely PartialEq-equal.
        prop_assert_eq!(
            format!("{:?}", disabled.transcript),
            format!("{:?}", memory.transcript)
        );
        prop_assert_eq!(format!("{disabled:?}"), format!("{memory:?}"));
        // The enabled run must actually have recorded something.
        prop_assert!(memory_sink.counter_total("protocol.messages") > 0.0);
    }

    #[test]
    fn fault_runs_identical_under_every_sink(
        m in 2usize..6,
        seed in 0u64..1_000_000,
        node_pick in 0usize..64,
        phase_pick in 0u32..4,
        progress in prop::sample::select(vec![0.0f64, 0.25, 0.5, 0.75, 1.0]),
    ) {
        let _g = lock();
        obs::uninstall();
        let s = chain(m, seed);
        let plan = FaultPlan::crash(1 + node_pick % m, 1 + phase_pick as u8, progress);
        let disabled = run_with_faults(&s, &plan).expect("valid plan");
        let noop = under_sink(Arc::new(NoopSink), || {
            run_with_faults(&s, &plan).expect("valid plan")
        });
        let memory = under_sink(Arc::new(MemorySink::new()), || {
            run_with_faults(&s, &plan).expect("valid plan")
        });
        prop_assert_eq!(&disabled, &noop);
        prop_assert_eq!(&disabled, &memory);
        prop_assert_eq!(
            format!("{:?}", disabled.transcript),
            format!("{:?}", memory.transcript)
        );
        prop_assert_eq!(format!("{disabled:?}"), format!("{memory:?}"));
    }
}

/// The fine-levying paths (audits, arbitration) are instrumented too; a
/// deviant scenario must stay byte-identical under a sink.
#[test]
fn deviant_runs_identical_under_every_sink() {
    let _g = lock();
    obs::uninstall();
    let s = chain(3, 7)
        .with_deviation(1, Deviation::Underbid { factor: 0.6 })
        .with_deviation(2, Deviation::ContradictoryBid { second_factor: 1.3 });
    let disabled = run(&s);
    let noop = under_sink(Arc::new(NoopSink), || run(&s));
    let memory = under_sink(Arc::new(MemorySink::new()), || run(&s));
    assert_eq!(disabled, noop);
    assert_eq!(disabled, memory);
    assert_eq!(format!("{disabled:?}"), format!("{memory:?}"));
}

/// Cascading and simultaneous failures exercise the nested-recovery
/// instrumentation (recursive splices, batched Phase IV timeouts, the
/// recovery-round counters); parity must hold across the whole
/// multi-failure engine.
#[test]
fn cascading_failure_runs_identical_under_every_sink() {
    let _g = lock();
    obs::uninstall();
    let s = chain(5, 13);
    for plan in [
        // Crash-during-recovery: P2 dies in the base round, P3 mid-way
        // through its recovery share.
        FaultPlan::crash(2, 3, 0.5).with_event(
            3,
            protocol::FaultKind::Crash {
                phase: 3,
                progress: 0.25,
            },
        ),
        // Pre-distribution crash cascading into a compute-phase crash.
        FaultPlan::crash(1, 1, 0.0).with_event(
            4,
            protocol::FaultKind::Crash {
                phase: 3,
                progress: 0.4,
            },
        ),
        // Simultaneous billing blackout plus a stall.
        FaultPlan::crash(2, 4, 0.0)
            .with_event(
                5,
                protocol::FaultKind::Crash {
                    phase: 4,
                    progress: 0.0,
                },
            )
            .with_event(1, protocol::FaultKind::Stall { progress: 0.75 }),
    ] {
        let disabled = run_with_faults(&s, &plan).expect("valid plan");
        let noop = under_sink(Arc::new(NoopSink), || {
            run_with_faults(&s, &plan).expect("valid plan")
        });
        let memory_sink = Arc::new(MemorySink::new());
        let memory = under_sink(memory_sink.clone(), || {
            run_with_faults(&s, &plan).expect("valid plan")
        });
        assert_eq!(disabled, noop);
        assert_eq!(disabled, memory);
        assert_eq!(format!("{disabled:?}"), format!("{memory:?}"));
        // The instrumented run must have seen the detection counters.
        assert!(memory_sink.counter_total("protocol.ft.detection_timeouts") > 0.0);
    }
}

/// Tree-network fault recovery (subtree re-attachment, serialized Phase
/// III splices, batched Phase IV probes) is instrumented with the same
/// counters as the chain engine; the report — timeline included — must be
/// bit-identical across disabled/noop/memory recorders.
#[test]
fn tree_fault_runs_identical_under_every_sink() {
    let _g = lock();
    obs::uninstall();
    let shape = dlt::model::TreeNode::internal(
        1.0,
        vec![
            (
                0.15,
                dlt::model::TreeNode::internal(
                    1.0,
                    vec![
                        (0.05, dlt::model::TreeNode::leaf(1.0)),
                        (0.25, dlt::model::TreeNode::leaf(1.0)),
                    ],
                ),
            ),
            (0.30, dlt::model::TreeNode::leaf(1.0)),
        ],
    );
    let s = protocol::TreeScenario::honest(shape, vec![1.4, 2.2, 0.7, 1.9]);
    for plan in [
        // Internal-node crash: subtree re-attachment plus a cascading
        // compute-phase crash on a re-attached child.
        FaultPlan::crash(1, 1, 0.0).with_event(
            3,
            protocol::FaultKind::Crash {
                phase: 3,
                progress: 0.4,
            },
        ),
        // Serialized Phase III splices followed by a billing blackout.
        FaultPlan::crash(2, 3, 0.5)
            .with_event(4, protocol::FaultKind::Stall { progress: 0.25 })
            .with_event(
                1,
                protocol::FaultKind::Crash {
                    phase: 4,
                    progress: 0.0,
                },
            ),
        // Message faults through the tree receiver rules.
        FaultPlan::none()
            .with_event(1, protocol::FaultKind::DropMessage { phase: 2 })
            .with_event(
                2,
                protocol::FaultKind::DelayMessage {
                    phase: 1,
                    delay: 0.03,
                },
            ),
    ] {
        let disabled = protocol::run_tree_with_faults(&s, &plan).expect("valid plan");
        let noop = under_sink(Arc::new(NoopSink), || {
            protocol::run_tree_with_faults(&s, &plan).expect("valid plan")
        });
        let memory_sink = Arc::new(MemorySink::new());
        let memory = under_sink(memory_sink.clone(), || {
            protocol::run_tree_with_faults(&s, &plan).expect("valid plan")
        });
        assert_eq!(disabled, noop);
        assert_eq!(disabled, memory);
        assert_eq!(format!("{disabled:?}"), format!("{memory:?}"));
        assert_eq!(
            format!("{:?}", disabled.timeline),
            format!("{:?}", memory.timeline)
        );
        if plan.halting_faults().count() > 0 {
            assert!(memory_sink.counter_total("protocol.ft.detection_timeouts") > 0.0);
        }
    }
}

/// Message-level faults (drops, delays, corruption) exercise the
/// `apply_message_faults` clock path; parity must hold there as well.
#[test]
fn message_fault_runs_identical_under_every_sink() {
    let _g = lock();
    obs::uninstall();
    let s = chain(4, 11);
    for plan in [
        FaultPlan::none().with_event(2, protocol::FaultKind::DropMessage { phase: 2 }),
        FaultPlan::none().with_event(
            3,
            protocol::FaultKind::DelayMessage {
                phase: 3,
                delay: 0.04,
            },
        ),
        FaultPlan::none().with_event(1, protocol::FaultKind::CorruptMessage { phase: 4 }),
        FaultPlan::none().with_event(4, protocol::FaultKind::Stall { progress: 0.5 }),
    ] {
        let disabled = run_with_faults(&s, &plan).expect("valid plan");
        let memory = under_sink(Arc::new(MemorySink::new()), || {
            run_with_faults(&s, &plan).expect("valid plan")
        });
        assert_eq!(disabled, memory);
        assert_eq!(format!("{disabled:?}"), format!("{memory:?}"));
    }
}
