//! Adversarial property tests: random tampering with protocol messages and
//! evidence must always be caught, and must never incriminate an honest
//! node. These complement the scenario-level tests in `runner` with
//! field-level fuzzing.

use proptest::prelude::*;
use protocol::{BlockMint, Complaint, Dsm, GMessage, LoadTag, Registry};

/// A consistent honest G message for a 2-processor chain `w0=1, w1, z1`,
/// addressed to node 1.
fn honest_g(reg: &Registry, w1: f64, z1: f64) -> (GMessage, f64, f64) {
    let root = reg.keypair(0);
    // α̂_0 = (w̄_1 + z1) / (w0 + w̄_1 + z1), w̄_1 = w1 (terminal).
    let w0 = 1.0;
    let tail = w1 + z1;
    let alpha_hat = tail / (w0 + tail);
    let d1 = 1.0 - alpha_hat;
    let wbar0 = alpha_hat * w0;
    let g = GMessage {
        d_prev: Dsm::new(&root, 1.0),
        d_cur: Dsm::new(&root, d1),
        wbar_prev: Dsm::new(&root, wbar0),
        w_prev: Dsm::new(&root, w0),
        wbar_cur: Dsm::new(&root, w1),
    };
    (g, w1, z1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn honest_messages_always_pass(w1 in 0.1f64..10.0, z1 in 0.0f64..5.0) {
        let reg = Registry::new(2, 42);
        let (g, bid, z) = honest_g(&reg, w1, z1);
        prop_assert!(g.check(&reg, 1, bid, z, 1e-9).is_ok());
    }

    #[test]
    fn payload_tampering_is_always_caught(
        w1 in 0.1f64..10.0,
        z1 in 0.0f64..5.0,
        field in 0usize..5,
        perturb in prop::sample::select(vec![0.5f64, 0.9, 1.1, 2.0]),
    ) {
        let reg = Registry::new(2, 42);
        let (mut g, bid, z) = honest_g(&reg, w1, z1);
        // Tamper one payload without re-signing.
        match field {
            0 => g.d_prev.payload *= perturb,
            1 => g.d_cur.payload *= perturb,
            2 => g.wbar_prev.payload *= perturb,
            3 => g.w_prev.payload *= perturb,
            _ => g.wbar_cur.payload *= perturb,
        }
        prop_assert!(g.check(&reg, 1, bid, z, 1e-9).is_err(), "tampered field {field} slipped through");
    }

    #[test]
    fn resigned_lies_are_caught_by_arithmetic(
        w1 in 0.1f64..10.0,
        z1 in 0.01f64..5.0,
        field in 0usize..4,
        perturb in prop::sample::select(vec![0.5f64, 0.8, 1.25, 2.0]),
    ) {
        // The sender CAN re-sign fields it signs itself (d_cur, w_prev,
        // wbar_cur) — then only the arithmetic checks can catch the lie.
        // (It cannot re-sign the grandparent-signed fields; that case is
        // covered by `payload_tampering_is_always_caught`.)
        let reg = Registry::new(2, 42);
        let root = reg.keypair(0);
        let (mut g, bid, z) = honest_g(&reg, w1, z1);
        match field {
            0 => g.d_cur = Dsm::new(&root, g.d_cur.payload * perturb),
            1 => g.w_prev = Dsm::new(&root, g.w_prev.payload * perturb),
            2 => g.wbar_cur = Dsm::new(&root, g.wbar_cur.payload * perturb),
            _ => {
                // Consistent re-derivation with a lied-about w_prev is the
                // "smart" deviant: it must STILL fail because wbar_prev is
                // grandparent-signed and cannot be re-derived.
                let w0_fake = g.w_prev.payload * perturb;
                g.w_prev = Dsm::new(&root, w0_fake);
            }
        }
        prop_assert!(g.check(&reg, 1, bid, z, 1e-9).is_err(), "re-signed lie slipped through");
    }

    #[test]
    fn forged_tags_never_prove_load(blocks in 2usize..500, n in 1usize..100, seed in 0u64..1000) {
        let mint = BlockMint::new(blocks, 7);
        // The forger has no access to the mint's RNG stream: give it an
        // independent seed (a same-seed "forgery" would just replay the
        // genuine identifiers, which is key theft, not guessing).
        let tag = LoadTag::forged(n.min(blocks), seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xF0F0_F0F0_F0F0_F0F0));
        prop_assert_eq!(mint.verify(&tag), None);
    }

    #[test]
    fn genuine_tags_always_verify(blocks in 2usize..500, frac in 0.0f64..1.0) {
        let mint = BlockMint::new(blocks, 7);
        let take = ((blocks as f64) * frac) as usize;
        let tag = mint.range(0, take);
        prop_assert!(mint.verify(&tag).is_some());
    }

    #[test]
    fn fabricated_contradictions_never_convict(
        value in 0.1f64..10.0,
        fake in 0.1f64..10.0,
        seed in 0u64..1000,
    ) {
        // An accuser who cannot sign as the accused cannot fabricate a
        // contradiction: the arbitration must exculpate.
        let reg = Registry::new(3, seed);
        let mint = BlockMint::new(10, seed);
        let genuine = Dsm::new(&reg.keypair(2), value);
        // The accuser forges the second message with its own key but
        // claims node 2 sent it.
        let mut forged = Dsm::new(&reg.keypair(1), fake);
        forged.signer = 2;
        let complaint = Complaint::Contradiction { accused: 2, first: genuine, second: forged };
        let mut ledger = protocol::Ledger::new();
        let ctx = protocol::ArbitrationContext {
            registry: &reg,
            mint: &mint,
            fine: mechanism::FineSchedule::new(10.0, 0.5),
            victim_rate: 1.0,
            phase: 1,
        };
        let record = protocol::arbitrate(&complaint, 1, &ctx, &mut ledger);
        prop_assert!(!record.substantiated, "forged evidence convicted an honest node");
        prop_assert!(ledger.net(2) > 0.0, "the falsely accused is rewarded");
        prop_assert!(ledger.net(1) < 0.0, "the false accuser pays");
    }

    #[test]
    fn overload_claims_require_genuine_excess(
        blocks in 10usize..200,
        expected_frac in 0.1f64..0.9,
        received_frac in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let reg = Registry::new(3, seed);
        let mint = BlockMint::new(blocks, seed);
        let received = ((blocks as f64) * received_frac) as usize;
        let expected = expected_frac;
        let tag = mint.range(blocks - received, received);
        let complaint = Complaint::Overload { accused: 1, expected, tag };
        let mut ledger = protocol::Ledger::new();
        let ctx = protocol::ArbitrationContext {
            registry: &reg,
            mint: &mint,
            fine: mechanism::FineSchedule::new(10.0, 0.5),
            victim_rate: 1.0,
            phase: 3,
        };
        let record = protocol::arbitrate(&complaint, 2, &ctx, &mut ledger);
        let genuinely_over = received as f64 / blocks as f64 > expected + 0.5 / blocks as f64;
        prop_assert_eq!(record.substantiated, genuinely_over,
            "verdict must track the Λ-proven amount exactly");
    }
}
