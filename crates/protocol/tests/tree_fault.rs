//! The tree-fault property harness.
//!
//! Invariant proptests over the shared `workloads::tree_shape_grid`
//! population (stars, a balanced binary tree, seeded random trees,
//! degenerate paths) × seeded multi-fault plans:
//!
//! * **Load conservation** — the unit workload is fully completed across
//!   any composition of subtree splices.
//! * **No honest survivor is ever fined** (the tree extension of the
//!   fault-tolerant Lemma 5.2 corollary).
//! * **Deterministic replay** — the same `(TreeScenario, FaultPlan)` pair
//!   yields a byte-identical `FtTreeRunReport`.
//! * **Pro-rata settlement** — a mid-computation halt on a branching tree
//!   lands at exactly zero net utility.
//!
//! And the pinning trick: a degenerate path (every node with at most one
//! child) *is* a chain, so `ft_tree_runner` on it must be **byte-
//! identical** to the frozen linear fault path — `ft_runner` for every
//! plan, and `ft_reference` for every ≤1-halt plan — over the exact E22
//! population (crash pairs, cascades, seeded mixed batches) rebuilt as
//! path-shaped tree scenarios.

use dlt::model::{LinearNetwork, TreeNode};
use mechanism::payment;
use proptest::prelude::*;
use protocol::ft_tree_runner::FtTreeRunReport;
use protocol::tree_runner::TreeArbitration;
use protocol::{
    run_tree_with_faults, run_with_faults, run_with_faults_single, FaultKind, FaultPlan,
    FtRunReport, Scenario, TreeScenario,
};
use workloads::{
    cascade_grid, crash_pair_grid, multi_label, seeded_multi_cases, tree_shape_grid, FaultCase,
    FaultCaseKind, TreeFaultCase,
};

fn to_plan(cases: &[FaultCase]) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for case in cases {
        let kind = match case.kind {
            FaultCaseKind::Crash => FaultKind::Crash {
                phase: case.phase,
                progress: case.progress,
            },
            FaultCaseKind::Stall => FaultKind::Stall {
                progress: case.progress,
            },
            FaultCaseKind::DropMessage => FaultKind::DropMessage { phase: case.phase },
            FaultCaseKind::DelayMessage => FaultKind::DelayMessage {
                phase: case.phase,
                delay: case.delay,
            },
            FaultCaseKind::CorruptMessage => FaultKind::CorruptMessage { phase: case.phase },
        };
        plan = plan.with_event(case.node, kind);
    }
    plan
}

fn scenario_of(case: &TreeFaultCase) -> TreeScenario {
    TreeScenario::honest(case.shape.clone(), case.true_rates.clone())
}

/// Independent rebuild of the path→chain conversion — deliberately not
/// `ft_tree_runner::as_chain_scenario`, so a bug there cannot hide in the
/// differential.
fn chain_of_path(s: &TreeScenario) -> Scenario {
    let mut links = Vec::new();
    let mut node = &s.shape;
    while let Some((link, child)) = node.children.first() {
        assert_eq!(node.children.len(), 1, "not a path");
        links.push(link.z);
        node = child;
    }
    Scenario::honest(s.shape.processor.w, s.true_rates.clone(), links)
        .with_fine(s.fine)
        .with_seed(s.seed)
}

/// Independent rebuild of the chain→tree report embedding.
fn expect_of_chain(r: FtRunReport) -> FtTreeRunReport {
    FtTreeRunReport {
        crashed: r.crashed,
        stalled: r.stalled,
        detected: r.detected,
        assigned: r.assigned,
        completed: r.completed,
        recovered_load: r.recovered_load,
        recovery_assigned: r.recovery_assigned,
        makespan: r.makespan,
        base_makespan: r.base_makespan,
        arbitrations: r
            .arbitrations
            .iter()
            .map(|a| TreeArbitration {
                claimant: a.claimant,
                accused: a.accused,
                complaint: a.complaint.clone(),
                substantiated: a.substantiated,
            })
            .collect(),
        ledger: r.ledger,
        net_utilities: r.net_utilities,
        splice_map: r.splice_map,
        timeline: r.timeline,
    }
}

fn is_path(node: &TreeNode) -> bool {
    node.children.len() <= 1 && node.children.iter().all(|(_, c)| is_path(c))
}

/// Assert byte-identity of the tree engine against both frozen linear
/// paths on a path-shaped scenario.
fn assert_path_matches_chain(s: &TreeScenario, plan: &FaultPlan, tag: &str) {
    let tree = run_tree_with_faults(s, plan).expect("valid plan");
    let chain = chain_of_path(s);
    let lin = run_with_faults(&chain, plan).expect("valid plan");
    let expected = expect_of_chain(lin);
    assert_eq!(
        format!("{tree:?}"),
        format!("{expected:?}"),
        "{tag}: tree engine diverged from ft_runner on a path"
    );
    assert_eq!(tree, expected, "{tag}: PartialEq divergence");
    if plan.halting_faults().count() <= 1 {
        let frozen = run_with_faults_single(&chain, plan).expect("valid plan");
        assert_eq!(
            format!("{tree:?}"),
            format!("{:?}", expect_of_chain(frozen)),
            "{tag}: tree engine diverged from the frozen PR 1 reference"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole invariants over the shared shape grid × seeded
    /// multi-fault plans.
    #[test]
    fn tree_fault_plans_hold_the_invariants(
        grid_seed in 0u64..8,
        case_ix in 0usize..16,
        plan_seed in 0u64..1_000_000,
    ) {
        let grid = tree_shape_grid(grid_seed);
        let case = &grid[case_ix % grid.len()];
        let s = scenario_of(case);
        let m = s.num_agents();
        let plan = FaultPlan::seeded_multi(plan_seed, m, 3);
        let ft = run_tree_with_faults(&s, &plan).expect("seeded plans are valid");

        prop_assert!(
            ft.load_conserved(1e-9),
            "{}: lost load, completed {:?}", case.label, ft.completed
        );
        prop_assert!(
            ft.makespan >= ft.base_makespan - 1e-12,
            "{}: recovery cannot be free", case.label
        );
        for j in 1..=m {
            prop_assert!(
                ft.fines_paid(j) <= 1e-12,
                "{}: honest P{j} fined", case.label
            );
        }

        // Settlement of the dead, by the phase the halt struck in.
        for ev in plan.halting_faults() {
            let k = ev.node;
            match ev.kind.halt_phase() {
                Some(3) => prop_assert!(
                    ft.net_utilities[k - 1].abs() <= 1e-9,
                    "{}: pro-rata settlement must land P{k} at zero utility, got {}",
                    case.label, ft.net_utilities[k - 1]
                ),
                Some(1) | Some(2) => {
                    prop_assert_eq!(ft.completed[k], 0.0);
                    prop_assert!(
                        ft.ledger.net(k).abs() <= 1e-12,
                        "{}: P{k} crashed pre-distribution but has ledger net {}",
                        case.label, ft.ledger.net(k)
                    );
                }
                _ => {}
            }
        }

        // Survivors that performed recovery work are paid a wage for it.
        for j in 1..=m {
            if ft.halted().any(|h| h == j) || ft.recovery_assigned[j] <= 0.0 {
                continue;
            }
            let wage = payment::recovery_wage(ft.recovery_assigned[j], s.true_rates[j - 1]);
            prop_assert!(
                ft.ledger.net(j) >= wage - 1e-9,
                "{}: P{j} performed recovery work but was not paid its wage", case.label
            );
        }

        // Replay is bit-identical.
        let again = run_tree_with_faults(&s, &plan).expect("seeded plans are valid");
        prop_assert_eq!(&ft, &again, "replay diverged");
        prop_assert_eq!(format!("{ft:?}"), format!("{again:?}"), "debug replay diverged");
    }

    /// Random plans on random degenerate paths are byte-identical to the
    /// linear fault engines.
    #[test]
    fn random_paths_match_the_chain_engine(
        grid_seed in 0u64..32,
        plan_seed in 0u64..1_000_000,
    ) {
        let grid = tree_shape_grid(grid_seed);
        let case = grid.iter().find(|c| is_path(&c.shape)).expect("grid has paths");
        let s = scenario_of(case);
        let plan = FaultPlan::seeded_multi(plan_seed, s.num_agents(), 3);
        assert_path_matches_chain(&s, &plan, &format!("{} seed={plan_seed}", case.label));
    }
}

/// The exact E22 multi-failure population — crash pairs over every phase
/// combination, recovery-during-recovery cascades, seeded mixed batches —
/// rebuilt as degenerate-path tree scenarios: every single run must be
/// byte-identical to the linear `ft_runner` (report, ledger, payments),
/// and every ≤1-halt plan to the frozen `ft_reference` as well.
#[test]
fn e22_population_on_paths_is_byte_identical_to_the_chain_engine() {
    // The E20/E22 heterogeneous chain, as a path-shaped tree.
    let path = |m: usize| -> TreeScenario {
        let true_rates: Vec<f64> = (0..m).map(|j| 0.6 + 0.8 * ((j * 5 % 4) as f64)).collect();
        let link_rates: Vec<f64> = (0..m).map(|j| 0.1 + 0.12 * ((j * 3 % 3) as f64)).collect();
        let mut w = vec![1.0];
        w.extend_from_slice(&true_rates);
        let net = LinearNetwork::from_rates(&w, &link_rates);
        TreeScenario::honest(TreeNode::from_chain(&net), true_rates)
    };

    let mut runs = 0usize;
    const PHASE_PAIRS: [(u8, u8); 5] = [(1, 1), (3, 3), (4, 4), (1, 3), (3, 4)];
    for m in 3..=6usize {
        let s = path(m);
        for cases in crash_pair_grid(m, &PHASE_PAIRS, 0.5) {
            assert_path_matches_chain(&s, &to_plan(&cases), &multi_label(&cases));
            runs += 1;
        }
    }
    let s = path(6);
    for cases in cascade_grid(6, 4, &[0.25, 0.5, 0.75]) {
        assert_path_matches_chain(&s, &to_plan(&cases), &multi_label(&cases));
        runs += 1;
    }
    for m in 2..=7usize {
        let s = path(m);
        for cases in seeded_multi_cases(0xE22, m, 60, 3) {
            assert_path_matches_chain(&s, &to_plan(&cases), &multi_label(&cases));
            runs += 1;
        }
    }
    assert!(runs > 700, "population shrank to {runs} runs");
}

/// Cutting an internal node pre-distribution re-attaches its subtrees:
/// the survivor allocation equals solving the spliced true-rate tree
/// directly, and the orphaned children keep working.
#[test]
fn internal_crash_reattaches_subtrees_on_every_grid_shape() {
    for case in tree_shape_grid(0xE24) {
        let s = scenario_of(&case);
        let flat_children: Vec<usize> = (1..=s.num_agents())
            .filter(|&k| {
                // Internal strategic nodes only: k has children.
                fn count(node: &TreeNode, idx: &mut usize, k: usize) -> bool {
                    let here = *idx;
                    *idx += 1;
                    if here == k {
                        return !node.children.is_empty();
                    }
                    node.children.iter().any(|(_, c)| count(c, idx, k))
                }
                count(&s.shape, &mut 0, k)
            })
            .collect();
        for k in flat_children {
            let ft = run_tree_with_faults(&s, &FaultPlan::crash(k, 1, 0.0)).expect("valid");
            assert!(ft.load_conserved(1e-9), "{} k={k}", case.label);
            assert_eq!(ft.completed[k], 0.0);
            assert_eq!(ft.splice_map[k], None);
            let spliced = dlt::tree::splice_node(&with_true_rates(&s), k);
            let shares = if spliced.tree.size() == 1 {
                vec![1.0]
            } else {
                dlt::tree::solve(&spliced.tree).flatten()
            };
            for (old, new) in spliced.map.iter().enumerate() {
                if let Some(new) = new {
                    assert!(
                        (ft.completed[old] - shares[*new]).abs() < 1e-9,
                        "{} k={k} node {old}: {} vs {}",
                        case.label,
                        ft.completed[old],
                        shares[*new]
                    );
                }
            }
        }
    }
}

/// The scenario's shape with the *true* rates substituted at the agents.
fn with_true_rates(s: &TreeScenario) -> TreeNode {
    fn rebuild(node: &TreeNode, rates: &[f64], next: &mut usize, is_root: bool) -> TreeNode {
        let w = if is_root {
            node.processor.w
        } else {
            let r = rates[*next];
            *next += 1;
            r
        };
        TreeNode {
            processor: dlt::model::Processor::new(w),
            children: node
                .children
                .iter()
                .map(|(l, c)| (dlt::model::Link::new(l.z), rebuild(c, rates, next, false)))
                .collect(),
        }
    }
    rebuild(&s.shape, &s.true_rates, &mut 0, true)
}
