//! Property tests for cascading and simultaneous failure recovery.
//!
//! Random `(Scenario, FaultPlan)` pairs with up to three halting faults
//! (plus message faults) must always hold the fault-tolerance
//! invariants:
//!
//! * **Load conservation** — the unit workload is fully completed by the
//!   survivors plus the partial work of the dead.
//! * **No honest survivor is ever fined** (the fault-tolerant extension
//!   of Lemma 5.2).
//! * **Pro-rata settlement** — a node that halts mid-computation is paid
//!   exactly `pro_rata(completed, w̃)` for the fraction it finished
//!   (recovery work included), landing its net utility at exactly zero;
//!   a node that dies before receiving load earns exactly nothing.
//! * **Deterministic replay** — re-running the same `(Scenario,
//!   FaultPlan)` yields a byte-identical `FtRunReport`.
//! * **Differential safety** — every plan with at most one halting fault
//!   produces a report byte-identical to the frozen PR 1 single-failure
//!   path (`ft_reference`), so the multi-failure generalization cannot
//!   have drifted on the cases the old engine handled.

use mechanism::payment;
use proptest::prelude::*;
use protocol::{
    run_with_faults, run_with_faults_single, EntryKind, FaultKind, FaultPlan, Scenario,
};

/// A deterministic heterogeneous chain, same family as the obs-parity
/// suite: seed-indexed rates and link speeds.
fn chain(m: usize, s: usize) -> Scenario {
    let true_rates: Vec<f64> = (0..m)
        .map(|j| 0.5 + 0.45 * (((s + j * 7) % 5) as f64))
        .collect();
    let link_rates: Vec<f64> = (0..m)
        .map(|j| 0.08 + 0.05 * (((s + j * 3) % 4) as f64))
        .collect();
    Scenario::honest(1.0, true_rates, link_rates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole invariants over random multi-failure plans: up to
    /// three distinct-node crash/stall faults plus message faults.
    #[test]
    fn multi_failure_plans_hold_the_invariants(
        m in 2usize..=6,
        net_seed in 0usize..64,
        plan_seed in 0u64..1_000_000,
    ) {
        let s = chain(m, net_seed);
        let plan = FaultPlan::seeded_multi(plan_seed, m, 3);
        let ft = run_with_faults(&s, &plan).expect("seeded plans are valid");

        // Load conservation across any number of splices.
        prop_assert!(ft.load_conserved(1e-9), "lost load: completed {:?}", ft.completed);

        // Every node here is honest: nobody is ever fined.
        for j in 1..=m {
            prop_assert!(ft.fines_paid(j) <= 1e-12, "honest P{j} fined");
        }

        // Settlement of the dead, by the phase the halt struck in.
        for ev in plan.halting_faults() {
            let k = ev.node;
            match ev.kind.halt_phase() {
                Some(3) => {
                    // Mid-computation halt (base round or mid-recovery):
                    // paid pro-rata on exactly what it finished, utility
                    // exactly zero.
                    let expect = payment::pro_rata(ft.completed[k], s.true_rates[k - 1]).payment;
                    let paid = ft.ledger.net_of(k, EntryKind::Payment);
                    prop_assert!(
                        (paid - expect).abs() <= 1e-9,
                        "P{k} paid {paid}, pro-rata says {expect}"
                    );
                    prop_assert!(
                        ft.net_utilities[k - 1].abs() <= 1e-9,
                        "pro-rata settlement must land P{k} at zero utility, got {}",
                        ft.net_utilities[k - 1]
                    );
                }
                Some(1) | Some(2) => {
                    // Dead before receiving load: earns exactly nothing.
                    prop_assert_eq!(ft.completed[k], 0.0);
                    prop_assert!(
                        ft.ledger.net(k).abs() <= 1e-12,
                        "P{k} crashed pre-distribution but has ledger net {}",
                        ft.ledger.net(k)
                    );
                }
                _ => {}
            }
        }

        // Survivors that performed recovery work are paid a wage for it.
        for j in 1..=m {
            if ft.halted().any(|h| h == j) || ft.recovery_assigned[j] <= 0.0 {
                continue;
            }
            let wage = payment::recovery_wage(ft.recovery_assigned[j], s.true_rates[j - 1]);
            prop_assert!(
                ft.ledger.net(j) >= wage - 1e-9,
                "P{j} performed recovery work but was not paid its wage"
            );
        }

        // Replay is bit-identical.
        let again = run_with_faults(&s, &plan).expect("seeded plans are valid");
        prop_assert_eq!(format!("{ft:?}"), format!("{again:?}"), "replay diverged");
    }

    /// Differential: random *single*-halt plans through the multi-failure
    /// engine must be byte-identical to the frozen PR 1 path.
    #[test]
    fn single_failure_plans_match_the_frozen_reference(
        m in 1usize..=6,
        net_seed in 0usize..64,
        node_ix in 0usize..6,
        phase in 1usize..=4,
        progress in prop::sample::select(vec![0.0f64, 0.25, 0.5, 0.75, 1.0]),
        stall in 0usize..2,
        message_fault in 0usize..4,
    ) {
        let s = chain(m, net_seed);
        let node = 1 + node_ix % m;
        let phase = phase as u8;
        let mut plan = if stall == 1 {
            FaultPlan::stall(node, progress)
        } else {
            FaultPlan::crash(node, phase, progress)
        };
        if message_fault > 0 {
            let target = 1 + (node_ix + 1) % m;
            let kind = match message_fault {
                1 => FaultKind::DropMessage { phase },
                2 => FaultKind::DelayMessage { phase, delay: 0.02 },
                _ => FaultKind::CorruptMessage { phase },
            };
            plan = plan.with_event(target, kind);
        }
        let live = run_with_faults(&s, &plan).expect("valid plan");
        let frozen = run_with_faults_single(&s, &plan).expect("valid plan");
        prop_assert_eq!(
            format!("{live:?}"),
            format!("{frozen:?}"),
            "multi-failure engine diverged from the PR 1 path"
        );
    }
}

/// The PR 1 seeded single-fault batches — the exact population E20
/// sweeps — all match the frozen reference byte for byte.
#[test]
fn seeded_single_fault_plans_match_the_frozen_reference() {
    for m in 1..=6usize {
        let s = chain(m, m);
        for seed in 0..40u64 {
            let plan = FaultPlan::seeded(seed, m);
            let live = run_with_faults(&s, &plan).expect("valid plan");
            let frozen = run_with_faults_single(&s, &plan).expect("valid plan");
            assert_eq!(
                format!("{live:?}"),
                format!("{frozen:?}"),
                "seed {seed}, m={m}: multi-failure engine diverged from the PR 1 path"
            );
        }
    }
}

/// Two crashes landing in the same recovery lineage: the second node
/// dies while performing recovery work and is settled on the fraction of
/// its *recovery* assignment it finished — not on its original Λ.
#[test]
fn crash_during_recovery_is_settled_on_the_recovery_fraction() {
    let s = chain(4, 1);
    let plan = FaultPlan::crash(2, 3, 0.5).with_event(
        3,
        FaultKind::Crash {
            phase: 3,
            progress: 0.25,
        },
    );
    let ft = run_with_faults(&s, &plan).expect("valid plan");
    assert_eq!(ft.crashed, vec![2, 3]);
    assert!(ft.load_conserved(1e-9));
    for k in [2usize, 3] {
        let expect = payment::pro_rata(ft.completed[k], s.true_rates[k - 1]).payment;
        assert!(
            (ft.ledger.net_of(k, EntryKind::Payment) - expect).abs() <= 1e-12,
            "P{k} not settled pro-rata on its completed fraction"
        );
        assert!(ft.net_utilities[k - 1].abs() <= 1e-12);
    }
    // P3 finished strictly less than its base retention would have been:
    // it died a quarter into its recovery share.
    assert!(
        ft.recovery_assigned[3] > 0.0,
        "P3 must have received recovery work"
    );
    let again = run_with_faults(&s, &plan).expect("valid plan");
    assert_eq!(format!("{ft:?}"), format!("{again:?}"));
}
