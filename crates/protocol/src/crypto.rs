//! Simulated digital signatures and PKI.
//!
//! The paper *assumes* an unforgeable signature scheme and a public key
//! infrastructure (§4); Lemma 5.2 explicitly takes forgery to be
//! impossible. We therefore simulate: every node holds a 128-bit secret,
//! a signature is a keyed hash of the canonical message bytes, and the
//! [`Registry`] (standing in for the PKI) verifies by recomputation. The
//! hash is not cryptographically strong — it doesn't need to be; what the
//! protocol logic requires is that *within the simulation* a node without
//! the secret cannot mint a verifying tag, which holds by construction
//! because secrets never leave the keypair/registry.
//!
//! All protocol-relevant behaviors are real on top of this substrate:
//! inauthentic messages are rejected, contradictory signed messages are
//! detectable and attributable, and evidence survives forwarding.

/// A node identifier: index in the chain (`0` is the root).
pub type NodeId = usize;

/// A signature tag over a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub u128);

/// Keyed 128-bit hash (FNV-1a style folded twice with different offsets).
/// Deterministic, stable across runs.
fn keyed_hash(secret: u128, data: &[u8]) -> u128 {
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;
    let mut h1: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d ^ secret;
    for &b in data {
        h1 ^= b as u128;
        h1 = h1.wrapping_mul(PRIME);
    }
    let mut h2: u128 = 0xcbf2_9ce4_8422_2325_8422_2325_cbf2_9ce4 ^ secret.rotate_left(64);
    for &b in data.iter().rev() {
        h2 ^= b as u128;
        h2 = h2.wrapping_mul(PRIME);
    }
    h1 ^ h2.rotate_left(17)
}

/// Canonical message bytes for signing: the payload's `Debug` rendering.
/// All signed payload types derive `Debug` with full field coverage, so two
/// payloads render identically iff they are equal — which is exactly the
/// property the simulated signatures need (offline stand-in for canonical
/// JSON serialization).
fn canonical_bytes<T: std::fmt::Debug>(payload: &T) -> Vec<u8> {
    format!("{payload:?}").into_bytes()
}

/// A node's private key. Only the owning node (and the registry, which
/// plays the PKI's role of binding identities to keys) ever holds it.
#[derive(Debug, Clone)]
pub struct KeyPair {
    /// The owning node.
    pub node: NodeId,
    secret: u128,
}

impl KeyPair {
    /// Sign raw bytes.
    pub fn sign_bytes(&self, data: &[u8]) -> Signature {
        Signature(keyed_hash(self.secret, data))
    }

    /// Sign any debuggable payload (canonical `Debug`-formatted bytes).
    pub fn sign<T: std::fmt::Debug>(&self, payload: &T) -> Signature {
        let bytes = canonical_bytes(payload);
        self.sign_bytes(&bytes)
    }
}

/// The PKI stand-in: issues keys and verifies signatures.
#[derive(Debug, Default)]
pub struct Registry {
    secrets: Vec<u128>,
}

impl Registry {
    /// Create a registry for `n` nodes with deterministic per-node secrets
    /// derived from `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut secrets = Vec::with_capacity(n);
        let mut state = (seed as u128) | 1;
        for i in 0..n {
            // splitmix-style expansion; distinct per node
            state = state
                .wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C835)
                .wrapping_add(i as u128 + 0x632B_E5AB);
            secrets.push(state ^ state.rotate_left(49));
        }
        Self { secrets }
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.secrets.len()
    }

    /// True if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.secrets.is_empty()
    }

    /// Hand node `id` its keypair.
    pub fn keypair(&self, id: NodeId) -> KeyPair {
        KeyPair {
            node: id,
            secret: self.secrets[id],
        }
    }

    /// Verify a signature over raw bytes.
    pub fn verify_bytes(&self, id: NodeId, data: &[u8], sig: Signature) -> bool {
        id < self.secrets.len() && keyed_hash(self.secrets[id], data) == sig.0
    }

    /// Verify a signature over a debuggable payload.
    pub fn verify<T: std::fmt::Debug>(&self, id: NodeId, payload: &T, sig: Signature) -> bool {
        let bytes = canonical_bytes(payload);
        self.verify_bytes(id, &bytes, sig)
    }
}

/// A digitally signed message `dsm_i(m) = (m, sig_i(m))` (§4 notation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dsm<T> {
    /// The payload `m`.
    pub payload: T,
    /// The signer.
    pub signer: NodeId,
    /// The signature `sig_i(m)`.
    pub signature: Signature,
}

impl<T: std::fmt::Debug + Clone> Dsm<T> {
    /// Sign a payload.
    pub fn new(key: &KeyPair, payload: T) -> Self {
        let signature = key.sign(&payload);
        Self {
            payload,
            signer: key.node,
            signature,
        }
    }

    /// Verify against the registry, optionally pinning the expected signer.
    pub fn verify(&self, registry: &Registry, expected_signer: Option<NodeId>) -> bool {
        if let Some(exp) = expected_signer {
            if exp != self.signer {
                return false;
            }
        }
        registry.verify(self.signer, &self.payload, self.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let reg = Registry::new(4, 42);
        let key = reg.keypair(2);
        let sig = key.sign(&"hello");
        assert!(reg.verify(2, &"hello", sig));
    }

    #[test]
    fn wrong_signer_rejected() {
        let reg = Registry::new(4, 42);
        let key = reg.keypair(2);
        let sig = key.sign(&"hello");
        assert!(!reg.verify(1, &"hello", sig));
    }

    #[test]
    fn tampered_payload_rejected() {
        let reg = Registry::new(4, 42);
        let key = reg.keypair(2);
        let sig = key.sign(&"hello");
        assert!(!reg.verify(2, &"hullo", sig));
    }

    #[test]
    fn forgery_without_secret_fails() {
        let reg = Registry::new(4, 42);
        // An attacker guesses a signature value.
        for guess in [0u128, 1, u128::MAX, 0xDEADBEEF] {
            assert!(!reg.verify(3, &42.0f64, Signature(guess)));
        }
    }

    #[test]
    fn secrets_differ_across_nodes_and_seeds() {
        let a = Registry::new(3, 1);
        let b = Registry::new(3, 2);
        let msg = 3.25f64;
        let s0 = a.keypair(0).sign(&msg);
        let s1 = a.keypair(1).sign(&msg);
        let s0b = b.keypair(0).sign(&msg);
        assert_ne!(s0, s1, "different nodes, different tags");
        assert_ne!(s0, s0b, "different seeds, different tags");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Registry::new(3, 7);
        let b = Registry::new(3, 7);
        let msg = vec![1.0f64, 2.0];
        assert_eq!(a.keypair(1).sign(&msg), b.keypair(1).sign(&msg));
    }

    #[test]
    fn dsm_verify_pins_signer() {
        let reg = Registry::new(4, 42);
        let dsm = Dsm::new(&reg.keypair(1), 0.5f64);
        assert!(dsm.verify(&reg, Some(1)));
        assert!(!dsm.verify(&reg, Some(2)));
        assert!(dsm.verify(&reg, None));
    }

    #[test]
    fn dsm_detects_payload_substitution() {
        let reg = Registry::new(4, 42);
        let mut dsm = Dsm::new(&reg.keypair(1), 0.5f64);
        dsm.payload = 0.75;
        assert!(!dsm.verify(&reg, Some(1)));
    }

    #[test]
    fn contradictory_messages_are_attributable() {
        // Two authentic messages with different payloads from the same
        // signer: both verify — exactly the evidence Phase I needs.
        let reg = Registry::new(4, 42);
        let key = reg.keypair(2);
        let m1 = Dsm::new(&key, 0.5f64);
        let m2 = Dsm::new(&key, 0.9f64);
        assert!(m1.verify(&reg, Some(2)) && m2.verify(&reg, Some(2)));
        assert_ne!(m1.payload, m2.payload);
    }

    #[test]
    fn unknown_node_never_verifies() {
        let reg = Registry::new(2, 42);
        let key = reg.keypair(1);
        let sig = key.sign(&1.0f64);
        assert!(!reg.verify_bytes(5, b"x", sig));
    }
}
