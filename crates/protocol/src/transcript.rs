//! Protocol transcripts and post-hoc replay audits.
//!
//! Every message a run produces is recorded in order; [`replay`] lets the
//! root (or a third party with the PKI and the block mint) re-audit an
//! entire run **after the fact**, recomputing every check from the signed
//! evidence alone. The replay must reach exactly the same conclusions as
//! the online checks — asserted by the runner's tests — which is the
//! forensic guarantee behind Phase IV's "save `Proof_j` as evidence"
//! (eq. 4.12): nothing about a conviction depends on having watched the
//! run live.

use crate::crypto::{Dsm, NodeId, Registry};
use crate::lambda::{BlockMint, LoadTag};
use crate::messages::{Bill, GMessage};

/// One recorded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Entry {
    /// Phase I: `from` reported its equivalent time to `to`.
    PhaseIBid {
        /// Sender.
        from: NodeId,
        /// Receiver (the predecessor).
        to: NodeId,
        /// `dsm_from(w̄_from)`.
        message: Dsm<f64>,
    },
    /// Phase II: `from` handed `G_to` to `to`.
    PhaseIIAllocation {
        /// Sender (the predecessor).
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message.
        g: GMessage,
        /// The public rate of the link into `to`.
        link_rate: f64,
    },
    /// Phase III: `from` physically delivered load to `to`.
    PhaseIIIDelivery {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Amount delivered.
        amount: f64,
        /// The Λ receipt proof `to` can exhibit.
        tag: LoadTag,
    },
    /// Phase IV: `node` submitted a bill.
    PhaseIVBill {
        /// The bill with its proof.
        bill: Bill,
        /// The honest amount recomputed by the auditor's own settlement
        /// (recorded so replay needs no solver round-trip).
        recomputed: f64,
    },
    /// A neighbour's detection timer expired: `detector` reported `suspect`
    /// silent in `phase`. Recorded for forensics only — replay never turns
    /// a timeout into an accusation, because silence carries no signature
    /// and a dropped message can mimic a crash.
    Timeout {
        /// The node whose timer fired.
        detector: NodeId,
        /// The node that went silent.
        suspect: NodeId,
        /// The phase in which silence was observed.
        phase: u8,
    },
    /// The root spliced a failed node out of the chain and re-solved the
    /// allocation for its unprocessed load on the survivors.
    Recovery {
        /// The node removed from the chain.
        dead: NodeId,
        /// Load the dead node had been assigned but never finished.
        residual: f64,
        /// `(survivor, extra load)` pairs from the re-solved allocation.
        reassigned: Vec<(NodeId, f64)>,
    },
}

/// A full run transcript.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Transcript {
    entries: Vec<Entry>,
}

impl Transcript {
    /// Empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an entry.
    pub fn record(&mut self, entry: Entry) {
        self.entries.push(entry);
    }

    /// All entries in order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of recorded messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A deviation uncovered by replaying a transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The node the evidence incriminates.
    pub accused: NodeId,
    /// What the replay found.
    pub kind: FindingKind,
}

/// Classification of replay findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Two authentic Phase I messages with different values.
    ContradictoryBids,
    /// A signature that does not verify.
    ForgedSignature,
    /// A Phase II message failing the arithmetic checks.
    InconsistentAllocation,
    /// A Phase III delivery exceeding the signed prescription.
    Overdelivery,
    /// A Phase IV bill that does not match its proof.
    Overcharge,
}

/// Replay a transcript against the PKI and block mint, returning every
/// deviation the evidence supports. Tolerance mirrors the online checks.
pub fn replay(transcript: &Transcript, registry: &Registry, mint: &BlockMint) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Phase I: group bid messages by sender and compare values.
    let mut bids: Vec<(NodeId, f64)> = Vec::new();
    for e in transcript.entries() {
        match e {
            Entry::PhaseIBid { from, message, .. } => {
                if !message.verify(registry, Some(*from)) {
                    findings.push(Finding {
                        accused: *from,
                        kind: FindingKind::ForgedSignature,
                    });
                    continue;
                }
                if let Some(&(_, prev)) = bids.iter().find(|(n, _)| n == from) {
                    if (prev - message.payload).abs() > 1e-9 {
                        findings.push(Finding {
                            accused: *from,
                            kind: FindingKind::ContradictoryBids,
                        });
                    }
                } else {
                    bids.push((*from, message.payload));
                }
            }
            Entry::PhaseIIAllocation {
                from,
                to,
                g,
                link_rate,
            } => {
                // The recipient's Phase I bid is whatever it reported
                // upward — read it from the transcript itself.
                let my_bid = bids
                    .iter()
                    .find(|(n, _)| n == to)
                    .map(|&(_, b)| b)
                    .unwrap_or(g.wbar_cur.payload);
                if g.check(registry, *to, my_bid, *link_rate, 1e-9).is_err() {
                    findings.push(Finding {
                        accused: *from,
                        kind: FindingKind::InconsistentAllocation,
                    });
                }
            }
            Entry::PhaseIIIDelivery {
                from,
                to,
                amount,
                tag,
            } => {
                // The prescription for `to` is the d_cur of the G message
                // addressed to it.
                let prescribed = transcript.entries().iter().find_map(|e2| match e2 {
                    Entry::PhaseIIAllocation { to: t2, g, .. } if t2 == to => Some(g.d_cur.payload),
                    _ => None,
                });
                if let Some(d) = prescribed {
                    let proven = mint.verify(tag);
                    match proven {
                        Some(p)
                            if p > d + 0.5 * mint.block_size()
                                && *amount > d + 0.5 * mint.block_size() =>
                        {
                            findings.push(Finding {
                                accused: *from,
                                kind: FindingKind::Overdelivery,
                            });
                        }
                        None => findings.push(Finding {
                            accused: *to,
                            kind: FindingKind::ForgedSignature,
                        }),
                        _ => {}
                    }
                }
            }
            Entry::PhaseIVBill { bill, recomputed } => {
                if (bill.amount - recomputed).abs() > 1e-9 {
                    findings.push(Finding {
                        accused: bill.node,
                        kind: FindingKind::Overcharge,
                    });
                }
            }
            // Fault-handling entries are evidence of *recovery*, not of
            // deviation: no replay finding may ever rest on them.
            Entry::Timeout { .. } | Entry::Recovery { .. } => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::Registry;

    #[test]
    fn empty_transcript_is_clean() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        assert!(replay(&Transcript::new(), &reg, &mint).is_empty());
    }

    #[test]
    fn consistent_bids_produce_no_findings() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let mut t = Transcript::new();
        let key = reg.keypair(2);
        t.record(Entry::PhaseIBid {
            from: 2,
            to: 1,
            message: Dsm::new(&key, 0.7),
        });
        t.record(Entry::PhaseIBid {
            from: 2,
            to: 1,
            message: Dsm::new(&key, 0.7),
        });
        assert!(replay(&t, &reg, &mint).is_empty());
    }

    #[test]
    fn contradictory_bids_are_found() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let mut t = Transcript::new();
        let key = reg.keypair(2);
        t.record(Entry::PhaseIBid {
            from: 2,
            to: 1,
            message: Dsm::new(&key, 0.7),
        });
        t.record(Entry::PhaseIBid {
            from: 2,
            to: 1,
            message: Dsm::new(&key, 0.9),
        });
        let findings = replay(&t, &reg, &mint);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].accused, 2);
        assert_eq!(findings[0].kind, FindingKind::ContradictoryBids);
    }

    #[test]
    fn forged_signature_is_found() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let mut t = Transcript::new();
        let mut msg = Dsm::new(&reg.keypair(2), 0.7);
        msg.payload = 0.8; // tampered after signing
        t.record(Entry::PhaseIBid {
            from: 2,
            to: 1,
            message: msg,
        });
        let findings = replay(&t, &reg, &mint);
        assert_eq!(findings[0].kind, FindingKind::ForgedSignature);
    }

    #[test]
    fn timeout_and_recovery_entries_accuse_nobody() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let mut t = Transcript::new();
        t.record(Entry::Timeout {
            detector: 1,
            suspect: 2,
            phase: 3,
        });
        t.record(Entry::Recovery {
            dead: 2,
            residual: 0.25,
            reassigned: vec![(1, 0.1), (3, 0.15)],
        });
        assert!(
            replay(&t, &reg, &mint).is_empty(),
            "fault entries must never incriminate"
        );
    }

    #[test]
    fn inflated_bill_is_found() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let mut t = Transcript::new();
        let key0 = reg.keypair(0);
        let g = GMessage {
            d_prev: Dsm::new(&key0, 1.0),
            d_cur: Dsm::new(&key0, 0.4),
            wbar_prev: Dsm::new(&key0, 0.6),
            w_prev: Dsm::new(&key0, 1.0),
            wbar_cur: Dsm::new(&key0, 1.0),
        };
        let bill = Bill {
            node: 1,
            amount: 2.5,
            proof: crate::messages::PaymentProof {
                g,
                meter: Dsm::new(&key0, 1.0),
                tag: mint.range(0, 4),
                actual_load: 0.4,
            },
        };
        t.record(Entry::PhaseIVBill {
            bill,
            recomputed: 2.0,
        });
        let findings = replay(&t, &reg, &mint);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::Overcharge);
        assert_eq!(findings[0].accused, 1);
    }
}
