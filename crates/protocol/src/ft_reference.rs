//! The **frozen single-failure recovery path** (PR 1), kept verbatim as a
//! differential-testing reference for the generalized cascading engine in
//! [`crate::ft_runner`].
//!
//! When multi-failure support was added, the single-failure logic was
//! rewritten into the round-based engine of
//! [`crate::ft_runner::run_with_faults`]. To guard against regressions
//! while generalizing, this module preserves the original three recovery
//! paths (pre-distribution crash, mid-computation halt, pre-billing
//! crash) exactly as PR 1 shipped them — same control flow, same
//! floating-point expression shapes — so the `multi_fault` differential
//! suite can assert that every single-failure `FaultPlan` produces a
//! **byte-identical** [`FtRunReport`] through both engines.
//!
//! Do not "improve" this module: its value is being frozen. It shares
//! only the leaf helpers (`detector_of`, `allocation_of`, `unsplice`,
//! `healthy_report`, `apply_message_faults`) with the live engine; all
//! orchestration logic is duplicated on purpose.

use crate::crypto::NodeId;
use crate::faults::{FaultKind, FaultPlan};
use crate::ft_runner::{
    allocation_of, apply_message_faults, detector_of, healthy_report, unsplice, FtError,
    FtRunReport,
};
use crate::ledger::{EntryKind, Ledger};
use crate::root::{arbitrate_unresponsive, ArbitrationRecord};
use crate::runner::{try_run, RunReport, Scenario};
use crate::transcript::{Entry, Transcript};
use dlt::linear;
use dlt::model::LinearNetwork;
use mechanism::payment::{self, PaymentInputs};

/// Execute `scenario` under a **single-failure** `plan` through the
/// original PR 1 recovery path.
///
/// # Panics
/// Panics if the plan carries more than one halting fault — this path
/// predates cascading failures by construction.
pub fn run_with_faults_single(
    scenario: &Scenario,
    plan: &FaultPlan,
) -> Result<FtRunReport, FtError> {
    scenario.validate()?;
    let m = scenario.num_agents();
    plan.validate(m)?;
    assert!(
        plan.halting_faults().count() <= 1,
        "the frozen reference path handles at most one halting fault"
    );
    let n = m + 1;
    let timeout = plan.detection_timeout;

    let base = try_run(scenario)?;
    let identity_map: Vec<Option<usize>> = (0..n).map(Some).collect();

    let mut report = match plan.halting_fault() {
        None => healthy_report(scenario, &base, identity_map),
        Some((
            k,
            FaultKind::Crash {
                phase: p @ (1 | 2), ..
            },
        )) => pre_distribution_crash(scenario, &base, k, p, timeout)?,
        Some((k, FaultKind::Crash { phase: 3, progress })) => {
            mid_computation_halt(scenario, &base, k, progress, timeout, false, identity_map)
        }
        Some((k, FaultKind::Stall { progress })) => {
            mid_computation_halt(scenario, &base, k, progress, timeout, true, identity_map)
        }
        Some((k, FaultKind::Crash { .. })) => {
            pre_billing_crash(scenario, &base, k, timeout, identity_map)
        }
        Some((_, _)) => unreachable!("halting_fault returns only Crash/Stall"),
    };

    apply_message_faults(&mut report, plan, m);
    Ok(report)
}

/// Crash in Phase I or II: nothing was distributed; splice and re-run the
/// whole protocol on the survivor chain, then renumber back.
fn pre_distribution_crash(
    scenario: &Scenario,
    base: &RunReport,
    k: NodeId,
    phase: u8,
    timeout: f64,
) -> Result<FtRunReport, FtError> {
    let m = scenario.num_agents();
    let n = m + 1;
    let splice_map: Vec<Option<usize>> = (0..n)
        .map(|i| {
            if i == k {
                None
            } else {
                Some(if i < k { i } else { i - 1 })
            }
        })
        .collect();

    let detector = detector_of(k, phase, m);
    let mut transcript = Transcript::new();
    transcript.record(Entry::Timeout {
        detector,
        suspect: k,
        phase,
    });
    let mut arbitrations = vec![arbitrate_unresponsive(detector, k, false)];
    let detected = vec![(detector, k, phase)];

    // Recovery restarts the whole schedule: the virtual clock begins at 0,
    // waits out the detection timeout, then runs the survivor protocol.
    let mut clock = obs::RunClock::new();
    let timeout_span = clock.advance(timeout);
    let mut timeline = obs::PhaseTimeline::new(n);
    timeline.push(
        detector,
        phase,
        obs::TimelineKind::Timeout,
        timeout_span,
        0.0,
    );
    timeline.mark(k, phase, obs::TimelineKind::Splice, timeout_span.1);

    if m == 1 {
        // No strategic survivor: the obedient root computes the whole unit
        // load itself at rate w_0.
        transcript.record(Entry::Recovery {
            dead: k,
            residual: 0.0,
            reassigned: vec![(0, 1.0)],
        });
        let mut assigned = vec![0.0; n];
        assigned[0] = 1.0;
        let root_span = clock.advance(scenario.root_rate);
        timeline.push(0, 3, obs::TimelineKind::Recovery, root_span, 1.0);
        timeline.makespan = clock.now();
        return Ok(FtRunReport {
            crashed: vec![k],
            stalled: Vec::new(),
            detected,
            completed: assigned.clone(),
            assigned,
            recovered_load: 0.0,
            recovery_assigned: vec![0.0; n],
            makespan: clock.now(),
            base_makespan: base.makespan,
            arbitrations,
            ledger: Ledger::new(),
            net_utilities: vec![0.0],
            transcript,
            splice_map,
            events: 0,
            timeline,
        });
    }

    // Splice the chain of *true* rates; bids re-derive from the surviving
    // nodes' deviations inside the inner run.
    let mut w = vec![scenario.root_rate];
    w.extend_from_slice(&scenario.true_rates);
    let spliced = linear::splice(&LinearNetwork::from_rates(&w, &scenario.link_rates), k);
    let mut deviations = scenario.deviations.clone();
    deviations.remove(k - 1);
    let inner_scenario = Scenario {
        root_rate: scenario.root_rate,
        true_rates: spliced.rates_w()[1..].to_vec(),
        link_rates: spliced.rates_z().to_vec(),
        deviations,
        fine: scenario.fine,
        blocks: scenario.blocks,
        seed: scenario.seed,
        solution_bonus: scenario.solution_bonus,
        solution_found: scenario.solution_found,
    };
    let inner = try_run(&inner_scenario)?;
    let recovery_span = clock.advance(inner.makespan);
    // The survivor protocol's Phase III work, shifted past the timeout and
    // renumbered to the original chain.
    for s in inner.timeline.of(obs::TimelineKind::Work) {
        if s.phase == 3 {
            timeline.push(
                unsplice(s.node, k),
                3,
                obs::TimelineKind::Recovery,
                (recovery_span.0 + s.start, recovery_span.0 + s.end),
                s.load,
            );
        }
    }
    timeline.makespan = clock.now();

    transcript.record(Entry::Recovery {
        dead: k,
        residual: 0.0,
        reassigned: inner
            .assigned
            .iter()
            .enumerate()
            .map(|(si, &a)| (unsplice(si, k), a))
            .collect(),
    });
    for e in inner.transcript.entries() {
        transcript.record(e.clone());
    }

    // Renumber everything back to original indices.
    let mut assigned = vec![0.0; n];
    let mut completed = vec![0.0; n];
    for si in 0..inner.assigned.len() {
        assigned[unsplice(si, k)] = inner.assigned[si];
        completed[unsplice(si, k)] = inner.retained[si];
    }
    let mut ledger = Ledger::new();
    for e in inner.ledger.entries() {
        ledger.post(unsplice(e.node, k), e.kind, e.amount, e.phase);
    }
    arbitrations.extend(inner.arbitrations.iter().map(|a| ArbitrationRecord {
        claimant: unsplice(a.claimant, k),
        accused: unsplice(a.accused, k),
        ..a.clone()
    }));
    let mut net_utilities = vec![0.0; m];
    for sj in 1..=m - 1 {
        net_utilities[unsplice(sj, k) - 1] = inner.net_utilities[sj - 1];
    }

    Ok(FtRunReport {
        crashed: vec![k],
        stalled: Vec::new(),
        detected,
        assigned,
        completed,
        recovered_load: 0.0,
        recovery_assigned: vec![0.0; n],
        makespan: clock.now(),
        base_makespan: base.makespan,
        arbitrations,
        ledger,
        net_utilities,
        transcript,
        splice_map,
        events: inner.events,
        timeline,
    })
}

/// Crash or stall during Phase III computation at fraction `progress`:
/// splice, re-allocate the residual, settle the halted node pro rata and
/// the survivors' recovery work at cost.
fn mid_computation_halt(
    scenario: &Scenario,
    base: &RunReport,
    k: NodeId,
    progress: f64,
    timeout: f64,
    alive: bool,
    splice_map: Vec<Option<usize>>,
) -> FtRunReport {
    let m = scenario.num_agents();
    let n = m + 1;
    let actual_k = base.actual_rates[k - 1];
    let done_k = progress * base.retained[k];
    let residual = base.retained[k] - done_k;

    let detector = detector_of(k, 3, m);
    let mut transcript = base.transcript.clone();
    transcript.record(Entry::Timeout {
        detector,
        suspect: k,
        phase: 3,
    });
    let mut arbitrations = base.arbitrations.clone();
    arbitrations.push(arbitrate_unresponsive(detector, k, alive));

    // The recovery clock picks up where the fault-free schedule ended:
    // detection wait, splice, then the residual re-computation.
    let mut clock = obs::RunClock::starting_at(base.makespan);
    let timeout_span = clock.advance(timeout);

    // Re-solve on the spliced *bid* chain, as any Phase II allocation.
    let mut bid_w = vec![scenario.root_rate];
    bid_w.extend_from_slice(&base.bids);
    let spliced = linear::splice(&LinearNetwork::from_rates(&bid_w, &scenario.link_rates), k);
    let (per_unit_makespan, shares) = allocation_of(&spliced);

    let mut completed = base.retained.clone();
    completed[k] = done_k;
    let mut recovery_assigned = vec![0.0; n];
    let mut reassigned = Vec::with_capacity(shares.len());
    for (si, &share) in shares.iter().enumerate() {
        let orig = unsplice(si, k);
        let extra = residual * share;
        recovery_assigned[orig] = extra;
        completed[orig] += extra;
        reassigned.push((orig, extra));
    }
    transcript.record(Entry::Recovery {
        dead: k,
        residual,
        reassigned,
    });

    let recovery_span = clock.advance(residual * per_unit_makespan);
    let mut timeline = base.timeline.clone();
    timeline.push(detector, 3, obs::TimelineKind::Timeout, timeout_span, 0.0);
    timeline.mark(k, 3, obs::TimelineKind::Splice, recovery_span.0);
    for (orig, &extra) in recovery_assigned.iter().enumerate() {
        if extra > 0.0 {
            timeline.push(orig, 3, obs::TimelineKind::Recovery, recovery_span, extra);
        }
    }
    timeline.makespan = clock.now();

    // Rebuild the ledger: the halted node's Phase IV settlement (payment,
    // and any audit outcome of a bill it never submitted) is replaced by
    // pro-rata compensation; survivors are paid their recovery work at
    // metered cost. Earlier-phase fines and rewards stand.
    let mut ledger = Ledger::new();
    for e in base.ledger.entries() {
        if !(e.node == k && e.phase == 4) {
            ledger.post(e.node, e.kind, e.amount, e.phase);
        }
    }
    let pro_rata = payment::pro_rata(done_k, actual_k);
    ledger.post(k, EntryKind::Payment, pro_rata.payment, 4);
    for j in 1..=m {
        if j != k && recovery_assigned[j] > 0.0 {
            ledger.post(
                j,
                EntryKind::Payment,
                recovery_assigned[j] * base.actual_rates[j - 1],
                4,
            );
        }
    }

    // Net utilities: valuation (recovered from the base report) adjusted
    // for the changed workloads, plus the rebuilt ledger.
    let mut net_utilities = vec![0.0; m];
    for j in 1..=m {
        let valuation = if j == k {
            pro_rata.valuation
        } else {
            let base_valuation = base.net_utilities[j - 1] - base.ledger.net(j);
            base_valuation - recovery_assigned[j] * base.actual_rates[j - 1]
        };
        net_utilities[j - 1] = valuation + ledger.net(j);
    }

    FtRunReport {
        crashed: if alive { Vec::new() } else { vec![k] },
        stalled: if alive { vec![k] } else { Vec::new() },
        detected: vec![(detector, k, 3)],
        assigned: base.assigned.clone(),
        completed,
        recovered_load: residual,
        recovery_assigned,
        makespan: clock.now(),
        base_makespan: base.makespan,
        arbitrations,
        ledger,
        net_utilities,
        transcript,
        splice_map,
        events: base.events,
        timeline,
    }
}

/// Crash in Phase IV: all work is done, only the bill is missing. After
/// the timeout the root settles the silent node from its own recomputation
/// (the proof data it already holds), which also voids any inflated bill
/// the node would have submitted.
fn pre_billing_crash(
    scenario: &Scenario,
    base: &RunReport,
    k: NodeId,
    timeout: f64,
    splice_map: Vec<Option<usize>>,
) -> FtRunReport {
    let m = scenario.num_agents();
    let n = m + 1;
    let detector = detector_of(k, 4, m);
    let mut transcript = base.transcript.clone();
    transcript.record(Entry::Timeout {
        detector,
        suspect: k,
        phase: 4,
    });
    let mut arbitrations = base.arbitrations.clone();
    arbitrations.push(arbitrate_unresponsive(detector, k, false));

    let mut clock = obs::RunClock::starting_at(base.makespan);
    let timeout_span = clock.advance(timeout);
    let mut timeline = base.timeline.clone();
    timeline.push(detector, 4, obs::TimelineKind::Timeout, timeout_span, 0.0);
    timeline.makespan = clock.now();

    let mut bid_w = vec![scenario.root_rate];
    bid_w.extend_from_slice(&base.bids);
    let bid_net = LinearNetwork::from_rates(&bid_w, &scenario.link_rates);
    let s = if scenario.solution_found {
        scenario.solution_bonus
    } else {
        0.0
    };
    let honest = payment::settle(
        &bid_net,
        k,
        PaymentInputs {
            assigned_load: base.assigned[k],
            actual_load: base.retained[k],
            actual_rate: base.actual_rates[k - 1],
        },
        s,
    );

    let mut ledger = Ledger::new();
    for e in base.ledger.entries() {
        if !(e.node == k && e.phase == 4) {
            ledger.post(e.node, e.kind, e.amount, e.phase);
        }
    }
    ledger.post(k, EntryKind::Payment, honest.payment, 4);

    let mut net_utilities = base.net_utilities.clone();
    net_utilities[k - 1] = honest.valuation + ledger.net(k);

    FtRunReport {
        crashed: vec![k],
        stalled: Vec::new(),
        detected: vec![(detector, k, 4)],
        assigned: base.assigned.clone(),
        completed: base.retained.clone(),
        recovered_load: 0.0,
        recovery_assigned: vec![0.0; n],
        makespan: clock.now(),
        base_makespan: base.makespan,
        arbitrations,
        ledger,
        net_utilities,
        transcript,
        splice_map,
        events: base.events,
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ft_runner::run_with_faults;

    fn scenario() -> Scenario {
        Scenario::honest(1.0, vec![2.0, 0.5, 4.0], vec![0.2, 0.1, 0.7])
    }

    #[test]
    fn reference_agrees_with_live_engine_on_a_smoke_grid() {
        // The full differential sweep lives in tests/multi_fault.rs; this
        // is the fast in-crate smoke check.
        let s = scenario();
        for k in 1..=3 {
            for phase in 1..=4u8 {
                for progress in [0.0, 0.5, 1.0] {
                    let plan = FaultPlan::crash(k, phase, progress);
                    let frozen = run_with_faults_single(&s, &plan).unwrap();
                    let live = run_with_faults(&s, &plan).unwrap();
                    assert_eq!(
                        format!("{frozen:?}"),
                        format!("{live:?}"),
                        "k={k} phase={phase} p={progress}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most one halting fault")]
    fn reference_refuses_multi_failure_plans() {
        let plan = FaultPlan::crash(1, 3, 0.5).with_event(
            2,
            FaultKind::Crash {
                phase: 4,
                progress: 0.0,
            },
        );
        let _ = run_with_faults_single(&scenario(), &plan);
    }
}
