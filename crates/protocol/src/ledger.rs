//! The payment-infrastructure ledger: every transfer the mechanism makes —
//! payments, fines, rewards, recompense — lands here, so experiments can
//! report net utilities and check conservation properties.

use crate::crypto::NodeId;

/// The kind of a ledger entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Phase IV payment `Q_j` (compensation + bonus + solution bonus).
    Payment,
    /// A fine levied for a substantiated deviation (negative amount).
    Fine,
    /// A reward for reporting a deviant.
    Reward,
    /// Additional penalty covering a victim's extra work (Phase III,
    /// `(α̃ − α)·w̃` on top of `F`).
    ExtraWorkPenalty,
}

/// One ledger entry. `amount` is signed: positive credits the node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// The affected node.
    pub node: NodeId,
    /// The entry kind.
    pub kind: EntryKind,
    /// Signed amount (positive = credit).
    pub amount: f64,
    /// Free-form reason for audit trails.
    pub phase: u8,
}

/// The full ledger of a protocol run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    entries: Vec<Entry>,
}

impl Ledger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry.
    pub fn post(&mut self, node: NodeId, kind: EntryKind, amount: f64, phase: u8) {
        assert!(amount.is_finite(), "ledger amounts must be finite");
        self.entries.push(Entry {
            node,
            kind,
            amount,
            phase,
        });
    }

    /// All entries in posting order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Net credited amount for a node.
    pub fn net(&self, node: NodeId) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.node == node)
            .map(|e| e.amount)
            .sum()
    }

    /// Net amount of a given kind for a node.
    pub fn net_of(&self, node: NodeId, kind: EntryKind) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.node == node && e.kind == kind)
            .map(|e| e.amount)
            .sum()
    }

    /// A copy of this ledger with every entry of the listed `nodes` in
    /// `phase` removed, preserving posting order. The fault-tolerant
    /// runner uses this to void the Phase IV settlements of *every*
    /// halted node at once before re-settling them (pro rata or from the
    /// root's recomputation) under cascading failures.
    pub fn without_entries_of(&self, nodes: &[NodeId], phase: u8) -> Ledger {
        Ledger {
            entries: self
                .entries
                .iter()
                .filter(|e| !(e.phase == phase && nodes.contains(&e.node)))
                .copied()
                .collect(),
        }
    }

    /// Sum of all fines levied (as a positive number).
    pub fn total_fines(&self) -> f64 {
        -self
            .entries
            .iter()
            .filter(|e| matches!(e.kind, EntryKind::Fine | EntryKind::ExtraWorkPenalty))
            .map(|e| e.amount)
            .sum::<f64>()
    }

    /// Sum of all rewards disbursed.
    pub fn total_rewards(&self) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.kind == EntryKind::Reward)
            .map(|e| e.amount)
            .sum()
    }

    /// True if every fine has a matching reward of equal magnitude posted
    /// in the same phase (the paper's fines are transfers to the reporter,
    /// not burnt — except the Phase IV `F/q` audit fine, which is kept by
    /// the mechanism; pass `phase4_excluded = true` to skip those).
    pub fn fines_match_rewards(&self, phase4_excluded: bool, tol: f64) -> bool {
        let fines: f64 = self
            .entries
            .iter()
            .filter(|e| e.kind == EntryKind::Fine && !(phase4_excluded && e.phase == 4))
            .map(|e| -e.amount)
            .sum();
        (fines - self.total_rewards()).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_sums_signed_entries() {
        let mut l = Ledger::new();
        l.post(1, EntryKind::Payment, 2.0, 4);
        l.post(1, EntryKind::Fine, -5.0, 2);
        l.post(2, EntryKind::Reward, 5.0, 2);
        assert_eq!(l.net(1), -3.0);
        assert_eq!(l.net(2), 5.0);
        assert_eq!(l.net(3), 0.0);
    }

    #[test]
    fn kind_filters() {
        let mut l = Ledger::new();
        l.post(1, EntryKind::Payment, 2.0, 4);
        l.post(1, EntryKind::Fine, -5.0, 2);
        assert_eq!(l.net_of(1, EntryKind::Payment), 2.0);
        assert_eq!(l.net_of(1, EntryKind::Fine), -5.0);
        assert_eq!(l.total_fines(), 5.0);
    }

    #[test]
    fn fines_match_rewards_balanced() {
        let mut l = Ledger::new();
        l.post(1, EntryKind::Fine, -5.0, 2);
        l.post(2, EntryKind::Reward, 5.0, 2);
        assert!(l.fines_match_rewards(false, 1e-12));
    }

    #[test]
    fn phase4_fines_can_be_unmatched() {
        let mut l = Ledger::new();
        l.post(1, EntryKind::Fine, -20.0, 4); // audit fine, kept by mechanism
        assert!(!l.fines_match_rewards(false, 1e-12));
        assert!(l.fines_match_rewards(true, 1e-12));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_amount() {
        Ledger::new().post(0, EntryKind::Payment, f64::NAN, 4);
    }
}
