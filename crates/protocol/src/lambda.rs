//! The Λ data-tagging device (§4, footnote 1).
//!
//! The paper equips the load with a device `Λ_i` that lets processor `P_i`
//! *prove how much load it received*. The footnote's own construction is
//! implemented here: the unit load is divided into equal-sized blocks, each
//! carrying a unique random identifier drawn from a space large enough that
//! guessing a valid identifier is negligible. A node's receipt proof is the
//! set of identifiers it received; the root checks them against the set it
//! minted.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// The root-side mint: the authoritative set of block identifiers.
#[derive(Debug, Clone)]
pub struct BlockMint {
    ids: Vec<u64>,
    lookup: HashSet<u64>,
    blocks: usize,
}

impl BlockMint {
    /// Mint `blocks` identifiers for the unit load using `seed`.
    pub fn new(blocks: usize, seed: u64) -> Self {
        assert!(blocks > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lookup = HashSet::with_capacity(blocks);
        let mut ids = Vec::with_capacity(blocks);
        while ids.len() < blocks {
            let id: u64 = rng.gen();
            if lookup.insert(id) {
                ids.push(id);
            }
        }
        Self {
            ids,
            lookup,
            blocks,
        }
    }

    /// Number of blocks the unit load was divided into.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The load amount represented by one block.
    pub fn block_size(&self) -> f64 {
        1.0 / self.blocks as f64
    }

    /// The identifiers for a contiguous range of blocks (used when carving
    /// the load for distribution).
    pub fn range(&self, start: usize, len: usize) -> LoadTag {
        assert!(start + len <= self.blocks);
        LoadTag {
            ids: self.ids[start..start + len].to_vec(),
        }
    }

    /// Verify a receipt proof: every identifier must be genuine and
    /// distinct. Returns the proven load amount, or `None` if any
    /// identifier is invalid or duplicated.
    pub fn verify(&self, tag: &LoadTag) -> Option<f64> {
        let mut seen = HashSet::with_capacity(tag.ids.len());
        for id in &tag.ids {
            if !self.lookup.contains(id) || !seen.insert(*id) {
                return None;
            }
        }
        Some(tag.ids.len() as f64 / self.blocks as f64)
    }

    /// Convert a load amount into a whole number of blocks (rounding to
    /// nearest; the protocol distributes block-aligned loads).
    pub fn to_blocks(&self, amount: f64) -> usize {
        (amount * self.blocks as f64).round() as usize
    }
}

/// A receipt proof: the block identifiers a node can exhibit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadTag {
    /// The identifiers.
    pub ids: Vec<u64>,
}

impl LoadTag {
    /// An empty tag (no load received).
    pub fn empty() -> Self {
        Self { ids: Vec::new() }
    }

    /// Number of blocks covered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no blocks are covered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Split off the first `n` blocks (the retained part), leaving the
    /// remainder (the forwarded part).
    pub fn split(mut self, n: usize) -> (LoadTag, LoadTag) {
        assert!(n <= self.ids.len());
        let rest = self.ids.split_off(n);
        (self, LoadTag { ids: rest })
    }

    /// Forge a tag with guessed identifiers (for tests of the guessing
    /// attack).
    pub fn forged(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            ids: (0..n).map(|_| rng.gen()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_produces_unique_ids() {
        let mint = BlockMint::new(1000, 1);
        let all = mint.range(0, 1000);
        let unique: HashSet<_> = all.ids.iter().collect();
        assert_eq!(unique.len(), 1000);
    }

    #[test]
    fn verify_accepts_genuine_range() {
        let mint = BlockMint::new(100, 2);
        let tag = mint.range(25, 50);
        assert_eq!(mint.verify(&tag), Some(0.5));
    }

    #[test]
    fn verify_rejects_forged_ids() {
        let mint = BlockMint::new(100, 3);
        let forged = LoadTag::forged(10, 99);
        assert_eq!(mint.verify(&forged), None, "guessing identifiers must fail");
    }

    #[test]
    fn verify_rejects_duplicated_ids() {
        let mint = BlockMint::new(100, 4);
        let mut tag = mint.range(0, 5);
        let dup = tag.ids[0];
        tag.ids.push(dup);
        assert_eq!(mint.verify(&tag), None, "double-counting blocks must fail");
    }

    #[test]
    fn empty_tag_proves_zero() {
        let mint = BlockMint::new(100, 5);
        assert_eq!(mint.verify(&LoadTag::empty()), Some(0.0));
    }

    #[test]
    fn split_partitions_blocks() {
        let mint = BlockMint::new(10, 6);
        let tag = mint.range(0, 10);
        let (kept, fwd) = tag.split(3);
        assert_eq!(kept.len(), 3);
        assert_eq!(fwd.len(), 7);
        assert_eq!(mint.verify(&kept), Some(0.3));
        assert_eq!(mint.verify(&fwd), Some(0.7));
    }

    #[test]
    fn to_blocks_rounds() {
        let mint = BlockMint::new(1000, 7);
        assert_eq!(mint.to_blocks(0.25), 250);
        assert_eq!(mint.to_blocks(1.0), 1000);
        assert_eq!(mint.to_blocks(0.2504), 250);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = BlockMint::new(10, 8);
        let b = BlockMint::new(10, 8);
        assert_eq!(a.range(0, 10), b.range(0, 10));
    }
}
