//! Deterministic fault injection for protocol runs.
//!
//! A [`FaultPlan`] is a seed-reproducible description of everything that
//! goes wrong in one execution: an **ordered set** of *halting* faults
//! (crash-stops or livelock stalls of strategic processors, at most one
//! per node, in any of the four phases) plus any number of *message*
//! faults (drops, delays, corruption). Halting faults resolve in
//! [`FaultPlan::detection_order`] — ascending phase, plan order within a
//! phase — which is what makes cascading and simultaneous failures
//! deterministic. The fault-tolerant runner
//! ([`crate::ft_runner::run_with_faults`]) consumes the plan; given the
//! same `(Scenario, FaultPlan)` pair it produces bit-identical reports,
//! which is what makes fault experiments replayable.
//!
//! Plans are **shape-agnostic**: node ids are just indices `1..=m` over
//! the strategic processors, so the same plan applies unchanged to an
//! `m`-agent chain and to an `m`-agent tree (preorder indexing over the
//! canonicalized shape, [`crate::ft_tree_runner::run_with_faults`]) — the
//! property the degenerate-path differential suite relies on.
//!
//! Faults are **operational**, not strategic: a crashed node did not choose
//! to crash, so — unlike the deviations of [`crate::deviation::Deviation`]
//! — no fault in this module ever carries a fine. The two layers compose:
//! a node may both deviate (and be fined for it) and later crash (and be
//! paid pro rata for what it finished).

use crate::crypto::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What goes wrong at one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Crash-stop: the node halts permanently in `phase`. For Phase III,
    /// `progress ∈ [0, 1]` is the fraction of its retained load finished
    /// before the halt; other phases ignore it (the node dies before doing
    /// any work of that phase).
    Crash {
        /// Phase (1–4) in which the node halts.
        phase: u8,
        /// Fraction of retained load computed before halting (Phase III).
        progress: f64,
    },
    /// Livelock: the node stops making compute progress in Phase III after
    /// finishing `progress` of its share, but still answers liveness
    /// probes. Triggers the same recovery as a crash — the mechanism
    /// recovers from *missing work*, not from a post-mortem diagnosis.
    Stall {
        /// Fraction of retained load computed before stalling.
        progress: f64,
    },
    /// The node's outbound message of `phase` is lost; the receiver times
    /// out and the message is retransmitted.
    DropMessage {
        /// Phase whose outbound message is lost.
        phase: u8,
    },
    /// The node's outbound message of `phase` arrives late by `delay`.
    DelayMessage {
        /// Phase whose outbound message is delayed.
        phase: u8,
        /// Added latency (same time unit as processing rates).
        delay: f64,
    },
    /// The node's outbound message of `phase` arrives garbled; the
    /// signature check fails, the receiver discards it and requests a
    /// retransmission. The corrupt bytes never enter the transcript, so
    /// replay cannot mistake line noise for a forged signature.
    CorruptMessage {
        /// Phase whose outbound message is corrupted.
        phase: u8,
    },
}

impl FaultKind {
    /// True for faults that permanently remove the node's compute capacity
    /// (crash or stall) — at most one of these per node.
    pub fn is_halting(&self) -> bool {
        matches!(self, FaultKind::Crash { .. } | FaultKind::Stall { .. })
    }

    /// The phase in which a halting fault strikes (`Stall` is always a
    /// Phase III fault); `None` for message faults.
    pub fn halt_phase(&self) -> Option<u8> {
        match self {
            FaultKind::Crash { phase, .. } => Some(*phase),
            FaultKind::Stall { .. } => Some(3),
            _ => None,
        }
    }
}

/// One injected fault: `kind` happens to `node`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// The afflicted strategic processor (`1..=m`; the root is obedient
    /// *and* reliable by assumption).
    pub node: NodeId,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A malformed [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A fault names a node outside `1..=m`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of strategic processors in the chain.
        m: usize,
    },
    /// A fault names a phase outside `1..=4`.
    BadPhase(u8),
    /// A progress fraction outside `[0, 1]` or non-finite.
    BadProgress(f64),
    /// Two halting faults name the same node. A processor dies (or stalls)
    /// at most once per run; cascading failures are expressed as halting
    /// faults of *distinct* nodes, ordered by the plan.
    DuplicateHaltingFault {
        /// The node named by more than one crash/stall.
        node: NodeId,
    },
    /// The detection timeout must be finite and non-negative.
    BadTimeout(f64),
    /// A message delay must be finite and non-negative.
    BadDelay(f64),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::NodeOutOfRange { node, m } => {
                write!(
                    f,
                    "fault names node {node}, but strategic nodes are 1..={m}"
                )
            }
            FaultError::BadPhase(p) => write!(f, "fault names phase {p}, but phases are 1..=4"),
            FaultError::BadProgress(p) => write!(f, "progress {p} is not in [0, 1]"),
            FaultError::DuplicateHaltingFault { node } => {
                write!(
                    f,
                    "node {node} has more than one crash/stall (a processor halts at most once)"
                )
            }
            FaultError::BadTimeout(t) => {
                write!(f, "detection timeout {t} is not finite and non-negative")
            }
            FaultError::BadDelay(d) => {
                write!(f, "message delay {d} is not finite and non-negative")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A complete, deterministic fault schedule for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The injected faults.
    pub events: Vec<FaultEvent>,
    /// Time a neighbour (or the root) waits for a message or a result
    /// before declaring its counterpart unresponsive. Same time unit as
    /// processing rates.
    pub detection_timeout: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// Default timeout: generous relative to unit-load makespans.
    pub const DEFAULT_TIMEOUT: f64 = 0.05;

    /// The empty plan: nothing fails.
    pub fn none() -> Self {
        Self {
            events: Vec::new(),
            detection_timeout: Self::DEFAULT_TIMEOUT,
        }
    }

    /// A single crash-stop of `node` in `phase` at `progress`.
    pub fn crash(node: NodeId, phase: u8, progress: f64) -> Self {
        Self {
            events: vec![FaultEvent {
                node,
                kind: FaultKind::Crash { phase, progress },
            }],
            detection_timeout: Self::DEFAULT_TIMEOUT,
        }
    }

    /// A single Phase III stall of `node` at `progress`.
    pub fn stall(node: NodeId, progress: f64) -> Self {
        Self {
            events: vec![FaultEvent {
                node,
                kind: FaultKind::Stall { progress },
            }],
            detection_timeout: Self::DEFAULT_TIMEOUT,
        }
    }

    /// Add a fault event (builder style).
    pub fn with_event(mut self, node: NodeId, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { node, kind });
        self
    }

    /// Override the detection timeout (builder style).
    pub fn with_timeout(mut self, timeout: f64) -> Self {
        self.detection_timeout = timeout;
        self
    }

    /// Draw a random single-halt plan for an `m`-processor chain from a
    /// seed: one crash or stall at a uniform node, phase and progress,
    /// plus an independent chance of one message fault. Deterministic in
    /// `(seed, m)`.
    pub fn seeded(seed: u64, m: usize) -> Self {
        assert!(m >= 1, "need at least one strategic processor");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_0175);
        let node = rng.gen_range(1..=m);
        let progress = rng.gen::<f64>();
        let halt = if rng.gen_bool(0.8) {
            let phase = rng.gen_range(1..=4) as u8;
            FaultKind::Crash { phase, progress }
        } else {
            FaultKind::Stall { progress }
        };
        let mut plan = Self::none().with_event(node, halt);
        if rng.gen_bool(0.3) {
            let victim = rng.gen_range(1..=m);
            let phase = rng.gen_range(1..=4) as u8;
            let kind = match rng.gen_range(0..3usize) {
                0 => FaultKind::DropMessage { phase },
                1 => FaultKind::DelayMessage {
                    phase,
                    delay: 0.01 + 0.04 * rng.gen::<f64>(),
                },
                _ => FaultKind::CorruptMessage { phase },
            };
            plan = plan.with_event(victim, kind);
        }
        plan
    }

    /// Draw a random **multi-failure** plan for an `m`-processor chain:
    /// between 0 and `max_halts.min(m)` crash/stall events on distinct
    /// nodes (phases and progress fractions uniform), plus an independent
    /// chance of one message fault. Deterministic in `(seed, m,
    /// max_halts)`.
    pub fn seeded_multi(seed: u64, m: usize, max_halts: usize) -> Self {
        assert!(m >= 1, "need at least one strategic processor");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_0175_CA5C);
        let halts = rng.gen_range(0..=max_halts.min(m));
        let mut nodes: Vec<NodeId> = (1..=m).collect();
        let mut plan = Self::none();
        for _ in 0..halts {
            let node = nodes.remove(rng.gen_range(0..nodes.len()));
            let progress = rng.gen::<f64>();
            let kind = if rng.gen_bool(0.8) {
                FaultKind::Crash {
                    phase: rng.gen_range(1..=4) as u8,
                    progress,
                }
            } else {
                FaultKind::Stall { progress }
            };
            plan = plan.with_event(node, kind);
        }
        if rng.gen_bool(0.3) {
            let victim = rng.gen_range(1..=m);
            let phase = rng.gen_range(1..=4) as u8;
            let kind = match rng.gen_range(0..3usize) {
                0 => FaultKind::DropMessage { phase },
                1 => FaultKind::DelayMessage {
                    phase,
                    delay: 0.01 + 0.04 * rng.gen::<f64>(),
                },
                _ => FaultKind::CorruptMessage { phase },
            };
            plan = plan.with_event(victim, kind);
        }
        plan
    }

    /// The first halting fault in plan order, if any: `(node, kind)`.
    /// Single-failure plans have at most one; see
    /// [`halting_faults`](Self::halting_faults) for the full ordered set.
    pub fn halting_fault(&self) -> Option<(NodeId, FaultKind)> {
        self.events
            .iter()
            .find(|e| e.kind.is_halting())
            .map(|e| (e.node, e.kind))
    }

    /// All halting faults (crashes and stalls) in plan order.
    pub fn halting_faults(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(|e| e.kind.is_halting())
    }

    /// The halting faults in **deterministic detection order**: ascending
    /// phase (a stall is a Phase III fault), stable plan order within a
    /// phase. This is the order in which the root's timers resolve —
    /// failures of earlier phases are detected first, and ties inside a
    /// phase are broken by the plan's own ordering, so a Phase III fault
    /// listed after another strikes *during the recovery round* the
    /// earlier one triggered.
    pub fn detection_order(&self) -> Vec<FaultEvent> {
        let mut halts: Vec<FaultEvent> = self.halting_faults().copied().collect();
        halts.sort_by_key(|e| e.kind.halt_phase().unwrap_or(u8::MAX));
        halts
    }

    /// All message faults in plan order.
    pub fn message_faults(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(|e| !e.kind.is_halting())
    }

    /// Check the plan against an `m`-processor chain.
    pub fn validate(&self, m: usize) -> Result<(), FaultError> {
        let mut halted: Vec<NodeId> = Vec::new();
        for e in &self.events {
            if e.node < 1 || e.node > m {
                return Err(FaultError::NodeOutOfRange { node: e.node, m });
            }
            if e.kind.is_halting() {
                if halted.contains(&e.node) {
                    return Err(FaultError::DuplicateHaltingFault { node: e.node });
                }
                halted.push(e.node);
            }
            match e.kind {
                FaultKind::Crash { phase, progress } => {
                    if !(1..=4).contains(&phase) {
                        return Err(FaultError::BadPhase(phase));
                    }
                    if !(progress.is_finite() && (0.0..=1.0).contains(&progress)) {
                        return Err(FaultError::BadProgress(progress));
                    }
                }
                FaultKind::Stall { progress } => {
                    if !(progress.is_finite() && (0.0..=1.0).contains(&progress)) {
                        return Err(FaultError::BadProgress(progress));
                    }
                }
                FaultKind::DropMessage { phase } | FaultKind::CorruptMessage { phase } => {
                    if !(1..=4).contains(&phase) {
                        return Err(FaultError::BadPhase(phase));
                    }
                }
                FaultKind::DelayMessage { phase, delay } => {
                    if !(1..=4).contains(&phase) {
                        return Err(FaultError::BadPhase(phase));
                    }
                    if !(delay.is_finite() && delay >= 0.0) {
                        return Err(FaultError::BadDelay(delay));
                    }
                }
            }
        }
        if !(self.detection_timeout.is_finite() && self.detection_timeout >= 0.0) {
            return Err(FaultError::BadTimeout(self.detection_timeout));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_valid() {
        assert_eq!(FaultPlan::none().validate(3), Ok(()));
    }

    #[test]
    fn crash_plan_round_trips() {
        let plan = FaultPlan::crash(2, 3, 0.4);
        assert_eq!(plan.validate(3), Ok(()));
        assert_eq!(
            plan.halting_fault(),
            Some((
                2,
                FaultKind::Crash {
                    phase: 3,
                    progress: 0.4
                }
            ))
        );
        assert_eq!(plan.message_faults().count(), 0);
    }

    #[test]
    fn rejects_root_and_out_of_range_nodes() {
        assert!(matches!(
            FaultPlan::crash(0, 1, 0.0).validate(3),
            Err(FaultError::NodeOutOfRange { node: 0, m: 3 })
        ));
        assert!(matches!(
            FaultPlan::crash(4, 1, 0.0).validate(3),
            Err(FaultError::NodeOutOfRange { node: 4, m: 3 })
        ));
    }

    #[test]
    fn rejects_bad_phase_progress_timeout_delay() {
        assert_eq!(
            FaultPlan::crash(1, 5, 0.0).validate(3),
            Err(FaultError::BadPhase(5))
        );
        assert_eq!(
            FaultPlan::crash(1, 3, 1.5).validate(3),
            Err(FaultError::BadProgress(1.5))
        );
        assert!(matches!(
            FaultPlan::crash(1, 3, 0.5)
                .with_timeout(f64::NAN)
                .validate(3),
            Err(FaultError::BadTimeout(_))
        ));
        assert!(matches!(
            FaultPlan::none()
                .with_event(
                    1,
                    FaultKind::DelayMessage {
                        phase: 2,
                        delay: -1.0
                    }
                )
                .validate(3),
            Err(FaultError::BadDelay(_))
        ));
    }

    #[test]
    fn accepts_multiple_halting_faults_on_distinct_nodes() {
        let plan = FaultPlan::crash(1, 3, 0.5).with_event(2, FaultKind::Stall { progress: 0.2 });
        assert_eq!(plan.validate(3), Ok(()));
        assert_eq!(plan.halting_faults().count(), 2);
    }

    #[test]
    fn rejects_two_halting_faults_on_the_same_node() {
        let plan = FaultPlan::crash(2, 3, 0.5).with_event(2, FaultKind::Stall { progress: 0.2 });
        assert_eq!(
            plan.validate(3),
            Err(FaultError::DuplicateHaltingFault { node: 2 })
        );
    }

    #[test]
    fn detection_order_sorts_by_phase_then_plan_order() {
        let plan = FaultPlan::crash(3, 4, 0.0)
            .with_event(1, FaultKind::Stall { progress: 0.5 })
            .with_event(4, FaultKind::DropMessage { phase: 2 })
            .with_event(
                2,
                FaultKind::Crash {
                    phase: 3,
                    progress: 0.25,
                },
            )
            .with_event(
                5,
                FaultKind::Crash {
                    phase: 1,
                    progress: 0.0,
                },
            );
        let order: Vec<NodeId> = plan.detection_order().iter().map(|e| e.node).collect();
        // Phase 1 first, then the two Phase III faults in plan order
        // (stall of P1 precedes crash of P2), then Phase IV; the message
        // fault is not a halting fault at all.
        assert_eq!(order, vec![5, 1, 2, 3]);
    }

    #[test]
    fn seeded_multi_plans_are_deterministic_and_valid() {
        let mut multi_seen = false;
        for seed in 0..80u64 {
            for m in 1..=8usize {
                let a = FaultPlan::seeded_multi(seed, m, 3);
                assert_eq!(a, FaultPlan::seeded_multi(seed, m, 3), "seed {seed}, m {m}");
                assert_eq!(a.validate(m), Ok(()), "seed {seed}, m {m}: {a:?}");
                assert!(a.halting_faults().count() <= 3.min(m));
                multi_seen |= a.halting_faults().count() >= 2;
            }
        }
        assert!(
            multi_seen,
            "the seeded space must reach multi-failure plans"
        );
    }

    #[test]
    fn message_faults_may_coexist_with_a_crash() {
        let plan = FaultPlan::crash(1, 3, 0.5)
            .with_event(2, FaultKind::DropMessage { phase: 1 })
            .with_event(
                3,
                FaultKind::DelayMessage {
                    phase: 2,
                    delay: 0.02,
                },
            );
        assert_eq!(plan.validate(3), Ok(()));
        assert_eq!(plan.message_faults().count(), 2);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        for seed in 0..50u64 {
            for m in 1..=8usize {
                let a = FaultPlan::seeded(seed, m);
                let b = FaultPlan::seeded(seed, m);
                assert_eq!(a, b, "seed {seed}, m {m}");
                assert_eq!(a.validate(m), Ok(()), "seed {seed}, m {m}: {a:?}");
                assert!(a.halting_fault().is_some());
            }
        }
    }

    #[test]
    fn seeded_plans_vary_with_seed() {
        let distinct: std::collections::HashSet<String> = (0..20u64)
            .map(|s| format!("{:?}", FaultPlan::seeded(s, 5)))
            .collect();
        assert!(distinct.len() > 5, "seeds should explore the fault space");
    }
}
