//! Fault-tolerant **tree** protocol execution: run a [`TreeScenario`]
//! under an injected [`FaultPlan`] and recover by **subtree
//! re-attachment** ([`dlt::tree::splice_node`]).
//!
//! ### Recovery protocol
//! The chain engine ([`crate::ft_runner`]) recovers a halt by fusing two
//! links; on a tree the failed node may route several subtrees, so the
//! splice re-attaches *every* child subtree of the dead node to the dead
//! node's parent. Each re-attached subtree's incoming link fuses with the
//! dead node's (`z(parent→child) = z(parent→dead) + z(dead→child)` — the
//! data travels both hops, store-and-forward), and the parent's service
//! order is re-canonicalized because the fused links can land anywhere in
//! the ascending-link sequence. [`FtTreeRunReport::splice_map`] records
//! where every survivor ended up.
//!
//! The phase semantics mirror the chain engine exactly:
//!
//! * **Pre-distribution halts (Phases I–II)** recurse: the dead node is
//!   spliced out of the true-rate tree, the survivors re-run the whole
//!   protocol among themselves (remaining faults renumbered onto the
//!   spliced tree and recovered *inside* that re-run), and everything is
//!   renumbered back through the composed splice map.
//! * **Phase III halts** are serialized by the root: each halt costs one
//!   detection timeout, fuses the dead node out of the running *bid* tree,
//!   and re-solves its unfinished residual over the survivors
//!   ([`dlt::tree::solve`]); the halted node is settled **pro rata**
//!   ([`mechanism::payment::pro_rata`]) on what it verifiably completed,
//!   and survivors are paid their recovery work at metered cost
//!   ([`mechanism::payment::recovery_wage`]).
//! * **Phase IV crashes** share a single timeout window and are arbitrated
//!   as a concurrent batch; the root re-posts each silent node's honest
//!   bill from its own [`TreeMechanism`] re-settlement.
//!
//! ### Detection order on a tree
//! Phase I bids flow upward, so the **parent** of a silent node times out;
//! Phase II allocations flow downward, so the **first child in canonical
//! service order** waits (the root for a leaf); Phase III results and
//! Phase IV bills are awaited by the **root**. On a degenerate path these
//! rules reduce to the chain's predecessor/successor rules.
//!
//! ### Degenerate paths delegate to the chain engine
//! A tree in which every node has at most one child *is* a chain, so this
//! engine detects the shape after canonicalization and routes it through
//! [`crate::ft_runner::run_with_faults`] on the faithfully converted
//! [`Scenario`] — chain fault semantics are inherited, not re-derived, and
//! the result is **byte-identical** to the frozen linear fault path by
//! construction (the same way `svc` cache hits are bit-identical to cold
//! solves). The `tree_fault` differential suite pins the routing and the
//! scenario conversion against drift, over the full E22 population.
//!
//! ### Determinism and the no-fault property
//! Given the same `(TreeScenario, FaultPlan)` pair the report is
//! bit-identical — faults are part of the experiment description, not
//! sampled during the run — and across every injected fault no honest
//! survivor is ever fined (the tree extension of Lemma 5.2's no-fault
//! corollary).

use crate::crypto::NodeId;
use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::ft_runner::{FtError, FtRunReport};
use crate::ledger::{EntryKind, Ledger};
use crate::root::{arbitrate_concurrent_unresponsive, arbitrate_unresponsive, ArbitrationRecord};
use crate::runner::{Scenario, ScenarioError};
use crate::tree_runner::{run_tree, Flat, TreeArbitration, TreeRunReport, TreeScenario};
use dlt::model::{Link, Processor, TreeNode};
use dlt::tree::{self, SplicedTree};
use mechanism::dls_tree::TreeMechanism;
use mechanism::payment::{self, PaymentBreakdown};
use mechanism::Conduct;

/// Everything a fault-tolerant tree run produced. All per-node vectors use
/// the **original** preorder indexing over the canonicalized shape (`0` =
/// root, length `m + 1` or `m`), even when recovery ran on a spliced tree.
#[derive(Debug, Clone, PartialEq)]
pub struct FtTreeRunReport {
    /// Every crash-stopped node, in detection order.
    pub crashed: Vec<NodeId>,
    /// Every stalled (alive but unproductive) node, in detection order.
    pub stalled: Vec<NodeId>,
    /// Every detection event: `(detector, suspect, phase)`.
    pub detected: Vec<(NodeId, NodeId, u8)>,
    /// Load prescribed per node by the (possibly re-run) Phase II.
    pub assigned: Vec<f64>,
    /// Load each node actually finished, including recovery work. Sums to
    /// the unit workload whenever recovery succeeded.
    pub completed: Vec<f64>,
    /// Total residual load the recovery rounds re-assigned, counted with
    /// multiplicity across rounds. 0 when nothing halted mid-computation.
    pub recovered_load: f64,
    /// Extra load each node received from recovery **and actually
    /// performed**.
    pub recovery_assigned: Vec<f64>,
    /// Realized makespan including detection and recovery overhead.
    pub makespan: f64,
    /// Makespan of the same scenario with no faults (for overhead plots).
    pub base_makespan: f64,
    /// All arbitration records (timeout complaints included), in order.
    pub arbitrations: Vec<TreeArbitration>,
    /// The full ledger, renumbered to original indices.
    pub ledger: Ledger,
    /// Net utility of every strategic processor (`net_utilities[j-1]` is
    /// `P_j`'s), original indexing; a halted node's reflects pro-rata
    /// settlement.
    pub net_utilities: Vec<f64>,
    /// `splice_map[old] = Some(new)` maps original to post-splice preorder
    /// indices; `None` marks a removed node. Composed across nested
    /// splices. Identity when nothing was spliced before distribution.
    pub splice_map: Vec<Option<usize>>,
    /// Deterministic per-run timeline on the same virtual clock as
    /// `makespan`. On a degenerate path (chain delegation) this is the
    /// chain engine's full timeline; on a branching tree it carries the
    /// detection-timeout waits, splice instants and recovery spans (the
    /// base tree run does not time individual nodes).
    pub timeline: obs::PhaseTimeline,
}

impl FtTreeRunReport {
    /// Net utility of strategic processor `P_j` (original preorder index).
    pub fn utility(&self, j: usize) -> f64 {
        self.net_utilities[j - 1]
    }

    /// True if the total finished load equals the unit workload.
    pub fn load_conserved(&self, tol: f64) -> bool {
        (self.completed.iter().sum::<f64>() - 1.0).abs() <= tol
    }

    /// Makespan overhead attributable to faults and recovery.
    pub fn overhead(&self) -> f64 {
        self.makespan - self.base_makespan
    }

    /// Fines actually paid by `P_j` (as a non-negative number).
    pub fn fines_paid(&self, j: NodeId) -> f64 {
        -(self.ledger.net_of(j, EntryKind::Fine)
            + self.ledger.net_of(j, EntryKind::ExtraWorkPenalty))
    }

    /// All halted nodes (crashed and stalled), in detection order within
    /// each group.
    pub fn halted(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.crashed.iter().chain(self.stalled.iter()).copied()
    }
}

/// Detection rule on the tree: who notices `P_k` going silent in `phase`.
/// Phase I bids flow upward (the parent waits); Phase II allocations flow
/// downward (the first child in canonical order waits, the root for a
/// leaf); results and bills are awaited by the root. Reduces to the
/// chain's predecessor/successor rules on a path.
fn detector_of(k: NodeId, phase: u8, flat: &Flat) -> NodeId {
    match phase {
        1 => flat.parent[k].expect("strategic nodes have parents"),
        2 => flat.children[k].first().copied().unwrap_or(0),
        _ => 0,
    }
}

/// Receiver of `P_v`'s outbound message in `phase` — `None` when the node
/// sends nothing in that phase (a leaf in Phases II–III).
fn receiver_of(v: NodeId, phase: u8, flat: &Flat) -> Option<NodeId> {
    match phase {
        1 => flat.parent[v],
        2 | 3 => flat.children[v].first().copied(),
        _ => Some(0),
    }
}

/// Per-unit-load makespan and absolute preorder load shares of a (possibly
/// root-only) tree.
fn allocation_of_tree(t: &TreeNode) -> (f64, Vec<f64>) {
    if t.size() == 1 {
        (t.processor.w, vec![1.0])
    } else {
        let sol = tree::solve(t);
        (sol.equivalent, sol.flatten())
    }
}

/// Rebuild `shape` with `rates` at the non-root processors (preorder); the
/// trusted root rate and all link rates are kept.
fn with_rates(shape: &TreeNode, rates: &[f64]) -> TreeNode {
    fn rebuild(node: &TreeNode, rates: &[f64], next: &mut usize, is_root: bool) -> TreeNode {
        let w = if is_root {
            node.processor.w
        } else {
            let r = rates[*next];
            *next += 1;
            r
        };
        TreeNode {
            processor: Processor::new(w),
            children: node
                .children
                .iter()
                .map(|(l, c)| (Link::new(l.z), rebuild(c, rates, next, false)))
                .collect(),
        }
    }
    let mut next = 0;
    let out = rebuild(shape, rates, &mut next, true);
    debug_assert_eq!(next, rates.len(), "one rate per non-root node");
    out
}

/// Non-root processor rates in preorder.
fn strategic_rates(tree: &TreeNode) -> Vec<f64> {
    fn walk(node: &TreeNode, out: &mut Vec<f64>, is_root: bool) {
        if !is_root {
            out.push(node.processor.w);
        }
        for (_, c) in &node.children {
            walk(c, out, false);
        }
    }
    let mut out = Vec::new();
    walk(tree, &mut out, true);
    out
}

/// Convert a chain arbitration record into the tree report's shape. The
/// fine amounts are not dropped — unresponsive probes are no-fault (always
/// zero) and any real fine lives in the ledger.
fn to_tree_arbitration(a: &ArbitrationRecord) -> TreeArbitration {
    TreeArbitration {
        claimant: a.claimant,
        accused: a.accused,
        complaint: a.complaint.clone(),
        substantiated: a.substantiated,
    }
}

/// If the canonicalized shape is a degenerate path — every node has at
/// most one child — convert the scenario faithfully to the chain
/// [`Scenario`] it is: same preorder agent indexing, same fine schedule,
/// blocks and seed, no solution bonus (the tree protocol has none).
/// Returns `None` for a branching tree.
pub fn as_chain_scenario(scenario: &TreeScenario) -> Option<Scenario> {
    let mut link_rates = Vec::new();
    let mut node = &scenario.shape;
    while let Some((link, child)) = node.children.first() {
        if node.children.len() > 1 {
            return None;
        }
        link_rates.push(link.z);
        node = child;
    }
    Some(Scenario {
        root_rate: scenario.shape.processor.w,
        true_rates: scenario.true_rates.clone(),
        link_rates,
        deviations: scenario.deviations.clone(),
        fine: scenario.fine,
        blocks: scenario.blocks,
        seed: scenario.seed,
        solution_bonus: 0.0,
        solution_found: false,
    })
}

/// Wrap the chain engine's report into the tree report shape, verbatim.
fn from_chain_report(r: FtRunReport) -> FtTreeRunReport {
    FtTreeRunReport {
        crashed: r.crashed,
        stalled: r.stalled,
        detected: r.detected,
        assigned: r.assigned,
        completed: r.completed,
        recovered_load: r.recovered_load,
        recovery_assigned: r.recovery_assigned,
        makespan: r.makespan,
        base_makespan: r.base_makespan,
        arbitrations: r.arbitrations.iter().map(to_tree_arbitration).collect(),
        ledger: r.ledger,
        net_utilities: r.net_utilities,
        splice_map: r.splice_map,
        timeline: r.timeline,
    }
}

fn validate_scenario(s: &TreeScenario) -> Result<(), ScenarioError> {
    let m = s.num_agents();
    if m == 0 {
        return Err(ScenarioError::NoAgents);
    }
    let nodes = s.shape.size() - 1;
    if nodes != m || s.deviations.len() != m {
        return Err(ScenarioError::LengthMismatch {
            true_rates: m,
            link_rates: nodes,
            deviations: s.deviations.len(),
        });
    }
    for (j, &t) in s.true_rates.iter().enumerate() {
        if !(t.is_finite() && t > 0.0) {
            return Err(ScenarioError::BadRate {
                field: "true_rates",
                index: j,
                value: t,
            });
        }
    }
    let q = s.fine.audit_probability;
    if !(q.is_finite() && (0.0..=1.0).contains(&q)) {
        return Err(ScenarioError::BadAuditProbability(q));
    }
    let f = s.fine.deviation_fine();
    if !(f.is_finite() && f >= 0.0) {
        return Err(ScenarioError::BadFine(f));
    }
    if s.blocks == 0 {
        return Err(ScenarioError::ZeroBlocks);
    }
    Ok(())
}

/// Execute the tree scenario under `plan`, recovering from the injected
/// faults. Re-exported at the crate root as `run_tree_with_faults`.
pub fn run_with_faults(
    scenario: &TreeScenario,
    plan: &FaultPlan,
) -> Result<FtTreeRunReport, FtError> {
    validate_scenario(scenario)?;
    let m = scenario.num_agents();
    plan.validate(m)?;
    let timeout = plan.detection_timeout;
    let _ft_span = obs::span!("protocol.ft_tree.run", "m" => m, "timeout" => timeout);

    if let Some(chain) = as_chain_scenario(scenario) {
        // A degenerate path IS a chain: inherit the frozen chain fault
        // semantics wholesale — byte-identical by construction.
        let report = crate::ft_runner::run_with_faults(&chain, plan)?;
        return Ok(from_chain_report(report));
    }

    let base = run_tree(scenario);
    let queue = plan.detection_order();
    let mut report = recover(scenario, &base, &queue, timeout)?;
    apply_message_faults(
        &mut report,
        plan,
        &crate::tree_runner::flatten(&scenario.shape),
    );
    Ok(report)
}

/// Recover from the halting faults in `queue` (already in detection
/// order), mirroring the chain engine's dispatch.
fn recover(
    scenario: &TreeScenario,
    base: &TreeRunReport,
    queue: &[FaultEvent],
    timeout: f64,
) -> Result<FtTreeRunReport, FtError> {
    let n = scenario.num_agents() + 1;
    let identity_map: Vec<Option<usize>> = (0..n).map(Some).collect();
    match queue.first() {
        None => Ok(healthy_report(base, n, identity_map)),
        Some(&FaultEvent {
            node: k,
            kind: FaultKind::Crash {
                phase: p @ (1 | 2), ..
            },
        }) => pre_distribution_crash(scenario, base, k, p, &queue[1..], timeout),
        // detection_order sorts by phase, so everything left is Phase
        // III/IV: crashes at phase 3 or 4, and stalls.
        _ => Ok(compute_and_billing_recovery(
            scenario,
            base,
            queue,
            timeout,
            identity_map,
        )),
    }
}

/// No halting fault: the base tree run, wrapped.
fn healthy_report(
    base: &TreeRunReport,
    n: usize,
    splice_map: Vec<Option<usize>>,
) -> FtTreeRunReport {
    let mut timeline = obs::PhaseTimeline::new(n);
    timeline.makespan = base.makespan;
    FtTreeRunReport {
        crashed: Vec::new(),
        stalled: Vec::new(),
        detected: Vec::new(),
        assigned: base.assigned.clone(),
        completed: base.retained.clone(),
        recovered_load: 0.0,
        recovery_assigned: vec![0.0; n],
        makespan: base.makespan,
        base_makespan: base.makespan,
        arbitrations: base.arbitrations.clone(),
        ledger: base.ledger.clone(),
        net_utilities: base.net_utilities.clone(),
        splice_map,
        timeline,
    }
}

/// Crash in Phase I or II: nothing was distributed; splice the subtrees
/// onto the dead node's parent and re-run the whole protocol on the
/// survivor tree — recovering the remaining faults of `rest` *inside* that
/// re-run — then renumber back through the splice map.
fn pre_distribution_crash(
    scenario: &TreeScenario,
    base: &TreeRunReport,
    k: NodeId,
    phase: u8,
    rest: &[FaultEvent],
    timeout: f64,
) -> Result<FtTreeRunReport, FtError> {
    let m = scenario.num_agents();
    let n = m + 1;
    let flat = crate::tree_runner::flatten(&scenario.shape);

    let detector = detector_of(k, phase, &flat);
    let mut arbitrations = vec![to_tree_arbitration(&arbitrate_unresponsive(
        detector, k, false,
    ))];
    let mut detected = vec![(detector, k, phase)];

    // Recovery restarts the whole schedule: the virtual clock begins at 0,
    // waits out the detection timeout, then runs the survivor protocol.
    let mut clock = obs::RunClock::new();
    let timeout_span = clock.advance(timeout);
    obs::count!("protocol.ft.detection_timeouts", "phase" => phase);
    obs::hist!("protocol.ft.timeout_wait", timeout, "phase" => phase);
    obs::event!("protocol.ft.splice", vt = clock.now(), "dead" => k, "phase" => phase);
    let mut timeline = obs::PhaseTimeline::new(n);
    timeline.push(
        detector,
        phase,
        obs::TimelineKind::Timeout,
        timeout_span,
        0.0,
    );
    timeline.mark(k, phase, obs::TimelineKind::Splice, timeout_span.1);

    if m == 1 {
        // No strategic survivor: the obedient root computes the whole unit
        // load itself at rate w_0.
        debug_assert!(rest.is_empty());
        let mut assigned = vec![0.0; n];
        assigned[0] = 1.0;
        let root_span = clock.advance(scenario.shape.processor.w);
        timeline.push(0, 3, obs::TimelineKind::Recovery, root_span, 1.0);
        timeline.makespan = clock.now();
        return Ok(FtTreeRunReport {
            crashed: vec![k],
            stalled: Vec::new(),
            detected,
            completed: assigned.clone(),
            assigned,
            recovered_load: 0.0,
            recovery_assigned: vec![0.0; n],
            makespan: clock.now(),
            base_makespan: base.makespan,
            arbitrations,
            ledger: Ledger::new(),
            net_utilities: vec![0.0],
            splice_map: vec![Some(0), None],
            timeline,
        });
    }

    // Splice the tree of *true* rates; bids re-derive from the surviving
    // nodes' deviations inside the inner run.
    let true_tree = with_rates(&scenario.shape, &scenario.true_rates);
    let SplicedTree { tree: spliced, map } = tree::splice_node(&true_tree, k);
    // Survivor preorder position -> original id.
    let mut orig_of = vec![0usize; n - 1];
    for (old, new) in map.iter().enumerate() {
        if let Some(new) = new {
            orig_of[*new] = old;
        }
    }
    let inner_rates = strategic_rates(&spliced);
    let mut inner_deviations = vec![crate::deviation::Deviation::None; m - 1];
    for j in 1..n {
        if let Some(nj) = map[j] {
            inner_deviations[nj - 1] = scenario.deviations[j - 1];
        }
    }
    let inner_scenario = TreeScenario {
        shape: spliced,
        true_rates: inner_rates,
        deviations: inner_deviations,
        fine: scenario.fine,
        blocks: scenario.blocks,
        seed: scenario.seed,
    };
    // The remaining faults, renumbered to the spliced tree, are recovered
    // *inside* the survivor re-run.
    let inner_rest: Vec<FaultEvent> = rest
        .iter()
        .map(|e| FaultEvent {
            node: map[e.node].expect("remaining faults strike survivors"),
            kind: e.kind,
        })
        .collect();
    let inner_base = run_tree(&inner_scenario);
    let inner = recover(&inner_scenario, &inner_base, &inner_rest, timeout)?;
    obs::event!(
        "protocol.ft.residual_resolve",
        vt = clock.now(),
        "dead" => k,
        "survivors" => inner.assigned.len()
    );
    let recovery_span = clock.advance(inner.makespan);
    // The survivor re-run is one Recovery span at the root (the base tree
    // run does not time individual nodes); a nested recovery's own
    // timeout, splice and recovery spans pass through the same shift,
    // renumbered to original ids.
    timeline.push(0, 3, obs::TimelineKind::Recovery, recovery_span, 1.0);
    for s in &inner.timeline.spans {
        timeline.push(
            orig_of[s.node],
            s.phase,
            s.kind,
            (recovery_span.0 + s.start, recovery_span.0 + s.end),
            s.load,
        );
    }
    timeline.makespan = clock.now();

    // Renumber everything back to original indices.
    let mut assigned = vec![0.0; n];
    let mut completed = vec![0.0; n];
    let mut recovery_assigned = vec![0.0; n];
    for si in 0..inner.assigned.len() {
        assigned[orig_of[si]] = inner.assigned[si];
        completed[orig_of[si]] = inner.completed[si];
        recovery_assigned[orig_of[si]] = inner.recovery_assigned[si];
    }
    let mut ledger = Ledger::new();
    for e in inner.ledger.entries() {
        ledger.post(orig_of[e.node], e.kind, e.amount, e.phase);
    }
    arbitrations.extend(inner.arbitrations.iter().map(|a| TreeArbitration {
        claimant: orig_of[a.claimant],
        accused: orig_of[a.accused],
        complaint: a.complaint.clone(),
        substantiated: a.substantiated,
    }));
    detected.extend(
        inner
            .detected
            .iter()
            .map(|&(d, s, p)| (orig_of[d], orig_of[s], p)),
    );
    let mut net_utilities = vec![0.0; m];
    for sj in 1..n - 1 {
        net_utilities[orig_of[sj] - 1] = inner.net_utilities[sj - 1];
    }

    let mut crashed = vec![k];
    crashed.extend(inner.crashed.iter().map(|&c| orig_of[c]));
    let stalled: Vec<NodeId> = inner.stalled.iter().map(|&st| orig_of[st]).collect();
    // Compose the outer splice with whatever the inner recovery spliced.
    let splice_map: Vec<Option<usize>> = (0..n)
        .map(|i| match map[i] {
            None => None,
            Some(ni) => inner.splice_map[ni],
        })
        .collect();

    Ok(FtTreeRunReport {
        crashed,
        stalled,
        detected,
        assigned,
        completed,
        recovered_load: inner.recovered_load,
        recovery_assigned,
        makespan: clock.now(),
        base_makespan: base.makespan,
        arbitrations,
        ledger,
        net_utilities,
        splice_map,
        timeline,
    })
}

/// Serialized recovery of every Phase III halt followed by the
/// simultaneous settlement of every Phase IV crash — structurally the
/// chain engine's `compute_and_billing_recovery` with the running bid
/// *chain* replaced by the running bid *tree*.
fn compute_and_billing_recovery(
    scenario: &TreeScenario,
    base: &TreeRunReport,
    queue: &[FaultEvent],
    timeout: f64,
    splice_map: Vec<Option<usize>>,
) -> FtTreeRunReport {
    let m = scenario.num_agents();
    let n = m + 1;

    let mut arbitrations = base.arbitrations.clone();
    let mut timeline = obs::PhaseTimeline::new(n);
    let mut detected = Vec::new();
    let mut crashed = Vec::new();
    let mut stalled = Vec::new();

    // The recovery clock picks up where the fault-free schedule ended.
    let mut clock = obs::RunClock::starting_at(base.makespan);
    let mut completed = base.retained.clone();
    let mut recovery_assigned = vec![0.0; n];
    let mut recovered_load = 0.0;

    // The running spliced *bid* tree — recovery allocation is a Phase II
    // re-solve on reported rates — and the original id of each surviving
    // preorder position. Bids do not move links, so the canonical order of
    // the bid tree is the shape's own.
    let mut cur = with_rates(&scenario.shape, &base.bids);
    let mut orig_of: Vec<usize> = (0..n).collect();
    // What each node is working on in the current round: `None` is the
    // base Phase III round (work = base.retained); after a splice it is
    // the latest recovery re-allocation, indexed by original node id.
    let mut round_assign: Option<Vec<f64>> = None;

    let phase3: Vec<&FaultEvent> = queue
        .iter()
        .filter(|e| e.kind.halt_phase() == Some(3))
        .collect();
    let phase4: Vec<&FaultEvent> = queue
        .iter()
        .filter(|e| e.kind.halt_phase() == Some(4))
        .collect();
    debug_assert_eq!(phase3.len() + phase4.len(), queue.len());

    for e in &phase3 {
        let k = e.node;
        let (progress, alive) = match e.kind {
            FaultKind::Crash { progress, .. } => (progress, false),
            FaultKind::Stall { progress } => (progress, true),
            _ => unreachable!("phase filter admits only halting faults"),
        };
        let residual = match &round_assign {
            None => {
                let done_k = progress * base.retained[k];
                let residual = base.retained[k] - done_k;
                completed[k] = done_k;
                residual
            }
            Some(assign) => {
                let residual = assign[k] - progress * assign[k];
                completed[k] -= residual;
                recovery_assigned[k] -= residual;
                residual
            }
        };

        // Phase III results are awaited by the root.
        let detector = 0;
        arbitrations.push(to_tree_arbitration(&arbitrate_unresponsive(
            detector, k, alive,
        )));
        detected.push((detector, k, 3));
        if alive {
            stalled.push(k);
        } else {
            crashed.push(k);
        }

        let timeout_span = clock.advance(timeout);
        obs::count!("protocol.ft.detection_timeouts", "phase" => 3u8);
        obs::hist!("protocol.ft.timeout_wait", timeout, "phase" => 3u8);
        obs::event!("protocol.ft.splice", vt = clock.now(), "dead" => k, "phase" => 3u8);

        // Re-attach the halted node's subtrees onto its parent in the
        // running survivor tree and re-solve its unfinished work.
        let si_k = orig_of
            .iter()
            .position(|&o| o == k)
            .expect("halted node is on the survivor tree");
        let SplicedTree { tree: next, map } = tree::splice_node(&cur, si_k);
        cur = next;
        let mut next_orig = vec![0usize; orig_of.len() - 1];
        for (old, new) in map.iter().enumerate() {
            if let Some(new) = new {
                next_orig[*new] = orig_of[old];
            }
        }
        orig_of = next_orig;
        let (per_unit_makespan, shares) = allocation_of_tree(&cur);
        obs::event!(
            "protocol.ft.residual_resolve",
            vt = clock.now(),
            "dead" => k,
            "residual" => residual,
            "survivors" => shares.len()
        );

        let mut round = vec![0.0; n];
        for (si, &share) in shares.iter().enumerate() {
            let orig = orig_of[si];
            let extra = residual * share;
            recovery_assigned[orig] += extra;
            completed[orig] += extra;
            round[orig] = extra;
        }

        let recovery_span = clock.advance(residual * per_unit_makespan);
        timeline.push(detector, 3, obs::TimelineKind::Timeout, timeout_span, 0.0);
        timeline.mark(k, 3, obs::TimelineKind::Splice, recovery_span.0);
        for (orig, &extra) in round.iter().enumerate() {
            if extra > 0.0 {
                timeline.push(orig, 3, obs::TimelineKind::Recovery, recovery_span, extra);
            }
        }
        recovered_load += residual;
        round_assign = Some(round);
    }

    // Phase IV crashes are simultaneous: every billing timer fires within
    // the same timeout window, and the root probes the whole batch.
    if !phase4.is_empty() {
        let timeout_span = clock.advance(timeout);
        let mut probes = Vec::with_capacity(phase4.len());
        for e in &phase4 {
            let k = e.node;
            detected.push((0, k, 4));
            crashed.push(k);
            obs::count!("protocol.ft.detection_timeouts", "phase" => 4u8);
            obs::hist!("protocol.ft.timeout_wait", timeout, "phase" => 4u8);
            timeline.push(0, 4, obs::TimelineKind::Timeout, timeout_span, 0.0);
            probes.push((0, k, false));
        }
        arbitrations.extend(
            arbitrate_concurrent_unresponsive(&probes)
                .iter()
                .map(to_tree_arbitration),
        );
    }

    // Rebuild the ledger: every halted node's Phase IV settlement is
    // voided at once, then re-settled — Phase III halts pro rata on what
    // they verifiably completed, Phase IV crashes from the root's own
    // `TreeMechanism` re-settlement — and survivors are paid their
    // recovery work at metered cost. Earlier-phase fines and rewards
    // stand.
    let halted: Vec<NodeId> = queue.iter().map(|e| e.node).collect();
    let mut ledger = base.ledger.without_entries_of(&halted, 4);
    let mut pro_rata_of: Vec<Option<PaymentBreakdown>> = vec![None; n];
    for e in &phase3 {
        let k = e.node;
        let pr = payment::pro_rata(completed[k], base.actual_rates[k - 1]);
        ledger.post(k, EntryKind::Payment, pr.payment, 4);
        pro_rata_of[k] = Some(pr);
    }
    if !phase4.is_empty() {
        // The root recomputes the silent nodes' honest bills from the same
        // settlement the base run used — deterministic, so an honest
        // casualty's re-posted bill is bit-identical to the one it never
        // sent.
        let mech = TreeMechanism::new(scenario.shape.clone());
        let conducts: Vec<Conduct> = (1..n)
            .map(|j| Conduct {
                bid: base.bids[j - 1],
                actual_rate: base.actual_rates[j - 1],
                actual_load: Some(base.retained[j]),
            })
            .collect();
        let outcome = mech.settle(&conducts);
        for e in &phase4 {
            let k = e.node;
            ledger.post(k, EntryKind::Payment, outcome.payment(k), 4);
            if recovery_assigned[k] > 0.0 {
                // A Phase IV casualty that performed recovery work earlier
                // is paid that wage too — it finished it before dying.
                ledger.post(
                    k,
                    EntryKind::Payment,
                    payment::recovery_wage(recovery_assigned[k], base.actual_rates[k - 1]),
                    4,
                );
            }
        }
    }
    for j in 1..=m {
        if !halted.contains(&j) && recovery_assigned[j] > 0.0 {
            ledger.post(
                j,
                EntryKind::Payment,
                payment::recovery_wage(recovery_assigned[j], base.actual_rates[j - 1]),
                4,
            );
        }
    }

    // Net utilities: valuation adjusted for the changed workloads, plus
    // the rebuilt ledger. When nothing halted mid-computation no workload
    // changed, so survivors keep their base utilities verbatim.
    let mut net_utilities;
    if phase3.is_empty() {
        net_utilities = base.net_utilities.clone();
        for e in &phase4 {
            let k = e.node;
            let valuation = -base.retained[k] * base.actual_rates[k - 1];
            net_utilities[k - 1] = valuation + ledger.net(k);
        }
    } else {
        net_utilities = vec![0.0; m];
        for j in 1..=m {
            let valuation = if let Some(pr) = &pro_rata_of[j] {
                pr.valuation
            } else {
                // completed[j] = base share + recovery work performed.
                -(base.retained[j] + recovery_assigned[j]) * base.actual_rates[j - 1]
            };
            net_utilities[j - 1] = valuation + ledger.net(j);
        }
    }

    timeline.makespan = clock.now();
    FtTreeRunReport {
        crashed,
        stalled,
        detected,
        assigned: base.assigned.clone(),
        completed,
        recovered_load,
        recovery_assigned,
        makespan: clock.now(),
        base_makespan: base.makespan,
        arbitrations,
        ledger,
        net_utilities,
        splice_map,
        timeline,
    }
}

/// Layer the plan's message faults on top of the halting-fault report:
/// each drop/corruption costs one detection timeout (and files a no-fault
/// timeout complaint the liveness probe rejects); each delay adds its
/// latency. Messages of halted nodes are skipped, and a leaf that sends
/// nothing in Phases II–III has nothing to drop.
fn apply_message_faults(report: &mut FtTreeRunReport, plan: &FaultPlan, flat: &Flat) {
    let mut clock = obs::RunClock::starting_at(report.makespan);
    for event in plan.message_faults() {
        if report.crashed.contains(&event.node) || report.stalled.contains(&event.node) {
            continue;
        }
        match event.kind {
            FaultKind::DropMessage { phase } | FaultKind::CorruptMessage { phase } => {
                let Some(receiver) = receiver_of(event.node, phase, flat) else {
                    continue;
                };
                let wait = clock.advance(plan.detection_timeout);
                obs::count!("protocol.ft.detection_timeouts", "phase" => phase);
                obs::hist!("protocol.ft.timeout_wait", plan.detection_timeout, "phase" => phase);
                report
                    .timeline
                    .push(receiver, phase, obs::TimelineKind::Timeout, wait, 0.0);
                report.makespan = clock.now();
                report.detected.push((receiver, event.node, phase));
                report
                    .arbitrations
                    .push(to_tree_arbitration(&arbitrate_unresponsive(
                        receiver, event.node, true,
                    )));
            }
            FaultKind::DelayMessage { phase, delay } => {
                if receiver_of(event.node, phase, flat).is_some() {
                    clock.advance(delay);
                    report.makespan = clock.now();
                }
            }
            FaultKind::Crash { .. } | FaultKind::Stall { .. } => unreachable!("filtered"),
        }
    }
    report.timeline.makespan = report.makespan;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::Deviation;
    use crate::faults::FaultError;

    /// The 7-node two-level tree of the `tree_runner` tests.
    fn shape() -> TreeNode {
        TreeNode::internal(
            1.0,
            vec![
                (
                    0.15,
                    TreeNode::internal(
                        1.0,
                        vec![(0.05, TreeNode::leaf(1.0)), (0.25, TreeNode::leaf(1.0))],
                    ),
                ),
                (
                    0.30,
                    TreeNode::internal(
                        1.0,
                        vec![(0.10, TreeNode::leaf(1.0)), (0.20, TreeNode::leaf(1.0))],
                    ),
                ),
            ],
        )
    }

    fn scenario() -> TreeScenario {
        TreeScenario::honest(shape(), vec![1.4, 2.2, 0.7, 1.9, 1.1, 3.0])
    }

    #[test]
    fn empty_plan_matches_plain_tree_run() {
        let s = scenario();
        let plain = run_tree(&s);
        let ft = run_with_faults(&s, &FaultPlan::none()).unwrap();
        assert_eq!(ft.makespan, plain.makespan);
        assert_eq!(ft.net_utilities, plain.net_utilities);
        assert_eq!(ft.completed, plain.retained);
        assert!(ft.crashed.is_empty() && ft.stalled.is_empty());
        assert_eq!(ft.overhead(), 0.0);
    }

    #[test]
    fn any_single_crash_recovers_on_the_branching_tree() {
        let s = scenario();
        let m = s.num_agents();
        for k in 1..=m {
            for phase in 1..=4u8 {
                for progress in [0.0, 0.37, 1.0] {
                    let plan = FaultPlan::crash(k, phase, progress);
                    let ft = run_with_faults(&s, &plan).unwrap();
                    assert_eq!(ft.crashed, vec![k]);
                    assert!(
                        ft.load_conserved(1e-9),
                        "k={k} phase={phase} p={progress}: completed {:?}",
                        ft.completed
                    );
                    assert!(ft.makespan >= ft.base_makespan, "recovery cannot be free");
                    for j in 1..=m {
                        assert!(
                            ft.fines_paid(j) <= 1e-12,
                            "honest P{j} fined after crash of P{k} in phase {phase}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn internal_node_crash_reattaches_its_subtrees() {
        // Node 1 routes the subtree {2, 3}; cutting it pre-distribution
        // must keep its children productive, not orphan them.
        let s = scenario();
        let ft = run_with_faults(&s, &FaultPlan::crash(1, 1, 0.0)).unwrap();
        assert!(ft.load_conserved(1e-9));
        assert_eq!(ft.completed[1], 0.0);
        assert!(
            ft.completed[2] > 0.0 && ft.completed[3] > 0.0,
            "re-attached subtree nodes still work: {:?}",
            ft.completed
        );
        assert_eq!(ft.splice_map[1], None);
        // The survivor allocation matches solving the spliced true-rate
        // tree directly.
        let true_tree = with_rates(&s.shape, &s.true_rates);
        let spliced = tree::splice_node(&true_tree, 1);
        let sol = tree::solve(&spliced.tree);
        let shares = sol.flatten();
        for (old, new) in spliced.map.iter().enumerate() {
            if let Some(new) = new {
                assert!(
                    (ft.completed[old] - shares[*new]).abs() < 1e-12,
                    "node {old}: {} vs {}",
                    ft.completed[old],
                    shares[*new]
                );
            }
        }
    }

    #[test]
    fn phase3_crash_pays_pro_rata_and_keeps_survivors_whole() {
        let s = scenario();
        let plain = run_tree(&s);
        let ft = run_with_faults(&s, &FaultPlan::crash(4, 3, 0.4)).unwrap();
        assert!(
            ft.utility(4).abs() < 1e-9,
            "pro-rata utility {}",
            ft.utility(4)
        );
        assert!((ft.completed[4] - 0.4 * plain.retained[4]).abs() < 1e-12);
        for j in (1..=6).filter(|&j| j != 4) {
            assert!(
                (ft.utility(j) - plain.utility(j)).abs() < 1e-9,
                "P{j}: {} vs {}",
                ft.utility(j),
                plain.utility(j)
            );
        }
        assert!((ft.recovered_load - 0.6 * plain.retained[4]).abs() < 1e-12);
        let spread: f64 = ft.recovery_assigned.iter().sum();
        assert!((spread - ft.recovered_load).abs() < 1e-12);
        assert_eq!(ft.recovery_assigned[4], 0.0);
    }

    #[test]
    fn phase4_crash_settles_from_the_roots_recomputation() {
        let s = scenario();
        let plain = run_tree(&s);
        let ft = run_with_faults(&s, &FaultPlan::crash(2, 4, 0.0)).unwrap();
        assert!((ft.utility(2) - plain.utility(2)).abs() < 1e-9);
        assert!((ft.makespan - plain.makespan - FaultPlan::DEFAULT_TIMEOUT).abs() < 1e-12);
        assert!(ft.load_conserved(1e-9));
    }

    #[test]
    fn stall_triggers_recovery_without_conviction() {
        let s = scenario();
        let ft = run_with_faults(&s, &FaultPlan::stall(1, 0.25)).unwrap();
        assert_eq!(ft.stalled, vec![1]);
        assert!(ft.crashed.is_empty());
        assert!(ft.load_conserved(1e-9));
        let timeout_arb = ft
            .arbitrations
            .iter()
            .find(|a| a.complaint == "unresponsive")
            .unwrap();
        assert!(!timeout_arb.substantiated);
        for j in 1..=6 {
            assert!(ft.fines_paid(j) <= 1e-12, "P{j} fined for a stall");
        }
    }

    #[test]
    fn cascading_crashes_compose_subtree_splices() {
        let s = scenario();
        let plan = FaultPlan::crash(1, 1, 0.0).with_event(
            4,
            FaultKind::Crash {
                phase: 3,
                progress: 0.5,
            },
        );
        let ft = run_with_faults(&s, &plan).unwrap();
        assert_eq!(ft.crashed, vec![1, 4]);
        assert!(ft.load_conserved(1e-9));
        assert!(ft.recovered_load > 0.0);
        assert!(
            ft.utility(4).abs() < 1e-9,
            "inner casualty settled pro rata"
        );
        for j in 1..=6 {
            assert!(ft.fines_paid(j) <= 1e-12);
        }
        assert_eq!(ft.timeline.of(obs::TimelineKind::Splice).count(), 2);
    }

    #[test]
    fn all_strategic_nodes_crashing_leaves_the_root_alone() {
        let s = scenario();
        let mut plan = FaultPlan::crash(1, 3, 0.5);
        for k in 2..=6 {
            plan = plan.with_event(
                k,
                FaultKind::Crash {
                    phase: 3,
                    progress: 0.5,
                },
            );
        }
        let ft = run_with_faults(&s, &plan).unwrap();
        assert_eq!(ft.crashed, vec![1, 2, 3, 4, 5, 6]);
        assert!(
            ft.load_conserved(1e-9),
            "the root absorbs the final residual: {:?}",
            ft.completed
        );
        for j in 1..=6 {
            assert!(ft.fines_paid(j) <= 1e-12);
            assert!(ft.utility(j).abs() < 1e-9, "P{j} settled pro rata");
        }
    }

    #[test]
    fn simultaneous_phase4_crashes_share_one_timeout() {
        let s = scenario();
        let plain = run_tree(&s);
        let plan = FaultPlan::crash(2, 4, 0.0).with_event(
            5,
            FaultKind::Crash {
                phase: 4,
                progress: 0.0,
            },
        );
        let ft = run_with_faults(&s, &plan).unwrap();
        assert_eq!(ft.crashed, vec![2, 5]);
        assert!(
            (ft.makespan - plain.makespan - FaultPlan::DEFAULT_TIMEOUT).abs() < 1e-12,
            "billing timers fire concurrently: one timeout, not two"
        );
        assert!((ft.utility(2) - plain.utility(2)).abs() < 1e-9);
        assert!((ft.utility(5) - plain.utility(5)).abs() < 1e-9);
        assert!(ft.load_conserved(1e-9));
    }

    #[test]
    fn message_faults_add_overhead_but_never_fines() {
        let s = scenario();
        let plain = run_tree(&s);
        let plan = FaultPlan::none()
            .with_event(1, FaultKind::DropMessage { phase: 1 })
            .with_event(2, FaultKind::CorruptMessage { phase: 2 })
            .with_event(
                4,
                FaultKind::DelayMessage {
                    phase: 4,
                    delay: 0.02,
                },
            );
        let ft = run_with_faults(&s, &plan).unwrap();
        // Node 2 is a leaf: it sends nothing in Phase II, so only the
        // drop and the delay cost anything.
        let expected = plain.makespan + FaultPlan::DEFAULT_TIMEOUT + 0.02;
        assert!((ft.makespan - expected).abs() < 1e-12);
        assert_eq!(ft.detected.len(), 1, "only the Phase I drop times out");
        for j in 1..=6 {
            assert!(ft.fines_paid(j) <= 1e-12, "P{j} fined for a network fault");
            assert!((ft.utility(j) - plain.utility(j)).abs() < 1e-9);
        }
        assert!(ft.load_conserved(1e-9));
    }

    #[test]
    fn deviant_that_crashes_keeps_its_earlier_fines() {
        let s = scenario().with_deviation(1, Deviation::WrongEquivalent { factor: 0.6 });
        let ft = run_with_faults(&s, &FaultPlan::crash(1, 3, 0.5)).unwrap();
        assert!(
            ft.fines_paid(1) > 0.0,
            "the Phase II conviction survives the crash"
        );
        assert!(ft.load_conserved(1e-9));
        assert!(
            ft.utility(1) < -1e-9,
            "fined deviant nets negative even with pro-rata pay"
        );
    }

    #[test]
    fn tree_reports_are_deterministic() {
        let s = scenario();
        for seed in 0..10u64 {
            let plan = FaultPlan::seeded_multi(seed, s.num_agents(), 3);
            let a = run_with_faults(&s, &plan).unwrap();
            let b = run_with_faults(&s, &plan).unwrap();
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        }
    }

    #[test]
    fn degenerate_path_delegates_to_the_chain_engine_byte_for_byte() {
        let net = dlt::model::LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]);
        let path = TreeNode::from_chain(&net);
        let s = TreeScenario::honest(path, vec![2.0, 0.5, 4.0]);
        let chain = as_chain_scenario(&s).expect("a path is a chain");
        for k in 1..=3 {
            for phase in 1..=4u8 {
                let plan = FaultPlan::crash(k, phase, 0.5);
                let ft = run_with_faults(&s, &plan).unwrap();
                let lin = crate::ft_runner::run_with_faults(&chain, &plan).unwrap();
                let expected = from_chain_report(lin);
                assert_eq!(
                    format!("{ft:?}"),
                    format!("{expected:?}"),
                    "k={k} phase={phase}"
                );
            }
        }
    }

    #[test]
    fn branching_trees_are_not_chains() {
        assert!(as_chain_scenario(&scenario()).is_none());
    }

    #[test]
    fn rejects_bad_plans_and_scenarios() {
        let s = scenario();
        assert!(matches!(
            run_with_faults(&s, &FaultPlan::crash(9, 1, 0.0)),
            Err(FtError::Fault(FaultError::NodeOutOfRange { .. }))
        ));
        let mut bad = scenario();
        bad.true_rates[0] = -1.0;
        assert!(matches!(
            run_with_faults(&bad, &FaultPlan::none()),
            Err(FtError::Scenario(ScenarioError::BadRate { .. }))
        ));
        let mut short = scenario();
        short.true_rates.pop();
        short.deviations.pop();
        assert!(matches!(
            run_with_faults(&short, &FaultPlan::none()),
            Err(FtError::Scenario(ScenarioError::LengthMismatch { .. }))
        ));
    }

    #[test]
    fn seeded_multi_fault_sweeps_hold_the_invariants() {
        let s = scenario();
        let m = s.num_agents();
        for seed in 0..20u64 {
            let plan = FaultPlan::seeded_multi(seed, m, 3);
            let ft = run_with_faults(&s, &plan).unwrap();
            assert!(ft.load_conserved(1e-9), "seed={seed} plan {plan:?}");
            for j in 1..=m {
                assert!(
                    ft.fines_paid(j) <= 1e-12,
                    "seed={seed}: honest P{j} fined under {plan:?}"
                );
            }
        }
    }
}
