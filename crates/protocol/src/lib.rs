//! # `protocol` — the four-phase DLS-LBL protocol with verification
//!
//! The enforcement layer of the reproduction of Carroll & Grosu (IPPS
//! 2007). Where the `mechanism` crate answers *who is paid what*, this
//! crate makes those numbers *incentive-compatible to compute in a
//! distributed way*, in the paper's autonomous-node model where agents
//! control both their inputs and the algorithm they run:
//!
//! * [`crypto`] — simulated unforgeable signatures and PKI (`dsm_i(m)`).
//! * [`lambda`] — the Λ data-tagging device of footnote 1: block
//!   identifiers that prove how much load a node received.
//! * [`messages`] — Phase I bids, Phase II `G_i` messages (eqs. 4.1–4.2)
//!   with the full recipient-side check suite, grievances, and the Phase IV
//!   payment proof (eq. 4.12).
//! * [`root`] — arbitration: evidence verification, fines and rewards
//!   (Lemma 5.2: only actual deviants are ever fined).
//! * [`deviation`] — the Lemma 5.1 misbehavior catalog.
//! * [`ledger`] — the payment-infrastructure ledger.
//! * [`runner`] — end-to-end scenario execution across all four phases,
//!   with deviations injected, caught, and fined.
//! * [`faults`] — deterministic, seeded fault plans: crash-stop, stalls,
//!   message drops/delays/corruption.
//! * [`ft_runner`] — fault-tolerant execution: timeout detection,
//!   chain-splice recovery of cascading and simultaneous failures,
//!   pro-rata settlement of failed nodes, and the no-fault extension of
//!   Lemma 5.2 (no honest survivor is ever fined under any injected
//!   fault).
//! * [`ft_reference`] — the frozen PR 1 single-failure recovery path,
//!   kept as a byte-identical differential-testing reference.
//! * [`ft_tree_runner`] — fault-tolerant execution on **tree** networks:
//!   subtree re-attachment recovery (`dlt::tree::splice_node`), with
//!   degenerate paths delegating byte-for-byte to [`ft_runner`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Parallel-array indexing is idiomatic throughout this numeric code.
#![allow(clippy::needless_range_loop)]

pub mod crypto;
pub mod deviation;
pub mod faults;
pub mod ft_reference;
pub mod ft_runner;
pub mod ft_tree_runner;
pub mod lambda;
pub mod ledger;
pub mod messages;
pub mod root;
pub mod runner;
pub mod transcript;
pub mod tree_runner;

pub use crypto::{Dsm, KeyPair, NodeId, Registry, Signature};
pub use deviation::Deviation;
pub use faults::{FaultError, FaultEvent, FaultKind, FaultPlan};
pub use ft_reference::run_with_faults_single;
pub use ft_runner::{run_with_faults, FtError, FtRunReport};
pub use ft_tree_runner::{run_with_faults as run_tree_with_faults, FtTreeRunReport};
pub use lambda::{BlockMint, LoadTag};
pub use ledger::{EntryKind, Ledger};
pub use messages::{Bill, Complaint, GMessage, PaymentProof};
pub use root::{arbitrate, arbitrate_unresponsive, ArbitrationContext, ArbitrationRecord};
pub use runner::{run, try_run, RunReport, Scenario, ScenarioError};
pub use transcript::{replay, Finding, FindingKind, Transcript};
pub use tree_runner::{run_tree, TreeArbitration, TreeRunReport, TreeScenario};
