//! Protocol message types: Phase I bids, Phase II `G_i` messages
//! (eqs. 4.1–4.2), Phase III grievances, Phase IV payment proofs
//! (eq. 4.12).

use crate::crypto::{Dsm, NodeId, Registry};
use crate::lambda::LoadTag;

/// Phase I message: `P_i` reports its equivalent processing time
/// `dsm_i(w̄_i)` to its predecessor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidMessage {
    /// `dsm_i(w̄_i)`.
    pub equivalent: Dsm<f64>,
}

/// Phase II message `G_i` handed from `P_{i-1}` to `P_i` (eq. 4.2; eq. 4.1
/// is the `i = 1` case where both signer indices collapse to the root).
///
/// The double-signing structure is the point: `D_{i-1}` and `w̄_{i-1}` are
/// signed by `P_{i-2}` (the *grandparent*), so `P_{i-1}` cannot tell its
/// parent one story and its child another without producing attributable,
/// contradictory evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GMessage {
    /// `dsm_{i-2}(D_{i-1})` — load reaching the predecessor, vouched by the
    /// grandparent.
    pub d_prev: Dsm<f64>,
    /// `dsm_{i-1}(D_i)` — load the predecessor claims to forward to us.
    pub d_cur: Dsm<f64>,
    /// `dsm_{i-2}(w̄_{i-1})` — the predecessor's Phase I equivalent bid, as
    /// countersigned by the grandparent.
    pub wbar_prev: Dsm<f64>,
    /// `dsm_{i-1}(w_{i-1})` — the predecessor's raw processing rate claim.
    pub w_prev: Dsm<f64>,
    /// `dsm_{i-1}(w̄_i)` — our own Phase I bid echoed back, countersigned
    /// by the predecessor.
    pub wbar_cur: Dsm<f64>,
}

/// Why a `G_i` message was rejected by its recipient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GCheckError {
    /// A signature failed to verify or carried the wrong signer.
    Inauthentic,
    /// The echoed `w̄_i` differs from the bid we sent in Phase I.
    BidMismatch,
    /// `w̄_{i-1} ≠ α̂_{i-1} · w_{i-1}` (identity of eq. 2.4 violated).
    EquivalentIdentity,
    /// `α̂_{i-1} w_{i-1} ≠ (1 − α̂_{i-1})(w̄_i + z_i)` (eq. 2.7 violated).
    BalanceIdentity,
    /// The implied `α̂_{i-1}` is outside `(0, 1]` or `D` values are
    /// nonsensical.
    BadFractions,
}

impl GMessage {
    /// Run the full recipient-side check suite for `P_i` (§4 Phase II).
    ///
    /// * `registry` — the PKI;
    /// * `i` — the recipient's index (`≥ 1`);
    /// * `my_bid` — the `w̄_i` the recipient sent in Phase I;
    /// * `z_i` — the (public, obedient) rate of the inbound link;
    /// * `tol` — numeric tolerance for the identity checks.
    pub fn check(
        &self,
        registry: &Registry,
        i: NodeId,
        my_bid: f64,
        z_i: f64,
        tol: f64,
    ) -> Result<(), GCheckError> {
        let grandparent = i.saturating_sub(2);
        let parent = i - 1;
        let authentic = self.d_prev.verify(registry, Some(grandparent))
            && self.d_cur.verify(registry, Some(parent))
            && self.wbar_prev.verify(registry, Some(grandparent))
            && self.w_prev.verify(registry, Some(parent))
            && self.wbar_cur.verify(registry, Some(parent));
        if !authentic {
            return Err(GCheckError::Inauthentic);
        }
        if (self.wbar_cur.payload - my_bid).abs() > tol {
            return Err(GCheckError::BidMismatch);
        }
        let d_prev = self.d_prev.payload;
        let d_cur = self.d_cur.payload;
        if !(d_prev > 0.0 && d_cur > 0.0 && d_cur < d_prev + tol) {
            return Err(GCheckError::BadFractions);
        }
        let alpha_hat = (d_prev - d_cur) / d_prev;
        if !(0.0..=1.0 + tol).contains(&alpha_hat) {
            return Err(GCheckError::BadFractions);
        }
        let w_prev = self.w_prev.payload;
        let wbar_prev = self.wbar_prev.payload;
        if (wbar_prev - alpha_hat * w_prev).abs() > tol {
            return Err(GCheckError::EquivalentIdentity);
        }
        let lhs = alpha_hat * w_prev;
        let rhs = (1.0 - alpha_hat) * (self.wbar_cur.payload + z_i);
        if (lhs - rhs).abs() > tol {
            return Err(GCheckError::BalanceIdentity);
        }
        Ok(())
    }
}

/// A complaint submitted to the root for arbitration.
#[derive(Debug, Clone, PartialEq)]
pub enum Complaint {
    /// Two authentic, contradictory signed values from the same node
    /// (Phase I or II).
    Contradiction {
        /// The accused node.
        accused: NodeId,
        /// First signed value.
        first: Dsm<f64>,
        /// Second, different signed value.
        second: Dsm<f64>,
    },
    /// A `G` message failing the recipient's recomputation (Phase II).
    BadComputation {
        /// The accused node (the message's sender).
        accused: NodeId,
        /// The failing message, as evidence.
        evidence: GMessage,
        /// The recipient's Phase I bid (for the echo check).
        recipient_bid: f64,
        /// The public link rate `z_i`.
        link_rate: f64,
    },
    /// Receiving more load than Phase II prescribed (Phase III), proven by
    /// the Λ tag.
    Overload {
        /// The accused predecessor.
        accused: NodeId,
        /// Load the claimant should have received (`D_i` from Phase II).
        expected: f64,
        /// The Λ receipt proof of what actually arrived.
        tag: LoadTag,
    },
    /// A fabricated accusation with no verifiable evidence (case (v)).
    Unfounded {
        /// The accused (innocent) node.
        accused: NodeId,
    },
    /// A neighbour stopped responding within the detection timeout. Unlike
    /// every other complaint this one is **no-fault**: a lost message can
    /// mimic a crash, so the root probes liveness and triggers recovery
    /// but levies no fine on either party (extended Lemma 5.2 — an honest
    /// survivor must never pay for its neighbour's failure, and an honest
    /// reporter must never pay for a timeout the network caused).
    Unresponsive {
        /// The silent node.
        accused: NodeId,
        /// The phase in which the silence was observed.
        phase: u8,
    },
}

impl Complaint {
    /// The node the complaint accuses.
    pub fn accused(&self) -> NodeId {
        match self {
            Complaint::Contradiction { accused, .. }
            | Complaint::BadComputation { accused, .. }
            | Complaint::Overload { accused, .. }
            | Complaint::Unfounded { accused }
            | Complaint::Unresponsive { accused, .. } => *accused,
        }
    }
}

/// The Phase IV payment proof `Proof_j` (eq. 4.12): everything the root
/// needs to recompute `Q_j` from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct PaymentProof {
    /// The `G_j` message received in Phase II.
    pub g: GMessage,
    /// The meter reading `dsm_0(w̃_j)` (signed by the root's key — the
    /// tamper-proof meter is the mechanism's instrument).
    pub meter: Dsm<f64>,
    /// The Λ receipt proof of the load actually received.
    pub tag: LoadTag,
    /// The load actually retained and computed (`α̃_j`).
    pub actual_load: f64,
}

/// A bill submitted to the payment infrastructure in Phase IV.
#[derive(Debug, Clone, PartialEq)]
pub struct Bill {
    /// The billing node.
    pub node: NodeId,
    /// The claimed payment `Q_j`.
    pub amount: f64,
    /// The supporting proof, producible on challenge.
    pub proof: PaymentProof,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::Registry;

    fn registry() -> Registry {
        Registry::new(5, 11)
    }

    /// Build an honest G message for P_i given chain data.
    fn honest_g(
        reg: &Registry,
        i: NodeId,
        d_prev: f64,
        d_cur: f64,
        wbar_prev: f64,
        w_prev: f64,
        wbar_cur: f64,
    ) -> GMessage {
        let gp = reg.keypair(i.saturating_sub(2));
        let p = reg.keypair(i - 1);
        GMessage {
            d_prev: Dsm::new(&gp, d_prev),
            d_cur: Dsm::new(&p, d_cur),
            wbar_prev: Dsm::new(&gp, wbar_prev),
            w_prev: Dsm::new(&p, w_prev),
            wbar_cur: Dsm::new(&p, wbar_cur),
        }
    }

    /// A consistent 2-processor example: w0=1, w1=1, z1=1.
    /// α̂_0 = 2/3, w̄_0 = 2/3, D_0 = 1, D_1 = 1/3, w̄_1 = 1.
    fn consistent_example(reg: &Registry) -> GMessage {
        honest_g(reg, 1, 1.0, 1.0 / 3.0, 2.0 / 3.0, 1.0, 1.0)
    }

    #[test]
    fn honest_message_passes() {
        let reg = registry();
        let g = consistent_example(&reg);
        assert_eq!(g.check(&reg, 1, 1.0, 1.0, 1e-9), Ok(()));
    }

    #[test]
    fn tampered_signature_caught() {
        let reg = registry();
        let mut g = consistent_example(&reg);
        g.w_prev.payload = 0.9; // altered without re-signing
        assert_eq!(
            g.check(&reg, 1, 1.0, 1.0, 1e-9),
            Err(GCheckError::Inauthentic)
        );
    }

    #[test]
    fn wrong_signer_caught() {
        let reg = registry();
        let mut g = consistent_example(&reg);
        // Re-sign w_prev with a non-parent key.
        g.w_prev = Dsm::new(&reg.keypair(3), g.w_prev.payload);
        assert_eq!(
            g.check(&reg, 1, 1.0, 1.0, 1e-9),
            Err(GCheckError::Inauthentic)
        );
    }

    #[test]
    fn bid_echo_mismatch_caught() {
        let reg = registry();
        let g = consistent_example(&reg);
        // recipient actually bid 1.1, message echoes 1.0
        assert_eq!(
            g.check(&reg, 1, 1.1, 1.0, 1e-9),
            Err(GCheckError::BidMismatch)
        );
    }

    #[test]
    fn equivalent_identity_violation_caught() {
        let reg = registry();
        // wbar_prev inconsistent with α̂·w_prev
        let g = honest_g(&reg, 1, 1.0, 1.0 / 3.0, 0.5, 1.0, 1.0);
        assert_eq!(
            g.check(&reg, 1, 1.0, 1.0, 1e-9),
            Err(GCheckError::EquivalentIdentity)
        );
    }

    #[test]
    fn balance_identity_violation_caught() {
        let reg = registry();
        // self-consistent w̄_{0} = α̂·w_0 but α̂ violates eq. 2.7
        // α̂ = 0.5: wbar_prev = 0.5, but (1-0.5)(1+1) = 1 ≠ 0.5
        let g = honest_g(&reg, 1, 1.0, 0.5, 0.5, 1.0, 1.0);
        assert_eq!(
            g.check(&reg, 1, 1.0, 1.0, 1e-9),
            Err(GCheckError::BalanceIdentity)
        );
    }

    #[test]
    fn nonsense_fractions_caught() {
        let reg = registry();
        let g = honest_g(&reg, 1, 1.0, 1.5, 0.5, 1.0, 1.0); // D grows?!
        assert_eq!(
            g.check(&reg, 1, 1.0, 1.0, 1e-9),
            Err(GCheckError::BadFractions)
        );
    }

    #[test]
    fn complaint_reports_accused() {
        let reg = registry();
        let k = reg.keypair(2);
        let c = Complaint::Contradiction {
            accused: 2,
            first: Dsm::new(&k, 0.5),
            second: Dsm::new(&k, 0.6),
        };
        assert_eq!(c.accused(), 2);
        assert_eq!(Complaint::Unfounded { accused: 3 }.accused(), 3);
    }
}
