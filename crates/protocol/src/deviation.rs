//! The deviation catalog — every way a selfish processor can deviate from
//! DLS-LBL, as enumerated by Lemma 5.1, plus the pure bid-misreports of the
//! strategyproofness analysis.
//!
//! | Variant | Lemma 5.1 case | Phase | Detected by |
//! |---|---|---|---|
//! | `ContradictoryBid` | (i) | I | recipient compares authentic messages |
//! | `WrongEquivalent` | (ii) | I→II | successor's eq. 2.4 identity check |
//! | `WrongDistribution` | (ii) | II | successor's eq. 2.7 balance check |
//! | `ShedLoad` | (iii) | III | successor's Λ-proven overload grievance |
//! | `Overcharge` | (iv) | IV | probability-`q` proof audit |
//! | `FalseAccusation` | (v) | any | root exculpates the accused |
//! | `Underbid`/`Overbid`/`SlackExecution` | Lemma 5.3 | I/III | not "caught" — priced by the payment rule |

/// A strategic processor's chosen deviation for one protocol run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Deviation {
    /// Follow the protocol faithfully.
    None,
    /// Declare a rate `factor × t` (`factor < 1`): attracts extra load.
    Underbid {
        /// Multiplier on the true rate (< 1).
        factor: f64,
    },
    /// Declare a rate `factor × t` (`factor > 1`): sheds load at bid time.
    Overbid {
        /// Multiplier on the true rate (> 1).
        factor: f64,
    },
    /// Bid truthfully but compute at `factor × t` (`factor > 1`).
    SlackExecution {
        /// Multiplier on the true rate (> 1).
        factor: f64,
    },
    /// Phase I case (i): send two different signed `w̄` values.
    ContradictoryBid {
        /// Multiplier applied to the second message's value.
        second_factor: f64,
    },
    /// Phase I/II case (ii): report `factor × w̄_i` as the equivalent time.
    WrongEquivalent {
        /// Multiplier on the honest equivalent (≠ 1).
        factor: f64,
    },
    /// Phase II case (ii): miscompute the forwarded load `D_{i+1}` by
    /// `factor`.
    WrongDistribution {
        /// Multiplier on the honest `D_{i+1}` (≠ 1).
        factor: f64,
    },
    /// Phase III case (iii): retain only `keep_fraction` of the prescribed
    /// local share, shedding the rest onto the successor.
    ShedLoad {
        /// Fraction of the prescribed local retention actually kept
        /// (`< 1`).
        keep_fraction: f64,
    },
    /// Phase IV case (iv): inflate the bill by `amount`.
    Overcharge {
        /// Amount added to the honest bill.
        amount: f64,
    },
    /// Case (v): accuse the predecessor without evidence.
    FalseAccusation,
}

impl Deviation {
    /// True for conduct the *protocol* must catch and fine (Lemma 5.1
    /// cases); false for pure bid/speed strategies that the payment rule
    /// prices instead.
    pub fn is_finable(&self) -> bool {
        matches!(
            self,
            Deviation::ContradictoryBid { .. }
                | Deviation::WrongEquivalent { .. }
                | Deviation::WrongDistribution { .. }
                | Deviation::ShedLoad { .. }
                | Deviation::Overcharge { .. }
                | Deviation::FalseAccusation
        )
    }

    /// True if the node follows the protocol exactly.
    pub fn is_compliant(&self) -> bool {
        matches!(self, Deviation::None)
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Deviation::None => "none",
            Deviation::Underbid { .. } => "underbid",
            Deviation::Overbid { .. } => "overbid",
            Deviation::SlackExecution { .. } => "slack-execution",
            Deviation::ContradictoryBid { .. } => "contradictory-bid",
            Deviation::WrongEquivalent { .. } => "wrong-equivalent",
            Deviation::WrongDistribution { .. } => "wrong-distribution",
            Deviation::ShedLoad { .. } => "shed-load",
            Deviation::Overcharge { .. } => "overcharge",
            Deviation::FalseAccusation => "false-accusation",
        }
    }

    /// The canonical catalog instantiated with representative parameters —
    /// one entry per Lemma 5.1 case plus the bid strategies (used by E6).
    pub fn catalog() -> Vec<Deviation> {
        vec![
            Deviation::Underbid { factor: 0.5 },
            Deviation::Overbid { factor: 2.0 },
            Deviation::SlackExecution { factor: 1.5 },
            Deviation::ContradictoryBid { second_factor: 0.7 },
            Deviation::WrongEquivalent { factor: 0.6 },
            Deviation::WrongDistribution { factor: 1.3 },
            Deviation::ShedLoad { keep_fraction: 0.5 },
            Deviation::Overcharge { amount: 0.5 },
            Deviation::FalseAccusation,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finable_classification() {
        assert!(!Deviation::None.is_finable());
        assert!(!Deviation::Underbid { factor: 0.5 }.is_finable());
        assert!(!Deviation::SlackExecution { factor: 2.0 }.is_finable());
        assert!(Deviation::ShedLoad { keep_fraction: 0.5 }.is_finable());
        assert!(Deviation::Overcharge { amount: 1.0 }.is_finable());
        assert!(Deviation::FalseAccusation.is_finable());
    }

    #[test]
    fn catalog_covers_all_lemma_cases() {
        let labels: Vec<&str> = Deviation::catalog().iter().map(|d| d.label()).collect();
        for expected in [
            "contradictory-bid",
            "wrong-equivalent",
            "wrong-distribution",
            "shed-load",
            "overcharge",
            "false-accusation",
        ] {
            assert!(labels.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn only_none_is_compliant() {
        assert!(Deviation::None.is_compliant());
        for d in Deviation::catalog() {
            assert!(!d.is_compliant());
        }
    }
}
