//! Fault-tolerant protocol execution: run a [`Scenario`] under an injected
//! [`FaultPlan`] and recover via **chain splicing** — including cascading
//! and simultaneous failures.
//!
//! ### Recovery protocol
//! When a strategic processor `P_k` halts (crash-stop in any phase, or a
//! Phase III stall), a neighbour's detection timer fires, the root probes
//! liveness, and recovery proceeds by *splicing* `P_k` out of the chain:
//! the links `z_k` and `z_{k+1}` fuse into one store-and-forward hop of
//! rate `z_k + z_{k+1}` ([`dlt::linear::splice`]), and the root re-solves
//! the DLT allocation on the survivor chain for whatever load `P_k` left
//! unprocessed.
//!
//! * Halt **before distribution** (Phases I–II): the whole unit load is
//!   allocated over the survivor chain from scratch.
//! * Halt **during computation** (Phase III, at progress `p`): the dead
//!   node's residual `(1 − p)·α̃_k` is re-allocated over the survivors;
//!   each survivor's recovery work is compensated at exactly its metered
//!   cost, so recovery is utility-neutral for the survivors.
//! * Halt **before billing** (Phase IV): all work is done; the root
//!   settles the silent node's account from its own recomputation.
//!
//! The failed node is paid **pro rata** ([`mechanism::payment::pro_rata`])
//! for the work it verifiably completed — made whole for its cost, but no
//! bonus, since bonuses reward finishing the prescribed share.
//!
//! ### Cascading and simultaneous failures
//! A plan may halt any number of *distinct* nodes. The halting faults
//! resolve in [`FaultPlan::detection_order`] — ascending phase, plan order
//! within a phase — and `dlt::linear::splice` composes, so each confirmed
//! failure fuses its links and the survivor chain shrinks monotonically:
//!
//! * **Pre-distribution crashes** recurse: the first dead node is spliced
//!   out, the survivors re-run Phases I–II among themselves, and the
//!   remaining faults (renumbered to the spliced chain) are recovered
//!   *inside* that re-run. The composed `splice_map` records the final
//!   renumbering.
//! * **Phase III halts** are serialized by the root: the first halt is
//!   detected during the base computation round; each subsequent halt
//!   strikes during the *latest recovery round* — the node has finished
//!   all earlier rounds and its `progress` applies to its current
//!   recovery assignment. A node that dies while performing recovery work
//!   is settled pro rata on everything it completed (its own share plus
//!   the recovery fraction it finished), **not** on its original Λ.
//! * **Phase IV crashes** are simultaneous: the root's billing timers all
//!   fire within one shared timeout window, and the batch of
//!   `Complaint::Unresponsive` probes is arbitrated concurrently
//!   ([`crate::root::arbitrate_concurrent_unresponsive`]) in detection
//!   order.
//!
//! ### Extended Lemma 5.2
//! Faults are operational, not strategic, so they are **no-fault**: across
//! every injected fault — crash, stall, message drop, delay, corruption —
//! no honest processor is ever fined. Timeout complaints resolve by
//! liveness probe with a zero fine either way; corrupted messages are
//! discarded *before* entering the transcript, so replay can never mistake
//! line noise for a forged signature. Deviations remain finable exactly as
//! in the fault-free protocol, and both layers compose: a deviant that
//! later crashes keeps its earlier fines and loses its bonus.
//!
//! ### Determinism
//! Given the same `(Scenario, FaultPlan)` pair the report is bit-identical
//! — faults are part of the experiment description, not sampled during the
//! run. On single-failure plans this engine is additionally byte-identical
//! to the PR 1 single-failure path, frozen as
//! [`crate::ft_reference::run_with_faults_single`] and enforced by the
//! `multi_fault` differential suite.
//!
//! ### Modelling simplifications
//! Phase boundaries act as barriers: detection and recovery start after
//! the fault-free schedule of the interrupted phase completes, and
//! recovery rounds are barriers too — the next halt in detection order is
//! confirmed only after the previous round's re-allocation is in flight.
//! A node that halts in phase `p` is treated as absent from phase `p`
//! onward *and* its earlier-phase message interplay is replayed on the
//! spliced chain for pre-distribution halts (the survivors re-run Phases
//! I–II among themselves). Recovery allocation is computed on the
//! *reported* (bid) rates, like any Phase II allocation. After a
//! pre-distribution splice the inner protocol transcript and ledger are
//! renumbered back to the original chain indices via
//! [`FtRunReport::splice_map`].

use crate::crypto::NodeId;
use crate::faults::{FaultError, FaultEvent, FaultKind, FaultPlan};
use crate::ledger::{EntryKind, Ledger};
use crate::root::{arbitrate_concurrent_unresponsive, arbitrate_unresponsive, ArbitrationRecord};
use crate::runner::{try_run, RunReport, Scenario, ScenarioError};
use crate::transcript::{Entry, Transcript};
use dlt::linear;
use dlt::model::LinearNetwork;
use mechanism::payment::{self, PaymentBreakdown, PaymentInputs};

/// Why a fault-tolerant run could not start.
#[derive(Debug, Clone, PartialEq)]
pub enum FtError {
    /// The scenario itself is malformed.
    Scenario(ScenarioError),
    /// The fault plan is malformed (for this chain size).
    Fault(FaultError),
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::Scenario(e) => write!(f, "invalid scenario: {e}"),
            FtError::Fault(e) => write!(f, "invalid fault plan: {e}"),
        }
    }
}

impl std::error::Error for FtError {}

impl From<ScenarioError> for FtError {
    fn from(e: ScenarioError) -> Self {
        FtError::Scenario(e)
    }
}

impl From<FaultError> for FtError {
    fn from(e: FaultError) -> Self {
        FtError::Fault(e)
    }
}

/// Everything a fault-tolerant run produced. All per-node vectors use the
/// **original** chain indexing (`0` = root, length `m + 1` or `m`), even
/// when recovery ran on a spliced chain.
#[derive(Debug, Clone, PartialEq)]
pub struct FtRunReport {
    /// Every crash-stopped node, in detection order.
    pub crashed: Vec<NodeId>,
    /// Every stalled (alive but unproductive) node, in detection order.
    pub stalled: Vec<NodeId>,
    /// Every detection event: `(detector, suspect, phase)`.
    pub detected: Vec<(NodeId, NodeId, u8)>,
    /// Load prescribed per node by the (possibly re-run) Phase II.
    pub assigned: Vec<f64>,
    /// Load each node actually finished, including recovery work. Sums to
    /// the unit workload whenever recovery succeeded.
    pub completed: Vec<f64>,
    /// Total residual load the recovery rounds re-assigned, counted with
    /// multiplicity: a unit that was re-assigned and then orphaned again by
    /// a crash-during-recovery counts once per round it traveled. 0 when
    /// nothing halted mid-computation.
    pub recovered_load: f64,
    /// Extra load each node received from recovery **and actually
    /// performed** (a node that died mid-recovery only counts the fraction
    /// it finished).
    pub recovery_assigned: Vec<f64>,
    /// Realized makespan including detection and recovery overhead.
    pub makespan: f64,
    /// Makespan of the same scenario with no faults (for overhead plots).
    pub base_makespan: f64,
    /// All arbitration records (timeout complaints included), in order.
    pub arbitrations: Vec<ArbitrationRecord>,
    /// The full ledger, renumbered to original indices.
    pub ledger: Ledger,
    /// Net utility of every strategic processor (`net_utilities[j-1]` is
    /// `P_j`'s), original indexing; a halted node's reflects pro-rata
    /// settlement.
    pub net_utilities: Vec<f64>,
    /// The transcript: fault entries plus the protocol messages of the run
    /// that executed (spliced indices for pre-distribution halts — see
    /// `splice_map`).
    pub transcript: Transcript,
    /// `splice_map[old] = Some(new)` maps original to post-splice indices;
    /// `None` marks a removed node. Composed across nested splices for
    /// cascading pre-distribution crashes. Identity when nothing was
    /// spliced before distribution.
    pub splice_map: Vec<Option<usize>>,
    /// Discrete events the execution simulator processed.
    pub events: u64,
    /// Deterministic per-run phase timeline (original chain indexing):
    /// base-run work, detection-timeout waits, the splice instants and
    /// recovery spans — nested recovery included — on the same virtual
    /// clock as `makespan`.
    pub timeline: obs::PhaseTimeline,
}

impl FtRunReport {
    /// Net utility of strategic processor `P_j` (original index).
    pub fn utility(&self, j: usize) -> f64 {
        self.net_utilities[j - 1]
    }

    /// True if the total finished load equals the unit workload.
    pub fn load_conserved(&self, tol: f64) -> bool {
        (self.completed.iter().sum::<f64>() - 1.0).abs() <= tol
    }

    /// Makespan overhead attributable to faults and recovery.
    pub fn overhead(&self) -> f64 {
        self.makespan - self.base_makespan
    }

    /// Fines actually paid by `P_j` (as a non-negative number).
    pub fn fines_paid(&self, j: NodeId) -> f64 {
        -(self.ledger.net_of(j, EntryKind::Fine)
            + self.ledger.net_of(j, EntryKind::ExtraWorkPenalty))
    }

    /// All halted nodes (crashed and stalled), in detection order within
    /// each group.
    pub fn halted(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.crashed.iter().chain(self.stalled.iter()).copied()
    }
}

/// Detection rule: who notices `P_k` going silent in `phase`. Phase I bids
/// flow upward (the predecessor waits); Phase II allocations flow downward
/// (the successor waits, the root for the terminal node); results and
/// bills are awaited by the root.
pub(crate) fn detector_of(k: NodeId, phase: u8, m: usize) -> NodeId {
    match phase {
        1 => k - 1,
        2 if k < m => k + 1,
        _ => 0,
    }
}

/// Receiver of `P_v`'s outbound message in `phase` — `None` when the node
/// sends nothing in that phase (the terminal node in Phases II–III).
pub(crate) fn receiver_of(v: NodeId, phase: u8, m: usize) -> Option<NodeId> {
    match phase {
        1 => Some(v - 1),
        2 | 3 => (v < m).then_some(v + 1),
        _ => Some(0),
    }
}

/// Per-unit-load makespan and absolute load shares of a (possibly
/// root-only) network. Residual re-solves route through the batch solver
/// core (`dlt::batch::solve_one`), which is bit-identical to the scalar
/// `linear::solve` by construction — E20/E22 report bytes are unchanged.
pub(crate) fn allocation_of(net: &LinearNetwork) -> (f64, Vec<f64>) {
    if net.len() == 1 {
        (net.w(0), vec![1.0])
    } else {
        let sol = dlt::batch::solve_one(net);
        let shares: Vec<f64> = (0..net.len()).map(|i| sol.alloc.alpha(i)).collect();
        (sol.makespan(), shares)
    }
}

/// Map a post-splice index back to the original chain.
pub(crate) fn unsplice(i: usize, dead: NodeId) -> usize {
    if i < dead {
        i
    } else {
        i + 1
    }
}

/// Execute `scenario` under `plan`, recovering from the injected faults.
pub fn run_with_faults(scenario: &Scenario, plan: &FaultPlan) -> Result<FtRunReport, FtError> {
    scenario.validate()?;
    let m = scenario.num_agents();
    plan.validate(m)?;
    let timeout = plan.detection_timeout;
    let _ft_span = obs::span!("protocol.ft.run", "m" => m, "timeout" => timeout);

    let base = try_run(scenario)?;
    let queue = plan.detection_order();
    let mut report = recover(scenario, &base, &queue, timeout)?;
    apply_message_faults(&mut report, plan, m);
    Ok(report)
}

/// Recover from the halting faults in `queue` (already in detection
/// order). Pre-distribution crashes recurse — the survivors re-run the
/// protocol and the remaining queue is recovered inside that re-run;
/// Phase III/IV halts are serialized by
/// [`compute_and_billing_recovery`].
fn recover(
    scenario: &Scenario,
    base: &RunReport,
    queue: &[FaultEvent],
    timeout: f64,
) -> Result<FtRunReport, FtError> {
    let n = scenario.num_agents() + 1;
    let identity_map: Vec<Option<usize>> = (0..n).map(Some).collect();
    match queue.first() {
        None => Ok(healthy_report(scenario, base, identity_map)),
        Some(&FaultEvent {
            node: k,
            kind: FaultKind::Crash {
                phase: p @ (1 | 2), ..
            },
        }) => pre_distribution_crash(scenario, base, k, p, &queue[1..], timeout),
        // detection_order sorts by phase, so everything left is Phase
        // III/IV: crashes at phase 3 or 4, and stalls.
        _ => Ok(compute_and_billing_recovery(
            scenario,
            base,
            queue,
            timeout,
            identity_map,
        )),
    }
}

/// No halting fault: the base run, wrapped.
pub(crate) fn healthy_report(
    scenario: &Scenario,
    base: &RunReport,
    splice_map: Vec<Option<usize>>,
) -> FtRunReport {
    let n = scenario.num_agents() + 1;
    FtRunReport {
        crashed: Vec::new(),
        stalled: Vec::new(),
        detected: Vec::new(),
        assigned: base.assigned.clone(),
        completed: base.retained.clone(),
        recovered_load: 0.0,
        recovery_assigned: vec![0.0; n],
        makespan: base.makespan,
        base_makespan: base.makespan,
        arbitrations: base.arbitrations.clone(),
        ledger: base.ledger.clone(),
        net_utilities: base.net_utilities.clone(),
        transcript: base.transcript.clone(),
        splice_map,
        events: base.events,
        timeline: base.timeline.clone(),
    }
}

/// Crash in Phase I or II: nothing was distributed; splice and re-run the
/// whole protocol on the survivor chain — recovering the remaining faults
/// of `rest` *inside* that re-run — then renumber back.
fn pre_distribution_crash(
    scenario: &Scenario,
    base: &RunReport,
    k: NodeId,
    phase: u8,
    rest: &[FaultEvent],
    timeout: f64,
) -> Result<FtRunReport, FtError> {
    let m = scenario.num_agents();
    let n = m + 1;

    let detector = detector_of(k, phase, m);
    let mut transcript = Transcript::new();
    transcript.record(Entry::Timeout {
        detector,
        suspect: k,
        phase,
    });
    let mut arbitrations = vec![arbitrate_unresponsive(detector, k, false)];
    let mut detected = vec![(detector, k, phase)];

    // Recovery restarts the whole schedule: the virtual clock begins at 0,
    // waits out the detection timeout, then runs the survivor protocol.
    let mut clock = obs::RunClock::new();
    let timeout_span = clock.advance(timeout);
    obs::count!("protocol.ft.detection_timeouts", "phase" => phase);
    obs::hist!("protocol.ft.timeout_wait", timeout, "phase" => phase);
    obs::event!("protocol.ft.splice", vt = clock.now(), "dead" => k, "phase" => phase);
    let mut timeline = obs::PhaseTimeline::new(n);
    timeline.push(
        detector,
        phase,
        obs::TimelineKind::Timeout,
        timeout_span,
        0.0,
    );
    timeline.mark(k, phase, obs::TimelineKind::Splice, timeout_span.1);

    if m == 1 {
        // No strategic survivor: the obedient root computes the whole unit
        // load itself at rate w_0. (`rest` is necessarily empty — the only
        // strategic node is the one that crashed.)
        debug_assert!(rest.is_empty());
        transcript.record(Entry::Recovery {
            dead: k,
            residual: 0.0,
            reassigned: vec![(0, 1.0)],
        });
        let mut assigned = vec![0.0; n];
        assigned[0] = 1.0;
        let root_span = clock.advance(scenario.root_rate);
        timeline.push(0, 3, obs::TimelineKind::Recovery, root_span, 1.0);
        timeline.makespan = clock.now();
        return Ok(FtRunReport {
            crashed: vec![k],
            stalled: Vec::new(),
            detected,
            completed: assigned.clone(),
            assigned,
            recovered_load: 0.0,
            recovery_assigned: vec![0.0; n],
            makespan: clock.now(),
            base_makespan: base.makespan,
            arbitrations,
            ledger: Ledger::new(),
            net_utilities: vec![0.0],
            transcript,
            splice_map: (0..n)
                .map(|i| {
                    if i == k {
                        None
                    } else {
                        Some(if i < k { i } else { i - 1 })
                    }
                })
                .collect(),
            events: 0,
            timeline,
        });
    }

    // Splice the chain of *true* rates; bids re-derive from the surviving
    // nodes' deviations inside the inner run.
    let mut w = vec![scenario.root_rate];
    w.extend_from_slice(&scenario.true_rates);
    let spliced = linear::splice(&LinearNetwork::from_rates(&w, &scenario.link_rates), k);
    let mut deviations = scenario.deviations.clone();
    deviations.remove(k - 1);
    let inner_scenario = Scenario {
        root_rate: scenario.root_rate,
        true_rates: spliced.rates_w()[1..].to_vec(),
        link_rates: spliced.rates_z().to_vec(),
        deviations,
        fine: scenario.fine,
        blocks: scenario.blocks,
        seed: scenario.seed,
        solution_bonus: scenario.solution_bonus,
        solution_found: scenario.solution_found,
    };
    // The remaining faults, renumbered to the spliced chain, are recovered
    // *inside* the survivor re-run: recovery-during-recovery re-enters the
    // splice path.
    let inner_rest: Vec<FaultEvent> = rest
        .iter()
        .map(|e| FaultEvent {
            node: if e.node > k { e.node - 1 } else { e.node },
            kind: e.kind,
        })
        .collect();
    let inner_base = try_run(&inner_scenario)?;
    let inner = recover(&inner_scenario, &inner_base, &inner_rest, timeout)?;
    obs::event!(
        "protocol.ft.residual_resolve",
        vt = clock.now(),
        "dead" => k,
        "survivors" => inner.assigned.len()
    );
    let recovery_span = clock.advance(inner.makespan);
    // The survivor protocol's Phase III work, shifted past the timeout and
    // renumbered to the original chain. A nested recovery's own timeout,
    // splice and recovery spans pass through the same shift.
    for s in &inner.timeline.spans {
        match s.kind {
            obs::TimelineKind::Work if s.phase == 3 => timeline.push(
                unsplice(s.node, k),
                3,
                obs::TimelineKind::Recovery,
                (recovery_span.0 + s.start, recovery_span.0 + s.end),
                s.load,
            ),
            obs::TimelineKind::Work => {}
            kind => timeline.push(
                unsplice(s.node, k),
                s.phase,
                kind,
                (recovery_span.0 + s.start, recovery_span.0 + s.end),
                s.load,
            ),
        }
    }
    timeline.makespan = clock.now();

    transcript.record(Entry::Recovery {
        dead: k,
        residual: 0.0,
        reassigned: inner
            .assigned
            .iter()
            .enumerate()
            .map(|(si, &a)| (unsplice(si, k), a))
            .collect(),
    });
    for e in inner.transcript.entries() {
        transcript.record(e.clone());
    }

    // Renumber everything back to original indices.
    let mut assigned = vec![0.0; n];
    let mut completed = vec![0.0; n];
    let mut recovery_assigned = vec![0.0; n];
    for si in 0..inner.assigned.len() {
        assigned[unsplice(si, k)] = inner.assigned[si];
        completed[unsplice(si, k)] = inner.completed[si];
        recovery_assigned[unsplice(si, k)] = inner.recovery_assigned[si];
    }
    let mut ledger = Ledger::new();
    for e in inner.ledger.entries() {
        ledger.post(unsplice(e.node, k), e.kind, e.amount, e.phase);
    }
    arbitrations.extend(inner.arbitrations.iter().map(|a| ArbitrationRecord {
        claimant: unsplice(a.claimant, k),
        accused: unsplice(a.accused, k),
        ..a.clone()
    }));
    detected.extend(
        inner
            .detected
            .iter()
            .map(|&(d, s, p)| (unsplice(d, k), unsplice(s, k), p)),
    );
    let mut net_utilities = vec![0.0; m];
    for sj in 1..=m - 1 {
        net_utilities[unsplice(sj, k) - 1] = inner.net_utilities[sj - 1];
    }

    let mut crashed = vec![k];
    crashed.extend(inner.crashed.iter().map(|&c| unsplice(c, k)));
    let stalled: Vec<NodeId> = inner.stalled.iter().map(|&st| unsplice(st, k)).collect();
    // Compose the outer splice with whatever the inner recovery spliced.
    let splice_map: Vec<Option<usize>> = (0..n)
        .map(|i| {
            if i == k {
                None
            } else {
                inner.splice_map[if i < k { i } else { i - 1 }]
            }
        })
        .collect();

    Ok(FtRunReport {
        crashed,
        stalled,
        detected,
        assigned,
        completed,
        recovered_load: inner.recovered_load,
        recovery_assigned,
        makespan: clock.now(),
        base_makespan: base.makespan,
        arbitrations,
        ledger,
        net_utilities,
        transcript,
        splice_map,
        events: inner.events,
        timeline,
    })
}

/// Serialized recovery of every Phase III halt (crash or stall) followed
/// by the simultaneous settlement of every Phase IV crash.
///
/// Each Phase III halt costs one detection timeout, fuses the dead node
/// out of the running bid chain, and re-solves its unfinished work on the
/// remaining survivors; the next halt in detection order strikes during
/// that recovery round. Phase IV crashes share a single timeout window —
/// their billing timers fire concurrently — and are arbitrated as a batch.
fn compute_and_billing_recovery(
    scenario: &Scenario,
    base: &RunReport,
    queue: &[FaultEvent],
    timeout: f64,
    splice_map: Vec<Option<usize>>,
) -> FtRunReport {
    let m = scenario.num_agents();
    let n = m + 1;

    let mut transcript = base.transcript.clone();
    let mut arbitrations = base.arbitrations.clone();
    let mut timeline = base.timeline.clone();
    let mut detected = Vec::new();
    let mut crashed = Vec::new();
    let mut stalled = Vec::new();

    // The recovery clock picks up where the fault-free schedule ended.
    let mut clock = obs::RunClock::starting_at(base.makespan);
    let mut completed = base.retained.clone();
    let mut recovery_assigned = vec![0.0; n];
    let mut recovered_load = 0.0;

    // The running spliced *bid* chain — recovery allocation is a Phase II
    // re-solve on reported rates — and the original index of each
    // surviving position.
    let mut bid_w = vec![scenario.root_rate];
    bid_w.extend_from_slice(&base.bids);
    let mut net = LinearNetwork::from_rates(&bid_w, &scenario.link_rates);
    let mut orig_of: Vec<usize> = (0..n).collect();
    // What each node is working on in the current round: `None` is the
    // base Phase III round (work = base.retained); after a splice it is
    // the latest recovery re-allocation, indexed by original node id.
    let mut round_assign: Option<Vec<f64>> = None;

    let phase3: Vec<&FaultEvent> = queue
        .iter()
        .filter(|e| e.kind.halt_phase() == Some(3))
        .collect();
    let phase4: Vec<&FaultEvent> = queue
        .iter()
        .filter(|e| e.kind.halt_phase() == Some(4))
        .collect();
    debug_assert_eq!(phase3.len() + phase4.len(), queue.len());

    for e in &phase3 {
        let k = e.node;
        let (progress, alive) = match e.kind {
            FaultKind::Crash { progress, .. } => (progress, false),
            FaultKind::Stall { progress } => (progress, true),
            _ => unreachable!("phase filter admits only halting faults"),
        };
        // How much of its current round's work the node finished before
        // halting. In the base round that is `progress` of its retained
        // share; in a recovery round, `progress` of its latest recovery
        // assignment (all earlier rounds completed in full).
        let residual = match &round_assign {
            None => {
                let done_k = progress * base.retained[k];
                let residual = base.retained[k] - done_k;
                completed[k] = done_k;
                residual
            }
            Some(assign) => {
                let residual = assign[k] - progress * assign[k];
                completed[k] -= residual;
                recovery_assigned[k] -= residual;
                residual
            }
        };

        let detector = detector_of(k, 3, m);
        transcript.record(Entry::Timeout {
            detector,
            suspect: k,
            phase: 3,
        });
        arbitrations.push(arbitrate_unresponsive(detector, k, alive));
        detected.push((detector, k, 3));
        if alive {
            stalled.push(k);
        } else {
            crashed.push(k);
        }

        let timeout_span = clock.advance(timeout);
        obs::count!("protocol.ft.detection_timeouts", "phase" => 3u8);
        obs::hist!("protocol.ft.timeout_wait", timeout, "phase" => 3u8);
        obs::event!("protocol.ft.splice", vt = clock.now(), "dead" => k, "phase" => 3u8);

        // Fuse the halted node out of the running survivor chain and
        // re-solve its unfinished work.
        let si_k = orig_of
            .iter()
            .position(|&o| o == k)
            .expect("halted node is on the survivor chain");
        net = linear::splice(&net, si_k);
        orig_of.remove(si_k);
        let (per_unit_makespan, shares) = allocation_of(&net);
        obs::event!(
            "protocol.ft.residual_resolve",
            vt = clock.now(),
            "dead" => k,
            "residual" => residual,
            "survivors" => shares.len()
        );

        let mut round = vec![0.0; n];
        let mut reassigned = Vec::with_capacity(shares.len());
        for (si, &share) in shares.iter().enumerate() {
            let orig = orig_of[si];
            let extra = residual * share;
            recovery_assigned[orig] += extra;
            completed[orig] += extra;
            round[orig] = extra;
            reassigned.push((orig, extra));
        }
        transcript.record(Entry::Recovery {
            dead: k,
            residual,
            reassigned,
        });

        let recovery_span = clock.advance(residual * per_unit_makespan);
        timeline.push(detector, 3, obs::TimelineKind::Timeout, timeout_span, 0.0);
        timeline.mark(k, 3, obs::TimelineKind::Splice, recovery_span.0);
        for (orig, &extra) in round.iter().enumerate() {
            if extra > 0.0 {
                timeline.push(orig, 3, obs::TimelineKind::Recovery, recovery_span, extra);
            }
        }
        recovered_load += residual;
        round_assign = Some(round);
    }

    // Phase IV crashes are simultaneous: every billing timer fires within
    // the same timeout window, and the root probes the whole batch.
    if !phase4.is_empty() {
        let timeout_span = clock.advance(timeout);
        let mut probes = Vec::with_capacity(phase4.len());
        for e in &phase4 {
            let k = e.node;
            let detector = detector_of(k, 4, m);
            transcript.record(Entry::Timeout {
                detector,
                suspect: k,
                phase: 4,
            });
            detected.push((detector, k, 4));
            crashed.push(k);
            obs::count!("protocol.ft.detection_timeouts", "phase" => 4u8);
            obs::hist!("protocol.ft.timeout_wait", timeout, "phase" => 4u8);
            timeline.push(detector, 4, obs::TimelineKind::Timeout, timeout_span, 0.0);
            probes.push((detector, k, false));
        }
        arbitrations.extend(arbitrate_concurrent_unresponsive(&probes));
    }

    // Rebuild the ledger: every halted node's Phase IV settlement
    // (payment, and any audit outcome of a bill it never submitted) is
    // voided at once, then re-settled — Phase III halts pro rata on what
    // they verifiably completed, Phase IV crashes from the root's own
    // recomputation — and survivors are paid their recovery work at
    // metered cost. Earlier-phase fines and rewards stand.
    let halted: Vec<NodeId> = queue.iter().map(|e| e.node).collect();
    let mut ledger = base.ledger.without_entries_of(&halted, 4);
    let mut pro_rata_of: Vec<Option<PaymentBreakdown>> = vec![None; n];
    for e in &phase3 {
        let k = e.node;
        let pr = payment::pro_rata(completed[k], base.actual_rates[k - 1]);
        ledger.post(k, EntryKind::Payment, pr.payment, 4);
        pro_rata_of[k] = Some(pr);
    }
    let mut settled_of: Vec<Option<PaymentBreakdown>> = vec![None; n];
    if !phase4.is_empty() {
        let bid_net = LinearNetwork::from_rates(&bid_w, &scenario.link_rates);
        let s = if scenario.solution_found {
            scenario.solution_bonus
        } else {
            0.0
        };
        for e in &phase4 {
            let k = e.node;
            let honest = payment::settle(
                &bid_net,
                k,
                PaymentInputs {
                    assigned_load: base.assigned[k],
                    actual_load: base.retained[k],
                    actual_rate: base.actual_rates[k - 1],
                },
                s,
            );
            ledger.post(k, EntryKind::Payment, honest.payment, 4);
            if recovery_assigned[k] > 0.0 {
                // A Phase IV casualty that performed recovery work earlier
                // is paid that wage too — it finished it before dying.
                ledger.post(
                    k,
                    EntryKind::Payment,
                    payment::recovery_wage(recovery_assigned[k], base.actual_rates[k - 1]),
                    4,
                );
            }
            settled_of[k] = Some(honest);
        }
    }
    for j in 1..=m {
        if !halted.contains(&j) && recovery_assigned[j] > 0.0 {
            ledger.post(
                j,
                EntryKind::Payment,
                payment::recovery_wage(recovery_assigned[j], base.actual_rates[j - 1]),
                4,
            );
        }
    }

    // Net utilities: valuation (recovered from the base report) adjusted
    // for the changed workloads, plus the rebuilt ledger. When nothing
    // halted mid-computation no workload changed, so survivors keep their
    // base utilities verbatim.
    let mut net_utilities;
    if phase3.is_empty() {
        net_utilities = base.net_utilities.clone();
        for e in &phase4 {
            let k = e.node;
            let honest = settled_of[k].as_ref().expect("settled above");
            net_utilities[k - 1] = honest.valuation + ledger.net(k);
        }
    } else {
        net_utilities = vec![0.0; m];
        for j in 1..=m {
            let valuation = if let Some(pr) = &pro_rata_of[j] {
                pr.valuation
            } else if let Some(honest) = &settled_of[j] {
                honest.valuation - recovery_assigned[j] * base.actual_rates[j - 1]
            } else {
                let base_valuation = base.net_utilities[j - 1] - base.ledger.net(j);
                base_valuation - recovery_assigned[j] * base.actual_rates[j - 1]
            };
            net_utilities[j - 1] = valuation + ledger.net(j);
        }
    }

    timeline.makespan = clock.now();
    FtRunReport {
        crashed,
        stalled,
        detected,
        assigned: base.assigned.clone(),
        completed,
        recovered_load,
        recovery_assigned,
        makespan: clock.now(),
        base_makespan: base.makespan,
        arbitrations,
        ledger,
        net_utilities,
        transcript,
        splice_map,
        events: base.events,
        timeline,
    }
}

/// Layer the plan's message faults on top of the halting-fault report:
/// each drop/corruption costs one detection timeout (and files a no-fault
/// timeout complaint that the liveness probe rejects); each delay adds its
/// latency. Messages of halted nodes are skipped — their silence is
/// already the halting faults' story. Corrupted messages never enter the
/// transcript: only the retransmitted, well-signed copy is recorded, so
/// replay cannot incriminate the sender.
pub(crate) fn apply_message_faults(report: &mut FtRunReport, plan: &FaultPlan, m: usize) {
    // Message-fault overhead accrues on the same clock the halting-fault
    // path ended on.
    let mut clock = obs::RunClock::starting_at(report.makespan);
    for event in plan.message_faults() {
        if report.crashed.contains(&event.node) || report.stalled.contains(&event.node) {
            continue;
        }
        match event.kind {
            FaultKind::DropMessage { phase } | FaultKind::CorruptMessage { phase } => {
                let Some(receiver) = receiver_of(event.node, phase, m) else {
                    continue;
                };
                let wait = clock.advance(plan.detection_timeout);
                obs::count!("protocol.ft.detection_timeouts", "phase" => phase);
                obs::hist!("protocol.ft.timeout_wait", plan.detection_timeout, "phase" => phase);
                report
                    .timeline
                    .push(receiver, phase, obs::TimelineKind::Timeout, wait, 0.0);
                report.makespan = clock.now();
                report.transcript.record(Entry::Timeout {
                    detector: receiver,
                    suspect: event.node,
                    phase,
                });
                report.detected.push((receiver, event.node, phase));
                report
                    .arbitrations
                    .push(arbitrate_unresponsive(receiver, event.node, true));
            }
            FaultKind::DelayMessage { phase, delay } => {
                if receiver_of(event.node, phase, m).is_some() {
                    clock.advance(delay);
                    report.makespan = clock.now();
                }
            }
            FaultKind::Crash { .. } | FaultKind::Stall { .. } => unreachable!("filtered"),
        }
    }
    report.timeline.makespan = report.makespan;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::Deviation;
    use mechanism::FineSchedule;

    fn scenario() -> Scenario {
        Scenario::honest(1.0, vec![2.0, 0.5, 4.0], vec![0.2, 0.1, 0.7])
    }

    /// Honest chains of 3–8 total nodes with heterogeneous rates.
    fn chains() -> Vec<Scenario> {
        (2..=7usize)
            .map(|m| {
                let true_rates: Vec<f64> =
                    (0..m).map(|j| 0.5 + 0.9 * ((j * 7 % 5) as f64)).collect();
                let link_rates: Vec<f64> =
                    (0..m).map(|j| 0.1 + 0.15 * ((j * 3 % 4) as f64)).collect();
                Scenario::honest(1.0, true_rates, link_rates)
            })
            .collect()
    }

    #[test]
    fn empty_plan_matches_plain_run() {
        let s = scenario();
        let plain = try_run(&s).unwrap();
        let ft = run_with_faults(&s, &FaultPlan::none()).unwrap();
        assert_eq!(ft.makespan, plain.makespan);
        assert_eq!(ft.net_utilities, plain.net_utilities);
        assert_eq!(ft.completed, plain.retained);
        assert!(ft.crashed.is_empty() && ft.stalled.is_empty());
        assert_eq!(ft.overhead(), 0.0);
    }

    #[test]
    fn any_single_crash_recovers_on_every_chain() {
        // The acceptance sweep: every node, every phase, several progress
        // points, chains of 3–8 nodes — no panic, load conserved, no
        // honest survivor fined.
        for s in chains() {
            let m = s.num_agents();
            for k in 1..=m {
                for phase in 1..=4u8 {
                    for progress in [0.0, 0.37, 1.0] {
                        let plan = FaultPlan::crash(k, phase, progress);
                        let ft = run_with_faults(&s, &plan).unwrap();
                        assert_eq!(ft.crashed, vec![k]);
                        assert!(
                            ft.load_conserved(1e-9),
                            "m={m} k={k} phase={phase} p={progress}: completed {:?}",
                            ft.completed
                        );
                        assert!(ft.makespan >= ft.base_makespan, "recovery cannot be free");
                        for j in 1..=m {
                            assert!(
                                ft.fines_paid(j) <= 1e-12,
                                "honest P{j} fined after crash of P{k} in phase {phase}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn crash_reports_are_deterministic() {
        for s in chains().into_iter().take(3) {
            for seed in 0..10u64 {
                let plan = FaultPlan::seeded(seed, s.num_agents());
                let a = run_with_faults(&s, &plan).unwrap();
                let b = run_with_faults(&s, &plan).unwrap();
                assert_eq!(a, b, "seed {seed}");
            }
        }
    }

    #[test]
    fn phase3_crash_pays_pro_rata_and_keeps_survivors_whole() {
        let s = scenario();
        let plain = try_run(&s).unwrap();
        let ft = run_with_faults(&s, &FaultPlan::crash(2, 3, 0.4)).unwrap();
        // The crashed node is made whole for its partial work: utility 0.
        assert!(
            ft.utility(2).abs() < 1e-9,
            "pro-rata utility {}",
            ft.utility(2)
        );
        // It completed exactly 40% of its share.
        assert!((ft.completed[2] - 0.4 * plain.retained[2]).abs() < 1e-12);
        // Survivors' recovery work is compensated at cost: net unchanged.
        for j in [1usize, 3] {
            assert!(
                (ft.utility(j) - plain.utility(j)).abs() < 1e-9,
                "P{j}: {} vs {}",
                ft.utility(j),
                plain.utility(j)
            );
        }
        // The residual was spread over root and survivors.
        assert!((ft.recovered_load - 0.6 * plain.retained[2]).abs() < 1e-12);
        let spread: f64 = ft.recovery_assigned.iter().sum();
        assert!((spread - ft.recovered_load).abs() < 1e-12);
        assert_eq!(
            ft.recovery_assigned[2], 0.0,
            "the dead node gets nothing back"
        );
    }

    #[test]
    fn stall_triggers_recovery_without_conviction() {
        let s = scenario();
        let ft = run_with_faults(&s, &FaultPlan::stall(2, 0.25)).unwrap();
        assert_eq!(ft.stalled, vec![2]);
        assert!(ft.crashed.is_empty());
        assert!(ft.load_conserved(1e-9));
        // The liveness probe finds the stalled node alive: complaint
        // unsubstantiated, but with zero fine for the honest reporter too.
        let timeout_arb = ft
            .arbitrations
            .iter()
            .find(|a| a.complaint == "unresponsive")
            .unwrap();
        assert!(!timeout_arb.substantiated);
        assert_eq!(timeout_arb.fine, 0.0);
        for j in 1..=3 {
            assert!(ft.fines_paid(j) <= 1e-12, "P{j} fined for a stall");
        }
    }

    #[test]
    fn early_crash_reallocates_everything_to_survivors() {
        let s = scenario();
        let ft = run_with_faults(&s, &FaultPlan::crash(2, 1, 0.0)).unwrap();
        assert!(ft.load_conserved(1e-9));
        assert_eq!(ft.completed[2], 0.0);
        assert_eq!(ft.splice_map, vec![Some(0), Some(1), None, Some(2)]);
        assert!(
            ft.utility(2).abs() < 1e-15,
            "a node that never started earns nothing"
        );
        // The survivor chain's allocation matches solving the spliced
        // true-rate network directly.
        let spliced = linear::splice(
            &LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]),
            2,
        );
        let sol = linear::solve(&spliced);
        assert!((ft.completed[0] - sol.alloc.alpha(0)).abs() < 1e-12);
        assert!((ft.completed[1] - sol.alloc.alpha(1)).abs() < 1e-12);
        assert!((ft.completed[3] - sol.alloc.alpha(2)).abs() < 1e-12);
    }

    #[test]
    fn terminal_node_crash_truncates_the_chain() {
        let s = scenario();
        for phase in 1..=4u8 {
            let ft = run_with_faults(&s, &FaultPlan::crash(3, phase, 0.5)).unwrap();
            assert!(ft.load_conserved(1e-9), "phase {phase}");
            for j in 1..=3 {
                assert!(ft.fines_paid(j) <= 1e-12);
            }
        }
    }

    #[test]
    fn single_agent_crash_leaves_the_root_to_compute_alone() {
        let s = Scenario::honest(1.0, vec![1.0], vec![1.0]);
        let ft = run_with_faults(&s, &FaultPlan::crash(1, 1, 0.0)).unwrap();
        assert!(ft.load_conserved(1e-12));
        assert_eq!(ft.completed[0], 1.0);
        assert!((ft.makespan - (FaultPlan::DEFAULT_TIMEOUT + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn phase4_crash_settles_from_the_roots_recomputation() {
        let s = scenario();
        let plain = try_run(&s).unwrap();
        let ft = run_with_faults(&s, &FaultPlan::crash(1, 4, 0.0)).unwrap();
        // All work was done; the honest node is settled exactly as if it
        // had billed, so its utility survives its crash.
        assert!((ft.utility(1) - plain.utility(1)).abs() < 1e-9);
        assert!((ft.makespan - plain.makespan - FaultPlan::DEFAULT_TIMEOUT).abs() < 1e-12);
        assert!(ft.load_conserved(1e-9));
    }

    #[test]
    fn phase4_crash_voids_an_overcharged_bill_without_the_audit_fine() {
        // An overcharger that crashes before billing never submits the
        // inflated bill: the root settles honestly, no fine, no profit.
        let s = scenario()
            .with_fine(FineSchedule::new(15.0, 1.0))
            .with_deviation(2, Deviation::Overcharge { amount: 0.5 });
        let ft = run_with_faults(&s, &FaultPlan::crash(2, 4, 0.0)).unwrap();
        assert_eq!(ft.fines_paid(2), 0.0, "no bill, no overcharge, no fine");
        let honest = run_with_faults(&scenario(), &FaultPlan::crash(2, 4, 0.0)).unwrap();
        assert!(
            (ft.utility(2) - honest.utility(2)).abs() < 1e-9,
            "crash voids the overcharge"
        );
    }

    #[test]
    fn deviant_that_crashes_keeps_its_earlier_fines() {
        // P2 lies in Phase I (wrong equivalent), is convicted in Phase II,
        // then crashes in Phase III: the fine stands, the pro-rata payment
        // only covers its metered cost.
        let s = scenario().with_deviation(2, Deviation::WrongEquivalent { factor: 0.6 });
        let ft = run_with_faults(&s, &FaultPlan::crash(2, 3, 0.5)).unwrap();
        assert!(
            ft.fines_paid(2) > 0.0,
            "the Phase II conviction survives the crash"
        );
        assert!(
            ft.utility(2) < -1e-9,
            "fined deviant nets negative even with pro-rata pay"
        );
        assert!(ft.load_conserved(1e-9));
        // The honest reporter's reward also stands.
        assert!(ft.ledger.net_of(3, EntryKind::Reward) > 0.0);
    }

    #[test]
    fn message_faults_add_overhead_but_never_fines() {
        let s = scenario();
        let plain = try_run(&s).unwrap();
        let plan = FaultPlan::none()
            .with_event(1, FaultKind::DropMessage { phase: 1 })
            .with_event(2, FaultKind::CorruptMessage { phase: 2 })
            .with_event(
                3,
                FaultKind::DelayMessage {
                    phase: 4,
                    delay: 0.02,
                },
            );
        let ft = run_with_faults(&s, &plan).unwrap();
        let expected = plain.makespan + 2.0 * FaultPlan::DEFAULT_TIMEOUT + 0.02;
        assert!((ft.makespan - expected).abs() < 1e-12);
        assert_eq!(ft.detected.len(), 2, "drop and corruption each time out");
        for j in 1..=3 {
            assert!(ft.fines_paid(j) <= 1e-12, "P{j} fined for a network fault");
            assert!((ft.utility(j) - plain.utility(j)).abs() < 1e-9);
        }
        assert!(ft.load_conserved(1e-9));
    }

    #[test]
    fn corrupted_messages_leave_no_replay_findings() {
        use crate::crypto::Registry;
        use crate::lambda::BlockMint;
        let s = scenario();
        let plan = FaultPlan::none().with_event(2, FaultKind::CorruptMessage { phase: 2 });
        let ft = run_with_faults(&s, &plan).unwrap();
        let registry = Registry::new(4, s.seed);
        let mint = BlockMint::new(s.blocks, s.seed ^ 0x5EED_B10C);
        let findings = crate::transcript::replay(&ft.transcript, &registry, &mint);
        assert!(
            findings.is_empty(),
            "line noise incriminated someone: {findings:?}"
        );
    }

    #[test]
    fn seeded_fault_sweeps_hold_the_invariants() {
        for s in chains() {
            let m = s.num_agents();
            for seed in 0..20u64 {
                let plan = FaultPlan::seeded(seed, m);
                let ft = run_with_faults(&s, &plan).unwrap();
                assert!(ft.load_conserved(1e-9), "m={m} seed={seed} plan {plan:?}");
                for j in 1..=m {
                    assert!(
                        ft.fines_paid(j) <= 1e-12,
                        "m={m} seed={seed}: honest P{j} fined under {plan:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_bad_plans_and_scenarios() {
        let s = scenario();
        assert!(matches!(
            run_with_faults(&s, &FaultPlan::crash(9, 1, 0.0)),
            Err(FtError::Fault(FaultError::NodeOutOfRange { .. }))
        ));
        let mut bad = scenario();
        bad.true_rates[0] = -1.0;
        assert!(matches!(
            run_with_faults(&bad, &FaultPlan::none()),
            Err(FtError::Scenario(ScenarioError::BadRate { .. }))
        ));
    }

    // ---- cascading and simultaneous failures ----

    #[test]
    fn two_simultaneous_phase1_crashes_splice_twice() {
        let s = Scenario::honest(1.0, vec![2.0, 0.5, 4.0, 1.5], vec![0.2, 0.1, 0.7, 0.3]);
        let plan = FaultPlan::crash(2, 1, 0.0).with_event(
            3,
            FaultKind::Crash {
                phase: 1,
                progress: 0.0,
            },
        );
        let ft = run_with_faults(&s, &plan).unwrap();
        assert_eq!(ft.crashed, vec![2, 3]);
        assert!(ft.load_conserved(1e-9));
        assert_eq!(
            ft.splice_map,
            vec![Some(0), Some(1), None, None, Some(2)],
            "both dead nodes cut, survivors renumbered through both splices"
        );
        assert_eq!(ft.completed[2], 0.0);
        assert_eq!(ft.completed[3], 0.0);
        for j in 1..=4 {
            assert!(ft.fines_paid(j) <= 1e-12, "honest P{j} fined");
        }
        // The doubly-spliced true-rate chain solved directly matches.
        let once = linear::splice(
            &LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0, 1.5], &[0.2, 0.1, 0.7, 0.3]),
            2,
        );
        let twice = linear::splice(&once, 2);
        let sol = linear::solve(&twice);
        assert!((ft.completed[0] - sol.alloc.alpha(0)).abs() < 1e-12);
        assert!((ft.completed[1] - sol.alloc.alpha(1)).abs() < 1e-12);
        assert!((ft.completed[4] - sol.alloc.alpha(2)).abs() < 1e-12);
    }

    #[test]
    fn crash_during_recovery_settles_on_the_recovery_fraction() {
        let s = scenario();
        let plain = try_run(&s).unwrap();
        let plan = FaultPlan::crash(2, 3, 0.5).with_event(
            3,
            FaultKind::Crash {
                phase: 3,
                progress: 0.25,
            },
        );
        let ft = run_with_faults(&s, &plan).unwrap();
        assert_eq!(ft.crashed, vec![2, 3]);
        assert!(ft.load_conserved(1e-9));
        // P3 finished its whole base share plus a quarter of its recovery
        // assignment before dying.
        assert!(
            ft.completed[3] >= plain.retained[3] - 1e-12,
            "the base share was finished before the recovery round"
        );
        // Both casualties are honest: pro-rata settlement is
        // utility-neutral for them.
        assert!(ft.utility(2).abs() < 1e-9, "P2 utility {}", ft.utility(2));
        assert!(ft.utility(3).abs() < 1e-9, "P3 utility {}", ft.utility(3));
        // The pro-rata payment covers exactly what P3 completed — base
        // share plus the recovery fraction, not its original assignment.
        assert!(
            (ft.ledger.net_of(3, EntryKind::Payment) - ft.completed[3] * plain.actual_rates[2])
                .abs()
                < 1e-9
        );
        // Two recovery rounds: two splice marks and two recovery entries.
        assert_eq!(ft.timeline.of(obs::TimelineKind::Splice).count(), 2);
        assert_eq!(ft.detected.len(), 2);
        for j in 1..=3 {
            assert!(ft.fines_paid(j) <= 1e-12, "honest P{j} fined");
        }
    }

    #[test]
    fn all_strategic_nodes_crashing_leaves_the_root_alone() {
        let s = scenario();
        let plan = FaultPlan::crash(1, 3, 0.5)
            .with_event(
                2,
                FaultKind::Crash {
                    phase: 3,
                    progress: 0.5,
                },
            )
            .with_event(
                3,
                FaultKind::Crash {
                    phase: 3,
                    progress: 0.5,
                },
            );
        let ft = run_with_faults(&s, &plan).unwrap();
        assert_eq!(ft.crashed, vec![1, 2, 3]);
        assert!(
            ft.load_conserved(1e-9),
            "the root absorbs the final residual: {:?}",
            ft.completed
        );
        for j in 1..=3 {
            assert!(ft.fines_paid(j) <= 1e-12);
            assert!(ft.utility(j).abs() < 1e-9, "P{j} settled pro rata");
        }
        assert_eq!(ft.timeline.of(obs::TimelineKind::Splice).count(), 3);
    }

    #[test]
    fn simultaneous_phase4_crashes_share_one_timeout() {
        let s = scenario();
        let plain = try_run(&s).unwrap();
        let plan = FaultPlan::crash(1, 4, 0.0).with_event(
            3,
            FaultKind::Crash {
                phase: 4,
                progress: 0.0,
            },
        );
        let ft = run_with_faults(&s, &plan).unwrap();
        assert_eq!(ft.crashed, vec![1, 3]);
        assert!(
            (ft.makespan - plain.makespan - FaultPlan::DEFAULT_TIMEOUT).abs() < 1e-12,
            "billing timers fire concurrently: one timeout, not two"
        );
        // Both are settled as if they had billed.
        assert!((ft.utility(1) - plain.utility(1)).abs() < 1e-9);
        assert!((ft.utility(3) - plain.utility(3)).abs() < 1e-9);
        assert!(ft.load_conserved(1e-9));
        assert_eq!(
            ft.arbitrations
                .iter()
                .filter(|a| a.complaint == "unresponsive" && a.substantiated)
                .count(),
            2,
            "both probes resolved in the concurrent batch"
        );
    }

    #[test]
    fn stall_then_phase4_crash_mixes_probe_outcomes() {
        let s = scenario();
        let plan = FaultPlan::stall(1, 0.3).with_event(
            3,
            FaultKind::Crash {
                phase: 4,
                progress: 0.0,
            },
        );
        let ft = run_with_faults(&s, &plan).unwrap();
        assert_eq!(ft.stalled, vec![1]);
        assert_eq!(ft.crashed, vec![3]);
        assert!(ft.load_conserved(1e-9));
        let outcomes: Vec<bool> = ft
            .arbitrations
            .iter()
            .filter(|a| a.complaint == "unresponsive")
            .map(|a| a.substantiated)
            .collect();
        assert_eq!(
            outcomes,
            vec![false, true],
            "the stalled node answers its probe; the crashed one does not"
        );
        for j in 1..=3 {
            assert!(ft.fines_paid(j) <= 1e-12);
        }
    }

    #[test]
    fn early_crash_followed_by_mid_computation_crash_composes_splices() {
        // P1 dies before distribution; P3 dies during the survivor re-run's
        // computation. Recovery-during-recovery re-enters the splice path.
        let s = scenario();
        let plan = FaultPlan::crash(1, 1, 0.0).with_event(
            3,
            FaultKind::Crash {
                phase: 3,
                progress: 0.4,
            },
        );
        let ft = run_with_faults(&s, &plan).unwrap();
        assert_eq!(ft.crashed, vec![1, 3]);
        assert_eq!(
            ft.splice_map,
            vec![Some(0), None, Some(1), Some(2)],
            "the outer splice composes with the inner identity"
        );
        assert!(ft.load_conserved(1e-9));
        assert!(
            ft.recovered_load > 0.0,
            "the inner Phase III crash re-assigned a residual"
        );
        assert!(
            ft.utility(3).abs() < 1e-9,
            "inner casualty settled pro rata"
        );
        for j in 1..=3 {
            assert!(ft.fines_paid(j) <= 1e-12);
        }
        // The nested recovery's timeout and splice made it into the outer
        // timeline.
        assert_eq!(ft.timeline.of(obs::TimelineKind::Splice).count(), 2);
        assert_eq!(ft.timeline.of(obs::TimelineKind::Timeout).count(), 2);
    }

    #[test]
    fn deviant_in_a_cascade_keeps_its_fines() {
        let s = scenario().with_deviation(2, Deviation::WrongEquivalent { factor: 0.6 });
        let plan = FaultPlan::crash(2, 3, 0.5).with_event(
            1,
            FaultKind::Crash {
                phase: 3,
                progress: 0.5,
            },
        );
        let ft = run_with_faults(&s, &plan).unwrap();
        assert!(
            ft.fines_paid(2) > 0.0,
            "the Phase II conviction survives the cascade"
        );
        assert!(ft.load_conserved(1e-9));
        assert!(ft.fines_paid(3) <= 1e-12, "honest survivor not fined");
        assert!(ft.fines_paid(1) <= 1e-12, "honest casualty not fined");
    }

    #[test]
    fn seeded_multi_fault_sweeps_hold_the_invariants() {
        for s in chains() {
            let m = s.num_agents();
            for seed in 0..20u64 {
                let plan = FaultPlan::seeded_multi(seed, m, 3);
                let ft = run_with_faults(&s, &plan).unwrap();
                assert!(ft.load_conserved(1e-9), "m={m} seed={seed} plan {plan:?}");
                for j in 1..=m {
                    assert!(
                        ft.fines_paid(j) <= 1e-12,
                        "m={m} seed={seed}: honest P{j} fined under {plan:?}"
                    );
                }
                let again = run_with_faults(&s, &plan).unwrap();
                assert_eq!(ft, again, "m={m} seed={seed}: replay diverged");
            }
        }
    }
}
