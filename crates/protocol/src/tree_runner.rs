//! The four-phase protocol generalized to tree networks — the enforcement
//! layer for the DLS-T companion mechanism (`mechanism::dls_tree`).
//!
//! Everything from the chain protocol carries over edge-wise; what changes
//! is the Phase II message: a parent with several children cannot be
//! checked with the two-term balance identity (eq. 2.7), so the message
//! carries the parent's **entire local decision** — its rate claim plus
//! every child's own-signed Phase I equivalent — and the recipient replays
//! the local star solution (canonical ascending-link order, see
//! `dlt::sequencing`) to verify both the parent's equivalent claim and its
//! own load announcement. Children's equivalents are signed by the
//! children themselves, so the parent cannot tell different stories to
//! different children without producing attributable evidence.

use crate::crypto::{Dsm, NodeId, Registry};
use crate::deviation::Deviation;
use crate::lambda::BlockMint;
use crate::ledger::{EntryKind, Ledger};
use crate::root::ARBITRATION_TOL;
use dlt::model::TreeNode;
use dlt::star;
use mechanism::dls_tree::TreeMechanism;
use mechanism::{Conduct, FineSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A tree protocol scenario. Agent indices are preorder positions over the
/// canonicalized shape's non-root nodes (1-based), matching
/// [`TreeMechanism`].
#[derive(Debug, Clone, PartialEq)]
pub struct TreeScenario {
    /// The network shape (root rate and link rates are trusted; non-root
    /// processor rates are placeholders).
    pub shape: TreeNode,
    /// True rates of the strategic nodes, preorder over the canonicalized
    /// shape.
    pub true_rates: Vec<f64>,
    /// Per-agent deviations.
    pub deviations: Vec<Deviation>,
    /// Fine schedule.
    pub fine: FineSchedule,
    /// Λ granularity.
    pub blocks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TreeScenario {
    /// A fully honest scenario.
    pub fn honest(shape: TreeNode, true_rates: Vec<f64>) -> Self {
        let canonical = dlt::tree::canonicalize(&shape);
        let agents = canonical.size() - 1;
        assert_eq!(true_rates.len(), agents, "one true rate per non-root node");
        let max_rate = true_rates.iter().cloned().fold(1.0f64, f64::max);
        Self {
            shape: canonical,
            true_rates,
            deviations: vec![Deviation::None; agents],
            fine: FineSchedule::new(3.0 * max_rate.max(1.0), 0.5),
            blocks: 10_000,
            seed: 0x7EE_5EED,
        }
    }

    /// Set one agent's deviation (1-based preorder index).
    pub fn with_deviation(mut self, j: usize, d: Deviation) -> Self {
        assert!(j >= 1 && j <= self.deviations.len());
        self.deviations[j - 1] = d;
        self
    }

    /// Set the fine schedule.
    pub fn with_fine(mut self, fine: FineSchedule) -> Self {
        self.fine = fine;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of strategic agents.
    pub fn num_agents(&self) -> usize {
        self.true_rates.len()
    }
}

/// A recorded grievance in a tree run.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeArbitration {
    /// Complaining node (flat id).
    pub claimant: NodeId,
    /// Accused node (flat id).
    pub accused: NodeId,
    /// Complaint label.
    pub complaint: String,
    /// Verdict.
    pub substantiated: bool,
}

/// Result of a tree protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeRunReport {
    /// Net utilities per agent (valuation + all ledger flows).
    pub net_utilities: Vec<f64>,
    /// Assigned loads per node (flat order, root first), from the
    /// message chain.
    pub assigned: Vec<f64>,
    /// Actually retained loads per node.
    pub retained: Vec<f64>,
    /// Load that physically arrived at each node.
    pub received: Vec<f64>,
    /// Grievance records.
    pub arbitrations: Vec<TreeArbitration>,
    /// The ledger.
    pub ledger: Ledger,
    /// Realized makespan of Phase III.
    pub makespan: f64,
    /// Phase I bids per agent (`bids[j-1]` is `P_j`'s, preorder).
    pub bids: Vec<f64>,
    /// Metered execution rate per agent (preorder) — what the node
    /// actually ran at, deviations included.
    pub actual_rates: Vec<f64>,
}

impl TreeRunReport {
    /// Net utility of agent `j` (1-based).
    pub fn utility(&self, j: usize) -> f64 {
        self.net_utilities[j - 1]
    }

    /// True if no grievance was filed.
    pub fn clean(&self) -> bool {
        self.arbitrations.is_empty()
    }

    /// Substantiated grievances.
    pub fn convictions(&self) -> impl Iterator<Item = &TreeArbitration> {
        self.arbitrations.iter().filter(|a| a.substantiated)
    }
}

/// Flat view of the canonicalized tree.
pub(crate) struct Flat {
    pub(crate) parent: Vec<Option<usize>>,
    pub(crate) z_in: Vec<f64>, // link into each node (0 for the root)
    pub(crate) children: Vec<Vec<usize>>,
}

pub(crate) fn flatten(node: &TreeNode) -> Flat {
    let n = node.size();
    let mut flat = Flat {
        parent: vec![None; n],
        z_in: vec![0.0; n],
        children: vec![Vec::new(); n],
    };
    fn walk(node: &TreeNode, parent: Option<usize>, z: f64, next: &mut usize, flat: &mut Flat) {
        let idx = *next;
        *next += 1;
        flat.parent[idx] = parent;
        flat.z_in[idx] = z;
        if let Some(p) = parent {
            flat.children[p].push(idx);
        }
        for (link, child) in &node.children {
            walk(child, Some(idx), link.z, next, flat);
        }
    }
    let mut next = 0;
    walk(node, None, 0.0, &mut next, &mut flat);
    flat
}

/// Execute the tree scenario.
pub fn run_tree(scenario: &TreeScenario) -> TreeRunReport {
    let flat = flatten(&scenario.shape);
    let n = flat.parent.len();
    let m = scenario.num_agents();
    assert_eq!(n, m + 1);
    let mut run_span = obs::span!("protocol.tree.run", "n" => n, "seed" => scenario.seed);
    let registry = Registry::new(n, scenario.seed);
    let mint = BlockMint::new(scenario.blocks, scenario.seed ^ 0x5EED_B10C);
    let mut ledger = Ledger::new();
    let mut arbitrations: Vec<TreeArbitration> = Vec::new();
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0x7A0D17);

    let root_rate = scenario.shape.processor.w;

    // ---------- Phase I: bids and equivalents (post-order) ----------
    let mut bids = vec![root_rate; n];
    let mut actual = vec![root_rate; n];
    for j in 1..n {
        let t = scenario.true_rates[j - 1];
        let (bid, act) = match scenario.deviations[j - 1] {
            Deviation::Underbid { factor } | Deviation::Overbid { factor } => (t * factor, t),
            Deviation::SlackExecution { factor } => (t, t * factor),
            _ => (t, t),
        };
        bids[j] = bid;
        actual[j] = act;
    }

    // Reported equivalents, bottom-up; lies propagate.
    let mut reported_wbar = vec![0.0; n];
    for i in (0..n).rev() {
        let honest = if flat.children[i].is_empty() {
            bids[i]
        } else {
            let star_net = dlt::model::StarNetwork::new(
                dlt::model::Processor::new(bids[i]),
                flat.children[i]
                    .iter()
                    .map(|&c| {
                        (
                            dlt::model::Link::new(flat.z_in[c]),
                            dlt::model::Processor::new(reported_wbar[c]),
                        )
                    })
                    .collect(),
            );
            star::equivalent_time(&star_net)
        };
        reported_wbar[i] = if i >= 1 {
            match scenario.deviations[i - 1] {
                Deviation::WrongEquivalent { factor } => honest * factor,
                _ => honest,
            }
        } else {
            honest
        };
    }

    obs::count!("protocol.messages", by = m as f64, "phase" => 1u8);

    // Contradictory Phase I messages: detected by the parent.
    let fine = scenario.fine.deviation_fine();
    for j in 1..n {
        if let Deviation::ContradictoryBid { second_factor } = scenario.deviations[j - 1] {
            let key = registry.keypair(j);
            let first = Dsm::new(&key, reported_wbar[j]);
            let second = Dsm::new(&key, reported_wbar[j] * second_factor);
            let authentic = first.verify(&registry, Some(j)) && second.verify(&registry, Some(j));
            let substantiated =
                authentic && (first.payload - second.payload).abs() > ARBITRATION_TOL;
            let claimant = flat.parent[j].expect("non-root");
            if substantiated {
                ledger.post(j, EntryKind::Fine, -fine, 1);
                ledger.post(claimant, EntryKind::Reward, fine, 1);
            }
            arbitrations.push(TreeArbitration {
                claimant,
                accused: j,
                complaint: "contradiction".into(),
                substantiated,
            });
        }
    }

    // ---------- Phase II: allocation messages (preorder) ----------
    // Local star fractions committed by every internal node, and the load
    // announcements D_i.
    let mut d = vec![0.0; n];
    d[0] = 1.0;
    let mut announced_child_d = vec![0.0; n]; // D_c as announced to c
    announced_child_d[0] = 1.0;
    let mut local_fraction = vec![1.0; n]; // node's own retained fraction of D_i
    for p in 0..n {
        if flat.children[p].is_empty() {
            continue;
        }
        let star_net = dlt::model::StarNetwork::new(
            dlt::model::Processor::new(bids[p]),
            flat.children[p]
                .iter()
                .map(|&c| {
                    (
                        dlt::model::Link::new(flat.z_in[c]),
                        dlt::model::Processor::new(reported_wbar[c]),
                    )
                })
                .collect(),
        );
        let sol = star::solve(&star_net);
        local_fraction[p] = sol.alloc.alpha(0);
        for (k, &c) in flat.children[p].iter().enumerate() {
            let mut d_c = d[p] * sol.alloc.alpha(k + 1);
            if p >= 1 {
                if let Deviation::WrongDistribution { factor } = scenario.deviations[p - 1] {
                    if k == 0 {
                        d_c = (d_c * factor).min(d[p]);
                    }
                }
            }
            d[c] = d_c;
            announced_child_d[c] = d_c;
        }
    }

    // Per-edge verification: every child replays its parent's local star
    // from the self-signed sibling equivalents.
    for c in 1..n {
        let p = flat.parent[c].expect("non-root");
        obs::count!("protocol.messages", "phase" => 2u8);
        obs::count!("protocol.verification.checks", "phase" => 2u8, "node" => c);
        // Verify signatures on the sibling list (each child's own Phase I
        // value, signed by that child) and on the parent's rate claim.
        let w_p_claim = Dsm::new(&registry.keypair(p), bids[p]);
        let mut ok = w_p_claim.verify(&registry, Some(p));
        let siblings: Vec<(f64, f64)> = flat.children[p]
            .iter()
            .map(|&k| {
                let dsm = Dsm::new(&registry.keypair(k), reported_wbar[k]);
                ok &= dsm.verify(&registry, Some(k));
                (flat.z_in[k], dsm.payload)
            })
            .collect();
        // Replay the local star.
        let star_net = dlt::model::StarNetwork::new(
            dlt::model::Processor::new(w_p_claim.payload),
            siblings
                .iter()
                .map(|&(z, w)| (dlt::model::Link::new(z), dlt::model::Processor::new(w)))
                .collect(),
        );
        let sol = star::solve(&star_net);
        // Check the parent's own equivalent claim (skip if p is the root,
        // whose equivalent nobody pays for).
        if p >= 1 {
            let claimed = reported_wbar[p];
            if (claimed - sol.makespan).abs() > ARBITRATION_TOL {
                ok = false;
            }
        }
        // Check our own announcement.
        let my_pos = flat.children[p]
            .iter()
            .position(|&k| k == c)
            .expect("child of parent");
        let expected_share = d[p] * sol.alloc.alpha(my_pos + 1);
        if (announced_child_d[c] - expected_share).abs() > ARBITRATION_TOL {
            ok = false;
        }
        if !ok {
            ledger.post(p, EntryKind::Fine, -fine, 2);
            ledger.post(c, EntryKind::Reward, fine, 2);
            arbitrations.push(TreeArbitration {
                claimant: c,
                accused: p,
                complaint: "bad-computation".into(),
                substantiated: true,
            });
        }
    }

    // False accusations backfire.
    for j in 1..n {
        if matches!(scenario.deviations[j - 1], Deviation::FalseAccusation) {
            let accused = flat.parent[j].expect("non-root");
            ledger.post(j, EntryKind::Fine, -fine, 2);
            ledger.post(accused, EntryKind::Reward, fine, 2);
            arbitrations.push(TreeArbitration {
                claimant: j,
                accused,
                complaint: "unfounded".into(),
                substantiated: false,
            });
        }
    }

    // ---------- Phase III: distribution, execution, overloads ----------
    let assigned: Vec<f64> = (0..n)
        .map(|i| {
            let to_children: f64 = flat.children[i].iter().map(|&c| d[c]).sum();
            d[i] - to_children
        })
        .collect();
    let mut received = vec![0.0; n];
    let mut retained = vec![0.0; n];
    received[0] = 1.0;
    // Preorder flow with shedding and victim absorption.
    for i in 0..n {
        let excess = (received[i] - d[i]).max(0.0);
        let planned_children: f64 = flat.children[i].iter().map(|&c| d[c]).sum();
        let (keep, extra_shipped) = if i >= 1 {
            match scenario.deviations[i - 1] {
                Deviation::ShedLoad { keep_fraction } if !flat.children[i].is_empty() => {
                    let keep = assigned[i] * keep_fraction;
                    (keep, assigned[i] - keep)
                }
                _ => (assigned[i] + excess, 0.0),
            }
        } else {
            (assigned[i] + excess, 0.0)
        };
        let keep = keep.min(received[i]).max(0.0);
        retained[i] = keep;
        for &c in &flat.children[i] {
            let share = if planned_children > 1e-300 {
                d[c] / planned_children
            } else {
                0.0
            };
            received[c] = d[c] + extra_shipped * share;
        }
    }
    // Overload grievances.
    let half_block = 0.5 * mint.block_size();
    for c in 1..n {
        obs::count!("protocol.verification.checks", "phase" => 3u8, "node" => c);
        if received[c] > d[c] + half_block {
            let p = flat.parent[c].expect("non-root");
            let recv_blocks = mint.to_blocks(received[c]).min(scenario.blocks);
            let tag = mint.range(scenario.blocks - recv_blocks, recv_blocks);
            let proven = mint.verify(&tag).unwrap_or(0.0);
            let substantiated = proven > d[c] + half_block;
            if substantiated {
                let extra = (proven - d[c]) * actual[c];
                ledger.post(p, EntryKind::Fine, -fine, 3);
                ledger.post(p, EntryKind::ExtraWorkPenalty, -extra, 3);
                ledger.post(c, EntryKind::Reward, fine, 3);
            }
            arbitrations.push(TreeArbitration {
                claimant: c,
                accused: p,
                complaint: "overload".into(),
                substantiated,
            });
        }
    }
    // Execution timing: one-port sequential sends in canonical order.
    let mut recv_end = vec![0.0f64; n];
    let mut makespan = 0.0f64;
    for i in 0..n {
        let mut t = recv_end[i];
        for &c in &flat.children[i] {
            let ship = received[c];
            t += ship * flat.z_in[c];
            recv_end[c] = t;
        }
        let finish = recv_end[i] + retained[i] * actual[i];
        makespan = makespan.max(finish);
    }

    // ---------- Phase IV: settlement, bills and audits ----------
    let mech = TreeMechanism::new(scenario.shape.clone());
    let conducts: Vec<Conduct> = (1..n)
        .map(|j| Conduct {
            bid: bids[j],
            actual_rate: actual[j],
            actual_load: Some(retained[j]),
        })
        .collect();
    let outcome = mech.settle(&conducts);
    let mut valuations = vec![0.0; n];
    for j in 1..n {
        let honest_bill = outcome.agents[j - 1].payment;
        valuations[j] = -retained[j] * actual[j];
        let billed = match scenario.deviations[j - 1] {
            Deviation::Overcharge { amount } => honest_bill + amount,
            _ => honest_bill,
        };
        obs::count!("protocol.messages", "phase" => 4u8);
        let challenged = rng.gen::<f64>() < scenario.fine.audit_probability;
        if challenged {
            obs::count!("protocol.audits", "node" => j);
        }
        if challenged && (billed - honest_bill).abs() > ARBITRATION_TOL {
            obs::hist!(
                "mechanism.fines.levied",
                scenario.fine.overcharge_fine(),
                "node" => j,
                "phase" => 4u8
            );
            ledger.post(j, EntryKind::Fine, -scenario.fine.overcharge_fine(), 4);
            ledger.post(j, EntryKind::Payment, honest_bill, 4);
            arbitrations.push(TreeArbitration {
                claimant: 0,
                accused: j,
                complaint: "overcharge".into(),
                substantiated: true,
            });
        } else {
            ledger.post(j, EntryKind::Payment, billed, 4);
        }
    }

    let net_utilities: Vec<f64> = (1..n).map(|j| valuations[j] + ledger.net(j)).collect();
    obs::count!("protocol.complaints.filed", by = arbitrations.len() as f64);
    obs::count!(
        "protocol.complaints.substantiated",
        by = arbitrations.iter().filter(|a| a.substantiated).count() as f64
    );
    run_span.end_at(makespan);
    TreeRunReport {
        net_utilities,
        assigned,
        retained,
        received,
        arbitrations,
        ledger,
        makespan,
        bids: bids[1..].to_vec(),
        actual_rates: actual[1..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt::model::TreeNode;
    use mechanism::Agent;

    fn shape() -> TreeNode {
        TreeNode::internal(
            1.0,
            vec![
                (
                    0.15,
                    TreeNode::internal(
                        1.0,
                        vec![(0.05, TreeNode::leaf(1.0)), (0.25, TreeNode::leaf(1.0))],
                    ),
                ),
                (
                    0.30,
                    TreeNode::internal(
                        1.0,
                        vec![(0.10, TreeNode::leaf(1.0)), (0.20, TreeNode::leaf(1.0))],
                    ),
                ),
            ],
        )
    }

    fn rates() -> Vec<f64> {
        vec![1.4, 2.2, 0.7, 1.9, 1.1, 3.0]
    }

    fn scenario() -> TreeScenario {
        TreeScenario::honest(shape(), rates())
    }

    #[test]
    fn honest_run_is_clean() {
        let report = run_tree(&scenario());
        assert!(report.clean(), "{:?}", report.arbitrations);
        assert_eq!(report.ledger.total_fines(), 0.0);
    }

    #[test]
    fn honest_run_matches_tree_mechanism() {
        let report = run_tree(&scenario());
        let mech = TreeMechanism::new(shape());
        let agents: Vec<Agent> = rates().into_iter().map(Agent::new).collect();
        let outcome = mech.settle_truthful(&agents);
        for j in 1..=6 {
            assert!(
                (report.utility(j) - outcome.utility(j)).abs() < 1e-9,
                "P{j}: protocol {} vs mechanism {}",
                report.utility(j),
                outcome.utility(j)
            );
        }
    }

    #[test]
    fn honest_loads_partition_the_unit() {
        let report = run_tree(&scenario());
        let total: f64 = report.retained.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let assigned_total: f64 = report.assigned.iter().sum();
        assert!((assigned_total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn honest_makespan_matches_solver() {
        // With truthful full-speed agents the realized timing equals the
        // tree solver's equivalent makespan.
        let report = run_tree(&scenario());
        let mech = TreeMechanism::new(shape());
        let agents: Vec<Agent> = rates().into_iter().map(Agent::new).collect();
        let outcome = mech.settle_truthful(&agents);
        assert!(
            (report.makespan - outcome.makespan).abs() < 1e-9,
            "run {} vs solver {}",
            report.makespan,
            outcome.makespan
        );
    }

    #[test]
    fn wrong_equivalent_at_internal_node_is_caught() {
        // Internal agents have children whose messages expose the lie.
        // Agent 1 is the first internal node (child of the root).
        let s = scenario().with_deviation(1, Deviation::WrongEquivalent { factor: 0.6 });
        let report = run_tree(&s);
        assert!(
            report.convictions().any(|a| a.accused == 1),
            "{:?}",
            report.arbitrations
        );
    }

    #[test]
    fn wrong_distribution_is_caught() {
        let s = scenario().with_deviation(1, Deviation::WrongDistribution { factor: 1.4 });
        let report = run_tree(&s);
        assert!(
            report.convictions().any(|a| a.accused == 1),
            "{:?}",
            report.arbitrations
        );
    }

    #[test]
    fn shedding_internal_node_is_caught_with_extra_penalty() {
        let s = scenario()
            .with_fine(FineSchedule::new(50.0, 1.0))
            .with_deviation(1, Deviation::ShedLoad { keep_fraction: 0.3 });
        let report = run_tree(&s);
        let convicted: Vec<_> = report.convictions().collect();
        assert!(convicted
            .iter()
            .any(|a| a.accused == 1 && a.complaint == "overload"));
        assert!(report.ledger.net_of(1, EntryKind::ExtraWorkPenalty) < 0.0);
    }

    #[test]
    fn contradictory_bid_is_caught() {
        let s = scenario().with_deviation(3, Deviation::ContradictoryBid { second_factor: 0.7 });
        let report = run_tree(&s);
        assert!(report.convictions().any(|a| a.accused == 3));
    }

    #[test]
    fn overcharge_fined_under_certain_audit() {
        let s = scenario()
            .with_fine(FineSchedule::new(50.0, 1.0))
            .with_deviation(4, Deviation::Overcharge { amount: 0.4 });
        let report = run_tree(&s);
        assert!(report
            .convictions()
            .any(|a| a.accused == 4 && a.complaint == "overcharge"));
    }

    #[test]
    fn false_accusation_backfires() {
        let s = scenario().with_deviation(2, Deviation::FalseAccusation);
        let report = run_tree(&s);
        let rec = report
            .arbitrations
            .iter()
            .find(|a| a.claimant == 2)
            .expect("filed");
        assert!(!rec.substantiated);
        assert!(report.ledger.net_of(2, EntryKind::Fine) < 0.0);
    }

    #[test]
    fn deviations_never_profit() {
        let honest = run_tree(&scenario().with_fine(FineSchedule::new(50.0, 1.0)));
        for d in Deviation::catalog() {
            // Target an internal node so every deviation is applicable.
            let target = 1;
            let s = scenario()
                .with_fine(FineSchedule::new(50.0, 1.0))
                .with_deviation(target, d);
            let report = run_tree(&s);
            assert!(
                report.utility(target) <= honest.utility(target) + 1e-9,
                "{} profited: {} vs {}",
                d.label(),
                report.utility(target),
                honest.utility(target)
            );
        }
    }

    #[test]
    fn honest_nodes_never_fined_in_tree_runs() {
        for d in Deviation::catalog() {
            let s = scenario()
                .with_fine(FineSchedule::new(50.0, 1.0))
                .with_deviation(2, d);
            let report = run_tree(&s);
            for j in (1..=6).filter(|&j| j != 2) {
                assert!(
                    report.ledger.net_of(j, EntryKind::Fine) >= 0.0,
                    "honest P{j} fined under {}",
                    d.label()
                );
            }
        }
    }

    #[test]
    fn chain_shaped_tree_matches_chain_protocol() {
        // A path tree run through the tree protocol vs the chain runner.
        let chain_shape = TreeNode::internal(
            1.0,
            vec![(
                0.2,
                TreeNode::internal(1.0, vec![(0.1, TreeNode::leaf(1.0))]),
            )],
        );
        let tree_scenario = TreeScenario::honest(chain_shape, vec![2.0, 0.5]);
        let tree_report = run_tree(&tree_scenario);
        let chain_scenario = crate::runner::Scenario::honest(1.0, vec![2.0, 0.5], vec![0.2, 0.1]);
        let chain_report = crate::runner::run(&chain_scenario);
        for j in 1..=2 {
            assert!(
                (tree_report.utility(j) - chain_report.utility(j)).abs() < 1e-9,
                "P{j}: tree {} vs chain {}",
                tree_report.utility(j),
                chain_report.utility(j)
            );
        }
        assert!((tree_report.makespan - chain_report.makespan).abs() < 1e-9);
    }
}
