//! End-to-end execution of the four-phase DLS-LBL protocol (§4) with
//! deviation injection.
//!
//! One [`Scenario`] describes the chain (true rates, link rates), each
//! strategic node's [`Deviation`], and the fine/audit configuration;
//! [`run`] plays out Phases I–IV with real signed messages, Λ-tagged load
//! blocks, grievance arbitration, probabilistic audits and a final ledger,
//! returning a [`RunReport`] with every node's net utility.
//!
//! ### Continuation semantics
//! The paper terminates the protocol on detected deviations. For
//! experimental comparability we instead let lies *propagate* (the
//! distorted values drive allocation and execution exactly as the deviant
//! sent them), apply the fines the arbitration produces, and settle
//! payments on what actually happened. The deviant's net utility therefore
//! reflects both the (possibly advantageous) distortion and the fine — and
//! because `F` exceeds any attainable profit, the net is always worse than
//! compliance, which is the claim under test.

use crate::crypto::{Dsm, NodeId, Registry};
use crate::deviation::Deviation;
use crate::lambda::BlockMint;
use crate::ledger::{EntryKind, Ledger};
use crate::messages::{Bill, Complaint, GMessage, PaymentProof};
use crate::root::{arbitrate, ArbitrationContext, ArbitrationRecord, ARBITRATION_TOL};
use crate::transcript::{Entry, Transcript};
use dlt::linear;
use dlt::model::{LinearNetwork, LocalAllocation};
use mechanism::payment::{self, PaymentInputs};
use mechanism::FineSchedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim::NodeBehavior;

/// A complete protocol scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The obedient root's unit processing time `w_0`.
    pub root_rate: f64,
    /// True rates `t_1 … t_m` of the strategic processors.
    pub true_rates: Vec<f64>,
    /// Link rates `z_1 … z_m` (public, obedient links).
    pub link_rates: Vec<f64>,
    /// Per-strategic-node deviations (`deviations[j-1]` is `P_j`'s).
    pub deviations: Vec<Deviation>,
    /// Fine schedule (fine `F`, audit probability `q`).
    pub fine: FineSchedule,
    /// Λ granularity: number of blocks the unit load is divided into.
    pub blocks: usize,
    /// RNG seed (keys, block identifiers, audit draws).
    pub seed: u64,
    /// Solution bonus `S` of eq. 4.13 (0 disables the extension).
    pub solution_bonus: f64,
    /// Whether the embedded problem's solution was found this round.
    pub solution_found: bool,
}

/// Why a [`Scenario`] was rejected before the protocol could start.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// `true_rates` is empty: there is no strategic processor to schedule.
    NoAgents,
    /// `true_rates`, `link_rates` and `deviations` must describe the same
    /// chain: `m` processors need `m` links and `m` deviation slots.
    LengthMismatch {
        /// `true_rates.len()`.
        true_rates: usize,
        /// `link_rates.len()`.
        link_rates: usize,
        /// `deviations.len()`.
        deviations: usize,
    },
    /// A rate that must be finite and strictly positive is not.
    BadRate {
        /// Which field (`"root_rate"`, `"true_rates"`, `"link_rates"`).
        field: &'static str,
        /// Index within the field (0 for scalars).
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The audit probability `q` must lie in `[0, 1]` and be finite.
    BadAuditProbability(f64),
    /// The fine `F` must be finite and non-negative.
    BadFine(f64),
    /// The solution bonus `S` must be finite and non-negative.
    BadSolutionBonus(f64),
    /// Λ must divide the unit load into at least one block.
    ZeroBlocks,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::NoAgents => write!(f, "scenario has no strategic processors"),
            ScenarioError::LengthMismatch {
                true_rates,
                link_rates,
                deviations,
            } => write!(
                f,
                "inconsistent chain description: {true_rates} true rates, \
                 {link_rates} link rates (need {true_rates}), {deviations} deviations \
                 (need {true_rates})"
            ),
            ScenarioError::BadRate {
                field,
                index,
                value,
            } => {
                write!(
                    f,
                    "{field}[{index}] = {value} is not a finite positive rate"
                )
            }
            ScenarioError::BadAuditProbability(q) => {
                write!(f, "audit probability {q} is not in [0, 1]")
            }
            ScenarioError::BadFine(v) => write!(f, "fine {v} is not finite and non-negative"),
            ScenarioError::BadSolutionBonus(v) => {
                write!(f, "solution bonus {v} is not finite and non-negative")
            }
            ScenarioError::ZeroBlocks => write!(f, "Λ granularity must be at least one block"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn check_positive(field: &'static str, index: usize, value: f64) -> Result<(), ScenarioError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(ScenarioError::BadRate {
            field,
            index,
            value,
        })
    }
}

impl Scenario {
    /// A fully honest scenario over the given chain.
    ///
    /// Panics on a malformed chain description; use [`Scenario::validate`]
    /// / [`try_run`] for a fallible path.
    pub fn honest(root_rate: f64, true_rates: Vec<f64>, link_rates: Vec<f64>) -> Self {
        if true_rates.len() != link_rates.len() {
            panic!(
                "{}",
                ScenarioError::LengthMismatch {
                    true_rates: true_rates.len(),
                    link_rates: link_rates.len(),
                    deviations: true_rates.len(),
                }
            );
        }
        let m = true_rates.len();
        let mut w = vec![root_rate];
        w.extend_from_slice(&true_rates);
        let net = LinearNetwork::from_rates(&w, &link_rates);
        Self {
            root_rate,
            true_rates,
            link_rates,
            deviations: vec![Deviation::None; m],
            fine: FineSchedule::sufficient_for(&net, 0.5),
            blocks: 10_000,
            seed: 0xD15_CB01,
            solution_bonus: 0.0,
            solution_found: false,
        }
    }

    /// Set one node's deviation (builder style). `j` is 1-based (`P_j`).
    pub fn with_deviation(mut self, j: usize, d: Deviation) -> Self {
        assert!(j >= 1 && j <= self.deviations.len());
        self.deviations[j - 1] = d;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the fine schedule.
    pub fn with_fine(mut self, fine: FineSchedule) -> Self {
        self.fine = fine;
        self
    }

    /// Enable the solution-bonus extension.
    pub fn with_solution_bonus(mut self, s: f64, found: bool) -> Self {
        self.solution_bonus = s;
        self.solution_found = found;
        self
    }

    /// Number of strategic processors `m`.
    pub fn num_agents(&self) -> usize {
        self.true_rates.len()
    }

    /// Check every numeric input the protocol relies on. [`try_run`] calls
    /// this before touching any state; a scenario that passes cannot make
    /// the run itself divide by zero or propagate NaNs from its inputs.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let m = self.true_rates.len();
        if m == 0 {
            return Err(ScenarioError::NoAgents);
        }
        if self.link_rates.len() != m || self.deviations.len() != m {
            return Err(ScenarioError::LengthMismatch {
                true_rates: m,
                link_rates: self.link_rates.len(),
                deviations: self.deviations.len(),
            });
        }
        check_positive("root_rate", 0, self.root_rate)?;
        for (i, &t) in self.true_rates.iter().enumerate() {
            check_positive("true_rates", i, t)?;
        }
        for (i, &z) in self.link_rates.iter().enumerate() {
            check_positive("link_rates", i, z)?;
        }
        let q = self.fine.audit_probability;
        if !(q.is_finite() && (0.0..=1.0).contains(&q)) {
            return Err(ScenarioError::BadAuditProbability(q));
        }
        if !(self.fine.base.is_finite() && self.fine.base >= 0.0) {
            return Err(ScenarioError::BadFine(self.fine.base));
        }
        if !(self.solution_bonus.is_finite() && self.solution_bonus >= 0.0) {
            return Err(ScenarioError::BadSolutionBonus(self.solution_bonus));
        }
        if self.blocks == 0 {
            return Err(ScenarioError::ZeroBlocks);
        }
        Ok(())
    }
}

/// Everything a protocol run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Declared rates `w_1 … w_m`.
    pub bids: Vec<f64>,
    /// Metered actual rates `w̃_1 … w̃_m`.
    pub actual_rates: Vec<f64>,
    /// Load prescribed to every node (root first) by the Phase II messages.
    pub assigned: Vec<f64>,
    /// Load actually retained and computed by every node (root first).
    pub retained: Vec<f64>,
    /// Load that physically arrived at every node (root first).
    pub received: Vec<f64>,
    /// All arbitration records, in occurrence order.
    pub arbitrations: Vec<ArbitrationRecord>,
    /// Which nodes were audited in Phase IV.
    pub audited: Vec<NodeId>,
    /// The full ledger.
    pub ledger: Ledger,
    /// Net utility of every strategic processor (`net_utilities[j-1]` is
    /// `P_j`'s): valuation + all ledger flows.
    pub net_utilities: Vec<f64>,
    /// The realized makespan of Phase III.
    pub makespan: f64,
    /// The recorded Gantt chart of Phase III.
    pub gantt: sim::GanttChart,
    /// The full message transcript (replayable via
    /// [`crate::transcript::replay`]).
    pub transcript: Transcript,
    /// Number of discrete events the execution simulation processed.
    pub events: u64,
    /// Deterministic per-run phase timeline (virtual time only; renderable
    /// via `sim::phase_timeline_to_gantt`).
    pub timeline: obs::PhaseTimeline,
}

impl RunReport {
    /// Net utility of strategic processor `P_j`.
    pub fn utility(&self, j: usize) -> f64 {
        self.net_utilities[j - 1]
    }

    /// True if no complaint was filed.
    pub fn clean(&self) -> bool {
        self.arbitrations.is_empty()
    }

    /// Arbitrations that substantiated a deviation.
    pub fn convictions(&self) -> impl Iterator<Item = &ArbitrationRecord> {
        self.arbitrations.iter().filter(|a| a.substantiated)
    }
}

/// Execute the scenario, panicking on malformed input.
///
/// Thin wrapper over [`try_run`] for tests and experiment drivers whose
/// scenarios are built programmatically and known-valid.
pub fn run(scenario: &Scenario) -> RunReport {
    try_run(scenario).unwrap_or_else(|e| panic!("invalid scenario: {e}"))
}

/// Execute the scenario after validating it, returning a typed error
/// instead of panicking on bad input (empty chains, mismatched vector
/// lengths, non-finite/zero/negative rates, out-of-range `q`, …).
pub fn try_run(scenario: &Scenario) -> Result<RunReport, ScenarioError> {
    scenario.validate()?;
    let m = scenario.num_agents();
    let n = m + 1;
    let mut run_span = obs::span!("protocol.run", "m" => m, "seed" => scenario.seed);
    let registry = Registry::new(n, scenario.seed);
    let mint = BlockMint::new(scenario.blocks, scenario.seed ^ 0x5EED_B10C);
    let mut ledger = Ledger::new();
    let mut arbitrations = Vec::new();
    let mut transcript = Transcript::new();
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0xA0D17);

    // ---------- Phase I: bids and equivalent-rate propagation ----------
    // Declared rates (index 0 is the root).
    let mut bids = vec![scenario.root_rate];
    // Metered actual rates.
    let mut actual = vec![scenario.root_rate];
    for (idx, &t) in scenario.true_rates.iter().enumerate() {
        let (bid, act) = match scenario.deviations[idx] {
            Deviation::Underbid { factor } => (t * factor, t), // cannot beat hardware
            Deviation::Overbid { factor } => (t * factor, t),  // runs at capacity
            Deviation::SlackExecution { factor } => (t, t * factor),
            _ => (t, t),
        };
        bids.push(bid);
        actual.push(act);
    }
    let z = &scenario.link_rates;

    // Equivalent rates reported up the chain; lies propagate.
    let mut reported_wbar = vec![0.0; n];
    {
        let honest_terminal = bids[m];
        reported_wbar[m] = match scenario.deviations[m - 1] {
            Deviation::WrongEquivalent { factor } => honest_terminal * factor,
            _ => honest_terminal,
        };
        // Contradictory terminal bid handled below with the others.
        for i in (0..m).rev() {
            let (_, honest) = linear::reduce_pair(bids[i], z[i], reported_wbar[i + 1]);
            reported_wbar[i] = if i >= 1 {
                match scenario.deviations[i - 1] {
                    Deviation::WrongEquivalent { factor } => honest * factor,
                    _ => honest,
                }
            } else {
                honest
            };
        }
    }
    // Record every node's upward Phase I message.
    for j in 1..=m {
        let key = registry.keypair(j);
        transcript.record(Entry::PhaseIBid {
            from: j,
            to: j - 1,
            message: Dsm::new(&key, reported_wbar[j]),
        });
    }
    obs::count!("protocol.messages", by = m as f64, "phase" => 1u8);
    // Contradictory Phase I messages: the sender signs two different
    // values; the predecessor detects and reports.
    for j in 1..=m {
        if let Deviation::ContradictoryBid { second_factor } = scenario.deviations[j - 1] {
            let key = registry.keypair(j);
            let first = Dsm::new(&key, reported_wbar[j]);
            let second = Dsm::new(&key, reported_wbar[j] * second_factor);
            transcript.record(Entry::PhaseIBid {
                from: j,
                to: j - 1,
                message: second,
            });
            obs::count!("protocol.messages", "phase" => 1u8);
            let complaint = Complaint::Contradiction {
                accused: j,
                first,
                second,
            };
            let ctx = ArbitrationContext {
                registry: &registry,
                mint: &mint,
                fine: scenario.fine,
                victim_rate: 0.0,
                phase: 1,
            };
            arbitrations.push(arbitrate(&complaint, j - 1, &ctx, &mut ledger));
            // The run continues with the first message's value.
        }
    }

    // ---------- Phase II: allocation messages down the chain ----------
    // Local fractions each node *commits to* (from the reported tail) and
    // the load announcements D_i, with WrongDistribution injection.
    let mut alpha_hat = vec![0.0; n];
    alpha_hat[m] = 1.0;
    for i in 0..m {
        let tail = reported_wbar[i + 1] + z[i];
        alpha_hat[i] = tail / (bids[i] + tail);
    }
    let mut d = vec![0.0; n + 1];
    d[0] = 1.0;
    for i in 0..m {
        let honest_next = d[i] * (1.0 - alpha_hat[i]);
        d[i + 1] = if i >= 1 {
            match scenario.deviations[i - 1] {
                Deviation::WrongDistribution { factor } => (honest_next * factor).min(d[i]),
                _ => honest_next,
            }
        } else {
            honest_next
        };
    }
    d[n] = 0.0;

    // Build and check the G messages with real signatures.
    let root_key = registry.keypair(0);
    let mut carry_d = Dsm::new(&root_key, d[0]);
    let mut carry_wbar = Dsm::new(&root_key, reported_wbar[0]);
    let mut g_messages: Vec<GMessage> = Vec::with_capacity(m);
    for i in 1..=m {
        let sender_key = registry.keypair(i - 1);
        let g = GMessage {
            d_prev: carry_d,
            d_cur: Dsm::new(&sender_key, d[i]),
            wbar_prev: carry_wbar,
            w_prev: Dsm::new(&sender_key, bids[i - 1]),
            wbar_cur: Dsm::new(&sender_key, reported_wbar[i]),
        };
        obs::count!("protocol.verification.checks", "phase" => 2u8, "node" => i);
        if let Err(_reason) = g.check(&registry, i, reported_wbar[i], z[i - 1], ARBITRATION_TOL) {
            // The recipient escalates with the message as evidence.
            let complaint = Complaint::BadComputation {
                accused: i - 1,
                evidence: g,
                recipient_bid: reported_wbar[i],
                link_rate: z[i - 1],
            };
            let ctx = ArbitrationContext {
                registry: &registry,
                mint: &mint,
                fine: scenario.fine,
                victim_rate: 0.0,
                phase: 2,
            };
            arbitrations.push(arbitrate(&complaint, i, &ctx, &mut ledger));
        }
        transcript.record(Entry::PhaseIIAllocation {
            from: i - 1,
            to: i,
            g,
            link_rate: z[i - 1],
        });
        obs::count!("protocol.messages", "phase" => 2u8);
        carry_d = g.d_cur;
        carry_wbar = g.wbar_cur;
        g_messages.push(g);
    }

    // False accusations are filed here (the accuser hopes for the reward).
    for j in 1..=m {
        if matches!(scenario.deviations[j - 1], Deviation::FalseAccusation) {
            let complaint = Complaint::Unfounded { accused: j - 1 };
            let ctx = ArbitrationContext {
                registry: &registry,
                mint: &mint,
                fine: scenario.fine,
                victim_rate: 0.0,
                phase: 2,
            };
            arbitrations.push(arbitrate(&complaint, j, &ctx, &mut ledger));
        }
    }

    // ---------- Phase III: physical distribution and computation ----------
    // Assigned (prescribed) absolute loads from the message chain.
    let assigned: Vec<f64> = (0..n).map(|i| d[i] - d[i + 1]).collect();
    // Physical flows: shedders keep less; their victims absorb the excess
    // (the paper has the overloaded successor compute the extra units
    // itself and restore the planned flow downstream).
    let mut received = vec![0.0; n];
    let mut retained = vec![0.0; n];
    let mut flow = 1.0;
    for i in 0..n {
        received[i] = flow;
        let excess = (flow - d[i]).max(0.0);
        let keep = if i == m {
            flow
        } else if i >= 1 {
            match scenario.deviations[i - 1] {
                Deviation::ShedLoad { keep_fraction } => assigned[i] * keep_fraction,
                _ => assigned[i] + excess,
            }
        } else {
            assigned[i] + excess
        };
        let keep = keep.min(flow).max(0.0);
        retained[i] = keep;
        flow -= keep;
    }

    // Execute on the event simulator for the realized timeline.
    let sim_net = {
        let w: Vec<f64> = actual.clone();
        LinearNetwork::from_rates(&w, z)
    };
    let plan = LocalAllocation::new(
        (0..n)
            .map(|i| {
                if received[i] > 1e-15 {
                    (retained[i] / received[i]).clamp(0.0, 1.0)
                } else {
                    1.0
                }
            })
            .collect(),
    );
    let behaviors: Vec<NodeBehavior> = (0..n).map(|i| NodeBehavior::compliant(actual[i])).collect();
    let exec = sim::simulate_chain(&sim_net, &plan, &behaviors);

    // Record deliveries and raise overload grievances.
    let half_block = 0.5 * mint.block_size();
    for i in 1..=m {
        let recv_blocks_i = mint.to_blocks(received[i]).min(scenario.blocks);
        transcript.record(Entry::PhaseIIIDelivery {
            from: i - 1,
            to: i,
            amount: received[i],
            tag: mint.range(scenario.blocks - recv_blocks_i, recv_blocks_i),
        });
        obs::count!("protocol.messages", "phase" => 3u8);
        obs::count!("protocol.verification.checks", "phase" => 3u8, "node" => i);
        if received[i] > d[i] + half_block {
            let recv_blocks = mint.to_blocks(received[i]).min(scenario.blocks);
            let tag = mint.range(scenario.blocks - recv_blocks, recv_blocks);
            let complaint = Complaint::Overload {
                accused: i - 1,
                expected: d[i],
                tag,
            };
            let ctx = ArbitrationContext {
                registry: &registry,
                mint: &mint,
                fine: scenario.fine,
                victim_rate: actual[i],
                phase: 3,
            };
            arbitrations.push(arbitrate(&complaint, i, &ctx, &mut ledger));
        }
    }

    // ---------- Phase IV: self-billing and audits ----------
    let bid_net = LinearNetwork::from_rates(&bids, z);
    // One suffix sweep powers every node's settlement (and any audit
    // recomputation) in O(m) total — bit-identical to the per-node
    // `payment::settle` loop it replaced.
    let suffixes = dlt::batch::solve_all_suffixes(&bid_net);
    let s = if scenario.solution_found {
        scenario.solution_bonus
    } else {
        0.0
    };
    let mut audited = Vec::new();
    let mut valuations = vec![0.0; n];
    for j in 1..=m {
        let inputs = PaymentInputs {
            assigned_load: assigned[j],
            actual_load: retained[j],
            actual_rate: actual[j],
        };
        let breakdown = payment::settle_with(&suffixes, &bid_net, j, inputs, s);
        valuations[j] = breakdown.valuation;
        let honest_bill = breakdown.payment;
        let billed = match scenario.deviations[j - 1] {
            Deviation::Overcharge { amount } => honest_bill + amount,
            _ => honest_bill,
        };
        let bill = Bill {
            node: j,
            amount: billed,
            proof: PaymentProof {
                g: g_messages[j - 1],
                meter: Dsm::new(&root_key, actual[j]),
                tag: {
                    let recv_blocks = mint.to_blocks(received[j]).min(scenario.blocks);
                    mint.range(scenario.blocks - recv_blocks, recv_blocks)
                },
                actual_load: retained[j],
            },
        };
        transcript.record(Entry::PhaseIVBill {
            bill: bill.clone(),
            recomputed: honest_bill,
        });
        obs::count!("protocol.messages", "phase" => 4u8);
        let challenged = rng.gen::<f64>() < scenario.fine.audit_probability;
        if challenged {
            audited.push(j);
            obs::count!("protocol.audits", "node" => j);
            obs::count!("protocol.verification.checks", "phase" => 4u8, "node" => j);
            // The root recomputes the payment from the proof.
            let recomputed = payment::settle_with(
                &suffixes,
                &bid_net,
                j,
                PaymentInputs {
                    assigned_load: assigned[j],
                    actual_load: bill.proof.actual_load,
                    actual_rate: bill.proof.meter.payload,
                },
                s,
            )
            .payment;
            if (bill.amount - recomputed).abs() > ARBITRATION_TOL {
                obs::hist!(
                    "mechanism.fines.levied",
                    scenario.fine.overcharge_fine(),
                    "node" => j,
                    "phase" => 4u8
                );
                ledger.post(j, EntryKind::Fine, -scenario.fine.overcharge_fine(), 4);
                ledger.post(j, EntryKind::Payment, recomputed, 4);
                arbitrations.push(ArbitrationRecord {
                    claimant: 0, // the root's audit
                    accused: j,
                    complaint: "overcharge".to_string(),
                    substantiated: true,
                    fine: scenario.fine.overcharge_fine(),
                    extra_penalty: 0.0,
                });
            } else {
                ledger.post(j, EntryKind::Payment, bill.amount, 4);
            }
        } else {
            ledger.post(j, EntryKind::Payment, bill.amount, 4);
        }
    }

    let net_utilities: Vec<f64> = (1..=m).map(|j| valuations[j] + ledger.net(j)).collect();

    // Deterministic phase timeline. Message phases are instantaneous in the
    // virtual-time model (markers at 0 and at the makespan); Phase III spans
    // come from the recorded Gantt compute segments.
    let mut timeline = obs::PhaseTimeline::new(n);
    for i in 0..n {
        timeline.mark(i, 1, obs::TimelineKind::Work, 0.0);
        timeline.mark(i, 2, obs::TimelineKind::Work, 0.0);
    }
    for (i, lane) in exec.gantt.lanes.iter().enumerate() {
        for seg in lane.of(sim::Activity::Compute) {
            timeline.push(
                i,
                3,
                obs::TimelineKind::Work,
                (seg.start, seg.end),
                seg.load,
            );
        }
    }
    for i in 0..n {
        timeline.mark(i, 4, obs::TimelineKind::Work, exec.makespan);
    }
    timeline.makespan = exec.makespan;
    run_span.end_at(exec.makespan);
    obs::hist!("protocol.makespan", exec.makespan, "m" => m);

    Ok(RunReport {
        bids: bids[1..].to_vec(),
        actual_rates: actual[1..].to_vec(),
        assigned,
        retained,
        received,
        arbitrations,
        audited,
        ledger,
        net_utilities,
        makespan: exec.makespan,
        gantt: exec.gantt,
        events: exec.events,
        transcript,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::honest(1.0, vec![2.0, 0.5, 4.0], vec![0.2, 0.1, 0.7])
    }

    #[test]
    fn honest_run_is_clean() {
        let report = run(&scenario());
        assert!(
            report.clean(),
            "complaints in an honest run: {:?}",
            report.arbitrations
        );
        assert!(report.audited.len() <= 3);
        assert!(report.ledger.total_fines() == 0.0);
    }

    #[test]
    fn honest_run_matches_mechanism_settlement() {
        let report = run(&scenario());
        let mech = mechanism::DlsLbl::new(1.0, vec![0.2, 0.1, 0.7]);
        let agents: Vec<mechanism::Agent> = [2.0, 0.5, 4.0]
            .iter()
            .map(|&t| mechanism::Agent::new(t))
            .collect();
        let outcome = mech.settle_truthful(&agents);
        for j in 1..=3 {
            assert!(
                (report.utility(j) - outcome.utility(j)).abs() < 1e-9,
                "P{j}: protocol {} vs mechanism {}",
                report.utility(j),
                outcome.utility(j)
            );
        }
    }

    #[test]
    fn honest_run_allocation_matches_algorithm_1() {
        let report = run(&scenario());
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]);
        let sol = linear::solve(&net);
        for i in 0..4 {
            assert!(
                (report.assigned[i] - sol.alloc.alpha(i)).abs() < 1e-12,
                "α_{i}"
            );
            assert!((report.retained[i] - sol.alloc.alpha(i)).abs() < 1e-12);
        }
        assert!((report.makespan - sol.makespan()).abs() < 1e-12);
    }

    #[test]
    fn honest_utilities_nonnegative() {
        let report = run(&scenario());
        for j in 1..=3 {
            assert!(report.utility(j) >= -1e-12, "P{j} lost money while honest");
        }
    }

    #[test]
    fn wrong_equivalent_is_caught_and_fined() {
        let s = scenario().with_deviation(2, Deviation::WrongEquivalent { factor: 0.6 });
        let report = run(&s);
        let convictions: Vec<_> = report.convictions().collect();
        assert_eq!(convictions.len(), 1);
        assert_eq!(convictions[0].accused, 2);
        assert_eq!(convictions[0].complaint, "bad-computation");
        // Reporter (successor P3) is rewarded.
        assert!(report.ledger.net_of(3, crate::ledger::EntryKind::Reward) > 0.0);
    }

    #[test]
    fn wrong_distribution_is_caught() {
        let s = scenario().with_deviation(1, Deviation::WrongDistribution { factor: 1.3 });
        let report = run(&s);
        let convicted: Vec<_> = report.convictions().map(|a| a.accused).collect();
        assert!(
            convicted.contains(&1),
            "P1 should be convicted, got {convicted:?}"
        );
    }

    #[test]
    fn contradictory_bid_is_caught() {
        let s = scenario().with_deviation(3, Deviation::ContradictoryBid { second_factor: 0.7 });
        let report = run(&s);
        let convictions: Vec<_> = report.convictions().collect();
        assert_eq!(convictions.len(), 1);
        assert_eq!(convictions[0].accused, 3);
        assert_eq!(convictions[0].complaint, "contradiction");
    }

    #[test]
    fn shed_load_triggers_overload_grievance() {
        let s = scenario().with_deviation(2, Deviation::ShedLoad { keep_fraction: 0.4 });
        let report = run(&s);
        let convictions: Vec<_> = report.convictions().collect();
        assert_eq!(convictions.len(), 1, "{:?}", report.arbitrations);
        assert_eq!(convictions[0].accused, 2);
        assert_eq!(convictions[0].complaint, "overload");
        assert!(convictions[0].extra_penalty > 0.0);
        // The victim absorbed the extra and is recompensed: its net
        // utility must not fall below the honest run's.
        let honest = run(&scenario());
        assert!(
            report.utility(3) >= honest.utility(3) - 1e-9,
            "victim must be made whole"
        );
    }

    #[test]
    fn overcharge_is_fined_when_audited() {
        // q = 1 so the audit always fires.
        let s = scenario()
            .with_fine(FineSchedule::new(15.0, 1.0))
            .with_deviation(1, Deviation::Overcharge { amount: 0.5 });
        let report = run(&s);
        assert!(report.audited.contains(&1));
        assert!(report.ledger.net_of(1, crate::ledger::EntryKind::Fine) < 0.0);
    }

    #[test]
    fn false_accusation_backfires() {
        let s = scenario().with_deviation(2, Deviation::FalseAccusation);
        let report = run(&s);
        let recs: Vec<_> = report.arbitrations.iter().collect();
        assert_eq!(recs.len(), 1);
        assert!(!recs[0].substantiated);
        // The liar pays, the accused (P1) is rewarded.
        assert!(report.ledger.net_of(2, crate::ledger::EntryKind::Fine) < 0.0);
        assert!(report.ledger.net_of(1, crate::ledger::EntryKind::Reward) > 0.0);
    }

    #[test]
    fn every_finable_deviation_nets_less_than_compliance() {
        let honest = run(&scenario());
        for d in Deviation::catalog() {
            if !d.is_finable() {
                continue;
            }
            // Audits must fire to catch overcharging deterministically.
            let s = scenario()
                .with_fine(FineSchedule::new(15.0, 1.0))
                .with_deviation(2, d);
            let report = run(&s);
            assert!(
                report.utility(2) < honest.utility(2) - 1.0,
                "{} netted {} vs honest {}",
                d.label(),
                report.utility(2),
                honest.utility(2)
            );
        }
    }

    #[test]
    fn pure_misreports_are_not_fined_but_do_not_profit() {
        let honest = run(&scenario());
        for d in [
            Deviation::Underbid { factor: 0.5 },
            Deviation::Overbid { factor: 2.0 },
            Deviation::SlackExecution { factor: 1.5 },
        ] {
            let s = scenario().with_deviation(2, d);
            let report = run(&s);
            assert!(
                report.ledger.total_fines() == 0.0,
                "{} should not be fined",
                d.label()
            );
            assert!(
                report.utility(2) <= honest.utility(2) + 1e-9,
                "{} profited: {} vs {}",
                d.label(),
                report.utility(2),
                honest.utility(2)
            );
        }
    }

    #[test]
    fn honest_nodes_never_fined_across_deviant_runs() {
        // Lemma 5.2, fuzzed over the catalog: in every run, only the
        // deviant is ever fined.
        for d in Deviation::catalog() {
            let s = scenario()
                .with_fine(FineSchedule::new(15.0, 1.0))
                .with_deviation(2, d);
            let report = run(&s);
            for j in [1usize, 3] {
                assert!(
                    report.ledger.net_of(j, crate::ledger::EntryKind::Fine) >= 0.0,
                    "honest P{j} fined under {}",
                    d.label()
                );
            }
        }
    }

    #[test]
    fn solution_bonus_raises_compliant_utilities() {
        let base = run(&scenario());
        let s = scenario().with_solution_bonus(0.25, true);
        let with = run(&s);
        for j in 1..=3 {
            assert!((with.utility(j) - base.utility(j) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn report_shape_is_consistent() {
        let report = run(&scenario());
        assert_eq!(report.bids.len(), 3);
        assert_eq!(report.assigned.len(), 4);
        let total_retained: f64 = report.retained.iter().sum();
        assert!((total_retained - 1.0).abs() < 1e-9, "load conservation");
        report.gantt.validate_one_port().unwrap();
        assert!(report.events > 0);
    }

    #[test]
    fn seeds_change_audits_not_outcomes() {
        let a = run(&scenario().with_seed(1));
        let b = run(&scenario().with_seed(2));
        for j in 1..=3 {
            assert!((a.utility(j) - b.utility(j)).abs() < 1e-12);
        }
    }

    #[test]
    fn honest_transcript_replays_clean() {
        let s = scenario();
        let report = run(&s);
        let registry = Registry::new(4, s.seed);
        let mint = BlockMint::new(s.blocks, s.seed ^ 0x5EED_B10C);
        let findings = crate::transcript::replay(&report.transcript, &registry, &mint);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(
            report.transcript.len() >= 3 + 3 + 3 + 3,
            "bids + Gs + deliveries + bills"
        );
    }

    #[test]
    fn replay_reaches_the_same_verdicts_as_the_online_checks() {
        // For every deviation the online protocol convicts, a post-hoc
        // replay of the transcript must incriminate the same node.
        for d in Deviation::catalog() {
            if !d.is_finable() || matches!(d, Deviation::FalseAccusation) {
                continue; // false accusations leave no transcript trace
            }
            let s = scenario()
                .with_fine(FineSchedule::new(15.0, 1.0))
                .with_deviation(2, d);
            let report = run(&s);
            let registry = Registry::new(4, s.seed);
            let mint = BlockMint::new(s.blocks, s.seed ^ 0x5EED_B10C);
            let findings = crate::transcript::replay(&report.transcript, &registry, &mint);
            assert!(
                findings.iter().any(|f| f.accused == 2),
                "{}: replay failed to incriminate P2 (findings {findings:?})",
                d.label()
            );
            // And it incriminates nobody else.
            assert!(
                findings.iter().all(|f| f.accused == 2),
                "{}: replay accused an honest node: {findings:?}",
                d.label()
            );
        }
    }

    #[test]
    fn validate_accepts_honest_scenarios() {
        assert_eq!(scenario().validate(), Ok(()));
    }

    #[test]
    fn try_run_rejects_empty_chain() {
        let mut s = scenario();
        s.true_rates.clear();
        assert_eq!(try_run(&s).unwrap_err(), ScenarioError::NoAgents);
    }

    #[test]
    fn try_run_rejects_mismatched_lengths() {
        let mut s = scenario();
        s.deviations.pop();
        assert!(matches!(
            try_run(&s),
            Err(ScenarioError::LengthMismatch { .. })
        ));
        let mut s = scenario();
        s.link_rates.push(0.5);
        assert!(matches!(
            try_run(&s),
            Err(ScenarioError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn try_run_rejects_degenerate_rates() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut s = scenario();
            s.true_rates[1] = bad;
            assert!(
                matches!(
                    try_run(&s),
                    Err(ScenarioError::BadRate {
                        field: "true_rates",
                        index: 1,
                        ..
                    })
                ),
                "accepted true rate {bad}"
            );
            let mut s = scenario();
            s.link_rates[0] = bad;
            assert!(matches!(
                try_run(&s),
                Err(ScenarioError::BadRate {
                    field: "link_rates",
                    index: 0,
                    ..
                })
            ));
            let mut s = scenario();
            s.root_rate = bad;
            assert!(matches!(
                try_run(&s),
                Err(ScenarioError::BadRate {
                    field: "root_rate",
                    ..
                })
            ));
        }
    }

    #[test]
    fn try_run_rejects_bad_mechanism_knobs() {
        let mut s = scenario();
        s.fine.audit_probability = 1.5;
        assert_eq!(
            try_run(&s).unwrap_err(),
            ScenarioError::BadAuditProbability(1.5)
        );
        let mut s = scenario();
        s.fine.base = f64::NAN;
        assert!(matches!(try_run(&s), Err(ScenarioError::BadFine(_))));
        let mut s = scenario();
        s.solution_bonus = -1.0;
        assert_eq!(
            try_run(&s).unwrap_err(),
            ScenarioError::BadSolutionBonus(-1.0)
        );
        let mut s = scenario();
        s.blocks = 0;
        assert_eq!(try_run(&s).unwrap_err(), ScenarioError::ZeroBlocks);
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn run_panics_with_typed_message_on_bad_input() {
        let mut s = scenario();
        s.true_rates[0] = -2.0;
        run(&s);
    }

    #[test]
    fn scenario_errors_display_the_offence() {
        let msg = ScenarioError::BadRate {
            field: "link_rates",
            index: 2,
            value: -0.5,
        }
        .to_string();
        assert!(msg.contains("link_rates[2]"), "{msg}");
        assert!(msg.contains("-0.5"), "{msg}");
    }

    #[test]
    fn two_processor_minimal_chain() {
        let s = Scenario::honest(1.0, vec![1.0], vec![1.0]);
        let report = run(&s);
        assert!(report.clean());
        assert!((report.assigned[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.assigned[1] - 1.0 / 3.0).abs() < 1e-12);
    }
}
