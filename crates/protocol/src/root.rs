//! Root-side arbitration (§4): the obedient root `P_0` receives complaints
//! with evidence, substantiates or rejects them, and levies fines/rewards
//! into the ledger.
//!
//! Lemma 5.2's guarantee — *a processor is fined only if it deviated* — is
//! implemented literally: the root trusts nothing but signatures it can
//! verify and arithmetic it can recompute.

use crate::crypto::{NodeId, Registry};
use crate::lambda::BlockMint;
use crate::ledger::{EntryKind, Ledger};
use crate::messages::Complaint;
use mechanism::FineSchedule;

/// Tolerance for the root's arithmetic recomputation.
pub const ARBITRATION_TOL: f64 = 1e-9;

/// Outcome of arbitrating one complaint.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbitrationRecord {
    /// Who filed the complaint.
    pub claimant: NodeId,
    /// Who was accused.
    pub accused: NodeId,
    /// Short label of the complaint type.
    pub complaint: String,
    /// True if the root substantiated the claim (accused is fined), false
    /// if the accused was exculpated (claimant is fined).
    pub substantiated: bool,
    /// The fine levied (on the accused if substantiated, else on the
    /// claimant).
    pub fine: f64,
    /// Extra penalty charged to the offender on top of `F` (Phase III
    /// overload: the victim's extra work `(α̃−α)·w̃`).
    pub extra_penalty: f64,
}

/// Evidence the root consults beyond the complaint itself.
pub struct ArbitrationContext<'a> {
    /// The PKI registry.
    pub registry: &'a Registry,
    /// The Λ block mint (Phase III overload proofs).
    pub mint: &'a BlockMint,
    /// The fine schedule.
    pub fine: FineSchedule,
    /// The victim's metered rate, for the extra-work penalty of Phase III.
    pub victim_rate: f64,
    /// The phase the complaint arose in (ledger bookkeeping).
    pub phase: u8,
}

/// Arbitrate one complaint, posting fines and rewards to the ledger.
pub fn arbitrate(
    complaint: &Complaint,
    claimant: NodeId,
    ctx: &ArbitrationContext<'_>,
    ledger: &mut Ledger,
) -> ArbitrationRecord {
    let accused = complaint.accused();
    obs::count!("protocol.complaints.filed", "phase" => ctx.phase, "accused" => accused);
    let (substantiated, extra_penalty, label) = match complaint {
        Complaint::Contradiction {
            accused,
            first,
            second,
        } => {
            let both_authentic = first.verify(ctx.registry, Some(*accused))
                && second.verify(ctx.registry, Some(*accused));
            let different = (first.payload - second.payload).abs() > ARBITRATION_TOL;
            (both_authentic && different, 0.0, "contradiction")
        }
        Complaint::BadComputation {
            evidence,
            recipient_bid,
            link_rate,
            ..
        } => {
            // The root replays the recipient's checks. Any failure means
            // the sender deviated (signatures were already verified by the
            // recipient; the root re-verifies them too).
            let failed = evidence
                .check(
                    ctx.registry,
                    claimant,
                    *recipient_bid,
                    *link_rate,
                    ARBITRATION_TOL,
                )
                .is_err();
            (failed, 0.0, "bad-computation")
        }
        Complaint::Overload { expected, tag, .. } => {
            match ctx.mint.verify(tag) {
                // The Λ tag proves how much really arrived; the claim holds
                // if it exceeds the Phase II prescription by at least half
                // a block (rounding guard).
                Some(proven) => {
                    let excess = proven - expected;
                    let hold = excess > 0.5 * ctx.mint.block_size();
                    let penalty = if hold { excess * ctx.victim_rate } else { 0.0 };
                    (hold, penalty, "overload")
                }
                None => (false, 0.0, "overload"),
            }
        }
        Complaint::Unfounded { .. } => (false, 0.0, "unfounded"),
        // Timeouts cannot be substantiated from signed evidence alone — a
        // dropped message is indistinguishable from a crash. The root
        // resolves them out of band via a liveness probe
        // ([`arbitrate_unresponsive`]); routed here they are no-fault.
        Complaint::Unresponsive { .. } => (false, 0.0, "unresponsive"),
    };

    let f = if matches!(complaint, Complaint::Unresponsive { .. }) {
        0.0
    } else {
        ctx.fine.deviation_fine()
    };
    if substantiated {
        obs::count!("protocol.complaints.substantiated", "phase" => ctx.phase, "accused" => accused);
    }
    if f > 0.0 {
        let fined = if substantiated { accused } else { claimant };
        obs::hist!(
            "mechanism.fines.levied",
            f + extra_penalty,
            "node" => fined,
            "phase" => ctx.phase
        );
        if substantiated {
            ledger.post(accused, EntryKind::Fine, -f, ctx.phase);
            ledger.post(claimant, EntryKind::Reward, f, ctx.phase);
            if extra_penalty > 0.0 {
                ledger.post(
                    accused,
                    EntryKind::ExtraWorkPenalty,
                    -extra_penalty,
                    ctx.phase,
                );
            }
        } else {
            ledger.post(claimant, EntryKind::Fine, -f, ctx.phase);
            ledger.post(accused, EntryKind::Reward, f, ctx.phase);
        }
    }
    ArbitrationRecord {
        claimant,
        accused,
        complaint: label.to_string(),
        substantiated,
        fine: f,
        extra_penalty,
    }
}

/// Resolve an [`Complaint::Unresponsive`] timeout complaint by liveness
/// probe: the root pings the accused and substantiates the complaint iff
/// the node is genuinely down. Either way **no fine is levied and nothing
/// is posted to the ledger** — failure is no-fault, and a live node that
/// merely suffered a dropped message owes nothing, while the reporter who
/// experienced a real timeout is not punished for raising it. This is the
/// fault-tolerant extension of Lemma 5.2: across every injected fault, a
/// processor still pays only if it *deviated*.
pub fn arbitrate_unresponsive(claimant: NodeId, accused: NodeId, alive: bool) -> ArbitrationRecord {
    ArbitrationRecord {
        claimant,
        accused,
        complaint: "unresponsive".to_string(),
        substantiated: !alive,
        fine: 0.0,
        extra_penalty: 0.0,
    }
}

/// Resolve a batch of **concurrent** [`Complaint::Unresponsive`]
/// complaints — simultaneous failures whose detection timers all fire in
/// the same timeout window. The root probes each accused node in the
/// given order (which is the plan's deterministic detection order), so
/// the arbitration records of simultaneous failures are serialized
/// exactly like everything else in the run. Each probe is resolved by
/// [`arbitrate_unresponsive`]: no-fault, zero fine either way.
pub fn arbitrate_concurrent_unresponsive(
    probes: &[(NodeId, NodeId, bool)],
) -> Vec<ArbitrationRecord> {
    obs::count!("protocol.complaints.concurrent_unresponsive", "batch" => probes.len());
    probes
        .iter()
        .map(|&(claimant, accused, alive)| arbitrate_unresponsive(claimant, accused, alive))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::Dsm;

    fn ctx<'a>(reg: &'a Registry, mint: &'a BlockMint) -> ArbitrationContext<'a> {
        ArbitrationContext {
            registry: reg,
            mint,
            fine: FineSchedule::new(10.0, 0.5),
            victim_rate: 2.0,
            phase: 2,
        }
    }

    #[test]
    fn contradiction_substantiated_fines_accused() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let key = reg.keypair(2);
        let complaint = Complaint::Contradiction {
            accused: 2,
            first: Dsm::new(&key, 0.5),
            second: Dsm::new(&key, 0.9),
        };
        let mut ledger = Ledger::new();
        let rec = arbitrate(&complaint, 1, &ctx(&reg, &mint), &mut ledger);
        assert!(rec.substantiated);
        assert_eq!(ledger.net(2), -10.0);
        assert_eq!(ledger.net(1), 10.0);
    }

    #[test]
    fn fabricated_contradiction_fines_claimant() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let key = reg.keypair(2);
        // Claimant forges the second message (cannot sign as node 2).
        let mut second = Dsm::new(&key, 0.5);
        second.payload = 0.9; // tampered, signature now invalid
        let complaint = Complaint::Contradiction {
            accused: 2,
            first: Dsm::new(&key, 0.5),
            second,
        };
        let mut ledger = Ledger::new();
        let rec = arbitrate(&complaint, 1, &ctx(&reg, &mint), &mut ledger);
        assert!(!rec.substantiated, "forged evidence must not convict");
        assert_eq!(ledger.net(1), -10.0, "false accuser pays");
        assert_eq!(ledger.net(2), 10.0);
    }

    #[test]
    fn identical_messages_are_not_a_contradiction() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let key = reg.keypair(2);
        let m = Dsm::new(&key, 0.5);
        let complaint = Complaint::Contradiction {
            accused: 2,
            first: m,
            second: m,
        };
        let mut ledger = Ledger::new();
        let rec = arbitrate(&complaint, 1, &ctx(&reg, &mint), &mut ledger);
        assert!(!rec.substantiated);
    }

    #[test]
    fn overload_with_valid_tag_substantiated_with_extra_penalty() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let tag = mint.range(0, 6); // proven 0.6 received
        let complaint = Complaint::Overload {
            accused: 1,
            expected: 0.4,
            tag,
        };
        let mut ledger = Ledger::new();
        let rec = arbitrate(&complaint, 2, &ctx(&reg, &mint), &mut ledger);
        assert!(rec.substantiated);
        // extra = (0.6-0.4) * victim rate 2.0 = 0.4
        assert!((rec.extra_penalty - 0.4).abs() < 1e-9);
        assert!((ledger.net(1) + 10.4).abs() < 1e-9);
    }

    #[test]
    fn overload_with_forged_tag_rejected() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let tag = crate::lambda::LoadTag::forged(8, 99);
        let complaint = Complaint::Overload {
            accused: 1,
            expected: 0.4,
            tag,
        };
        let mut ledger = Ledger::new();
        let rec = arbitrate(&complaint, 2, &ctx(&reg, &mint), &mut ledger);
        assert!(!rec.substantiated);
        assert_eq!(ledger.net(2), -10.0);
    }

    #[test]
    fn overload_within_prescription_rejected() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let tag = mint.range(0, 4); // exactly the expected amount
        let complaint = Complaint::Overload {
            accused: 1,
            expected: 0.4,
            tag,
        };
        let mut ledger = Ledger::new();
        let rec = arbitrate(&complaint, 2, &ctx(&reg, &mint), &mut ledger);
        assert!(
            !rec.substantiated,
            "receiving the prescribed load is not a grievance"
        );
    }

    #[test]
    fn unfounded_accusation_backfires() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let complaint = Complaint::Unfounded { accused: 3 };
        let mut ledger = Ledger::new();
        let rec = arbitrate(&complaint, 2, &ctx(&reg, &mint), &mut ledger);
        assert!(!rec.substantiated);
        assert_eq!(ledger.net(2), -10.0);
        assert_eq!(ledger.net(3), 10.0);
    }

    #[test]
    fn unresponsive_complaint_never_moves_money() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let complaint = Complaint::Unresponsive {
            accused: 2,
            phase: 3,
        };
        let mut ledger = Ledger::new();
        let rec = arbitrate(&complaint, 1, &ctx(&reg, &mint), &mut ledger);
        assert_eq!(rec.fine, 0.0);
        assert!(
            ledger.entries().is_empty(),
            "timeouts are no-fault: no postings at all"
        );
    }

    #[test]
    fn liveness_probe_substantiates_against_dead_node_without_fine() {
        let rec = arbitrate_unresponsive(1, 2, false);
        assert!(rec.substantiated);
        assert_eq!(rec.fine, 0.0);
        assert_eq!(rec.extra_penalty, 0.0);
    }

    #[test]
    fn liveness_probe_exculpates_live_node_without_fining_reporter() {
        let rec = arbitrate_unresponsive(1, 2, true);
        assert!(!rec.substantiated);
        assert_eq!(
            rec.fine, 0.0,
            "a timeout the network caused must not cost the reporter"
        );
    }

    #[test]
    fn fines_and_rewards_balance() {
        let reg = Registry::new(4, 1);
        let mint = BlockMint::new(10, 1);
        let key = reg.keypair(2);
        let complaint = Complaint::Contradiction {
            accused: 2,
            first: Dsm::new(&key, 0.5),
            second: Dsm::new(&key, 0.9),
        };
        let mut ledger = Ledger::new();
        arbitrate(&complaint, 1, &ctx(&reg, &mint), &mut ledger);
        // Fine↔reward transfer balances; the extra-work penalty (none
        // here) is posted separately.
        assert!(ledger.fines_match_rewards(true, 1e-12));
    }
}
