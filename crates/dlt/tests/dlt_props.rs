//! Property tests across the dlt crate's extension modules: affine costs,
//! multi-installment scheduling, sequencing, and tree canonicalization.

use dlt::affine::{self, AffineOverheads};
use dlt::model::{LinearNetwork, StarNetwork};
use dlt::multiround::{self, MultiRoundConfig};
use dlt::{linear, sequencing, tree};
use proptest::prelude::*;

fn chain_strategy() -> impl Strategy<Value = LinearNetwork> {
    (2usize..=8).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.1f64..5.0, n),
            proptest::collection::vec(0.01f64..2.0, n - 1),
        )
            .prop_map(|(w, z)| LinearNetwork::from_rates(&w, &z))
    })
}

fn star_strategy() -> impl Strategy<Value = StarNetwork> {
    (2usize..=5).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.1f64..5.0, n),
            proptest::collection::vec(0.01f64..2.0, n - 1),
        )
            .prop_map(|(w, z)| StarNetwork::from_rates(&w, &z))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn affine_zero_overheads_is_the_linear_model(net in chain_strategy()) {
        let sol = affine::solve(&net, &AffineOverheads::zero(net.len()));
        let lin = linear::solve(&net);
        prop_assert!((sol.makespan - lin.makespan()).abs() < 1e-6 * lin.makespan().max(1.0));
        prop_assert_eq!(sol.participants, net.len());
    }

    #[test]
    fn affine_makespan_monotone_in_overheads(
        net in chain_strategy(),
        c1 in 0.0f64..0.5,
        c2 in 0.0f64..0.5,
    ) {
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let a = affine::solve(&net, &AffineOverheads::uniform(net.len(), lo, lo)).makespan;
        let b = affine::solve(&net, &AffineOverheads::uniform(net.len(), hi, hi)).makespan;
        prop_assert!(b >= a - 1e-9);
    }

    #[test]
    fn affine_allocation_always_feasible(net in chain_strategy(), c in 0.0f64..2.0) {
        let sol = affine::solve(&net, &AffineOverheads::uniform(net.len(), c * 0.5, c));
        prop_assert!(sol.alloc.validate().is_ok());
        prop_assert!(sol.participants >= 1);
    }

    #[test]
    fn multiround_single_round_matches_algorithm_1(net in chain_strategy()) {
        let sched = multiround::schedule(&net, &MultiRoundConfig::new(1, 0.0));
        prop_assert!((sched.makespan - linear::solve(&net).makespan()).abs() < 1e-9);
    }

    #[test]
    fn multiround_optimizer_never_loses_to_single_split(
        net in chain_strategy(),
        k in 2usize..10,
    ) {
        let cfg = MultiRoundConfig::new(k, 0.0);
        let naive = multiround::makespan_with(&net, &cfg, &linear::solve(&net).alloc);
        let (_, optimized) = multiround::optimize_allocation(&net, &cfg);
        prop_assert!(optimized <= naive + 1e-9);
    }

    #[test]
    fn multiround_recurrence_respects_round_order(
        net in chain_strategy(),
        k in 2usize..6,
    ) {
        let cfg = MultiRoundConfig::new(k, 0.01);
        let sched = multiround::schedule(&net, &cfg);
        for i in 0..net.len() {
            for r in 1..k {
                prop_assert!(sched.compute_end[r][i] >= sched.compute_end[r - 1][i] - 1e-12);
            }
        }
    }

    #[test]
    fn ascending_link_order_is_exhaustively_optimal(star in star_strategy()) {
        prop_assert!(sequencing::ascending_is_optimal(&star, 1e-9));
    }

    #[test]
    fn canonicalize_preserves_size_and_never_hurts(net in chain_strategy(), fanout in 1usize..4) {
        // Build a random-ish tree from the chain's rates and canonicalize.
        let cfg = workloads_free_tree(&net, fanout);
        let canonical = tree::canonicalize(&cfg);
        prop_assert_eq!(canonical.size(), cfg.size());
        let raw = tree::equivalent_time(&cfg);
        let opt = tree::equivalent_time(&canonical);
        prop_assert!(opt <= raw + 1e-9, "canonical {opt} vs raw {raw}");
        // Canonical trees are sorted by link rate at every node.
        fn sorted(node: &dlt::model::TreeNode) -> bool {
            node.children.windows(2).all(|p| p[0].0.z <= p[1].0.z)
                && node.children.iter().all(|(_, c)| sorted(c))
        }
        prop_assert!(sorted(&canonical));
    }
}

/// Deterministically fold a chain's rates into a heap-shaped tree without
/// depending on the workloads crate (dlt dev-dependencies only): node `i`'s
/// parent is `(i-1)/fanout`.
fn workloads_free_tree(net: &LinearNetwork, fanout: usize) -> dlt::model::TreeNode {
    use dlt::model::{Link, TreeNode};
    let n = net.len();
    let links = net.rates_z();
    fn build(i: usize, n: usize, fanout: usize, net: &LinearNetwork, links: &[f64]) -> TreeNode {
        let mut children = Vec::new();
        for k in 1..=fanout {
            let c = i * fanout + k;
            if c < n {
                let z = links[(c - 1) % links.len()].max(0.01);
                children.push((Link::new(z), build(c, n, fanout, net, links)));
            }
        }
        TreeNode {
            processor: net.processors()[i],
            children,
        }
    }
    build(0, n, fanout, net, &links)
}
