//! Differential bit-identity suite for the batch solver core (ISSUE 8).
//!
//! The contract under test: every number produced by `dlt::batch` is
//! **bit-identical** to the frozen scalar solver `dlt::linear::reference`
//! for the same chain — not "close", the same bits. Equality is asserted
//! two ways, which agree for finite values: `f64::to_bits` on individual
//! numbers, and `Debug`-formatted bytes on whole solutions (Rust's
//! shortest-roundtrip float printing is injective on finite f64, so equal
//! Debug strings imply equal bits).
//!
//! Coverage:
//!
//! * random mixed-length batches (m ∈ {1 … 64}) through [`solve_many`],
//!   including the batch-composition property — a chain's lanes do not
//!   depend on what else shares the batch;
//! * every suffix from [`solve_all_suffixes`] against the O(m²) per-suffix
//!   reference, for *both* recursion orders (solve-style `w̄` and
//!   `equivalent_time`-style);
//! * dirty-scratch reuse (a poisoned workspace must not perturb results);
//! * splice-survivor chains (the fault runners' re-solve inputs);
//! * degenerate chains (single processor, two processors, zero links);
//! * the exact-rational oracle: on integer-rate chains the batch core's
//!   f64 output sits within 1e-12 of the arbitrary-precision ground truth,
//!   which itself satisfies Theorem 2.1 *exactly* (mirrors the E2 row).

use dlt::batch::{self, BatchScratch, BatchSolution};
use dlt::linear::reference;
use dlt::model::LinearNetwork;
use dlt::{exact, linear};
use proptest::prelude::*;

/// Random chain with `1..=64` processors. Link rates may be exactly zero
/// (the model allows free links) via the `prop_map` floor.
fn chain_strategy() -> impl Strategy<Value = LinearNetwork> {
    (1usize..=64).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.05f64..5.0, n),
            proptest::collection::vec(0.0f64..2.0, n.saturating_sub(1)),
        )
            .prop_map(|(w, z)| LinearNetwork::from_rates(&w, &z))
    })
}

/// A batch of up to 40 chains of independently random lengths — exercises
/// cohort grouping (several length cohorts per call, singleton cohorts,
/// duplicated lengths).
fn batch_strategy() -> impl Strategy<Value = Vec<LinearNetwork>> {
    proptest::collection::vec(chain_strategy(), 1..40)
}

/// Debug bytes of a full solution — the bit-identity proxy.
fn dbg(sol: &linear::LinearSolution) -> String {
    format!("{sol:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solve_many_is_bit_identical_to_reference(nets in batch_strategy()) {
        let got = batch::solve_many(&nets);
        prop_assert_eq!(got.len(), nets.len());
        for (i, net) in nets.iter().enumerate() {
            let want = reference::solve(net);
            prop_assert_eq!(dbg(&got.solution(i)), dbg(&want), "chain {}", i);
            prop_assert_eq!(got.makespan(i).to_bits(), want.makespan().to_bits());
            for s in 0..net.len() {
                prop_assert_eq!(
                    got.alpha_hat(i)[s].to_bits(),
                    want.local.alpha_hat(s).to_bits()
                );
                prop_assert_eq!(got.w_bar(i)[s].to_bits(), want.equivalent[s].to_bits());
                prop_assert_eq!(got.alloc(i)[s].to_bits(), want.alloc.alpha(s).to_bits());
            }
        }
    }

    #[test]
    fn solve_one_is_bit_identical_to_reference(net in chain_strategy()) {
        prop_assert_eq!(dbg(&batch::solve_one(&net)), dbg(&reference::solve(&net)));
    }

    /// A chain's result is a function of the chain alone: solving it inside
    /// an arbitrary batch yields the same bits as solving it by itself.
    #[test]
    fn batch_composition_does_not_affect_results(
        nets in batch_strategy(),
        pick in 0usize..4096,
    ) {
        let i = pick % nets.len();
        let together = batch::solve_many(&nets);
        let alone = batch::solve_many(std::slice::from_ref(&nets[i]));
        prop_assert_eq!(dbg(&together.solution(i)), dbg(&alone.solution(0)));
    }

    /// Reusing a scratch and output dirtied by differently-shaped batches
    /// must be invisible in the results.
    #[test]
    fn dirty_scratch_reuse_is_idempotent(
        nets in batch_strategy(),
        poison in batch_strategy(),
    ) {
        let mut scratch = BatchScratch::new();
        let mut fresh = BatchSolution::new();
        batch::solve_many_into(&nets, &mut scratch, &mut fresh);
        let mut reused = BatchSolution::new();
        batch::solve_many_into(&poison, &mut scratch, &mut reused);
        batch::solve_many_into(&nets, &mut scratch, &mut reused);
        prop_assert_eq!(format!("{fresh:?}"), format!("{reused:?}"));
    }

    /// One O(m) suffix sweep equals m + 1 independent reference solves —
    /// front fraction, makespan, full solution, and the second
    /// (`equivalent_time`-order) recursion, all bitwise.
    #[test]
    fn every_suffix_matches_the_reference(net in chain_strategy()) {
        let sfx = batch::solve_all_suffixes(&net);
        prop_assert_eq!(sfx.len(), net.len());
        for i in 0..net.len() {
            let want = reference::solve_suffix(&net, i);
            prop_assert_eq!(dbg(&sfx.solution(i)), dbg(&want), "suffix {}", i);
            prop_assert_eq!(
                sfx.alpha_hat_front(i).to_bits(),
                want.local.alpha_hat(0).to_bits()
            );
            prop_assert_eq!(sfx.makespan(i).to_bits(), want.makespan().to_bits());
            prop_assert_eq!(
                sfx.equivalent_time(i).to_bits(),
                reference::equivalent_time(&net.suffix(i)).to_bits(),
                "equivalent_time order, suffix {}", i
            );
        }
    }

    /// Splice-survivor chains are what the fault runners re-solve after a
    /// crash; routing them through the batch core must not move a bit.
    #[test]
    fn splice_survivors_stay_bit_identical(
        net in chain_strategy(),
        pick in 0usize..4096,
    ) {
        prop_assume!(net.len() >= 2);
        let dead = 1 + pick % (net.len() - 1);
        let survivor = linear::splice(&net, dead);
        prop_assert_eq!(
            dbg(&batch::solve_one(&survivor)),
            dbg(&reference::solve(&survivor))
        );
    }
}

#[test]
fn degenerate_chains_are_bit_identical() {
    let nets = [
        LinearNetwork::homogeneous(1, 2.5, 0.0), // single processor: α̂ = α = 1
        LinearNetwork::from_rates(&[1.0, 3.0], &[0.0]), // zero-rate link
        LinearNetwork::from_rates(&[0.05, 5.0], &[2.0]), // extreme rate ratio
        LinearNetwork::homogeneous(2, 1.0, 1.0),
    ];
    let got = batch::solve_many(&nets);
    for (i, net) in nets.iter().enumerate() {
        let want = reference::solve(net);
        assert_eq!(format!("{:?}", got.solution(i)), format!("{want:?}"));
        assert_eq!(format!("{:?}", batch::solve_one(net)), format!("{want:?}"));
    }
    // The m = 1 chain allocates everything to the root.
    assert_eq!(got.alloc(0), &[1.0]);
}

/// Exact-rational oracle (mirrors the E2 integer-chain row): on 50 chains
/// with small integer rates, the batch core equals the frozen reference
/// bit-for-bit, the rational solver satisfies Theorem 2.1 *exactly*, and
/// the f64 path sits within 1e-12 of the exact ground truth.
#[test]
fn exact_rational_oracle_on_integer_chains() {
    let mut nets = Vec::new();
    let mut chains = Vec::new();
    for seed in 0..50u64 {
        let m = 2 + (seed % 10) as usize;
        let w: Vec<i64> = (0..=m)
            .map(|i| 3 + ((seed as i64 + i as i64 * 7) % 40))
            .collect();
        let z: Vec<i64> = (0..m)
            .map(|i| 1 + ((seed as i64 * 3 + i as i64 * 5) % 8))
            .collect();
        let chain = exact::ExactChain::from_scaled_ints(&w, &z, 10);
        nets.push(chain.to_f64_network());
        chains.push(chain);
    }
    let batch = batch::solve_many(&nets);
    for (i, chain) in chains.iter().enumerate() {
        // f64 batch vs frozen f64 reference: bitwise.
        let want = reference::solve(&nets[i]);
        assert_eq!(
            format!("{:?}", batch.solution(i)),
            format!("{want:?}"),
            "chain {i}"
        );
        // Exact ground truth satisfies the simultaneous-finish identity
        // exactly (Theorem 2.1) and sums to exactly 1.
        let truth = exact::chain::solve(chain);
        assert!(exact::chain::verify_equal_finish(chain, &truth));
        assert!(exact::chain::verify_total(&truth));
        // f64 batch output within 1e-12 of the exact rationals.
        let mk = truth.makespan().to_f64();
        assert!(
            (batch.makespan(i) - mk).abs() <= 1e-12 * mk.max(1.0),
            "chain {i} makespan: batch {} vs exact {mk}",
            batch.makespan(i)
        );
        for s in 0..chain.len() {
            let e = truth.alloc[s].to_f64();
            let a = batch.alloc(i)[s];
            assert!(
                (a - e).abs() <= 1e-12,
                "chain {i} α_{s}: batch {a} vs exact {e}"
            );
        }
    }
}
