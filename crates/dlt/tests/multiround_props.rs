//! Property tests for multi-installment scheduling and cross-job
//! composition, encoding the optimality traps from Gallet–Robert–Vivien's
//! *Comments on "Design and performance evaluation of load distribution
//! strategies for multiple loads on heterogeneous linear daisy chain
//! networks"*: claimed-optimal multi-load schedules can silently lose to
//! the one-shot solve (so `best_rounds` must never exceed it), installment
//! bookkeeping can leak load, and degenerate parameter settings must
//! collapse exactly onto the single-installment closed form.

use dlt::linear;
use dlt::model::LinearNetwork;
use dlt::multiround::{self, MultiRoundConfig, PipelinedJob};
use dlt::timing;
use proptest::prelude::*;

fn chain_strategy() -> impl Strategy<Value = LinearNetwork> {
    (2usize..=6).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.1f64..5.0, n),
            proptest::collection::vec(0.01f64..2.0, n - 1),
        )
            .prop_map(|(w, z)| LinearNetwork::from_rates(&w, &z))
    })
}

fn loads_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1f64..4.0, 1..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trap 1 (conservation): splitting a job into `k` uniform
    /// installments must neither create nor destroy load — the per-round
    /// amounts sum back to exactly the job total on every processor.
    #[test]
    fn installment_loads_sum_to_the_job_total(
        net in chain_strategy(),
        k in 1usize..=12,
        load in 0.1f64..4.0,
    ) {
        let cfg = MultiRoundConfig::new(k, 0.01);
        let sched = multiround::schedule(&net, &cfg);
        prop_assert!(
            sched.total_alloc.validate().is_ok(),
            "allocation invalid: {:?}",
            sched.total_alloc.validate()
        );
        let share = 1.0 / k as f64;
        for i in 0..net.len() {
            let per_round = sched.total_alloc.alpha(i) * share * load;
            let total: f64 = (0..k).map(|_| per_round).sum();
            let expect = sched.total_alloc.alpha(i) * load;
            prop_assert!(
                (total - expect).abs() <= 1e-12 * expect.max(1.0),
                "P{i}: k rounds of {per_round} sum to {total}, expected {expect}"
            );
        }
    }

    /// Trap 2 (degeneracy): one round with zero startup is the
    /// single-installment model — the recurrence must reproduce the
    /// closed-form eq. (2.2) finish times exactly.
    #[test]
    fn one_round_recurrence_matches_closed_form(net in chain_strategy()) {
        let sol = linear::solve(&net);
        let cfg = MultiRoundConfig::new(1, 0.0);
        let finals = multiround::finish_times_with(&net, &cfg, &sol.alloc);
        let expected = timing::finish_times(&net, &sol.alloc);
        for i in 0..net.len() {
            prop_assert!(
                (finals[0][i] - expected[i]).abs() <= 1e-9 * expected[i].max(1.0),
                "P{i}: {} vs {}", finals[0][i], expected[i]
            );
        }
    }

    /// Trap 3 (losing to the one-shot solve): the best round count found
    /// by the sweep must never be worse than any candidate it covers —
    /// in particular the running minimum of the U-curve is non-increasing
    /// up to `best_rounds`, and the best makespan never exceeds the
    /// one-shot (`k = 1`) solve.
    #[test]
    fn best_rounds_never_loses_to_any_swept_candidate(
        net in chain_strategy(),
        startup in 0.0f64..0.1,
    ) {
        let max_rounds = 12;
        let sweep = multiround::round_sweep(&net, startup, max_rounds);
        let (best_k, best_ms) = multiround::best_rounds(&net, startup, max_rounds);
        prop_assert!(best_k >= 1 && best_k <= max_rounds);
        for &(k, ms) in &sweep {
            prop_assert!(best_ms <= ms + 1e-12, "k={k}: best {best_ms} vs {ms}");
        }
        // Running minimum up to best_k is non-increasing and lands on
        // best_ms at k = best_k.
        let mut running = f64::INFINITY;
        for &(k, ms) in sweep.iter().take(best_k) {
            let next = running.min(ms);
            prop_assert!(next <= running, "running minimum rose at k={k}");
            running = next;
        }
        prop_assert!((running - best_ms).abs() <= 1e-12);
        prop_assert!(best_ms <= sweep[0].1 + 1e-12, "best must not lose to one-shot");
    }

    /// Composing a queue of one unit job is exactly the standalone
    /// schedule — no phantom carried state.
    #[test]
    fn single_job_composition_is_the_standalone_schedule(
        net in chain_strategy(),
        k in 1usize..=8,
        startup in 0.0f64..0.05,
    ) {
        let cfg = MultiRoundConfig::new(k, startup);
        let sched = multiround::schedule(&net, &cfg);
        let composed = multiround::compose(&net, &[PipelinedJob::new(1.0, cfg)]);
        prop_assert_eq!(composed.jobs.len(), 1);
        prop_assert!(
            (composed.makespan - sched.makespan).abs() <= 1e-12 * sched.makespan.max(1.0),
            "{} vs {}", composed.makespan, sched.makespan
        );
    }

    /// Trap 4 (multi-load optimality): the pipelining rule must never
    /// produce a batch slower than running every job as an independent
    /// one-shot solve, on any chain, load mix, or startup.
    #[test]
    fn composed_batch_never_exceeds_sequential_one_shots(
        net in chain_strategy(),
        loads in loads_strategy(),
        startup in 0.0f64..0.1,
    ) {
        let best = multiround::compose_best(&net, &loads, startup, 8);
        prop_assert!(
            best.makespan <= best.sequential_makespan + 1e-9 * best.sequential_makespan.max(1.0),
            "pipelined {} vs sequential {}", best.makespan, best.sequential_makespan
        );
        // Jobs complete in queue order.
        for w in best.jobs.windows(2) {
            prop_assert!(w[1].finish >= w[0].finish - 1e-12);
        }
    }
}
