//! Property tests for the sequencing search (`dlt::seqsearch`): validity
//! of produced orders, the local search's unconditional "never worse than
//! canonical" guarantee, exact parity with the exhaustive oracle on every
//! oracle-checkable instance, and byte-determinism under a fixed seed.
//!
//! Random trees are drawn by generating a seed with proptest and feeding
//! it to the shared `workloads::generators::tree` generator, so the tree
//! population matches the one the experiments sweep.

use dlt::model::TreeNode;
use dlt::seqsearch::{
    self, exhaustive_search, local_search, order_makespan, order_space_size, orderable_nodes,
    LocalSearchConfig,
};
use proptest::prelude::*;
use workloads::generators::{tree, ChainConfig};

/// A random tree small enough that its order space is oracle-checkable
/// for the parity property (≤ 7 orderable nodes ⇒ ≤ 5040 orders).
fn small_tree(seed: u64) -> TreeNode {
    let config = ChainConfig {
        processors: 6,
        ..Default::default()
    };
    tree(&config, 3, seed)
}

/// A larger random tree for the structural properties.
fn big_tree(seed: u64) -> TreeNode {
    let config = ChainConfig {
        processors: 12,
        ..Default::default()
    };
    tree(&config, 4, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn local_search_returns_a_valid_permutation_assignment(seed in 0u64..1_000_000) {
        let root = big_tree(seed);
        let out = local_search(&root, &LocalSearchConfig::default());
        prop_assert!(out.best_order.is_valid(&root));
        // The reported makespan is the one its own order actually achieves.
        let replayed = order_makespan(&root, &out.best_order);
        prop_assert!((replayed - out.best_makespan).abs() == 0.0);
    }

    #[test]
    fn local_search_never_loses_to_canonical(seed in 0u64..1_000_000) {
        let root = big_tree(seed);
        let out = local_search(&root, &LocalSearchConfig::default());
        prop_assert!(
            out.best_makespan <= out.canonical_makespan,
            "local {} > canonical {}",
            out.best_makespan,
            out.canonical_makespan
        );
    }

    #[test]
    fn local_search_matches_the_exhaustive_oracle_on_small_trees(seed in 0u64..1_000_000) {
        let root = small_tree(seed);
        prop_assume!(orderable_nodes(&root) <= 7);
        let oracle = exhaustive_search(&root, 5_040).expect("space fits the budget");
        let out = local_search(&root, &LocalSearchConfig::default());
        // The classical sequencing result says the canonical ascending-link
        // order is optimal, so both searches must land on the optimum; the
        // solver is deterministic, so equal orders give equal floats.
        prop_assert!(
            (out.best_makespan - oracle.best_makespan).abs() < 1e-12,
            "local {} vs oracle {}",
            out.best_makespan,
            oracle.best_makespan
        );
        prop_assert!(oracle.best_makespan <= oracle.worst_makespan);
    }

    #[test]
    fn local_search_is_byte_deterministic_under_a_fixed_seed(
        seed in 0u64..1_000_000,
        search_seed in 0u64..u64::MAX,
    ) {
        let root = big_tree(seed);
        let cfg = LocalSearchConfig {
            seed: search_seed,
            restarts: 2,
            max_steps: 50,
        };
        let first = local_search(&root, &cfg);
        let second = local_search(&root, &cfg);
        // Debug output covers every field, including the full permutation
        // assignment and the float makespans — byte equality means replay
        // is exact, not merely approximately equal.
        prop_assert_eq!(format!("{first:?}"), format!("{second:?}"));
    }
}

/// The searched makespan never exceeds canonical on a single instance of
/// the shared experiment population — the grid E29 actually sweeps.
#[test]
fn local_search_never_loses_to_canonical_on_the_experiment_grid() {
    for case in workloads::order_search_grid(0xE29) {
        let out = local_search(&case.shape, &LocalSearchConfig::default());
        assert!(
            out.best_makespan <= out.canonical_makespan,
            "{}: local {} > canonical {}",
            case.label,
            out.best_makespan,
            out.canonical_makespan
        );
        assert!(out.best_order.is_valid(&case.shape), "{}", case.label);
    }
}

/// Exact oracle parity on every oracle-checkable instance of the grid.
#[test]
fn local_search_matches_the_oracle_across_the_experiment_grid() {
    let mut checked = 0usize;
    for case in workloads::order_search_grid(0xE29) {
        if orderable_nodes(&case.shape) > 7 {
            assert!(
                exhaustive_search(&case.shape, 5_040).is_err(),
                "{}: wide case should exceed the oracle budget",
                case.label
            );
            continue;
        }
        let space = order_space_size(&case.shape).expect("small spaces never overflow");
        let oracle =
            exhaustive_search(&case.shape, 5_040).unwrap_or_else(|e| panic!("{}: {e}", case.label));
        assert_eq!(u128::from(oracle.evaluated), space, "{}", case.label);
        let out = local_search(&case.shape, &LocalSearchConfig::default());
        assert!(
            (out.best_makespan - oracle.best_makespan).abs() < 1e-12,
            "{}: local {} vs oracle {}",
            case.label,
            out.best_makespan,
            oracle.best_makespan
        );
        checked += 1;
    }
    assert!(checked > 0, "the grid must contain oracle-checkable cases");
}

/// The canonical order is what restart 0 descends from, so on tie-heavy
/// shapes (every order equal) the search must return it unchanged.
#[test]
fn tie_heavy_shapes_return_the_canonical_order() {
    let bus = TreeNode::internal(
        1.3,
        (0..5)
            .map(|i| (0.2, TreeNode::leaf(1.0 + i as f64)))
            .collect(),
    );
    let out = local_search(&bus, &LocalSearchConfig::default());
    assert_eq!(out.best_order, seqsearch::canonical_order(&bus));
    assert_eq!(out.best_makespan, out.canonical_makespan);
}
