//! Optimal divisible load scheduling on tree networks by recursive
//! equivalent-processor reduction — the substrate of the companion tree
//! mechanism \[9\], used here as a baseline in the cross-architecture
//! comparison (E10) and as an independent oracle for the chain solver (a
//! chain is a degenerate tree, and the two solvers must agree exactly).
//!
//! Every internal node solves a local star problem over (link, equivalent
//! child) pairs: subtrees are collapsed bottom-up into equivalent processors
//! (their optimal unit-load makespan), and the load is then split top-down,
//! scaling the local star fractions by the amount each branch receives —
//! exact under the linear cost model.

use crate::model::{Link, Processor, StarNetwork, TreeNode, EPSILON};
use crate::star;

/// Per-node solution of the tree problem, mirroring the input tree's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSolution {
    /// Load fraction retained by this node's processor.
    pub alpha: f64,
    /// Total load handed to this node (its `D`); the root receives 1.
    pub received: f64,
    /// Equivalent unit processing time of the subtree rooted here.
    pub equivalent: f64,
    /// Solutions of the child subtrees, in distribution order.
    pub children: Vec<TreeSolution>,
}

impl TreeSolution {
    /// Flatten retained fractions in depth-first (preorder) order.
    pub fn flatten(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<f64>) {
        out.push(self.alpha);
        for c in &self.children {
            c.collect(out);
        }
    }

    /// Sum of retained fractions across the subtree; 1.0 at the root of a
    /// full solution.
    pub fn total(&self) -> f64 {
        self.alpha + self.children.iter().map(TreeSolution::total).sum::<f64>()
    }
}

/// Canonicalize a tree for scheduling: recursively sort every node's
/// children by ascending link rate (stable for ties).
///
/// The classical single-level-tree sequencing result says serving
/// faster links first is the optimal distribution order; with an
/// arbitrary order the fixed-order equal-finish solution need not be
/// min-makespan (a slow-linked child served early can block a fast
/// sibling), which also breaks the makespan's monotonicity in a child's
/// rate — the property the tree *mechanism* needs for strategyproofness.
/// Canonicalize before solving whenever the child order is not itself
/// meaningful.
pub fn canonicalize(node: &TreeNode) -> TreeNode {
    let mut children: Vec<(Link, TreeNode)> = node
        .children
        .iter()
        .map(|(l, c)| (*l, canonicalize(c)))
        .collect();
    children.sort_by(|a, b| a.0.z.total_cmp(&b.0.z));
    TreeNode {
        processor: node.processor,
        children,
    }
}

/// Compute the equivalent unit processing time of a subtree by bottom-up
/// star reduction.
pub fn equivalent_time(node: &TreeNode) -> f64 {
    if node.children.is_empty() {
        return node.processor.w;
    }
    let star = local_star(node);
    star::equivalent_time(&star)
}

fn local_star(node: &TreeNode) -> StarNetwork {
    let children = node
        .children
        .iter()
        .map(|(link, child)| (Link::new(link.z), Processor::new(equivalent_time(child))))
        .collect();
    StarNetwork::new(node.processor, children)
}

/// Solve the tree problem: optimal fractions for every processor when the
/// root originates a unit load.
pub fn solve(root: &TreeNode) -> TreeSolution {
    distribute(root, 1.0)
}

/// Distribute `amount` units of load into the subtree rooted at `node`.
pub fn distribute(node: &TreeNode, amount: f64) -> TreeSolution {
    if node.children.is_empty() {
        return TreeSolution {
            alpha: amount,
            received: amount,
            equivalent: node.processor.w,
            children: Vec::new(),
        };
    }
    let star = local_star(node);
    let local = star::solve(&star);
    let children = node
        .children
        .iter()
        .enumerate()
        .map(|(i, (_, child))| distribute(child, local.alloc.alpha(i + 1) * amount))
        .collect();
    TreeSolution {
        alpha: local.alloc.alpha(0) * amount,
        received: amount,
        equivalent: local.makespan,
        children,
    }
}

/// The makespan of the whole tree under the optimal allocation: the
/// equivalent time of the root subtree (all processors finish together).
pub fn makespan(root: &TreeNode) -> f64 {
    equivalent_time(root)
}

/// Result of [`splice_node`]: the survivor tree plus the preorder
/// renumbering the splice induced.
#[derive(Debug, Clone, PartialEq)]
pub struct SplicedTree {
    /// The survivor tree, re-canonicalized.
    pub tree: TreeNode,
    /// `map[old] = Some(new)` maps the original tree's preorder indices to
    /// the survivor tree's; `None` marks the removed node.
    pub map: Vec<Option<usize>>,
}

/// Remove the non-root node at preorder index `dead` and re-attach each of
/// its child subtrees directly to its parent.
///
/// Every re-attached subtree's incoming link fuses with the dead node's:
/// the data still travels both hops, store-and-forward, so the rates add —
/// `z(parent→child) = z(parent→dead) + z(dead→child)`. On a degenerate
/// path this is exactly [`crate::linear::splice`]'s `z_k + z_{k+1}` fusion;
/// a leaf is simply cut. The survivor tree is re-canonicalized (children
/// re-sorted by ascending link rate, stably), because the fused links can
/// land anywhere in the parent's service order; `map` records where every
/// surviving node ended up.
pub fn splice_node(root: &TreeNode, dead: usize) -> SplicedTree {
    let n = root.size();
    assert!(
        dead >= 1 && dead < n,
        "can only splice a non-root node out of the tree (dead={dead}, n={n})"
    );

    // Tag every node with its original preorder index so the map survives
    // re-attachment and re-sorting.
    struct Tagged {
        old: usize,
        w: f64,
        children: Vec<(f64, Tagged)>,
    }
    fn tag(node: &TreeNode, next: &mut usize) -> Tagged {
        let old = *next;
        *next += 1;
        Tagged {
            old,
            w: node.processor.w,
            children: node
                .children
                .iter()
                .map(|(l, c)| (l.z, tag(c, next)))
                .collect(),
        }
    }
    fn remove(node: &mut Tagged, dead: usize) -> bool {
        if let Some(i) = node.children.iter().position(|(_, c)| c.old == dead) {
            let (z_dead, dead_node) = node.children.remove(i);
            for (z_c, c) in dead_node.children.into_iter().rev() {
                node.children.insert(i, (z_dead + z_c, c));
            }
            return true;
        }
        node.children.iter_mut().any(|(_, c)| remove(c, dead))
    }
    fn resort(node: &mut Tagged) {
        node.children.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (_, c) in &mut node.children {
            resort(c);
        }
    }
    fn rebuild(node: &Tagged, next: &mut usize, map: &mut [Option<usize>]) -> TreeNode {
        map[node.old] = Some(*next);
        *next += 1;
        TreeNode {
            processor: Processor::new(node.w),
            children: node
                .children
                .iter()
                .map(|(z, c)| (Link::new(*z), rebuild(c, next, map)))
                .collect(),
        }
    }

    let mut next = 0;
    let mut tagged = tag(root, &mut next);
    let removed = remove(&mut tagged, dead);
    debug_assert!(removed, "preorder index {dead} not found below the root");
    resort(&mut tagged);
    let mut map = vec![None; n];
    let mut next = 0;
    let tree = rebuild(&tagged, &mut next, &mut map);
    SplicedTree { tree, map }
}

/// Verify that the solution's fractions are non-negative and sum to one.
pub fn validate(sol: &TreeSolution) -> bool {
    fn all_nonneg(s: &TreeSolution) -> bool {
        s.alpha >= -EPSILON && s.children.iter().all(all_nonneg)
    }
    all_nonneg(sol) && (sol.total() - 1.0).abs() < 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear;
    use crate::model::LinearNetwork;

    #[test]
    fn leaf_takes_everything() {
        let sol = solve(&TreeNode::leaf(2.0));
        assert_eq!(sol.alpha, 1.0);
        assert_eq!(sol.equivalent, 2.0);
    }

    #[test]
    fn chain_as_tree_matches_chain_solver() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]);
        let tree = TreeNode::from_chain(&net);
        let tsol = solve(&tree);
        let lsol = linear::solve(&net);
        let flat = tsol.flatten();
        for i in 0..net.len() {
            assert!(
                (flat[i] - lsol.alloc.alpha(i)).abs() < 1e-12,
                "α_{i}: tree {} vs chain {}",
                flat[i],
                lsol.alloc.alpha(i)
            );
        }
        assert!((makespan(&tree) - lsol.makespan()).abs() < 1e-12);
    }

    #[test]
    fn star_as_tree_matches_star_solver() {
        let star_net = StarNetwork::from_rates(&[1.0, 2.0, 0.7, 3.0], &[0.1, 0.4, 0.2]);
        let tree = TreeNode::internal(
            1.0,
            vec![
                (0.1, TreeNode::leaf(2.0)),
                (0.4, TreeNode::leaf(0.7)),
                (0.2, TreeNode::leaf(3.0)),
            ],
        );
        let tsol = solve(&tree);
        let ssol = star::solve(&star_net);
        let flat = tsol.flatten();
        for i in 0..4 {
            assert!((flat[i] - ssol.alloc.alpha(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn balanced_binary_tree_is_feasible_and_consistent() {
        let tree = TreeNode::internal(
            1.0,
            vec![
                (
                    0.2,
                    TreeNode::internal(
                        1.5,
                        vec![(0.3, TreeNode::leaf(2.0)), (0.3, TreeNode::leaf(2.0))],
                    ),
                ),
                (
                    0.2,
                    TreeNode::internal(
                        1.5,
                        vec![(0.3, TreeNode::leaf(2.0)), (0.3, TreeNode::leaf(2.0))],
                    ),
                ),
            ],
        );
        let sol = solve(&tree);
        assert!(validate(&sol));
        // Symmetric branches receive... the first branch receives more due
        // to sequential distribution.
        assert!(sol.children[0].received > sol.children[1].received);
        // Within a branch, symmetry holds: both leaves of the first internal
        // node relate by the same w/(z+w) ratio as the star recursion.
        assert!(sol.children[0].children[0].alpha > sol.children[0].children[1].alpha);
    }

    #[test]
    fn subtree_equivalent_bounded_by_root_rate() {
        let tree = TreeNode::internal(
            2.0,
            vec![(0.5, TreeNode::leaf(1.0)), (0.1, TreeNode::leaf(3.0))],
        );
        let eq = equivalent_time(&tree);
        assert!(eq < 2.0, "helpers can only speed the root up");
        assert!(eq > 0.0);
    }

    #[test]
    fn deep_chain_tree_is_stable() {
        let net = LinearNetwork::homogeneous(64, 1.0, 0.1);
        let tree = TreeNode::from_chain(&net);
        let sol = solve(&tree);
        assert!(validate(&sol));
        assert!((makespan(&tree) - linear::solve(&net).makespan()).abs() < 1e-10);
    }

    #[test]
    fn splice_on_a_path_matches_linear_splice_exactly() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0, 1.5], &[0.2, 0.1, 0.7, 0.3]);
        let tree = TreeNode::from_chain(&net);
        for dead in 1..net.len() {
            let spliced = splice_node(&tree, dead);
            let expected = linear::splice(&net, dead);
            let expected_tree = TreeNode::from_chain(&expected);
            assert_eq!(
                spliced.tree, expected_tree,
                "dead={dead}: fused path differs from linear::splice"
            );
            for old in 0..net.len() {
                let want = match old.cmp(&dead) {
                    std::cmp::Ordering::Less => Some(old),
                    std::cmp::Ordering::Equal => None,
                    std::cmp::Ordering::Greater => Some(old - 1),
                };
                assert_eq!(spliced.map[old], want, "dead={dead} old={old}");
            }
        }
    }

    #[test]
    fn splice_internal_node_reattaches_subtrees_with_fused_links() {
        // root --0.4--> A --{0.3, 0.1}--> (B, C): cutting A hands B and C
        // to the root with fused links 0.7 and 0.5, re-sorted ascending.
        let tree = TreeNode::internal(
            1.0,
            vec![(
                0.4,
                TreeNode::internal(
                    1.5,
                    vec![(0.3, TreeNode::leaf(2.0)), (0.1, TreeNode::leaf(3.0))],
                ),
            )],
        );
        let spliced = splice_node(&tree, 1);
        let expected = TreeNode::internal(
            1.0,
            vec![(0.5, TreeNode::leaf(3.0)), (0.7, TreeNode::leaf(2.0))],
        );
        assert_eq!(spliced.tree, expected);
        // Old preorder: [root, A, B(2.0), C(3.0)]. C's fused link (0.5) now
        // sorts before B's (0.7).
        assert_eq!(spliced.map, vec![Some(0), None, Some(2), Some(1)]);
    }

    #[test]
    fn splice_leaf_truncates() {
        let tree = TreeNode::internal(
            1.0,
            vec![(0.1, TreeNode::leaf(2.0)), (0.2, TreeNode::leaf(0.7))],
        );
        let spliced = splice_node(&tree, 2);
        assert_eq!(
            spliced.tree,
            TreeNode::internal(1.0, vec![(0.1, TreeNode::leaf(2.0))])
        );
        assert_eq!(spliced.map, vec![Some(0), Some(1), None]);
        // Down to a lone root.
        let lone = splice_node(&spliced.tree, 1);
        assert_eq!(lone.tree, TreeNode::leaf(1.0));
        assert_eq!(lone.map, vec![Some(0), None]);
    }

    #[test]
    fn spliced_tree_still_solves_to_a_unit_partition() {
        let tree = TreeNode::internal(
            1.0,
            vec![
                (
                    0.15,
                    TreeNode::internal(
                        1.4,
                        vec![(0.05, TreeNode::leaf(2.2)), (0.25, TreeNode::leaf(0.7))],
                    ),
                ),
                (
                    0.30,
                    TreeNode::internal(
                        1.9,
                        vec![(0.10, TreeNode::leaf(1.1)), (0.20, TreeNode::leaf(3.0))],
                    ),
                ),
            ],
        );
        for dead in 1..tree.size() {
            let spliced = splice_node(&tree, dead);
            assert_eq!(spliced.tree.size(), tree.size() - 1, "dead={dead}");
            let sol = solve(&spliced.tree);
            assert!(validate(&sol), "dead={dead}: invalid spliced solution");
            // Every survivor maps somewhere, bijectively.
            let mut seen: Vec<usize> = spliced.map.iter().filter_map(|&x| x).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..tree.size() - 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn canonicalize_is_tie_stable() {
        // Equal link rates must keep the stored child order at every
        // depth: the sort is stable, so canonicalization is deterministic
        // on tie-heavy (bus-like) shapes and agent preorder indices do not
        // shuffle between identical instances.
        let tree = TreeNode::internal(
            1.0,
            vec![
                (
                    0.3,
                    TreeNode::internal(
                        1.5,
                        vec![(0.2, TreeNode::leaf(2.0)), (0.2, TreeNode::leaf(0.7))],
                    ),
                ),
                (0.3, TreeNode::leaf(1.1)),
                (0.1, TreeNode::leaf(2.4)),
            ],
        );
        let canon = canonicalize(&tree);
        // The 0.1 link moves first; the two 0.3 links keep index order.
        assert_eq!(canon.children[0].1, TreeNode::leaf(2.4));
        assert_eq!(canon.children[1].0.z, 0.3);
        assert_eq!(canon.children[1].1.children.len(), 2);
        // Inside the tied subtree, the equal 0.2 links keep their order.
        assert_eq!(canon.children[1].1.children[0].1, TreeNode::leaf(2.0));
        assert_eq!(canon.children[1].1.children[1].1, TreeNode::leaf(0.7));
        assert_eq!(canon.children[2].1, TreeNode::leaf(1.1));
    }

    #[test]
    fn distribute_scales_linearly() {
        let tree = TreeNode::internal(1.0, vec![(0.2, TreeNode::leaf(2.0))]);
        let full = distribute(&tree, 1.0);
        let half = distribute(&tree, 0.5);
        assert!((half.alpha - full.alpha * 0.5).abs() < 1e-12);
        assert!((half.children[0].alpha - full.children[0].alpha * 0.5).abs() < 1e-12);
    }
}
